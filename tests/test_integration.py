"""Cross-layer integration tests: the subsystems composed end-to-end."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kvstore import build_keydb_experiment
from repro.core import BandwidthAwarePlacer
from repro.hw import paper_cxl_platform
from repro.mem import AddressSpace, HotPageSelectionDaemon, MemoryInventory, numactl
from repro.units import PAGE_SIZE, gb_per_s
from repro.workloads import WORKLOADS, YcsbGenerator


class TestInventoryConservation:
    """Capacity accounting must survive arbitrary migration churn."""

    def test_keydb_hot_promote_conserves_bytes(self):
        exp = build_keydb_experiment("hot-promote", record_count=8192)
        inv = exp.server.store.space.inventory
        before = {n: inv.used(n) for n in exp.platform.nodes}
        total_before = sum(before.values())
        exp.run(20_000, warmup_ops=0)
        total_after = sum(inv.used(n) for n in exp.platform.nodes)
        assert total_after == total_before  # migrations move, never leak

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=500), st.integers(min_value=0, max_value=120))
    def test_random_migration_sequences_conserve(self, n_pages, n_moves):
        platform = paper_cxl_platform()
        inv = MemoryInventory(platform)
        space = AddressSpace(inv)
        policy = numactl.interleave(platform)
        pages = space.allocate_pages(n_pages, policy)
        nodes = list(platform.nodes)
        rng = np.random.default_rng(n_pages * 7 + n_moves)
        total = space.total_bytes()
        for _ in range(n_moves):
            page = pages[int(rng.integers(0, len(pages)))]
            target = nodes[int(rng.integers(0, len(nodes)))]
            if target != page.node_id:
                space.move_page(page, target)
        assert sum(inv.used(n) for n in nodes) == total
        assert sum(space.node_distribution().values()) == total


class TestPlacementMatchesApplicationOutcome:
    """The §3.4 optimizer must agree with the §5 application result:
    once demand crosses the knee, offloading to CXL wins in both."""

    def test_llm_crossover_agrees_with_placer(self):
        from repro.apps.llm import LlmServingExperiment

        mmem = LlmServingExperiment("mmem")
        three_one = LlmServingExperiment("3:1")

        platform = paper_cxl_platform(snc_enabled=True)
        dram = platform.dram_nodes(0)[0]
        cxl = platform.cxl_nodes()[0]
        placer = BandwidthAwarePlacer(
            platform.path(0, dram.node_id, initiator_domain=dram.domain),
            platform.path(0, cxl.node_id),
        )
        for backends in (2, 5):
            demand = backends * mmem.spec.offered_bandwidth
            offload_wins_app = (
                three_one.serving_point(backends).tokens_per_second
                > mmem.serving_point(backends).tokens_per_second
            )
            offload_wins_placer = placer.optimal_split(
                demand, write_fraction=0.1
            ).should_offload
            assert offload_wins_app == offload_wins_placer, backends


class TestDeterminism:
    def test_full_keydb_run_bit_identical(self):
        def run():
            exp = build_keydb_experiment("1:1", record_count=8192, seed=99)
            r = exp.run(10_000)
            return (
                r.throughput_ops_per_s,
                r.read_latency.percentile(99),
                r.counters.as_dict(),
            )

        assert run() == run()

    def test_ycsb_streams_isolated_between_workloads(self):
        """Changing one workload's draw must not perturb another's."""
        from repro.sim import RngFactory

        f1, f2 = RngFactory(5), RngFactory(5)
        gen_a1 = YcsbGenerator(WORKLOADS["A"], 1000, f1.stream("a"))
        _ = YcsbGenerator(WORKLOADS["B"], 1000, f1.stream("b")).next_operation()
        gen_a2 = YcsbGenerator(WORKLOADS["A"], 1000, f2.stream("a"))
        ops1 = [(o.op, o.key) for o in gen_a1.operations(100)]
        ops2 = [(o.op, o.key) for o in gen_a2.operations(100)]
        assert ops1 == ops2


class TestTieringUnderMemoryPressure:
    def test_promotion_with_full_dram_demotes_first(self):
        """When DRAM is exactly dataset/2 (the Hot-Promote setup), every
        promotion must be paired with a demotion — never an overflow."""
        platform = paper_cxl_platform()
        dram = [platform.dram_nodes(0)[0].node_id]
        cxl = [n.node_id for n in platform.cxl_nodes()]
        pages_each = 512
        inv = MemoryInventory(
            platform, capacity_override={dram[0]: pages_each * PAGE_SIZE}
        )
        space = AddressSpace(inv)
        from repro.mem import BindPolicy

        space.allocate_pages(pages_each, BindPolicy(dram))
        cxl_pages = space.allocate_pages(pages_each, BindPolicy(cxl))
        daemon = HotPageSelectionDaemon(
            space, dram, cxl,
            promote_rate_limit_bytes_per_s=gb_per_s(10),
            initial_threshold=1.0,
            dram_high_watermark=0.99,
        )
        now = 0.0
        for _ in range(10):
            for p in cxl_pages[:64]:
                p.touch(now)
                p.touch(now)
            now += 100e6
            daemon.tick(now)
        # DRAM never exceeded its cap, and promotions really happened.
        assert inv.used(dram[0]) <= pages_each * PAGE_SIZE
        assert daemon.stats.promoted_pages > 0
        assert daemon.stats.demoted_pages >= daemon.stats.promoted_pages - 1


class TestPoolingOnTopOfPlatform:
    def test_pool_backs_spare_vcpus(self):
        """§4.3 + §7.1 composed: a pool covers the stranded-vCPU memory
        of several memory-bound hosts."""
        from repro.core import SpareCoreModel
        from repro.hw import CxlSwitch, MemoryPool, a1000_card
        from repro.units import GIB

        spare = SpareCoreModel(actual_ratio=3.0, target_ratio=4.0)
        need_per_host = spare.required_cxl_bytes(256, 4 * GIB)
        pool = MemoryPool(tuple(a1000_card() for _ in range(4)), CxlSwitch())
        hosts = 0
        while pool.free_bytes >= need_per_host and hosts < 15:
            pool.allocate(f"host-{hosts}", need_per_host)
            hosts += 1
        assert hosts == pool.total_bytes // need_per_host
        assert hosts >= 4
