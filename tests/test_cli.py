"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_cost_defaults_are_paper_example(self):
        args = build_parser().parse_args(["cost"])
        assert (args.r_d, args.r_c, args.c, args.r_t) == (10.0, 8.0, 2.0, 1.1)


class TestCommands:
    def test_cost_prints_paper_numbers(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "67.29%" in out
        assert "25.98%" in out

    def test_cost_custom_parameters(self, capsys):
        assert main(["cost", "--r-d", "5", "--r-c", "4", "--c", "1", "--r-t", "1.0"]) == 0
        assert "TCO saving" in capsys.readouterr().out

    def test_tables(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        for marker in ("Table 1", "Table 2", "Table 3", "Table 4", "hot-promote"):
            assert marker in out

    def test_fig3_quick(self, capsys):
        assert main(["fig3", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[mmem]" in out and "[cxl-r]" in out

    def test_fig4_quick(self, capsys):
        assert main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "[sequential]" in out and "[random]" in out

    def test_fig8_quick(self, capsys):
        assert main(["fig8", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "throughput drop" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        out = capsys.readouterr().out
        assert "tokens/s" in out and "Fig. 10(b)" in out

    def test_advise(self, capsys):
        assert main(["advise", "--demand-gbps", "55", "--locality", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "tiering-thrash-risk" in out
        assert "interleave-offload" in out

    def test_advise_low_demand(self, capsys):
        assert main(["advise", "--demand-gbps", "5"]) == 0
        assert "dram-only-ok" in capsys.readouterr().out

    def test_faults_list(self, capsys):
        assert main(["faults", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("link-degrade", "poison", "device-loss", "meltdown"):
            assert name in out

    def test_faults_run_quick(self, capsys):
        assert main(
            ["faults", "run", "device-flap", "--app", "keydb", "--quick"]
        ) == 0
        out = capsys.readouterr().out
        assert "keydb under device-flap" in out
        assert "fault trace:" in out
        assert "OFFLINE" in out

    def test_faults_run_json(self, capsys):
        import json

        assert main(
            ["faults", "run", "link-degrade", "--app", "keydb",
             "--quick", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert isinstance(payload, list) and len(payload) == 1
        run = payload[0]
        assert run["app"] == "keydb"
        assert run["scenario"] == "link-degrade"
        assert 0.0 <= run["availability"] <= 1.0
        assert run["report"] is None or "offered_ops" in run["report"]

    def test_overload_sweep_quick(self, capsys):
        assert main(
            ["overload", "sweep", "--quick", "--factors", "0.5,1.5",
             "--mode", "controlled"]
        ) == 0
        out = capsys.readouterr().out
        assert "controlled" in out
        assert "goodput" in out
        assert "0.50x" in out and "1.50x" in out

    def test_overload_sweep_json(self, capsys):
        import json

        assert main(
            ["overload", "sweep", "--quick", "--factors", "1.5",
             "--mode", "both", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        labels = {entry["label"] for entry in payload}
        assert labels == {"controlled @ 1.50x", "uncontrolled @ 1.50x"}
        for entry in payload:
            assert entry["load_factor"] == 1.5
            assert entry["offered"] > 0

    def test_overload_faults_json(self, capsys):
        import json

        assert main(
            ["overload", "faults", "--quick", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"controlled", "uncontrolled"}
        for entry in payload.values():
            assert entry["offered"] > 0


class TestWorkersFlag:
    def test_workers_accepted_on_sweep_shaped_commands(self):
        parser = build_parser()
        for argv in (
            ["fig3", "--workers", "2"],
            ["fig5", "--quick", "--workers", "4"],
            ["overload", "sweep", "--workers", "2"],
            ["faults", "run", "device-flap", "--workers", "2"],
            ["sweep", "fig5", "--workers", "2"],
        ):
            args = parser.parse_args(argv)
            assert args.workers in (2, 4)

    def test_workers_defaults_to_env_resolution(self):
        args = build_parser().parse_args(["fig5"])
        assert args.workers is None  # runner falls back to $REPRO_WORKERS

    def test_nonpositive_workers_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig5", "--workers", "0"])

    def test_tables_has_no_workers_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--workers", "2"])


class TestRobustnessFlags:
    def test_accepted_on_sweep_shaped_commands(self):
        parser = build_parser()
        for argv in (
            ["fig3", "--point-timeout", "30", "--retries", "4"],
            ["fig5", "--quick", "--fail-fast"],
            ["overload", "sweep", "--point-timeout", "10.5"],
            ["faults", "run", "device-flap", "--retries", "0"],
            ["sweep", "fig5", "--point-timeout", "5", "--retries", "1",
             "--fail-fast"],
        ):
            args = parser.parse_args(argv)
            assert hasattr(args, "point_timeout")
            assert hasattr(args, "retries")
            assert hasattr(args, "fail_fast")

    def test_defaults(self):
        args = build_parser().parse_args(["fig5"])
        assert args.point_timeout is None
        assert args.retries == 2
        assert not args.fail_fast

    def test_bad_values_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["fig5", "--point-timeout", "0"])
        with pytest.raises(SystemExit):
            parser.parse_args(["fig5", "--retries", "-1"])

    def test_tables_has_no_robustness_flags(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--retries", "1"])

    def test_supervise_built_from_flags(self):
        from repro.cli import _supervise

        args = build_parser().parse_args(
            ["sweep", "fig5", "--point-timeout", "30", "--retries", "4",
             "--fail-fast"]
        )
        config = _supervise(args)
        assert config.point_timeout_s == 30.0
        assert config.max_attempts == 5  # first try + 4 retries
        assert config.fail_fast

    def test_zero_retries_means_single_attempt(self):
        from repro.cli import _supervise

        args = build_parser().parse_args(["sweep", "fig5", "--retries", "0"])
        assert _supervise(args).max_attempts == 1

    def test_health_line_on_stderr_when_eventful(self, capsys):
        from repro import cli
        from repro.parallel.supervisor import RunnerHealth

        import repro.parallel.runner as runner_mod

        health = RunnerHealth(retries=3, quarantined=1)
        previous = runner_mod._LAST_HEALTH
        runner_mod._LAST_HEALTH = health
        try:
            cli._health_note("fig5")
            err = capsys.readouterr().err
            assert "[fig5] health:" in err
            assert "3 retries" in err and "1 quarantined" in err

            runner_mod._LAST_HEALTH = RunnerHealth()  # uneventful
            cli._health_note("fig5")
            assert capsys.readouterr().err == ""
        finally:
            runner_mod._LAST_HEALTH = previous

    def test_sweep_emits_health_summary(self, capsys):
        assert main(["sweep", "fig8", "--quick", "--no-progress",
                     "--no-cache"]) == 0
        err = capsys.readouterr().err
        assert "health: 0 retries, 0 timeouts, 0 crashes" in err


class TestSweepCommand:
    def test_parser_requires_known_target(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "fig99"])

    def test_parser_defaults(self):
        args = build_parser().parse_args(["sweep", "overload"])
        assert args.target == "overload"
        assert args.mode == "controlled"
        assert not args.json and not args.no_progress

    def test_all_figure_targets_parse(self):
        parser = build_parser()
        for target in ("fig3", "fig4", "fig5", "fig7", "fig8", "fig10"):
            args = parser.parse_args(["sweep", target, "--quick", "--seed", "7"])
            assert args.target == target
            assert args.quick and args.seed == 7


class TestCacheFlag:
    def test_no_cache_accepted_on_sweep_shaped_commands(self):
        parser = build_parser()
        for argv in (
            ["fig3", "--no-cache"],
            ["fig5", "--quick", "--no-cache"],
            ["overload", "sweep", "--no-cache"],
            ["faults", "run", "device-flap", "--no-cache"],
            ["sweep", "fig8", "--no-cache"],
        ):
            assert parser.parse_args(argv).no_cache

    def test_cache_defaults_on(self):
        assert not build_parser().parse_args(["fig5"]).no_cache

    def test_tables_has_no_cache_flag(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tables", "--no-cache"])


class TestCacheCommand:
    def test_parser_requires_action(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cache"])

    def test_stats_on_empty_store(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "code fingerprint" in out

    def test_stats_json_is_metrics_document(self, capsys):
        import json

        assert main(["cache", "stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.metrics/v1"
        names = {m["name"] for m in doc["metrics"]}
        assert {"sweep_cache_entries", "sweep_cache_bytes"} <= names

    def test_clear_and_verify_roundtrip(self, capsys):
        assert main(["cache", "verify"]) == 0
        assert main(["cache", "clear"]) == 0
        out = capsys.readouterr().out
        assert "removed" in out

    def test_sweep_populates_default_store(self, capsys):
        import os

        from repro.cache import SweepCache

        assert main(["faults", "run", "device-flap", "--app", "keydb",
                     "--quick"]) == 0
        cache = SweepCache()  # rooted at $REPRO_CACHE_DIR (see conftest)
        assert cache.root == os.environ["REPRO_CACHE_DIR"]
        assert len(cache) == 1
        assert cache.verify().ok
        assert main(["cache", "verify"]) == 0
        capsys.readouterr()

    def test_verify_exits_nonzero_on_corrupt_entry(self, capsys):
        import os

        from repro.cache import SweepCache

        assert main(["faults", "run", "device-flap", "--app", "keydb",
                     "--quick"]) == 0
        cache = SweepCache()
        info = next(iter(cache.entries()))
        with open(info.path, "r+b") as fh:
            fh.seek(0, os.SEEK_END)
            fh.truncate(fh.tell() // 2)
        assert main(["cache", "verify"]) == 1
        capsys.readouterr()
        # Purge removes the damage and restores a clean exit.
        assert main(["cache", "verify", "--purge"]) == 1
        assert main(["cache", "verify"]) == 0
        capsys.readouterr()

    def test_verify_exits_nonzero_on_corrupt_manifest(self, capsys):
        import os

        from repro.cache import SweepCache, manifest_path

        cache = SweepCache()
        path = manifest_path(cache, "dented")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write('{"schema": "repro.manifest/v1",')
        assert main(["cache", "verify"]) == 1
        err = capsys.readouterr().err
        assert "manifest:dented" in err
        assert main(["cache", "verify", "--purge"]) == 1
        assert main(["cache", "verify"]) == 0
        capsys.readouterr()
