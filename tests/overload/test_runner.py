"""The overload experiment runner: determinism and summary shape.

Tiny parameters (2k records, 5 ms of sim time) keep these fast; the
full offered-load/goodput acceptance curve lives in
``benchmarks/bench_overload.py``.
"""

import math

import pytest

from repro.overload import (
    calibrate_capacity_ops_per_s,
    run_fault_comparison,
    run_offered_load,
    sweep_offered_load,
)
from repro.overload.runner import baseline_policy, control_policy, default_budget_ns

RECORDS = 2048
DURATION_NS = 5e6
SEED = 7


def _quick(policy, rate, label):
    return run_offered_load(
        rate,
        policy,
        duration_ns=DURATION_NS,
        record_count=RECORDS,
        seed=SEED,
        label=label,
        load_factor=1.0,
    )


class TestDeterminism:
    def test_same_seed_same_summary(self):
        capacity = calibrate_capacity_ops_per_s(
            record_count=RECORDS, seed=SEED, calibrate_ops=2000
        )
        policy = control_policy(capacity, default_budget_ns(capacity))
        first = _quick(policy, capacity, "a")
        second = _quick(policy, capacity, "b")
        assert first.offered == second.offered
        assert first.good == second.good
        assert first.rejected == second.rejected
        assert first.shed == second.shed
        assert first.p99_ns == second.p99_ns
        assert first.counters == second.counters

    def test_calibration_is_deterministic(self):
        kwargs = dict(record_count=RECORDS, seed=SEED, calibrate_ops=2000)
        assert calibrate_capacity_ops_per_s(**kwargs) == pytest.approx(
            calibrate_capacity_ops_per_s(**kwargs)
        )


class TestSummaryShape:
    def test_funnel_is_consistent(self):
        capacity = calibrate_capacity_ops_per_s(
            record_count=RECORDS, seed=SEED, calibrate_ops=2000
        )
        summary = _quick(
            control_policy(capacity, default_budget_ns(capacity)),
            1.5 * capacity,
            "overload",
        )
        assert summary.offered > 0
        # Every offered op is accounted: admitted or rejected.
        assert summary.admitted + summary.rejected == summary.offered
        # Goodput never exceeds completions, completions never admissions.
        assert summary.good <= summary.completed <= summary.admitted
        assert 0.0 <= summary.shed_rate <= 1.0
        assert 0.0 <= summary.deadline_miss_rate <= 1.0
        assert summary.goodput_ops_per_s <= summary.throughput_ops_per_s + 1e-9

    def test_as_dict_is_json_clean(self):
        policy = baseline_policy(budget_ns=1e6)
        summary = _quick(policy, 100_000.0, "tiny")
        payload = summary.as_dict()
        for value in payload.values():
            if isinstance(value, float):
                assert not math.isnan(value) and not math.isinf(value)

    def test_rows_render_without_samples(self):
        policy = baseline_policy(budget_ns=1e6)
        summary = _quick(policy, 1.0, "empty")  # ~0 arrivals in 5 ms
        for _, value in summary.rows():
            assert isinstance(value, str)


class TestSweepAndFaults:
    def test_sweep_covers_every_factor(self):
        summaries = sweep_offered_load(
            factors=[0.5, 1.0],
            controlled=True,
            duration_ns=DURATION_NS,
            record_count=RECORDS,
            seed=SEED,
        )
        assert [s.load_factor for s in summaries] == [0.5, 1.0]
        assert all(s.offered > 0 for s in summaries)

    def test_fault_comparison_returns_both_modes(self):
        runs = run_fault_comparison(
            scenario="link-degrade",
            duration_ns=DURATION_NS,
            record_count=RECORDS,
            seed=SEED,
        )
        assert set(runs) == {"controlled", "uncontrolled"}
        assert all(s.offered > 0 for s in runs.values())
