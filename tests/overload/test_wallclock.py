"""Wall-clock admission: rate shedding, bounded queue, deadline purges."""

import pytest

from repro.errors import ConfigurationError
from repro.overload.wallclock import (
    AdmissionDecision,
    WallClock,
    WallClockAdmission,
)


class FakeClock(WallClock):
    """Manually-advanced clock; starts at zero."""

    def __init__(self):
        self._now_ns = 0.0

    def now_ns(self):
        return self._now_ns

    def advance_s(self, seconds):
        self._now_ns += seconds * 1e9


def _admission(queue_depth=4, max_running=2, **kwargs):
    clock = FakeClock()
    return WallClockAdmission(
        queue_depth=queue_depth, max_running=max_running, clock=clock,
        **kwargs
    ), clock


class TestWallClock:
    def test_real_clock_is_monotonic(self):
        clock = WallClock()
        a = clock.now_ns()
        b = clock.now_ns()
        assert b >= a
        assert clock.now_s() * 1e9 >= b

    def test_decision_as_dict(self):
        doc = AdmissionDecision(False, "rate", 0.25).as_dict()
        assert doc == {"admitted": False, "reason": "rate",
                       "retry_after_s": 0.25}


class TestValidation:
    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            WallClockAdmission(queue_depth=1, max_running=1, rate_per_s=0)

    def test_burst_needs_rate(self):
        with pytest.raises(ConfigurationError):
            WallClockAdmission(queue_depth=1, max_running=1, burst=4)


class TestRateShedding:
    def test_burst_beyond_bucket_sheds_with_retry_after(self):
        admission, _ = _admission(queue_depth=64, rate_per_s=2.0, burst=2.0)
        verdicts = [admission.offer(f"job-{i}")[0] for i in range(6)]
        admitted = [d for d in verdicts if d.admitted]
        shed = [d for d in verdicts if not d.admitted]
        assert len(admitted) == 2  # the burst
        assert len(shed) == 4
        assert all(d.reason == "rate" for d in shed)
        assert all(d.retry_after_s > 0 for d in shed)
        assert admission.rejected_rate == 4

    def test_bucket_refills_with_time(self):
        admission, clock = _admission(queue_depth=64, rate_per_s=2.0,
                                      burst=1.0)
        assert admission.offer("a")[0].admitted
        assert not admission.offer("b")[0].admitted
        clock.advance_s(0.6)  # > one token at 2/s
        assert admission.offer("c")[0].admitted


class TestQueueShedding:
    def test_full_queue_sheds_with_backlog_estimate(self):
        admission, _ = _admission(queue_depth=2, max_running=2)
        assert admission.offer("a")[0].admitted
        assert admission.offer("b")[0].admitted
        assert admission.saturated
        decision, request = admission.offer("c")
        assert request is None
        assert decision.reason == "queue-full"
        # Backlog of 2 + the newcomer through 2 slots = 2 waves of the
        # (seeded) 1s mean service time.
        assert decision.retry_after_s == pytest.approx(2.0)

    def test_retry_after_tracks_service_ewma(self):
        admission, _ = _admission(queue_depth=1, max_running=1)
        admission.offer("a")
        request = admission.next_runnable()
        assert request is not None
        admission.release(service_s=11.0)  # EWMA: 1 + 0.3*(11-1) = 4
        assert admission.mean_service_s == pytest.approx(4.0)
        admission.offer("b")
        decision, _ = admission.offer("c")
        assert decision.reason == "queue-full"
        assert decision.retry_after_s == pytest.approx(8.0)  # 2 waves * 4s


class TestPromotion:
    def test_slots_bound_concurrency(self):
        admission, _ = _admission(queue_depth=8, max_running=2)
        for name in "abc":
            admission.offer(name)
        first = admission.next_runnable()
        second = admission.next_runnable()
        assert {first.payload, second.payload} == {"a", "b"}
        assert admission.next_runnable() is None  # no slot for "c"
        admission.release(service_s=0.1)
        third = admission.next_runnable()
        assert third.payload == "c"

    def test_empty_queue_returns_slot(self):
        admission, _ = _admission(queue_depth=8, max_running=1)
        assert admission.next_runnable() is None
        admission.offer("a")
        # The failed probe must not have leaked the slot.
        assert admission.next_runnable().payload == "a"


class TestDeadlines:
    def test_expired_waiters_are_shed_on_promotion(self):
        shed = []
        clock = FakeClock()
        admission = WallClockAdmission(
            queue_depth=8, max_running=1, clock=clock,
            on_shed=lambda req: shed.append(req.payload),
        )
        admission.offer("stale", deadline_s=1.0)
        admission.offer("fresh", deadline_s=60.0)
        clock.advance_s(2.0)
        request = admission.next_runnable()
        assert request.payload == "fresh"
        assert shed == ["stale"]

    def test_shed_expired_purges_without_promotion(self):
        shed = []
        clock = FakeClock()
        admission = WallClockAdmission(
            queue_depth=8, max_running=1, clock=clock,
            on_shed=lambda req: shed.append(req.payload),
        )
        admission.offer("stale", deadline_s=0.5)
        admission.offer("eternal")  # no deadline
        clock.advance_s(1.0)
        assert admission.shed_expired() == 1
        assert shed == ["stale"]
        assert admission.backlog() == 1

    def test_no_deadline_never_expires(self):
        admission, clock = _admission()
        admission.offer("eternal")
        clock.advance_s(1e6)
        assert admission.shed_expired() == 0
        assert admission.next_runnable().payload == "eternal"


class TestTelemetry:
    def test_as_dict_counts_everything(self):
        admission, clock = _admission(queue_depth=2, max_running=1,
                                      rate_per_s=100.0, burst=100.0)
        admission.offer("a", deadline_s=0.5)
        admission.offer("b")
        admission.offer("c")  # queue-full
        clock.advance_s(1.0)
        admission.shed_expired()  # sheds "a"
        running = admission.next_runnable()
        assert running.payload == "b"
        doc = admission.as_dict()
        assert doc["queued"] == 0
        assert doc["queue_depth"] == 2
        assert doc["running"] == 1
        assert doc["max_running"] == 1
        assert doc["rejected_full"] == 1
        assert doc["rejected_rate"] == 0
        assert doc["shed_expired"] == 1
        assert doc["mean_service_s"] == pytest.approx(1.0)
