"""The OverloadPolicy/OverloadController admission pipeline."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.hw.presets import paper_cxl_platform
from repro.overload import OverloadController, OverloadPolicy, QueueDiscipline
from repro.overload.policy import (
    REASON_CAPACITY,
    REASON_CONCURRENCY,
    REASON_DOOMED,
    REASON_RATE,
)


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        OverloadPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"queue_capacity": 0},
            {"rate_ops_per_s": 0.0},
            {"burst_ops": 0.0},
            {"max_concurrency": 0},
            {"default_budget_ns": 0.0},
            {"priority_levels": 0},
            {"adaptive": True},  # no target and no knee
        ],
    )
    def test_bad_configs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            OverloadPolicy(**kwargs)

    def test_monitor_only_never_rejects_or_sheds(self):
        policy = OverloadPolicy.monitor_only(default_budget_ns=1e6)
        controller = OverloadController(policy)
        for i in range(1000):
            request = controller.make_request(float(i))
            admitted, _ = controller.try_admit(request, float(i))
            assert admitted
        assert controller.metrics.total_rejected == 0


class TestAdmissionPipeline:
    def test_rate_limit_rejects_with_reason(self):
        controller = OverloadController(
            OverloadPolicy(rate_ops_per_s=1000.0, burst_ops=1.0)
        )
        first = controller.make_request(0.0)
        assert controller.try_admit(first, 0.0) == (True, "admitted")
        second = controller.make_request(0.0)
        assert controller.try_admit(second, 0.0) == (False, REASON_RATE)
        assert controller.metrics.rejected[REASON_RATE] == 1

    def test_concurrency_limit_and_release_on_complete(self):
        controller = OverloadController(OverloadPolicy(max_concurrency=1))
        first = controller.make_request(0.0)
        assert controller.try_admit(first, 0.0)[0]
        second = controller.make_request(0.0)
        assert controller.try_admit(second, 0.0) == (False, REASON_CONCURRENCY)
        assert controller.complete(first, 10.0, 10.0)
        third = controller.make_request(10.0)
        assert controller.try_admit(third, 10.0)[0]

    def test_shed_releases_the_slot_too(self):
        controller = OverloadController(OverloadPolicy(max_concurrency=1))
        first = controller.make_request(0.0)
        assert controller.try_admit(first, 0.0)[0]
        controller.shed(first, 5.0)
        assert controller.metrics.shed[REASON_DOOMED] == 1
        assert controller.try_admit(controller.make_request(5.0), 5.0)[0]

    def test_doomed_work_rejected_and_slot_released(self):
        controller = OverloadController(
            OverloadPolicy(max_concurrency=1, default_budget_ns=100.0)
        )
        request = controller.make_request(0.0)
        admitted, reason = controller.try_admit(request, 0.0, est_service_ns=200.0)
        assert (admitted, reason) == (False, REASON_DOOMED)
        # The slot grabbed during the pipeline was handed back.
        assert controller.concurrency.in_flight == 0

    def test_complete_reports_deadline_outcome(self):
        controller = OverloadController(OverloadPolicy(default_budget_ns=100.0))
        on_time = controller.make_request(0.0)
        controller.try_admit(on_time, 0.0)
        assert controller.complete(on_time, 100.0, 100.0)  # exactly on time
        late = controller.make_request(0.0)
        controller.try_admit(late, 0.0)
        assert not controller.complete(late, 150.0, 150.0)
        assert controller.metrics.deadline_misses == 1
        assert controller.metrics.good == 1

    def test_queue_factory_applies_policy(self):
        policy = OverloadPolicy(
            queue_capacity=3, discipline=QueueDiscipline.LIFO, shed_doomed=False
        )
        queue = OverloadController(policy).new_queue()
        assert queue.capacity == 3
        assert queue.discipline is QueueDiscipline.LIFO
        assert not queue.shed_expired_waiters  # monitor semantics follow policy

    def test_queue_shed_callback_releases_concurrency(self):
        controller = OverloadController(
            OverloadPolicy(max_concurrency=1, default_budget_ns=100.0)
        )
        queue = controller.new_queue()
        request = controller.make_request(0.0)
        assert controller.try_admit(request, 0.0)[0]
        queue.offer(request)
        assert queue.take(500.0) is None  # expired while queued: shed
        assert controller.concurrency.in_flight == 0
        assert controller.metrics.shed["expired"] == 1


class TestCapacityLossShedding:
    def _controller_with_fault(self, bandwidth_multiplier, priority_levels=4):
        platform = paper_cxl_platform(snc_enabled=False)
        node = platform.cxl_nodes()[0].node_id
        plan = FaultPlan(seed=1).degrade_link(
            0.0, 1e9, node_id=node,
            bandwidth_multiplier=bandwidth_multiplier, latency_multiplier=2.0,
        )
        controller = OverloadController(
            OverloadPolicy(priority_levels=priority_levels)
        )
        # Bind only the degraded node so capacity_fraction is exact.
        controller.bind_faults(FaultInjector(platform, plan), node_ids=[node])
        return controller

    def test_full_capacity_admits_priority_zero(self):
        controller = OverloadController(OverloadPolicy(priority_levels=4))
        assert controller.priority_floor(0.0) == 0
        assert controller.capacity_fraction(0.0) == 1.0

    def test_lost_capacity_raises_the_floor(self):
        controller = self._controller_with_fault(bandwidth_multiplier=0.25)
        assert controller.capacity_fraction(1e6) == pytest.approx(0.25)
        floor = controller.priority_floor(1e6)
        assert floor == 3  # ceil(0.75 * 4) = 3: only the top class admitted
        low = controller.make_request(1e6, priority=0)
        assert controller.try_admit(low, 1e6) == (False, REASON_CAPACITY)
        high = controller.make_request(1e6, priority=3)
        assert controller.try_admit(high, 1e6)[0]

    def test_noise_level_derating_ignored(self):
        controller = self._controller_with_fault(bandwidth_multiplier=0.97)
        assert controller.priority_floor(1e6) == 0

    def test_floor_capped_below_top_class(self):
        controller = self._controller_with_fault(
            bandwidth_multiplier=0.01, priority_levels=2
        )
        assert controller.priority_floor(1e6) <= 1

    def test_shedding_disabled_by_policy(self):
        platform = paper_cxl_platform(snc_enabled=False)
        node = platform.cxl_nodes()[0].node_id
        plan = FaultPlan(seed=1).degrade_link(
            0.0, 1e9, node_id=node,
            bandwidth_multiplier=0.1, latency_multiplier=2.0,
        )
        controller = OverloadController(
            OverloadPolicy(shed_on_capacity_loss=False)
        )
        controller.bind_faults(FaultInjector(platform, plan))
        assert controller.priority_floor(1e6) == 0


class TestAdaptiveIntegration:
    def test_adaptive_limit_applied_at_admission(self):
        controller = OverloadController(
            OverloadPolicy(
                adaptive=True,
                max_concurrency=10,
                adaptive_latency_target_ns=1000.0,
                adaptive_interval_ns=10.0,
            )
        )
        # Overloaded completions walk the limit down multiplicatively.
        for i in range(1, 8):
            request = controller.make_request(i * 100.0)
            assert controller.try_admit(request, i * 100.0)[0]
            controller.complete(request, i * 100.0 + 50.0, 5000.0)
        assert controller.concurrency_limit < 10

    def test_utilization_signal_reaches_the_limiter(self):
        controller = OverloadController(
            OverloadPolicy(
                adaptive=True,
                max_concurrency=10,
                knee_utilization=0.8,
                adaptive_interval_ns=10.0,
            )
        )
        controller.note_utilization(0.99, 100.0)
        assert controller.adaptive.limit == 7  # 10 * 0.7

    def test_metrics_funnel_counts_every_outcome(self):
        controller = OverloadController(
            OverloadPolicy(rate_ops_per_s=1e9, default_budget_ns=math.inf)
        )
        request = controller.make_request(0.0)
        controller.try_admit(request, 0.0)
        controller.complete(request, 10.0, 10.0)
        snapshot = controller.metrics.as_dict()
        assert snapshot["offered"] == 1.0
        assert snapshot["admitted"] == 1.0
        assert snapshot["completed"] == 1.0
        assert snapshot["good"] == 1.0
