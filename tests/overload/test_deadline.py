"""Deadline and Request value-object semantics."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.overload import Deadline, Request


class TestDeadline:
    def test_default_is_unbounded(self):
        d = Deadline()
        assert d.unbounded
        assert not d.expired(1e18)
        assert d.can_finish(1e18, 1e18)
        assert d.remaining_ns(0.0) == math.inf

    def test_after_stamps_absolute_time(self):
        d = Deadline.after(100.0, 50.0)
        assert d.at_ns == 150.0
        assert d.remaining_ns(120.0) == 30.0

    def test_after_rejects_nonpositive_budget(self):
        with pytest.raises(ConfigurationError):
            Deadline.after(0.0, 0.0)
        with pytest.raises(ConfigurationError):
            Deadline.after(0.0, -1.0)

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            Deadline(float("nan"))

    def test_expiry_is_strict(self):
        d = Deadline(100.0)
        assert not d.expired(100.0)  # finishing exactly on time is on time
        assert d.expired(100.0 + 1e-9)

    def test_can_finish_is_the_doomed_check(self):
        d = Deadline(100.0)
        assert d.can_finish(40.0, 60.0)
        assert not d.can_finish(40.0, 61.0)

    def test_tightened_picks_the_stricter(self):
        early, late = Deadline(10.0), Deadline(20.0)
        assert early.tightened(late) is early
        assert late.tightened(early) is early
        assert early.tightened(Deadline()) is early


class TestRequest:
    def test_ids_are_unique_and_increasing(self):
        a, b = Request(arrival_ns=0.0), Request(arrival_ns=0.0)
        assert b.request_id > a.request_id

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Request(arrival_ns=0.0, priority=-1)
        with pytest.raises(ConfigurationError):
            Request(arrival_ns=0.0, cost_hint_ns=-1.0)

    def test_doomed_delegates_to_deadline(self):
        r = Request(arrival_ns=0.0, deadline=Deadline(100.0))
        assert not r.doomed(50.0, 50.0)
        assert r.doomed(50.0, 51.0)
        assert not r.expired(100.0)
        assert r.expired(101.0)

    def test_payload_carries_application_state(self):
        op = object()
        r = Request(arrival_ns=0.0, payload=op)
        assert r.payload is op
