"""Bounded admission queues: disciplines, rejection, expiry shedding."""

import pytest

from repro.errors import ConfigurationError
from repro.overload import AdmissionQueue, Deadline, QueueDiscipline, Request


def req(arrival=0.0, deadline=None, priority=0):
    return Request(
        arrival_ns=arrival,
        deadline=Deadline(deadline) if deadline is not None else Deadline(),
        priority=priority,
    )


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            AdmissionQueue(0)

    def test_discipline_coerced_from_string(self):
        q = AdmissionQueue(4, "lifo")
        assert q.discipline is QueueDiscipline.LIFO


class TestBoundedness:
    def test_offer_rejects_when_full(self):
        q = AdmissionQueue(2)
        assert q.offer(req()) and q.offer(req())
        assert q.full
        assert not q.offer(req())
        assert q.rejected_full == 1
        assert len(q) == 2

    def test_take_frees_a_slot(self):
        q = AdmissionQueue(1)
        assert q.offer(req())
        assert not q.offer(req())
        assert q.take(0.0) is not None
        assert q.offer(req())


class TestDisciplines:
    def test_fifo_serves_oldest_first(self):
        q = AdmissionQueue(4, QueueDiscipline.FIFO)
        first, second = req(arrival=1.0), req(arrival=2.0)
        q.offer(first), q.offer(second)
        assert q.take(0.0) is first

    def test_lifo_serves_freshest_first(self):
        q = AdmissionQueue(4, QueueDiscipline.LIFO)
        stale, fresh = req(arrival=1.0), req(arrival=2.0)
        q.offer(stale), q.offer(fresh)
        assert q.take(0.0) is fresh
        assert q.take(0.0) is stale

    def test_priority_serves_highest_first_fifo_within_class(self):
        q = AdmissionQueue(8, QueueDiscipline.PRIORITY)
        low_a, low_b = req(priority=0), req(priority=0)
        high = req(priority=5)
        q.offer(low_a), q.offer(low_b), q.offer(high)
        assert q.take(0.0) is high
        assert q.take(0.0) is low_a  # FIFO inside the class
        assert q.take(0.0) is low_b


class TestExpiryShedding:
    def test_take_sheds_expired_waiters(self):
        q = AdmissionQueue(4)
        dead = req(deadline=10.0)
        alive = req(deadline=1000.0)
        q.offer(dead), q.offer(alive)
        assert q.take(50.0) is alive
        assert q.shed_expired == 1

    def test_take_returns_none_when_everything_expired(self):
        q = AdmissionQueue(4)
        q.offer(req(deadline=10.0))
        assert q.take(50.0) is None
        assert q.shed_expired == 1
        assert len(q) == 0

    def test_on_shed_callback_fires_per_shed_request(self):
        shed = []
        q = AdmissionQueue(4, on_shed=shed.append)
        doomed = req(deadline=10.0)
        q.offer(doomed)
        q.take(50.0)
        assert shed == [doomed]

    def test_monitor_mode_returns_expired_waiters(self):
        q = AdmissionQueue(4, shed_expired_waiters=False)
        late = req(deadline=10.0)
        q.offer(late)
        assert q.take(50.0) is late  # the uncontrolled baseline serves late
        assert q.shed_expired == 0

    @pytest.mark.parametrize(
        "discipline",
        [QueueDiscipline.FIFO, QueueDiscipline.LIFO, QueueDiscipline.PRIORITY],
    )
    def test_drain_expired_purges_every_discipline(self, discipline):
        q = AdmissionQueue(8, discipline)
        q.offer(req(deadline=10.0, priority=1))
        q.offer(req(deadline=1000.0, priority=2))
        q.offer(req(deadline=20.0, priority=3))
        assert q.drain_expired(500.0) == 2
        assert len(q) == 1
        survivor = q.take(500.0)
        assert survivor is not None and survivor.deadline.at_ns == 1000.0
