"""Token-bucket, concurrency, and AIMD adaptive limiters."""

import pytest

from repro.errors import ConfigurationError
from repro.overload import AdaptiveLimiter, ConcurrencyLimiter, TokenBucketLimiter


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucketLimiter(0.0, 1.0)
        with pytest.raises(ConfigurationError):
            TokenBucketLimiter(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            TokenBucketLimiter(1.0, 1.0).try_acquire(0.0, amount=-1.0)

    def test_burst_then_rate_limited(self):
        # 1000 ops/s, burst 2: two immediate admits, then dry.
        bucket = TokenBucketLimiter(1000.0, 2.0)
        assert bucket.try_acquire(0.0)
        assert bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucketLimiter(1000.0, 2.0)  # 1 token per ms
        bucket.try_acquire(0.0), bucket.try_acquire(0.0)
        assert not bucket.try_acquire(0.5e6)  # half a token back
        assert bucket.try_acquire(1.0e6)

    def test_never_exceeds_burst(self):
        bucket = TokenBucketLimiter(1000.0, 2.0)
        assert bucket.tokens(1e12) == pytest.approx(2.0)

    def test_set_rate(self):
        bucket = TokenBucketLimiter(1.0, 1.0)
        bucket.try_acquire(0.0)
        bucket.set_rate(1e9)  # one token per ns
        assert bucket.try_acquire(2.0)


class TestConcurrencyLimiter:
    def test_acquire_release_cycle(self):
        limiter = ConcurrencyLimiter(2)
        assert limiter.try_acquire() and limiter.try_acquire()
        assert not limiter.try_acquire()
        limiter.release()
        assert limiter.available == 1
        assert limiter.try_acquire()

    def test_release_without_acquire_raises(self):
        with pytest.raises(ConfigurationError):
            ConcurrencyLimiter(1).release()

    def test_lowering_limit_drains_naturally(self):
        limiter = ConcurrencyLimiter(3)
        for _ in range(3):
            limiter.try_acquire()
        limiter.set_limit(1)
        assert not limiter.try_acquire()  # above the new cap
        limiter.release(), limiter.release()
        assert not limiter.try_acquire()  # 1 in flight == new cap
        limiter.release()
        assert limiter.try_acquire()


class TestAdaptiveLimiter:
    def test_needs_at_least_one_signal(self):
        with pytest.raises(ConfigurationError):
            AdaptiveLimiter(initial_limit=4)

    def test_additive_increase_under_target(self):
        limiter = AdaptiveLimiter(
            initial_limit=4, latency_target_ns=1000.0, adjust_interval_ns=100.0
        )
        for i in range(1, 6):
            limiter.observe_latency(100.0, i * 200.0)
        assert limiter.limit > 4
        assert limiter.adjustments_up > 0
        assert limiter.adjustments_down == 0

    def test_multiplicative_decrease_over_target(self):
        limiter = AdaptiveLimiter(
            initial_limit=100, latency_target_ns=1000.0, adjust_interval_ns=100.0
        )
        limiter.observe_latency(5000.0, 200.0)
        assert limiter.limit == 70  # 100 * 0.7
        assert limiter.adjustments_down == 1

    def test_knee_utilization_triggers_backoff(self):
        limiter = AdaptiveLimiter(
            initial_limit=100, knee_utilization=0.8, adjust_interval_ns=100.0
        )
        limiter.observe_utilization(0.95, 200.0)
        assert limiter.limit == 70
        limiter.observe_utilization(0.5, 400.0)
        assert limiter.limit == 71  # additive recovery

    def test_limit_respects_floor_and_ceiling(self):
        limiter = AdaptiveLimiter(
            initial_limit=2, min_limit=1, max_limit=3,
            latency_target_ns=1000.0, adjust_interval_ns=1.0,
        )
        for i in range(1, 20):
            limiter.observe_latency(5000.0, i * 10.0)
        assert limiter.limit == 1
        for i in range(20, 60):
            limiter.observe_latency(10.0, i * 10.0)
        assert limiter.limit == 3

    def test_no_adjustment_inside_interval(self):
        limiter = AdaptiveLimiter(
            initial_limit=4, latency_target_ns=1000.0, adjust_interval_ns=1e6
        )
        limiter.observe_latency(5000.0, 10.0)
        assert limiter.limit == 4
