"""Tests for mempolicies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AllocationError, PolicyError
from repro.mem.policy import (
    BindPolicy,
    InterleavePolicy,
    PreferredPolicy,
    WeightedInterleavePolicy,
)

PAGE = 4096


def free(**kwargs):
    """free(n0=..., n1=...) -> {0: ..., 1: ...}"""
    return {int(k[1:]): v for k, v in kwargs.items()}


class TestBindPolicy:
    def test_requires_nodes(self):
        with pytest.raises(PolicyError):
            BindPolicy([])

    def test_fills_in_order(self):
        p = BindPolicy([0, 1])
        assert p.place(free(n0=PAGE * 2, n1=PAGE * 2), PAGE) == 0
        assert p.place(free(n0=PAGE, n1=PAGE * 2), PAGE) == 0
        assert p.place(free(n0=0, n1=PAGE * 2), PAGE) == 1

    def test_raises_when_full(self):
        p = BindPolicy([0])
        with pytest.raises(AllocationError):
            p.place(free(n0=PAGE - 1), PAGE)

    def test_ignores_unbound_nodes(self):
        p = BindPolicy([1])
        with pytest.raises(AllocationError):
            p.place(free(n0=PAGE * 100, n1=0), PAGE)


class TestPreferredPolicy:
    def test_preferred_then_fallback(self):
        p = PreferredPolicy(preferred=0, fallbacks=[1])
        assert p.place(free(n0=PAGE, n1=PAGE), PAGE) == 0
        assert p.place(free(n0=0, n1=PAGE), PAGE) == 1

    def test_raises_when_all_full(self):
        p = PreferredPolicy(0, [1])
        with pytest.raises(AllocationError):
            p.place(free(n0=0, n1=0), PAGE)

    def test_nodes(self):
        assert PreferredPolicy(2, [0, 1]).nodes() == (2, 0, 1)


class TestInterleavePolicy:
    def test_requires_nodes(self):
        with pytest.raises(PolicyError):
            InterleavePolicy([])

    def test_round_robin(self):
        p = InterleavePolicy([0, 1])
        f = free(n0=PAGE * 10, n1=PAGE * 10)
        placements = [p.place(f, PAGE) for _ in range(6)]
        assert placements == [0, 1, 0, 1, 0, 1]

    def test_skips_full_node(self):
        p = InterleavePolicy([0, 1])
        f = free(n0=0, n1=PAGE * 10)
        assert [p.place(f, PAGE) for _ in range(3)] == [1, 1, 1]

    def test_raises_when_all_full(self):
        p = InterleavePolicy([0, 1])
        with pytest.raises(AllocationError):
            p.place(free(n0=0, n1=0), PAGE)


class TestWeightedInterleavePolicy:
    def test_validation(self):
        with pytest.raises(PolicyError):
            WeightedInterleavePolicy({})
        with pytest.raises(PolicyError):
            WeightedInterleavePolicy({0: 0})
        with pytest.raises(PolicyError):
            WeightedInterleavePolicy({0: 1.5})

    def test_from_ratio_validation(self):
        with pytest.raises(PolicyError):
            WeightedInterleavePolicy.from_ratio([0], [1], 0, 1)
        with pytest.raises(PolicyError):
            WeightedInterleavePolicy.from_ratio([], [1], 1, 1)

    def test_3_1_ratio_gives_75_25_split(self):
        """The paper's 3:1 configuration directs 75 % of pages to MMEM."""
        p = WeightedInterleavePolicy.from_ratio([0], [1], 3, 1)
        f = free(n0=PAGE * 10_000, n1=PAGE * 10_000)
        placements = [p.place(f, PAGE) for _ in range(400)]
        assert placements.count(0) == 300
        assert placements.count(1) == 100

    def test_smooth_distribution_not_bursty(self):
        """Smooth WRR interleaves 'A A A B' rather than 'A*300 B*100'."""
        p = WeightedInterleavePolicy.from_ratio([0], [1], 3, 1)
        f = free(n0=PAGE * 1000, n1=PAGE * 1000)
        window = [p.place(f, PAGE) for _ in range(8)]
        assert window.count(1) == 2  # one CXL page per 4, in each half

    def test_fraction(self):
        p = WeightedInterleavePolicy.from_ratio([0], [1], 1, 3)
        assert p.fraction(0) == pytest.approx(0.25)
        assert p.fraction(1) == pytest.approx(0.75)
        with pytest.raises(PolicyError):
            p.fraction(9)

    def test_multiple_nodes_per_tier(self):
        """3:1 over two DRAM nodes and two CXL nodes: each DRAM node gets
        37.5 %, each CXL node 12.5 %."""
        p = WeightedInterleavePolicy.from_ratio([0, 1], [2, 3], 3, 1)
        f = free(n0=PAGE * 10000, n1=PAGE * 10000, n2=PAGE * 10000, n3=PAGE * 10000)
        placements = [p.place(f, PAGE) for _ in range(1600)]
        assert placements.count(0) == placements.count(1) == 600
        assert placements.count(2) == placements.count(3) == 200

    def test_overflow_to_other_nodes_when_full(self):
        p = WeightedInterleavePolicy.from_ratio([0], [1], 3, 1)
        f = free(n0=0, n1=PAGE * 100)
        assert all(p.place(f, PAGE) == 1 for _ in range(10))

    def test_raises_when_all_full(self):
        p = WeightedInterleavePolicy({0: 1, 1: 1})
        with pytest.raises(AllocationError):
            p.place(free(n0=0, n1=0), PAGE)

    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=8))
    def test_ratio_property(self, n, m):
        """For any N:M, the share of pages on the top tier is N/(N+M)."""
        p = WeightedInterleavePolicy.from_ratio([0], [1], n, m)
        f = free(n0=PAGE * 100_000, n1=PAGE * 100_000)
        rounds = (n + m) * 20
        placements = [p.place(f, PAGE) for _ in range(rounds)]
        assert placements.count(0) / rounds == pytest.approx(n / (n + m))
