"""Tests for the numactl-style policy helpers."""

import pytest

from repro.errors import PolicyError
from repro.hw import paper_baseline_platform, paper_cxl_platform
from repro.mem import numactl
from repro.mem.policy import BindPolicy, InterleavePolicy, WeightedInterleavePolicy
from repro.units import PAGE_SIZE


@pytest.fixture(scope="module")
def platform():
    return paper_cxl_platform(snc_enabled=False)


class TestMembind:
    def test_dram_bind(self, platform):
        policy = numactl.membind(platform, socket=0)
        assert isinstance(policy, BindPolicy)
        dram_ids = {n.node_id for n in platform.dram_nodes(0)}
        assert set(policy.nodes()) == dram_ids

    def test_cxl_only_bind(self, platform):
        policy = numactl.membind(platform, cxl_only=True)
        cxl_ids = {n.node_id for n in platform.cxl_nodes()}
        assert set(policy.nodes()) == cxl_ids

    def test_cxl_only_requires_cxl(self):
        with pytest.raises(PolicyError):
            numactl.membind(paper_baseline_platform(), cxl_only=True)


class TestInterleave:
    def test_covers_both_tiers(self, platform):
        policy = numactl.interleave(platform)
        assert isinstance(policy, InterleavePolicy)
        nodes = set(policy.nodes())
        assert {n.node_id for n in platform.cxl_nodes()} <= nodes
        assert {n.node_id for n in platform.dram_nodes()} <= nodes

    def test_socket_restriction(self, platform):
        policy = numactl.interleave(platform, socket=0)
        dram1 = {n.node_id for n in platform.dram_nodes(1)}
        assert not dram1 & set(policy.nodes())


class TestTierInterleave:
    def test_ratio_fractions(self, platform):
        policy = numactl.tier_interleave(platform, 3, 1)
        assert isinstance(policy, WeightedInterleavePolicy)
        cxl_ids = [n.node_id for n in platform.cxl_nodes()]
        cxl_share = sum(policy.fraction(n) for n in cxl_ids)
        assert cxl_share == pytest.approx(0.25)

    def test_requires_cxl(self):
        with pytest.raises(PolicyError):
            numactl.tier_interleave(paper_baseline_platform(), 3, 1)

    def test_placement_honors_ratio(self, platform):
        policy = numactl.tier_interleave(platform, 1, 3)
        free = {n: 10_000 * PAGE_SIZE for n in platform.nodes}
        cxl_ids = {n.node_id for n in platform.cxl_nodes()}
        placements = [policy.place(free, PAGE_SIZE) for _ in range(400)]
        on_cxl = sum(1 for p in placements if p in cxl_ids)
        assert on_cxl == 300


class TestHotPromoteInitial:
    def test_is_even_interleave(self, platform):
        policy = numactl.hot_promote_initial(platform)
        assert isinstance(policy, InterleavePolicy)
