"""Tests for Page heat tracking."""

import pytest

from repro.mem import Page


class TestPage:
    def test_initial_state(self):
        p = Page(0, node_id=3)
        assert p.heat == 0.0
        assert p.access_count == 0
        assert p.heat_at(1e9) == 0.0
        assert p.idle_ns(0.0) == float("inf")

    def test_touch_accumulates_heat(self):
        p = Page(0, 0)
        p.touch(0.0)
        p.touch(0.0)
        assert p.heat == pytest.approx(2.0)
        assert p.access_count == 2

    def test_heat_decays_with_half_life(self):
        p = Page(0, 0)
        p.touch(0.0)
        # One half-life later the stored heat halves, plus the new touch.
        p.touch(Page.HEAT_HALF_LIFE)
        assert p.heat == pytest.approx(1.5)

    def test_heat_at_does_not_mutate(self):
        p = Page(0, 0)
        p.touch(0.0)
        before = p.heat
        assert p.heat_at(Page.HEAT_HALF_LIFE) == pytest.approx(0.5)
        assert p.heat == before
        assert p.access_count == 1

    def test_write_counting(self):
        p = Page(0, 0)
        p.touch(0.0, is_write=True)
        p.touch(1.0, is_write=False)
        assert p.write_count == 1
        assert p.access_count == 2

    def test_hot_vs_cold_distinction(self):
        """A page touched repeatedly stays hotter than one touched once —
        the property every tiering daemon relies on."""
        hot, cold = Page(0, 0), Page(1, 0)
        for i in range(10):
            hot.touch(i * 1e6)
        cold.touch(0.0)
        now = 10e6
        assert hot.heat_at(now) > cold.heat_at(now) * 5

    def test_idle_ns(self):
        p = Page(0, 0)
        p.touch(100.0)
        assert p.idle_ns(600.0) == 500.0
