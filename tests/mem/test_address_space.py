"""Tests for MemoryInventory and AddressSpace."""

import pytest

from repro.errors import AllocationError, MigrationError
from repro.hw import paper_cxl_platform
from repro.mem import AddressSpace, BindPolicy, InterleavePolicy, MemoryInventory
from repro.units import GIB, PAGE_SIZE


@pytest.fixture
def platform():
    return paper_cxl_platform(snc_enabled=False)


@pytest.fixture
def inventory(platform):
    return MemoryInventory(platform)


class TestMemoryInventory:
    def test_capacities_match_platform(self, platform, inventory):
        for node_id, node in platform.nodes.items():
            assert inventory.capacity(node_id) == node.capacity_bytes
            assert inventory.used(node_id) == 0

    def test_capacity_override_caps_below_physical(self, platform):
        node = platform.dram_nodes(0)[0]
        inv = MemoryInventory(platform, capacity_override={node.node_id: GIB})
        assert inv.capacity(node.node_id) == GIB

    def test_override_cannot_exceed_physical(self, platform):
        node = platform.cxl_nodes()[0]
        inv = MemoryInventory(
            platform, capacity_override={node.node_id: node.capacity_bytes * 10}
        )
        assert inv.capacity(node.node_id) == node.capacity_bytes

    def test_reserve_release_roundtrip(self, inventory):
        inventory.reserve(0, GIB)
        assert inventory.used(0) == GIB
        assert inventory.utilization(0) > 0
        inventory.release(0, GIB)
        assert inventory.used(0) == 0

    def test_reserve_over_capacity_raises(self, inventory):
        with pytest.raises(AllocationError):
            inventory.reserve(0, inventory.capacity(0) + 1)

    def test_release_underflow_raises(self, inventory):
        with pytest.raises(AllocationError):
            inventory.release(0, 1)

    def test_negative_reserve_raises(self, inventory):
        with pytest.raises(AllocationError):
            inventory.reserve(0, -1)


class TestAddressSpace:
    def test_allocate_pages(self, inventory):
        space = AddressSpace(inventory)
        pages = space.allocate_pages(10, BindPolicy([0]))
        assert len(pages) == 10
        assert all(p.node_id == 0 for p in pages)
        assert space.total_bytes() == 10 * PAGE_SIZE
        assert inventory.used(0) == 10 * PAGE_SIZE

    def test_allocate_bytes_rounds_up(self, inventory):
        space = AddressSpace(inventory)
        pages = space.allocate_bytes(PAGE_SIZE + 1, BindPolicy([0]))
        assert len(pages) == 2

    def test_invalid_page_size(self, inventory):
        with pytest.raises(AllocationError):
            AddressSpace(inventory, page_size=0)

    def test_negative_count(self, inventory):
        space = AddressSpace(inventory)
        with pytest.raises(AllocationError):
            space.allocate_pages(-1, BindPolicy([0]))

    def test_interleave_distribution(self, platform, inventory):
        space = AddressSpace(inventory)
        cxl = platform.cxl_nodes()[0].node_id
        space.allocate_pages(100, InterleavePolicy([0, cxl]))
        dist = space.node_distribution()
        assert dist[0] == dist[cxl] == 50 * PAGE_SIZE
        assert space.fraction_on([cxl]) == pytest.approx(0.5)

    def test_free_pages(self, inventory):
        space = AddressSpace(inventory)
        pages = space.allocate_pages(4, BindPolicy([0]))
        space.free_pages(pages[:2])
        assert len(space.pages) == 2
        assert inventory.used(0) == 2 * PAGE_SIZE

    def test_move_page(self, platform, inventory):
        space = AddressSpace(inventory)
        cxl = platform.cxl_nodes()[0].node_id
        (page,) = space.allocate_pages(1, BindPolicy([0]))
        space.move_page(page, cxl)
        assert page.node_id == cxl
        assert page.migrations == 1
        assert inventory.used(0) == 0
        assert inventory.used(cxl) == PAGE_SIZE

    def test_move_to_same_node_raises(self, inventory):
        space = AddressSpace(inventory)
        (page,) = space.allocate_pages(1, BindPolicy([0]))
        with pytest.raises(MigrationError):
            space.move_page(page, 0)

    def test_move_to_full_node_raises(self, platform):
        cxl = platform.cxl_nodes()[0].node_id
        inv = MemoryInventory(platform, capacity_override={cxl: PAGE_SIZE})
        space = AddressSpace(inv)
        space.allocate_pages(1, BindPolicy([cxl]))  # fill the CXL cap
        (page,) = space.allocate_pages(1, BindPolicy([0]))
        with pytest.raises(MigrationError):
            space.move_page(page, cxl)

    def test_pages_on(self, platform, inventory):
        space = AddressSpace(inventory)
        cxl = platform.cxl_nodes()[0].node_id
        space.allocate_pages(3, BindPolicy([0]))
        space.allocate_pages(2, BindPolicy([cxl]))
        assert len(space.pages_on(0)) == 3
        assert len(space.pages_on(cxl)) == 2

    def test_fraction_on_empty_space(self, inventory):
        assert AddressSpace(inventory).fraction_on([0]) == 0.0

    def test_shared_inventory_between_spaces(self, platform):
        inv = MemoryInventory(platform, capacity_override={0: 3 * PAGE_SIZE})
        a, b = AddressSpace(inv, name="a"), AddressSpace(inv, name="b")
        a.allocate_pages(2, BindPolicy([0]))
        b.allocate_pages(1, BindPolicy([0]))
        with pytest.raises(AllocationError):
            b.allocate_pages(1, BindPolicy([0]))
