"""Tests for memory-bandwidth QoS (regulator + latency guard)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw import paper_cxl_platform
from repro.mem.qos import BandwidthRegulator, LatencyGuard
from repro.sim.traffic import TrafficDemand
from repro.units import gb_per_s


def demand(source, rate, resources=("r",), wf=0.0):
    return TrafficDemand(source=source, resources=resources, rate=rate, write_fraction=wf)


class TestBandwidthRegulator:
    def test_limits_validated(self):
        with pytest.raises(ConfigurationError):
            BandwidthRegulator({"a": 0.0})
        with pytest.raises(ConfigurationError):
            BandwidthRegulator().set_limit("a", -1.0)

    def test_shape_clamps_only_capped_sources(self):
        reg = BandwidthRegulator({"batch": 5.0})
        shaped = reg.shape([demand("batch", 10.0), demand("probe", 10.0)])
        by_source = {d.source: d.rate for d in shaped}
        assert by_source["batch"] == 5.0
        assert by_source["probe"] == 10.0

    def test_shape_preserves_metadata(self):
        reg = BandwidthRegulator({"batch": 5.0})
        (shaped,) = reg.shape([demand("batch", 10.0, resources=("x", "y"), wf=0.4)])
        assert shaped.resources == ("x", "y")
        assert shaped.write_fraction == 0.4

    def test_under_limit_untouched(self):
        reg = BandwidthRegulator({"batch": 50.0})
        (shaped,) = reg.shape([demand("batch", 10.0)])
        assert shaped.rate == 10.0

    def test_clear_limit(self):
        reg = BandwidthRegulator({"a": 1.0})
        reg.clear_limit("a")
        assert reg.limit_of("a") is None
        (shaped,) = reg.shape([demand("a", 9.0)])
        assert shaped.rate == 9.0


class TestLatencyGuard:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyGuard("r", ["b"], target_utilization=1.0)
        with pytest.raises(ConfigurationError):
            LatencyGuard("r", [], target_utilization=0.5)
        with pytest.raises(ConfigurationError):
            LatencyGuard("r", ["b"], decrease_factor=1.5)

    def test_guard_protects_probe_latency(self):
        """The §5.3 scenario end-to-end: a latency-sensitive probe shares
        a DRAM node with an unbounded batch flow.  Unregulated, the node
        saturates; guarded at 75 %, the probe's loaded latency stays near
        idle while the batch is throttled."""
        platform = paper_cxl_platform(snc_enabled=True)
        node = platform.dram_nodes(0)[0]
        path = platform.path(0, node.node_id, initiator_domain=node.domain)

        def run(guarded: bool):
            guard = LatencyGuard(
                resource=node.resource.name,
                best_effort_sources=["batch"],
                target_utilization=0.75,
                max_rate=gb_per_s(64),
            )
            latency = None
            for _ in range(30):
                demands = [
                    platform.demand("probe", path, gb_per_s(8.0)),
                    platform.demand("batch", path, gb_per_s(64.0)),
                ]
                if guarded:
                    demands = guard.shape(demands)
                result = platform.allocate(demands)
                if guarded:
                    guard.observe(result)
                utilization = path.bottleneck_utilization(result.utilization)
                latency = path.loaded_latency_ns(utilization, 0.0)
            return latency, result.achieved["batch"]

        unguarded_latency, unguarded_batch = run(False)
        guarded_latency, guarded_batch = run(True)
        assert unguarded_latency > 400  # saturated: deep in the knee
        assert guarded_latency < 160  # held near the knee's foot
        # The price: the batch flow gives up some throughput.
        assert guarded_batch < unguarded_batch

    def test_aimd_recovers_when_pressure_drops(self):
        platform = paper_cxl_platform(snc_enabled=True)
        node = platform.dram_nodes(0)[0]
        path = platform.path(0, node.node_id, initiator_domain=node.domain)
        guard = LatencyGuard(
            resource=node.resource.name,
            best_effort_sources=["batch"],
            target_utilization=0.75,
            max_rate=gb_per_s(64),
        )
        # Pressure phase: cap shrinks.
        for _ in range(10):
            demands = guard.shape([platform.demand("batch", path, gb_per_s(64.0))])
            guard.observe(platform.allocate(demands))
        squeezed = guard.cap_of("batch")
        assert squeezed < gb_per_s(64)
        # Idle phase: cap grows back.
        for _ in range(30):
            demands = guard.shape([platform.demand("batch", path, gb_per_s(1.0))])
            guard.observe(platform.allocate(demands))
        assert guard.cap_of("batch") > squeezed
        assert guard.throttle_events > 0
