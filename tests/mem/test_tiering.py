"""Tests for the tiering daemons."""

import pytest

from repro.errors import MigrationError
from repro.hw import paper_cxl_platform
from repro.mem import (
    AddressSpace,
    BindPolicy,
    HotPageSelectionDaemon,
    MemoryInventory,
    NumaBalancingDaemon,
    TppDaemon,
)
from repro.units import PAGE_SIZE


def make_space(mmem_cap_pages=None, cxl_cap_pages=None):
    platform = paper_cxl_platform(snc_enabled=False)
    dram = [n.node_id for n in platform.dram_nodes(0)]
    cxl = [n.node_id for n in platform.cxl_nodes()]
    override = {}
    if mmem_cap_pages is not None:
        override[dram[0]] = mmem_cap_pages * PAGE_SIZE
    if cxl_cap_pages is not None:
        override[cxl[0]] = cxl_cap_pages * PAGE_SIZE
    inv = MemoryInventory(platform, capacity_override=override)
    return AddressSpace(inv), dram[:1], cxl[:1]


SCAN = 100e6  # default scan period, ns


class TestDaemonFramework:
    def test_requires_both_tiers(self):
        space, dram, cxl = make_space()
        with pytest.raises(MigrationError):
            NumaBalancingDaemon(space, [], cxl)
        with pytest.raises(MigrationError):
            NumaBalancingDaemon(space, dram, [])

    def test_tick_respects_scan_period(self):
        space, dram, cxl = make_space()
        pages = space.allocate_pages(4, BindPolicy(cxl))
        for p in pages:
            p.touch(0.0)
        daemon = NumaBalancingDaemon(space, dram, cxl, scan_period_ns=SCAN)
        first = daemon.tick(0.0)
        assert len(first.promoted) == 4
        # Touch again; a tick inside the same period must do nothing.
        again = daemon.tick(SCAN / 2)
        assert again.moved_bytes == 0
        assert daemon.stats.ticks == 1

    def test_stats_accumulate(self):
        space, dram, cxl = make_space()
        pages = space.allocate_pages(2, BindPolicy(cxl))
        for p in pages:
            p.touch(0.0)
        daemon = NumaBalancingDaemon(space, dram, cxl)
        round_ = daemon.tick(0.0)
        assert daemon.stats.promoted_pages == 2
        assert daemon.stats.promoted_bytes == round_.promoted_bytes == 2 * PAGE_SIZE
        assert daemon.stats.moved_bytes == 2 * PAGE_SIZE


class TestNumaBalancing:
    def test_promotes_recently_accessed_only(self):
        space, dram, cxl = make_space()
        pages = space.allocate_pages(10, BindPolicy(cxl))
        now = 1e9
        for p in pages[:3]:
            p.touch(now - SCAN / 10)  # recent
        for p in pages[3:]:
            p.touch(now - SCAN * 50)  # stale
        daemon = NumaBalancingDaemon(space, dram, cxl, scan_period_ns=SCAN)
        round_ = daemon.tick(now)
        assert sorted(p.page_id for p in round_.promoted) == [0, 1, 2]

    def test_mru_order(self):
        space, dram, cxl = make_space()
        pages = space.allocate_pages(5, BindPolicy(cxl))
        now = 1e9
        for i, p in enumerate(pages):
            p.touch(now - (i + 1) * 1e6)  # page 0 most recent
        daemon = NumaBalancingDaemon(space, dram, cxl, scan_batch=2)
        round_ = daemon.tick(now)
        assert [p.page_id for p in round_.promoted] == [0, 1]

    def test_demotes_cold_pages_under_pressure(self):
        space, dram, cxl = make_space(mmem_cap_pages=4)
        dram_pages = space.allocate_pages(4, BindPolicy(dram))  # DRAM full
        cxl_pages = space.allocate_pages(2, BindPolicy(cxl))
        now = 1e9
        for p in dram_pages:
            p.touch(now - SCAN * 100)  # cold DRAM pages
        for p in cxl_pages:
            p.touch(now)  # hot CXL pages
        daemon = NumaBalancingDaemon(space, dram, cxl, dram_high_watermark=0.9)
        round_ = daemon.tick(now)
        assert len(round_.promoted) == 2
        assert len(round_.demoted) >= 1  # room was made

    def test_scan_batch_validation(self):
        space, dram, cxl = make_space()
        with pytest.raises(ValueError):
            NumaBalancingDaemon(space, dram, cxl, scan_batch=0)


class TestHotPageSelection:
    def test_promotes_only_above_threshold(self):
        space, dram, cxl = make_space()
        pages = space.allocate_pages(4, BindPolicy(cxl))
        now = 1e9
        for _ in range(10):
            pages[0].touch(now)  # heat 10
        pages[1].touch(now)  # heat 1
        daemon = HotPageSelectionDaemon(
            space, dram, cxl, initial_threshold=4.0, auto_adjust=False
        )
        round_ = daemon.tick(now)
        assert [p.page_id for p in round_.promoted] == [pages[0].page_id]

    def test_rate_limit_bounds_promotions(self):
        space, dram, cxl = make_space()
        pages = space.allocate_pages(100, BindPolicy(cxl))
        now = 1e9
        for p in pages:
            for _ in range(10):
                p.touch(now)
        # Budget: 2 pages per 100 ms scan.
        rate = 2 * PAGE_SIZE / 0.1
        daemon = HotPageSelectionDaemon(
            space, dram, cxl, promote_rate_limit_bytes_per_s=rate,
            initial_threshold=4.0, auto_adjust=False,
        )
        round_ = daemon.tick(now)
        assert len(round_.promoted) == 2
        assert round_.blocked > 0

    def test_auto_adjust_raises_threshold_when_over_budget(self):
        space, dram, cxl = make_space()
        pages = space.allocate_pages(100, BindPolicy(cxl))
        now = 1e9
        for p in pages:
            for _ in range(10):
                p.touch(now)
        daemon = HotPageSelectionDaemon(
            space, dram, cxl,
            promote_rate_limit_bytes_per_s=PAGE_SIZE / 0.1,
            initial_threshold=4.0,
        )
        before = daemon.threshold
        daemon.tick(now)
        assert daemon.threshold > before

    def test_auto_adjust_lowers_threshold_when_idle(self):
        space, dram, cxl = make_space()
        space.allocate_pages(10, BindPolicy(cxl))  # never touched => cold
        daemon = HotPageSelectionDaemon(space, dram, cxl, initial_threshold=8.0)
        daemon.tick(1e9)
        assert daemon.threshold == 4.0

    def test_threshold_bounded(self):
        space, dram, cxl = make_space()
        space.allocate_pages(1, BindPolicy(cxl))
        daemon = HotPageSelectionDaemon(space, dram, cxl, initial_threshold=1.0)
        for i in range(20):
            daemon.tick((i + 1) * SCAN * 2)
        assert daemon.threshold >= HotPageSelectionDaemon.MIN_THRESHOLD

    def test_validation(self):
        space, dram, cxl = make_space()
        with pytest.raises(ValueError):
            HotPageSelectionDaemon(space, dram, cxl, promote_rate_limit_bytes_per_s=0)
        with pytest.raises(ValueError):
            HotPageSelectionDaemon(space, dram, cxl, initial_threshold=0)


class TestTpp:
    def test_proactive_demotion_restores_headroom(self):
        space, dram, cxl = make_space(mmem_cap_pages=10)
        pages = space.allocate_pages(10, BindPolicy(dram))  # DRAM 100 % full
        now = 1e9
        for p in pages:
            p.touch(now - SCAN * 100)
        daemon = TppDaemon(space, dram, cxl, dram_headroom=0.2)
        round_ = daemon.tick(now)
        assert len(round_.demoted) >= 2  # 20 % of 10 pages
        assert space.inventory.utilization(dram[0]) <= 0.8 + 1e-9

    def test_second_touch_promotion(self):
        space, dram, cxl = make_space()
        pages = space.allocate_pages(2, BindPolicy(cxl))
        now = 1e9
        pages[0].touch(now)
        pages[0].touch(now)  # second touch -> promote
        pages[1].touch(now)  # single touch -> keep on CXL
        daemon = TppDaemon(space, dram, cxl, promotion_heat=2.0)
        round_ = daemon.tick(now)
        assert [p.page_id for p in round_.promoted] == [pages[0].page_id]

    def test_demotes_coldest_first(self):
        space, dram, cxl = make_space(mmem_cap_pages=4)
        pages = space.allocate_pages(4, BindPolicy(dram))
        now = 1e9
        pages[0].touch(now)  # hot
        # pages[1:] never touched -> coldest
        daemon = TppDaemon(space, dram, cxl, dram_headroom=0.25)
        round_ = daemon.tick(now)
        assert pages[0] not in round_.demoted

    def test_validation(self):
        space, dram, cxl = make_space()
        with pytest.raises(ValueError):
            TppDaemon(space, dram, cxl, promotion_heat=0)
        with pytest.raises(ValueError):
            TppDaemon(space, dram, cxl, dram_headroom=1.0)
        with pytest.raises(ValueError):
            TppDaemon(space, dram, cxl, scan_batch=0)


class TestThrashingBehaviour:
    def test_low_locality_workload_thrashes_with_auto_adjust(self):
        """The §4.2.2 pathology: under a scan-like workload with no reuse,
        auto-adjust keeps lowering the threshold and the daemon sustains
        pointless two-way traffic; pinning the threshold high stops it."""
        import numpy as np

        def run(auto_adjust):
            space, dram, cxl = make_space(mmem_cap_pages=64)
            space.allocate_pages(64, BindPolicy(dram))
            pages = space.allocate_pages(192, BindPolicy(cxl))
            rng = np.random.default_rng(7)
            daemon = HotPageSelectionDaemon(
                space, dram, cxl,
                promote_rate_limit_bytes_per_s=1e9,
                initial_threshold=8.0,
                auto_adjust=auto_adjust,
            )
            now = 0.0
            for _ in range(50):
                # Streaming scan: every page touched once per epoch.
                for p in space.pages:
                    p.touch(now + rng.uniform(0, SCAN / 2))
                now += SCAN
                daemon.tick(now)
            return daemon.stats.moved_bytes

        assert run(auto_adjust=True) > run(auto_adjust=False) * 2
