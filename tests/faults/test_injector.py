"""FaultInjector: platform sync, trace determinism, and poison gating."""

import pytest

from repro.errors import ConfigurationError, DeviceFaultError, PoisonedReadError
from repro.faults import FaultInjector, FaultPlan
from repro.hw.presets import paper_cxl_platform
from repro.mem.page import Page


def _platform():
    return paper_cxl_platform()


def _cxl_node(platform):
    return platform.cxl_nodes()[0]


class TestValidation:
    def test_unknown_node_rejected(self):
        platform = _platform()
        plan = FaultPlan().fail_device(0.0, node_id=99)
        with pytest.raises(ConfigurationError, match="unknown node"):
            FaultInjector(platform, plan)

    def test_unknown_resource_rejected(self):
        platform = _platform()
        plan = FaultPlan().degrade_link(0.0, 10.0, resource="no/such/link")
        with pytest.raises(ConfigurationError, match="unknown resource"):
            FaultInjector(platform, plan)


class TestAdvance:
    def test_link_degrade_sets_and_restores_derating(self):
        platform = _platform()
        node = _cxl_node(platform)
        plan = FaultPlan().degrade_link(
            100.0, 50.0, node_id=node.node_id, bandwidth_multiplier=0.25
        )
        injector = FaultInjector(platform, plan)
        resource = node.resource.name

        injector.advance(0.0)
        assert platform.derating(resource) == 1.0
        injector.advance(120.0)
        assert platform.derating(resource) == 0.25
        injector.advance(200.0)
        assert platform.derating(resource) == 1.0

    def test_device_fail_marks_offline_then_online(self):
        platform = _platform()
        node = _cxl_node(platform)
        plan = FaultPlan().fail_device(100.0, node.node_id, duration_ns=50.0)
        injector = FaultInjector(platform, plan)

        injector.advance(99.0)
        assert platform.is_online(node.node_id)
        injector.advance(100.0)
        assert not platform.is_online(node.node_id)
        injector.advance(150.0)
        assert platform.is_online(node.node_id)

    def test_advance_is_idempotent(self):
        platform = _platform()
        node = _cxl_node(platform)
        plan = FaultPlan().fail_device(100.0, node.node_id, duration_ns=50.0)
        injector = FaultInjector(platform, plan)
        for _ in range(5):
            injector.advance(120.0)
        # One transition, one trace line — not five.
        assert len(injector.trace) == 1

    def test_error_storm_transitions_traced(self):
        platform = _platform()
        node = _cxl_node(platform)
        plan = FaultPlan().error_storm(100.0, 50.0, node.node_id)
        injector = FaultInjector(platform, plan)
        injector.advance(120.0)
        injector.advance(200.0)
        assert any("error storm" in line for line in injector.trace)
        assert any("subsided" in line for line in injector.trace)

    def test_trace_is_deterministic(self):
        def run():
            platform = _platform()
            node = _cxl_node(platform)
            plan = FaultPlan(seed=42)
            plan.degrade_link(50.0, 25.0, node_id=node.node_id)
            plan.fail_device(100.0, node.node_id, duration_ns=20.0)
            injector = FaultInjector(platform, plan)
            for t in (0.0, 60.0, 80.0, 105.0, 130.0):
                injector.advance(t)
            return list(injector.trace)

        assert run() == run()
        # degrade + restore per link in the node's chain (dev + pcie),
        # plus one offline/online pair.
        assert len(run()) == 6


class TestPureQueries:
    def test_multipliers_respect_windows(self):
        platform = _platform()
        node = _cxl_node(platform)
        plan = FaultPlan()
        plan.degrade_link(
            100.0, 50.0, node_id=node.node_id,
            bandwidth_multiplier=0.5, latency_multiplier=3.0,
        )
        plan.error_storm(120.0, 10.0, node.node_id, latency_multiplier=8.0)
        injector = FaultInjector(platform, plan)

        assert injector.latency_multiplier(node.node_id, 0.0) == 1.0
        assert injector.latency_multiplier(node.node_id, 110.0) == 3.0
        assert injector.latency_multiplier(node.node_id, 125.0) == 24.0  # stacked
        assert injector.bandwidth_multiplier(node.node_id, 110.0) == 0.5
        assert injector.bandwidth_multiplier(node.node_id, 200.0) == 1.0
        # Queries never mutate platform state.
        assert platform.derating(node.resource.name) == 1.0

    def test_node_online_follows_plan_not_platform(self):
        platform = _platform()
        node = _cxl_node(platform)
        plan = FaultPlan().fail_device(100.0, node.node_id, duration_ns=50.0)
        injector = FaultInjector(platform, plan)
        assert injector.node_online(node.node_id, 50.0)
        assert not injector.node_online(node.node_id, 120.0)
        assert injector.node_online(node.node_id, 200.0)

    def test_poison_fraction_in_and_offline_overlap(self):
        platform = _platform()
        node = _cxl_node(platform)
        plan = FaultPlan()
        plan.poison(100.0, node.node_id, fraction=0.02)
        plan.fail_device(200.0, node.node_id, duration_ns=50.0)
        injector = FaultInjector(platform, plan)
        assert injector.poison_fraction_in(node.node_id, 0.0, 99.0) == 0.0
        assert injector.poison_fraction_in(node.node_id, 0.0, 101.0) == 0.02
        assert injector.offline_overlap(node.node_id, 0.0, 1000.0) == 50.0
        assert injector.offline_overlap(node.node_id, 210.0, 220.0) == 10.0


class TestPoisonPages:
    def _pages(self, node_id, n=100):
        return [Page(i, node_id) for i in range(n)]

    def test_poison_samples_bound_pages(self):
        platform = _platform()
        node = _cxl_node(platform)
        pages = self._pages(node.node_id)
        plan = FaultPlan(seed=3).poison(100.0, node.node_id, fraction=0.05)
        injector = FaultInjector(platform, plan)
        injector.bind_pages(lambda: pages)
        injector.advance(100.0)
        assert injector.poisoned_pages == 5
        assert sum(injector.is_poisoned(p) for p in pages) == 5

    def test_poison_selection_is_seed_deterministic(self):
        def poisoned_ids(seed):
            platform = _platform()
            node = _cxl_node(platform)
            pages = self._pages(node.node_id)
            injector = FaultInjector(
                platform, FaultPlan(seed=seed).poison(0.0, node.node_id, fraction=0.1)
            )
            injector.bind_pages(lambda: pages)
            injector.advance(0.0)
            return [p.page_id for p in pages if injector.is_poisoned(p)]

        assert poisoned_ids(11) == poisoned_ids(11)
        assert poisoned_ids(11) != poisoned_ids(12)

    def test_check_read_raises_poisoned_until_scrubbed(self):
        platform = _platform()
        node = _cxl_node(platform)
        pages = self._pages(node.node_id, n=10)
        plan = FaultPlan(seed=1).poison(0.0, node.node_id, fraction=0.1)
        injector = FaultInjector(platform, plan)
        injector.bind_pages(lambda: pages)
        injector.advance(0.0)
        bad = next(p for p in pages if injector.is_poisoned(p))

        with pytest.raises(PoisonedReadError):
            injector.check_read(bad)
        injector.scrub(bad)
        injector.check_read(bad)  # clean now

    def test_check_read_prefers_device_fault_over_poison(self):
        platform = _platform()
        node = _cxl_node(platform)
        pages = self._pages(node.node_id, n=10)
        plan = FaultPlan(seed=1)
        plan.poison(0.0, node.node_id, fraction=1.0)
        plan.fail_device(10.0, node.node_id)
        injector = FaultInjector(platform, plan)
        injector.bind_pages(lambda: pages)
        injector.advance(10.0)
        with pytest.raises(DeviceFaultError):
            injector.check_read(pages[0])

    def test_scrub_all_counts_cleared(self):
        platform = _platform()
        node = _cxl_node(platform)
        pages = self._pages(node.node_id, n=20)
        plan = FaultPlan(seed=9).poison(0.0, node.node_id, fraction=0.25)
        injector = FaultInjector(platform, plan)
        injector.bind_pages(lambda: pages)
        injector.advance(0.0)
        assert injector.scrub_all(pages) == 5
        assert injector.poisoned_pages == 0
        assert injector.scrub_all(pages) == 0
