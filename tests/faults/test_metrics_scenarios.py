"""RecoveryTracker metrics and the named scenario catalog."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    SCENARIOS,
    FaultKind,
    RecoveryTracker,
    build_scenario,
)
from repro.hw.presets import paper_cxl_platform


class TestRecoveryTracker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RecoveryTracker(100.0, 50.0, window_ns=10.0)
        with pytest.raises(ConfigurationError):
            RecoveryTracker(0.0, 100.0, window_ns=0.0)
        with pytest.raises(ConfigurationError):
            RecoveryTracker(0.0, 100.0, window_ns=10.0, recovery_threshold=0.0)

    def test_phase_partition(self):
        tracker = RecoveryTracker(100.0, 200.0, window_ns=10.0)
        assert tracker.phase_of(99.0) == "before"
        assert tracker.phase_of(100.0) == "during"
        assert tracker.phase_of(199.0) == "during"
        assert tracker.phase_of(200.0) == "after"

    def test_availability_counts_shed_ops(self):
        tracker = RecoveryTracker(100.0, 200.0, window_ns=10.0)
        for t in range(0, 80, 10):
            tracker.record(float(t), 50.0, ok=True)
        tracker.record(150.0, 0.0, ok=False)
        tracker.record(160.0, 0.0, ok=False)
        report = tracker.report()
        assert report.offered_ops == 10
        assert report.completed_ops == 8
        assert report.failed_ops == 2
        assert report.availability == pytest.approx(0.8)

    def test_p99_per_phase(self):
        tracker = RecoveryTracker(100.0, 200.0, window_ns=50.0)
        for t in range(0, 100, 10):
            tracker.record(float(t), 100.0)
        for t in range(100, 200, 10):
            tracker.record(float(t), 10_000.0)
        for t in range(200, 300, 10):
            tracker.record(float(t), 120.0)
        report = tracker.report()
        assert report.p99_during_ns > 10 * report.p99_before_ns
        assert report.p99_after_ns < report.p99_during_ns

    def test_recovery_time_measured_from_fault_end(self):
        tracker = RecoveryTracker(100.0, 200.0, window_ns=50.0)
        # Baseline: 2 ops per 50 ns window before the fault.
        for t in (10.0, 30.0, 60.0, 80.0):
            tracker.record(t, 50.0)
        # During: starved.
        tracker.record(150.0, 5_000.0)
        # After: first full window [200, 250) back at baseline rate.
        for t in (210.0, 230.0, 260.0, 280.0):
            tracker.record(t, 60.0)
        assert tracker.recovery_ns() == pytest.approx(50.0)

    def test_never_recovering_run_reports_inf(self):
        tracker = RecoveryTracker(100.0, 200.0, window_ns=50.0)
        for t in (10.0, 30.0, 60.0, 80.0):
            tracker.record(t, 50.0)
        tracker.record(250.0, 5_000.0)  # post-fault trickle, below threshold
        assert math.isinf(tracker.recovery_ns())

    def test_permanent_fault_has_no_recovery(self):
        tracker = RecoveryTracker(100.0, math.inf, window_ns=50.0)
        for t in (10.0, 30.0, 60.0, 80.0, 300.0, 310.0):
            tracker.record(t, 50.0)
        assert math.isinf(tracker.recovery_ns())

    def test_report_rows_render(self):
        tracker = RecoveryTracker(100.0, 200.0, window_ns=50.0)
        tracker.record(10.0, 50.0)
        rows = tracker.report().rows()
        assert len(rows) == 9
        assert all(isinstance(k, str) and isinstance(v, str) for k, v in rows)

    def test_empty_phase_percentiles_render_not_crash(self):
        # A run whose ops all land in one phase must not blow up (or
        # print "nan us") when the report asks for the other phases' p99.
        tracker = RecoveryTracker(100.0, 200.0, window_ns=50.0)
        tracker.record(150.0, 80.0)  # only "during" has samples
        report = tracker.report()
        assert math.isnan(report.p99_before_ns)
        assert math.isnan(report.p99_after_ns)
        rendered = dict(report.rows())
        assert rendered["p99 before fault"] == "n/a (no samples)"
        assert rendered["p99 after fault"] == "n/a (no samples)"
        assert "nan" not in rendered["p99 before fault"]

    def test_totally_empty_tracker_reports_cleanly(self):
        report = RecoveryTracker(100.0, 200.0, window_ns=50.0).report()
        assert report.offered_ops == 0
        assert report.availability == 0.0
        assert math.isinf(report.recovery_ns)
        assert all(isinstance(v, str) for _, v in report.rows())

    def test_deadline_tracking_is_tri_state(self):
        # None (legacy): no goodput rows, counters untouched.
        legacy = RecoveryTracker(100.0, 200.0, window_ns=50.0)
        legacy.record(10.0, 50.0)
        report = legacy.report()
        assert not report.deadline_tracking
        assert len(report.rows()) == 9
        # True/False: goodput accounting switches on.
        tracked = RecoveryTracker(100.0, 200.0, window_ns=50.0)
        tracked.record(10.0, 50.0, deadline_missed=False)
        tracked.record(150.0, 90.0, deadline_missed=True)
        report = tracked.report()
        assert report.deadline_tracking
        assert report.good_ops == 1
        assert report.deadline_misses == 1
        rendered = dict(report.rows())
        assert rendered["deadline misses"] == "1"
        assert rendered["in-deadline (good) ops"] == "1"

    def test_phase_counts_breakdown(self):
        tracker = RecoveryTracker(100.0, 200.0, window_ns=50.0)
        tracker.record(10.0, 50.0, deadline_missed=False)
        tracker.record(150.0, 90.0, deadline_missed=True)
        tracker.record(160.0, 0.0, ok=False)
        tracker.record(250.0, 60.0, deadline_missed=False)
        counts = tracker.report().phase_counts
        assert counts["before"] == {
            "completed": 1, "failed": 0, "deadline_missed": 0,
        }
        assert counts["during"] == {
            "completed": 1, "failed": 1, "deadline_missed": 1,
        }
        assert counts["after"] == {
            "completed": 1, "failed": 0, "deadline_missed": 0,
        }

    def test_as_dict_is_json_clean(self):
        import json

        tracker = RecoveryTracker(100.0, math.inf, window_ns=50.0)
        tracker.record(150.0, 80.0)  # empty before/after, inf fault end
        payload = tracker.report().as_dict()
        assert payload["p99_before_ns"] is None  # NaN became None
        assert payload["fault_end_ns"] is None  # inf became None
        assert payload["recovery_ns"] is None
        json.dumps(payload)  # round-trips without ValueError


class TestScenarioCatalog:
    def test_catalog_contents(self):
        assert set(SCENARIOS) == {
            "link-degrade",
            "error-storm",
            "poison",
            "device-loss",
            "device-flap",
            "meltdown",
        }
        assert SCENARIOS["device-flap"].transient
        assert not SCENARIOS["device-loss"].transient

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault scenario"):
            build_scenario("gamma-rays", paper_cxl_platform(), 0, (0.0, 100.0))

    def test_bad_window_rejected(self):
        with pytest.raises(ConfigurationError):
            build_scenario("device-flap", paper_cxl_platform(), 0, (-1.0, 100.0))
        with pytest.raises(ConfigurationError):
            build_scenario("device-flap", paper_cxl_platform(), 0, (0.0, 0.0))

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_scenario_builds_against_paper_platform(self, name):
        platform = paper_cxl_platform()
        cxl = {n.node_id for n in platform.cxl_nodes()}
        plan = build_scenario(name, platform, seed=7, window=(1_000.0, 500.0))
        assert len(plan) >= 1
        assert plan.seed == 7
        # Every scenario targets the CXL expander, inside the window.
        for event in plan.events:
            assert event.node_id in cxl
            assert 1_000.0 <= event.start_ns <= 1_500.0

    def test_device_loss_is_permanent_flap_is_not(self):
        platform = paper_cxl_platform()
        loss = build_scenario("device-loss", platform, 0, (100.0, 50.0))
        flap = build_scenario("device-flap", platform, 0, (100.0, 50.0))
        assert math.isinf(loss.events[0].end_ns)
        assert flap.events[0].end_ns == 150.0

    def test_meltdown_composes_three_modes(self):
        platform = paper_cxl_platform()
        plan = build_scenario("meltdown", platform, 0, (100.0, 100.0))
        kinds = {e.kind for e in plan.events}
        assert kinds == {
            FaultKind.LINK_DEGRADE,
            FaultKind.POISON,
            FaultKind.DEVICE_FAIL,
        }

    def test_cxl_free_platform_rejected(self):
        from repro.hw.presets import paper_baseline_platform

        with pytest.raises(ConfigurationError, match="CXL"):
            build_scenario("device-loss", paper_baseline_platform(), 0, (0.0, 100.0))
