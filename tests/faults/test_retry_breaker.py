"""Retry budgets and circuit-breaker state transitions."""

import pytest

from repro.errors import (
    ConfigurationError,
    DeviceFaultError,
    RetryExhaustedError,
)
from repro.faults import BreakerState, CircuitBreaker, RetryPolicy, retry_call


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(base_backoff_ns=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(multiplier=0.5)

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_backoff_ns=100.0, multiplier=2.0,
            max_backoff_ns=500.0,
        )
        assert policy.backoff_ns(1) == 100.0
        assert policy.backoff_ns(2) == 200.0
        assert policy.backoff_ns(3) == 400.0
        assert policy.backoff_ns(4) == 500.0  # capped
        assert policy.backoff_ns(5) == 500.0

    def test_backoff_is_one_based(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy().backoff_ns(0)

    def test_total_backoff_sums_retries_not_attempts(self):
        policy = RetryPolicy(
            max_attempts=4, base_backoff_ns=100.0, multiplier=2.0,
            max_backoff_ns=1e9,
        )
        # 3 retries after attempts 1..3: 100 + 200 + 400.
        assert policy.total_backoff_ns() == 700.0

    def test_default_policy_budget(self):
        # The documented default: 200us, 400us, 800us = 1.4 ms total.
        assert RetryPolicy().total_backoff_ns() == pytest.approx(1.4e6)

    def test_cap_never_exceeded_including_final_attempt(self):
        policy = RetryPolicy(
            max_attempts=8, base_backoff_ns=100.0, multiplier=3.0,
            max_backoff_ns=1000.0,
        )
        for attempt in range(1, policy.max_attempts + 1):
            assert policy.backoff_ns(attempt) <= policy.max_backoff_ns
        # The final attempt sits exactly at the cap, not past it.
        assert policy.backoff_ns(policy.max_attempts) == policy.max_backoff_ns

    def test_backoff_schedule_is_deterministic(self):
        import random

        policy = RetryPolicy(
            max_attempts=6, base_backoff_ns=100.0, multiplier=2.0,
            max_backoff_ns=800.0,
        )

        def run_with_seed(seed):
            rng = random.Random(seed)
            fail_until = rng.randint(1, policy.max_attempts - 1)
            backoffs = []

            def flaky(attempt):
                if attempt <= fail_until:
                    raise DeviceFaultError(2)
                return attempt

            retry_call(policy=policy, fn=flaky,
                       on_backoff=lambda a, b: backoffs.append(b))
            return backoffs

        # Same seed, same failure pattern, bit-identical backoff schedule.
        for seed in range(10):
            assert run_with_seed(seed) == run_with_seed(seed)
        # And the schedule is always a prefix of the policy's fixed ladder.
        ladder = [policy.backoff_ns(a) for a in range(1, policy.max_attempts)]
        for seed in range(10):
            observed = run_with_seed(seed)
            assert observed == ladder[: len(observed)]


class TestRetryCall:
    def test_success_on_first_attempt(self):
        result, attempts, backoff = retry_call(lambda a: "ok", RetryPolicy())
        assert (result, attempts, backoff) == ("ok", 1, 0.0)

    def test_retries_fault_errors_until_success(self):
        calls = []

        def flaky(attempt):
            calls.append(attempt)
            if attempt < 3:
                raise DeviceFaultError(2)
            return "recovered"

        policy = RetryPolicy(max_attempts=4, base_backoff_ns=100.0, multiplier=2.0)
        result, attempts, backoff = retry_call(flaky, policy)
        assert result == "recovered"
        assert attempts == 3
        assert calls == [1, 2, 3]
        assert backoff == 100.0 + 200.0

    def test_exhaustion_raises_after_budget(self):
        backoffs = []

        def always_fails(attempt):
            raise DeviceFaultError(2)

        policy = RetryPolicy(max_attempts=3, base_backoff_ns=100.0, multiplier=2.0)
        with pytest.raises(RetryExhaustedError) as info:
            retry_call(always_fails, policy, on_backoff=lambda a, b: backoffs.append(b))
        # Backed off exactly between attempts, never after the last one.
        assert backoffs == [100.0, 200.0]
        assert info.value.attempts == 3
        assert isinstance(info.value.last_error, DeviceFaultError)

    def test_non_fault_errors_propagate_immediately(self):
        calls = []

        def broken(attempt):
            calls.append(attempt)
            raise ValueError("a bug, not a fault")

        with pytest.raises(ValueError):
            retry_call(broken, RetryPolicy(max_attempts=5))
        assert calls == [1]


class TestCircuitBreaker:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ConfigurationError):
            CircuitBreaker(reset_timeout_ns=0.0)

    def test_trips_open_at_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout_ns=100.0)
        breaker.record_failure(0.0)
        breaker.record_failure(1.0)
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 1
        assert not breaker.allow(50.0)

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=2, reset_timeout_ns=100.0)
        breaker.record_failure(0.0)
        breaker.record_success(1.0)
        breaker.record_failure(2.0)
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_ns=100.0)
        breaker.record_failure(0.0)
        assert breaker.is_open
        # Before the reset timeout: still rejecting.
        assert not breaker.allow(50.0)
        # After: one probe admitted, extra traffic still rejected.
        assert breaker.allow(150.0)
        assert breaker.state is BreakerState.HALF_OPEN
        assert not breaker.allow(151.0)
        breaker.record_success(160.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(161.0)

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_ns=100.0)
        breaker.record_failure(0.0)
        assert breaker.allow(150.0)  # probe
        breaker.record_failure(160.0)
        assert breaker.state is BreakerState.OPEN
        assert breaker.times_opened == 2
        # The reset clock restarts from the re-open.
        assert not breaker.allow(200.0)
        assert breaker.allow(260.0)
