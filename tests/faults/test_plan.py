"""FaultPlan / FaultEvent: validation, windows, and determinism."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultKind, FaultPlan


class TestFaultEventValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.DEVICE_FAIL, -1.0, 10.0, node_id=2)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.DEVICE_FAIL, 0.0, 0.0, node_id=2)

    def test_link_degrade_needs_a_target(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.LINK_DEGRADE, 0.0, 10.0)

    def test_link_degrade_bandwidth_bounds(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ConfigurationError):
                FaultEvent(
                    FaultKind.LINK_DEGRADE, 0.0, 10.0, node_id=2,
                    bandwidth_multiplier=bad,
                )

    def test_link_degrade_latency_must_not_speed_up(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(
                FaultKind.LINK_DEGRADE, 0.0, 10.0, node_id=2,
                latency_multiplier=0.5,
            )

    def test_error_storm_needs_inflation(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(
                FaultKind.ERROR_STORM, 0.0, 10.0, node_id=2,
                latency_multiplier=1.0,
            )

    def test_poison_fraction_bounds(self):
        for bad in (0.0, 1.5):
            with pytest.raises(ConfigurationError):
                FaultEvent(
                    FaultKind.POISON, 0.0, 1.0, node_id=2, poison_fraction=bad
                )

    def test_device_fail_needs_node(self):
        with pytest.raises(ConfigurationError):
            FaultEvent(FaultKind.DEVICE_FAIL, 0.0, 10.0)


class TestFaultEventWindows:
    def test_active_at_is_half_open(self):
        event = FaultEvent(FaultKind.DEVICE_FAIL, 10.0, 5.0, node_id=2)
        assert not event.active_at(9.999)
        assert event.active_at(10.0)
        assert event.active_at(14.999)
        assert not event.active_at(15.0)

    def test_permanent_fault_never_ends(self):
        event = FaultEvent(FaultKind.DEVICE_FAIL, 10.0, math.inf, node_id=2)
        assert math.isinf(event.end_ns)
        assert event.active_at(1e18)

    def test_overlap_clips_to_window(self):
        event = FaultEvent(FaultKind.DEVICE_FAIL, 10.0, 10.0, node_id=2)
        assert event.overlap_ns(0.0, 100.0) == 10.0
        assert event.overlap_ns(15.0, 100.0) == 5.0
        assert event.overlap_ns(0.0, 12.0) == 2.0
        assert event.overlap_ns(30.0, 40.0) == 0.0
        assert event.overlap_ns(40.0, 30.0) == 0.0  # degenerate interval


class TestFaultPlan:
    def _plan(self):
        plan = FaultPlan(seed=7)
        plan.fail_device(50.0, node_id=2, duration_ns=10.0)
        plan.degrade_link(10.0, 30.0, node_id=2)
        plan.error_storm(20.0, 5.0, node_id=2)
        plan.poison(15.0, node_id=2)
        return plan

    def test_events_kept_sorted_by_start(self):
        starts = [e.start_ns for e in self._plan().events]
        assert starts == sorted(starts)

    def test_events_of_filters_by_kind(self):
        plan = self._plan()
        assert len(plan.events_of(FaultKind.DEVICE_FAIL)) == 1
        assert len(plan.events_of(FaultKind.POISON)) == 1
        assert len(plan) == 4

    def test_active_at_returns_covering_windows(self):
        plan = self._plan()
        kinds = {e.kind for e in plan.active_at(22.0)}
        assert kinds == {FaultKind.LINK_DEGRADE, FaultKind.ERROR_STORM}

    def test_window_spans_first_start_to_last_finite_end(self):
        assert self._plan().window() == (10.0, 60.0)

    def test_window_all_permanent_reports_inf_end(self):
        plan = FaultPlan().fail_device(30.0, node_id=2)
        start, end = plan.window()
        assert start == 30.0
        assert math.isinf(end)

    def test_empty_plan_window(self):
        assert FaultPlan().window() == (0.0, 0.0)

    def test_describe_is_deterministic(self):
        assert self._plan().describe() == self._plan().describe()
        assert "device-fail @ node2" in self._plan().describe()[-1]
