"""Suite-wide fixtures.

Every test gets a throwaway sweep-cache directory: CLI commands open
the default :class:`repro.cache.SweepCache` unless ``--no-cache`` is
passed, and without this redirect a test run would read (and pollute)
the developer's real ``~/.cache/repro/sweeps`` store — warm entries
there could even mask determinism regressions by serving stale values.
"""

import pytest

from repro.cache import CACHE_DIR_ENV


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(tmp_path_factory, monkeypatch):
    monkeypatch.setenv(
        CACHE_DIR_ENV, str(tmp_path_factory.mktemp("sweep-cache"))
    )
