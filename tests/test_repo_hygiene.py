"""Repository hygiene guards.

A stale ``src/repro/analytic/__pycache__/`` once shipped compiled
remnants of a package that no longer existed — importable bytecode with
no source, invisible to review.  These guards fail fast on both ways
that happens: bytecode tracked by git, and orphaned ``__pycache__``
directories whose parent has no Python source.
"""

import os
import subprocess

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")


def _tracked_files():
    out = subprocess.run(
        ["git", "ls-files"], cwd=REPO_ROOT, capture_output=True, text=True,
        check=True,
    )
    return out.stdout.splitlines()


class TestNoBytecodeInGit:
    def test_no_tracked_pycache_or_pyc(self):
        offenders = [
            path for path in _tracked_files()
            if "__pycache__" in path or path.endswith((".pyc", ".pyo"))
        ]
        assert not offenders, f"bytecode tracked by git: {offenders}"


class TestNoOrphanedPycache:
    def test_every_pycache_has_live_source(self):
        """A ``__pycache__`` whose parent has no ``.py`` files is a
        remnant of a deleted package — importable bytecode with no
        source behind it."""
        orphans = []
        for dirpath, dirnames, _ in os.walk(SRC):
            if "__pycache__" not in dirnames:
                continue
            parent_sources = [
                name for name in os.listdir(dirpath)
                if name.endswith(".py")
            ]
            if not parent_sources:
                orphans.append(os.path.join(dirpath, "__pycache__"))
        assert not orphans, f"orphaned __pycache__ dirs: {orphans}"

    def test_no_sourceless_bytecode(self):
        """Every ``.pyc`` under src/ must shadow an existing module."""
        stale = []
        for dirpath, _, filenames in os.walk(SRC):
            if os.path.basename(dirpath) != "__pycache__":
                continue
            parent = os.path.dirname(dirpath)
            for name in filenames:
                if not name.endswith(".pyc"):
                    continue
                module = name.split(".", 1)[0] + ".py"
                if not os.path.exists(os.path.join(parent, module)):
                    stale.append(os.path.join(dirpath, name))
        assert not stale, f"bytecode without source: {stale}"
