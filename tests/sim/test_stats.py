"""Tests for statistics primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Counter, LatencyHistogram, RunningStat, TimeSeries


class TestRunningStat:
    def test_empty(self):
        s = RunningStat()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_known_values(self):
        s = RunningStat()
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            s.record(v)
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(2.0)
        assert s.min == 2.0
        assert s.max == 9.0

    def test_merge_matches_single_stream(self):
        a, b, combined = RunningStat(), RunningStat(), RunningStat()
        data_a = [1.0, 2.0, 3.0]
        data_b = [10.0, 20.0]
        for v in data_a:
            a.record(v)
            combined.record(v)
        for v in data_b:
            b.record(v)
            combined.record(v)
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.min == combined.min
        assert a.max == combined.max

    def test_merge_empty_is_noop(self):
        a = RunningStat()
        a.record(5.0)
        a.merge(RunningStat())
        assert a.count == 1 and a.mean == 5.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_mean_matches_numpy_property(self, values):
        s = RunningStat()
        for v in values:
            s.record(v)
        assert s.mean == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-6)


class TestRecordMany:
    def test_matches_looped_records_exactly(self):
        batched, looped = RunningStat(), RunningStat()
        batched.record(3.0)
        looped.record(3.0)
        batched.record_many(7.5, 1000)
        for _ in range(1000):
            looped.record(7.5)
        batched.record_many(-2.0, 3)
        for _ in range(3):
            looped.record(-2.0)
        assert batched.count == looped.count
        assert batched.mean == pytest.approx(looped.mean, rel=1e-12)
        assert batched.variance == pytest.approx(looped.variance, rel=1e-9)
        assert batched.min == looped.min
        assert batched.max == looped.max

    def test_huge_count_is_constant_time(self):
        # A million-sample batch must not loop; the closed form gives
        # the exact moments of 10**6 identical values instantly.
        s = RunningStat()
        s.record(100.0)
        s.record_many(50.0, 10**6)
        assert s.count == 10**6 + 1
        assert s.mean == pytest.approx((100.0 + 50.0 * 10**6) / (10**6 + 1))
        # Variance of {100} u {50 x 1e6}: delta^2 * n*k / total.
        assert s.variance == pytest.approx(
            2500.0 * 10**6 / (10**6 + 1) ** 2, rel=1e-9
        )
        assert s.min == 50.0
        assert s.max == 100.0

    def test_histogram_record_count_matches_loop(self):
        batched, looped = LatencyHistogram(), LatencyHistogram()
        batched.record(200.0, count=10**6)
        for _ in range(100):
            looped.record(200.0)
        assert batched.count == 10**6
        assert batched.mean == looped.mean
        assert batched.stat.variance == pytest.approx(0.0, abs=1e-9)
        assert batched.percentile(99) == looped.percentile(99)

    def test_rejects_nonpositive_count(self):
        s = RunningStat()
        with pytest.raises(ValueError):
            s.record_many(1.0, 0)
        with pytest.raises(ValueError):
            s.record_many(1.0, -5)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=-1e6, max_value=1e6),
                st.integers(min_value=1, max_value=50),
            ),
            min_size=1,
            max_size=30,
        )
    )
    def test_batched_equals_looped_property(self, blocks):
        batched, looped = RunningStat(), RunningStat()
        for value, count in blocks:
            batched.record_many(value, count)
            for _ in range(count):
                looped.record(value)
        assert batched.count == looped.count
        assert batched.mean == pytest.approx(looped.mean, rel=1e-9, abs=1e-6)
        assert batched.variance == pytest.approx(
            looped.variance, rel=1e-6, abs=1e-3
        )
        assert batched.min == looped.min
        assert batched.max == looped.max


class TestLatencyHistogram:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)

    def test_percentile_bounds_error(self):
        h = LatencyHistogram()
        h.record(100.0)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_percentile_is_nan(self):
        # An empty histogram must not fabricate a zero tail (and must
        # not raise an index error); NaN is the explicit "no samples".
        import math

        assert math.isnan(LatencyHistogram().percentile(50))
        assert math.isnan(LatencyHistogram().percentile(99.9))

    def test_percentile_relative_error_bound(self):
        h = LatencyHistogram(min_value=1.0, growth=1.02)
        values = [float(v) for v in range(1, 1001)]
        for v in values:
            h.record(v)
        for p in (50, 90, 99):
            exact = values[int(math.ceil(len(values) * p / 100)) - 1]
            assert h.percentile(p) == pytest.approx(exact, rel=0.03)

    def test_mean_is_exact(self):
        h = LatencyHistogram()
        for v in (100.0, 200.0, 300.0):
            h.record(v)
        assert h.mean == pytest.approx(200.0)
        assert h.min == 100.0
        assert h.max == 300.0

    def test_record_with_count(self):
        h = LatencyHistogram()
        h.record(50.0, count=10)
        assert h.count == 10
        with pytest.raises(ValueError):
            h.record(50.0, count=0)

    def test_cdf_monotone_and_complete(self):
        h = LatencyHistogram()
        for v in (10.0, 20.0, 30.0, 40.0, 1000.0):
            h.record(v)
        cdf = h.cdf()
        fractions = [p.fraction for p in cdf]
        values = [p.value for p in cdf]
        assert fractions == sorted(fractions)
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)

    def test_cdf_respects_points_bound(self):
        # Many occupied buckets + small points used to emit up to ~2x
        # the requested number (truncating stride); the bound is hard.
        h = LatencyHistogram(min_value=1.0, growth=1.02)
        for v in range(1, 400):
            h.record(float(v))
        for points in (1, 2, 3, 5, 7, 10, 50, 1000):
            cdf = h.cdf(points=points)
            assert 0 < len(cdf) <= points
            assert cdf[-1].fraction == 1.0  # exactly, not approximately

    def test_cdf_final_point_is_last_bucket(self):
        h = LatencyHistogram()
        for v in (10.0, 20.0, 5000.0):
            h.record(v)
        cdf = h.cdf(points=2)
        assert len(cdf) <= 2
        assert cdf[-1].fraction == 1.0
        # Last point represents the largest occupied bucket.
        assert cdf[-1].value >= 5000.0 / 1.02

    def test_cdf_rejects_nonpositive_points(self):
        h = LatencyHistogram()
        h.record(1.0)
        with pytest.raises(ValueError):
            h.cdf(points=0)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=120),
        st.integers(min_value=1, max_value=40),
    )
    def test_cdf_bound_property(self, values, points):
        h = LatencyHistogram()
        for v in values:
            h.record(v)
        cdf = h.cdf(points=points)
        assert 0 < len(cdf) <= points
        fractions = [p.fraction for p in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(100.0)
        b.record(300.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(200.0)

    def test_merge_incompatible_bucketing_raises(self):
        a = LatencyHistogram(growth=1.02)
        b = LatencyHistogram(growth=1.05)
        with pytest.raises(ValueError):
            a.merge(b)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e7), min_size=1, max_size=300),
        st.sampled_from([50.0, 90.0, 99.0]),
    )
    def test_percentile_within_growth_bound_property(self, values, p):
        h = LatencyHistogram(min_value=1.0, growth=1.02)
        for v in values:
            h.record(v)
        exact = sorted(values)[int(math.ceil(len(values) * p / 100)) - 1]
        # Bucketing error is bounded by one growth step either side.
        assert h.percentile(p) <= exact * 1.021
        assert h.percentile(p) >= exact / 1.021


class TestTimeSeries:
    def test_record_and_last(self):
        ts = TimeSeries(name="bw")
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)
        assert len(ts) == 2
        assert ts.last() == (1.0, 20.0)
        assert ts.peak() == 20.0

    def test_times_must_be_monotone(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.record(0.0, 10.0)  # holds for 1s
        ts.record(1.0, 0.0)  # holds for 3s
        ts.record(4.0, 99.0)  # terminal sample, zero weight
        assert ts.time_weighted_mean() == pytest.approx((10.0 * 1 + 0.0 * 3) / 4)

    def test_time_weighted_mean_degenerate_cases(self):
        ts = TimeSeries()
        assert ts.time_weighted_mean() == 0.0
        ts.record(1.0, 5.0)
        assert ts.time_weighted_mean() == 5.0

    def test_time_weighted_mean_zero_span(self):
        # All samples at the same instant: no interval to weight by, so
        # it degrades to the unweighted mean instead of dividing by 0.
        ts = TimeSeries()
        ts.record(2.0, 10.0)
        ts.record(2.0, 30.0)
        assert ts.time_weighted_mean() == pytest.approx(20.0)

    def test_final_value_has_zero_weight(self):
        # The terminal sample's holding interval is unknown; an outlier
        # there must not move the mean.
        ts = TimeSeries()
        ts.record(0.0, 4.0)
        ts.record(2.0, 4.0)
        ts.record(4.0, 1e9)
        assert ts.time_weighted_mean() == pytest.approx(4.0)


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("promotions")
        c.add("promotions", 2)
        assert c.get("promotions") == 3
        assert c.get("missing") == 0

    def test_negative_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.add("x", -1)

    def test_as_dict_is_snapshot(self):
        c = Counter()
        c.add("a")
        snap = c.as_dict()
        c.add("a")
        assert snap == {"a": 1.0}
        assert c.get("a") == 2.0
