"""Tests for statistics primitives."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.stats import Counter, LatencyHistogram, RunningStat, TimeSeries


class TestRunningStat:
    def test_empty(self):
        s = RunningStat()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_known_values(self):
        s = RunningStat()
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            s.record(v)
        assert s.mean == pytest.approx(5.0)
        assert s.stddev == pytest.approx(2.0)
        assert s.min == 2.0
        assert s.max == 9.0

    def test_merge_matches_single_stream(self):
        a, b, combined = RunningStat(), RunningStat(), RunningStat()
        data_a = [1.0, 2.0, 3.0]
        data_b = [10.0, 20.0]
        for v in data_a:
            a.record(v)
            combined.record(v)
        for v in data_b:
            b.record(v)
            combined.record(v)
        a.merge(b)
        assert a.count == combined.count
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.min == combined.min
        assert a.max == combined.max

    def test_merge_empty_is_noop(self):
        a = RunningStat()
        a.record(5.0)
        a.merge(RunningStat())
        assert a.count == 1 and a.mean == 5.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=200))
    def test_mean_matches_numpy_property(self, values):
        s = RunningStat()
        for v in values:
            s.record(v)
        assert s.mean == pytest.approx(sum(values) / len(values), rel=1e-9, abs=1e-6)


class TestLatencyHistogram:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_value=0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)

    def test_percentile_bounds_error(self):
        h = LatencyHistogram()
        h.record(100.0)
        with pytest.raises(ValueError):
            h.percentile(0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_empty_percentile_is_nan(self):
        # An empty histogram must not fabricate a zero tail (and must
        # not raise an index error); NaN is the explicit "no samples".
        import math

        assert math.isnan(LatencyHistogram().percentile(50))
        assert math.isnan(LatencyHistogram().percentile(99.9))

    def test_percentile_relative_error_bound(self):
        h = LatencyHistogram(min_value=1.0, growth=1.02)
        values = [float(v) for v in range(1, 1001)]
        for v in values:
            h.record(v)
        for p in (50, 90, 99):
            exact = values[int(math.ceil(len(values) * p / 100)) - 1]
            assert h.percentile(p) == pytest.approx(exact, rel=0.03)

    def test_mean_is_exact(self):
        h = LatencyHistogram()
        for v in (100.0, 200.0, 300.0):
            h.record(v)
        assert h.mean == pytest.approx(200.0)
        assert h.min == 100.0
        assert h.max == 300.0

    def test_record_with_count(self):
        h = LatencyHistogram()
        h.record(50.0, count=10)
        assert h.count == 10
        with pytest.raises(ValueError):
            h.record(50.0, count=0)

    def test_cdf_monotone_and_complete(self):
        h = LatencyHistogram()
        for v in (10.0, 20.0, 30.0, 40.0, 1000.0):
            h.record(v)
        cdf = h.cdf()
        fractions = [p.fraction for p in cdf]
        values = [p.value for p in cdf]
        assert fractions == sorted(fractions)
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)

    def test_merge(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        a.record(100.0)
        b.record(300.0)
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(200.0)

    def test_merge_incompatible_bucketing_raises(self):
        a = LatencyHistogram(growth=1.02)
        b = LatencyHistogram(growth=1.05)
        with pytest.raises(ValueError):
            a.merge(b)

    @given(
        st.lists(st.floats(min_value=1.0, max_value=1e7), min_size=1, max_size=300),
        st.sampled_from([50.0, 90.0, 99.0]),
    )
    def test_percentile_within_growth_bound_property(self, values, p):
        h = LatencyHistogram(min_value=1.0, growth=1.02)
        for v in values:
            h.record(v)
        exact = sorted(values)[int(math.ceil(len(values) * p / 100)) - 1]
        # Bucketing error is bounded by one growth step either side.
        assert h.percentile(p) <= exact * 1.021
        assert h.percentile(p) >= exact / 1.021


class TestTimeSeries:
    def test_record_and_last(self):
        ts = TimeSeries(name="bw")
        ts.record(0.0, 10.0)
        ts.record(1.0, 20.0)
        assert len(ts) == 2
        assert ts.last() == (1.0, 20.0)
        assert ts.peak() == 20.0

    def test_times_must_be_monotone(self):
        ts = TimeSeries()
        ts.record(5.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(4.0, 1.0)

    def test_time_weighted_mean(self):
        ts = TimeSeries()
        ts.record(0.0, 10.0)  # holds for 1s
        ts.record(1.0, 0.0)  # holds for 3s
        ts.record(4.0, 99.0)  # terminal sample, zero weight
        assert ts.time_weighted_mean() == pytest.approx((10.0 * 1 + 0.0 * 3) / 4)

    def test_time_weighted_mean_degenerate_cases(self):
        ts = TimeSeries()
        assert ts.time_weighted_mean() == 0.0
        ts.record(1.0, 5.0)
        assert ts.time_weighted_mean() == 5.0


class TestCounter:
    def test_add_and_get(self):
        c = Counter()
        c.add("promotions")
        c.add("promotions", 2)
        assert c.get("promotions") == 3
        assert c.get("missing") == 0

    def test_negative_rejected(self):
        c = Counter()
        with pytest.raises(ValueError):
            c.add("x", -1)

    def test_as_dict_is_snapshot(self):
        c = Counter()
        c.add("a")
        snap = c.as_dict()
        c.add("a")
        assert snap == {"a": 1.0}
        assert c.get("a") == 2.0
