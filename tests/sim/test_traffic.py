"""Tests for max-min fair bandwidth allocation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.traffic import TrafficDemand, max_min_allocate


def demand(source, resources, rate, wf=0.0):
    return TrafficDemand(source=source, resources=tuple(resources), rate=rate, write_fraction=wf)


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(SimulationError):
            demand("a", ["r"], -1.0)

    def test_bad_write_fraction_rejected(self):
        with pytest.raises(SimulationError):
            demand("a", ["r"], 1.0, wf=1.5)

    def test_empty_resources_rejected(self):
        with pytest.raises(SimulationError):
            demand("a", [], 1.0)

    def test_unknown_resource_rejected(self):
        with pytest.raises(SimulationError):
            max_min_allocate([demand("a", ["missing"], 1.0)], {"r": 10.0})

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(SimulationError):
            max_min_allocate([demand("a", ["r"], 1.0)], {"r": 0.0})

    def test_unbounded_unconstrained_demand_raises(self):
        # inf demand must cross at least one capacity-bearing resource --
        # here it does, so this allocates fine and saturates.
        res = max_min_allocate([demand("a", ["r"], float("inf"))], {"r": 5.0})
        assert res.achieved["a"] == pytest.approx(5.0)


class TestAllocation:
    def test_single_demand_under_capacity(self):
        res = max_min_allocate([demand("a", ["r"], 4.0)], {"r": 10.0})
        assert res.achieved["a"] == pytest.approx(4.0)
        assert res.utilization["r"] == pytest.approx(0.4)

    def test_equal_split_when_oversubscribed(self):
        demands = [demand(i, ["r"], 10.0) for i in range(4)]
        res = max_min_allocate(demands, {"r": 20.0})
        for i in range(4):
            assert res.achieved[i] == pytest.approx(5.0)
        assert res.utilization["r"] == pytest.approx(1.0)

    def test_max_min_protects_small_demands(self):
        demands = [demand("small", ["r"], 2.0), demand("big", ["r"], 100.0)]
        res = max_min_allocate(demands, {"r": 10.0})
        assert res.achieved["small"] == pytest.approx(2.0)
        assert res.achieved["big"] == pytest.approx(8.0)

    def test_multi_resource_bottleneck(self):
        # Flow a crosses link+device, flow b only device.  Link is tight.
        demands = [demand("a", ["link", "dev"], 100.0), demand("b", ["dev"], 100.0)]
        res = max_min_allocate(demands, {"link": 5.0, "dev": 50.0})
        assert res.achieved["a"] == pytest.approx(5.0)
        assert res.achieved["b"] == pytest.approx(45.0)
        assert res.utilization["link"] == pytest.approx(1.0)
        assert res.utilization["dev"] == pytest.approx(1.0)

    def test_freed_capacity_goes_to_unconstrained_flows(self):
        demands = [
            demand("a", ["r"], 1.0),
            demand("b", ["r"], float("inf")),
        ]
        res = max_min_allocate(demands, {"r": 10.0})
        assert res.achieved["a"] == pytest.approx(1.0)
        assert res.achieved["b"] == pytest.approx(9.0)

    def test_zero_rate_demand(self):
        res = max_min_allocate([demand("a", ["r"], 0.0)], {"r": 10.0})
        assert res.achieved["a"] == 0.0
        assert res.utilization["r"] == 0.0

    def test_write_fraction_aggregation(self):
        demands = [
            demand("reader", ["r"], 4.0, wf=0.0),
            demand("writer", ["r"], 4.0, wf=1.0),
        ]
        res = max_min_allocate(demands, {"r": 100.0})
        assert res.write_fraction["r"] == pytest.approx(0.5)

    def test_bottleneck_helper(self):
        res = max_min_allocate(
            [demand("a", ["x", "y"], 10.0)], {"x": 10.0, "y": 40.0}
        )
        assert res.bottleneck(("x", "y")) == pytest.approx(1.0)
        assert res.bottleneck(("y",)) == pytest.approx(0.25)
        assert res.bottleneck(()) == 0.0


class TestMaxMinProperties:
    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=10),
        st.floats(min_value=1.0, max_value=200.0),
    )
    def test_never_exceeds_capacity_or_request(self, rates, capacity):
        demands = [demand(i, ["r"], r) for i, r in enumerate(rates)]
        res = max_min_allocate(demands, {"r": capacity})
        total = sum(res.achieved.values())
        assert total <= capacity * (1 + 1e-6)
        for i, r in enumerate(rates):
            assert res.achieved[i] <= r + 1e-6

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=10),
        st.floats(min_value=1.0, max_value=200.0),
    )
    def test_work_conserving(self, rates, capacity):
        """Either every demand is satisfied or the resource is saturated."""
        demands = [demand(i, ["r"], r) for i, r in enumerate(rates)]
        res = max_min_allocate(demands, {"r": capacity})
        total = sum(res.achieved.values())
        all_satisfied = all(
            res.achieved[i] == pytest.approx(rates[i], rel=1e-6) for i in range(len(rates))
        )
        assert all_satisfied or total == pytest.approx(min(capacity, sum(rates)), rel=1e-6)

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=1, max_size=10),
        st.floats(min_value=1.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_total_monotone_in_capacity(self, rates, capacity, extra):
        """Growing a resource's capacity never shrinks total throughput."""
        demands = [demand(i, ["r"], r) for i, r in enumerate(rates)]
        before = sum(max_min_allocate(demands, {"r": capacity}).achieved.values())
        after = sum(
            max_min_allocate(demands, {"r": capacity + extra}).achieved.values()
        )
        assert after >= before - 1e-6

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=100.0),
                st.sets(st.sampled_from(["link", "dev", "bus"]), min_size=1),
            ),
            min_size=1,
            max_size=10,
        ),
        st.floats(min_value=1.0, max_value=50.0),
        st.floats(min_value=1.0, max_value=50.0),
        st.floats(min_value=1.0, max_value=50.0),
    )
    def test_multi_resource_never_over_capacity(self, flows, link, dev, bus):
        """No shared resource carries more than its capacity, and every
        allocation stays within its own request."""
        capacities = {"link": link, "dev": dev, "bus": bus}
        demands = [
            demand(i, sorted(resources), rate)
            for i, (rate, resources) in enumerate(flows)
        ]
        res = max_min_allocate(demands, capacities)
        for name, capacity in capacities.items():
            load = sum(
                res.achieved[i]
                for i, (_, resources) in enumerate(flows)
                if name in resources
            )
            assert load <= capacity * (1 + 1e-6)
        for i, (rate, _) in enumerate(flows):
            assert res.achieved[i] <= rate + 1e-6

    @given(
        st.lists(st.floats(min_value=0.1, max_value=100.0), min_size=2, max_size=8),
    )
    def test_fairness_smaller_request_never_gets_less(self, rates):
        """If request_i <= request_j then alloc_i <= alloc_j is not required,
        but alloc_i >= min(request_i, alloc_j): nobody with a smaller request
        is starved below another flow's share."""
        demands = [demand(i, ["r"], r) for i, r in enumerate(rates)]
        res = max_min_allocate(demands, {"r": 50.0})
        for i, ri in enumerate(rates):
            for j, rj in enumerate(rates):
                if ri <= rj:
                    assert res.achieved[i] >= min(ri, res.achieved[j]) - 1e-6


class TestDuplicateResources:
    """Routes naming the same resource more than once (bounce paths).

    The contract (documented on max_min_allocate): duplicates are
    allocated per-occurrence — k crossings size the uniform increment,
    drain the resource k times the achieved rate, and contribute k times
    the write bytes — so the increment, usage and freezing accountings
    can never disagree.
    """

    def test_double_crossing_halves_achievable_rate(self):
        res = max_min_allocate(
            [demand("a", ["r", "r"], float("inf"))], {"r": 10.0}
        )
        assert res.achieved["a"] == pytest.approx(5.0)
        assert res.utilization["r"] == pytest.approx(1.0)

    def test_double_crossing_competes_as_two_flows(self):
        res = max_min_allocate(
            [
                demand("bounce", ["r", "r"], float("inf")),
                demand("direct", ["r"], float("inf")),
            ],
            {"r": 12.0},
        )
        # Uniform growth with 3 total crossings: both freeze at 4.
        assert res.achieved["bounce"] == pytest.approx(4.0)
        assert res.achieved["direct"] == pytest.approx(4.0)
        assert res.utilization["r"] == pytest.approx(1.0)

    def test_satisfied_duplicate_demand_uses_capacity_twice(self):
        res = max_min_allocate([demand("a", ["r", "r"], 3.0)], {"r": 10.0})
        assert res.achieved["a"] == pytest.approx(3.0)
        assert res.utilization["r"] == pytest.approx(0.6)

    def test_write_fraction_counted_per_occurrence(self):
        res = max_min_allocate(
            [
                demand("bounce", ["r", "r"], float("inf"), wf=1.0),
                demand("direct", ["r"], float("inf"), wf=0.0),
            ],
            {"r": 12.0},
        )
        # bounce writes 4 B/s across each of its 2 crossings -> 8 of the
        # 12 B/s crossing r are writes.
        assert res.write_fraction["r"] == pytest.approx(8.0 / 12.0)

    def test_deterministic_across_runs(self):
        demands = [
            demand("bounce", ["u", "r", "u"], float("inf"), wf=0.3),
            demand("direct", ["r"], 5.0, wf=0.1),
        ]
        caps = {"u": 8.0, "r": 20.0}
        first = max_min_allocate(demands, caps)
        second = max_min_allocate(demands, caps)
        assert first.achieved == second.achieved
        assert first.utilization == second.utilization
        assert first.write_fraction == second.write_fraction

    def test_triple_crossing(self):
        res = max_min_allocate(
            [demand("a", ["r", "r", "r"], float("inf"))], {"r": 9.0}
        )
        assert res.achieved["a"] == pytest.approx(3.0)
        assert res.utilization["r"] == pytest.approx(1.0)
