"""Failure-path semantics of the event engine.

These pin down the corners the happy-path tests never visit: how
exceptions travel through ``Event.fail``, nested processes, combinators
with already-dispatched children, and ``run_until_event`` limits.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import AllOf, AnyOf, Simulator


class Boom(RuntimeError):
    pass


class TestEventFail:
    def test_fail_requires_exception_instance(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.event().fail("not an exception")

    def test_fail_anchors_traceback(self):
        sim = Simulator()
        exc = Boom("fresh, never raised")
        assert exc.__traceback__ is None
        sim.event().fail(exc)
        assert exc.__traceback__ is not None

    def test_fail_preserves_existing_traceback(self):
        sim = Simulator()
        try:
            raise Boom("raised before fail")
        except Boom as caught:
            exc = caught
        tb = exc.__traceback__
        sim.event().fail(exc)
        assert exc.__traceback__ is tb

    def test_run_until_event_reraises_failure(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(Boom("kaboom"))
        with pytest.raises(Boom, match="kaboom"):
            sim.run_until_event(ev)

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(Boom())
        with pytest.raises(SimulationError):
            ev.fail(Boom())
        with pytest.raises(SimulationError):
            ev.succeed()


class TestProcessFailurePropagation:
    def test_failure_throws_into_waiting_process(self):
        sim = Simulator()
        ev = ev_holder = sim.event()
        seen = []

        def proc():
            try:
                yield ev_holder
            except Boom as exc:
                seen.append(exc)
            return "survived"

        def traffic():  # unrelated activity keeps the heap busy
            yield sim.timeout(5.0)

        done = sim.process(proc())
        sim.process(traffic())
        ev.fail(Boom("injected"))
        value = sim.run_until_event(done)
        assert value == "survived"
        assert len(seen) == 1

    def test_failure_propagates_through_nested_processes(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(1.0)
            raise Boom("inner crash")

        def middle():
            yield sim.process(inner())

        def outer():
            yield sim.process(middle())

        done = sim.process(outer())
        with pytest.raises(Boom, match="inner crash"):
            sim.run_until_event(done)

    def test_swallowed_failure_is_chained_as_context(self):
        sim = Simulator()
        ev = sim.event()

        def proc():
            try:
                yield ev
            except Boom:
                pass  # swallow...
            raise ValueError("secondary")  # ...then fail differently

        done = sim.process(proc())
        ev.fail(Boom("original"))
        with pytest.raises(ValueError, match="secondary") as info:
            sim.run_until_event(done)
        assert isinstance(info.value.__context__, Boom)

    def test_unwaited_process_crash_raises_from_run(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(1.0)
            raise Boom("nobody waiting")

        sim.process(proc())
        with pytest.raises(Boom, match="nobody waiting"):
            sim.run()

    def test_yielding_failed_dispatched_event_still_throws(self):
        """A failed event that already dispatched must not look successful."""
        sim = Simulator()
        ev = sim.event()
        ev.fail(Boom("early"))
        sim.run()  # dispatch with no waiters
        assert ev.dispatched and ev.failed

        def late():
            with pytest.raises(Boom, match="early"):
                yield ev
            return "caught"

        done = sim.process(late())
        assert sim.run_until_event(done) == "caught"


class TestRunUntilEventLimit:
    def test_limit_reached_before_event(self):
        sim = Simulator()

        def slow():
            yield sim.timeout(100.0)
            return "too late"

        with pytest.raises(SimulationError, match="time limit"):
            sim.run_until_event(sim.process(slow()), limit=10.0)

    def test_event_within_limit_returns_value(self):
        sim = Simulator()

        def prompt():
            yield sim.timeout(5.0)
            return "made it"

        assert sim.run_until_event(sim.process(prompt()), limit=10.0) == "made it"

    def test_drained_heap_raises(self):
        sim = Simulator()
        never = sim.event()
        with pytest.raises(SimulationError, match="drained"):
            sim.run_until_event(never)


class TestCombinatorsWithDispatchedChildren:
    def test_anyof_with_dispatched_successful_child_fires(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed("first")
        sim.run()  # dispatch; callback list now dead
        any_of = AnyOf(sim, [ev, sim.event()])
        assert sim.run_until_event(any_of) == "first"

    def test_anyof_with_dispatched_failed_child_fails(self):
        sim = Simulator()
        ev = sim.event()
        ev.fail(Boom("already over"))
        sim.run()
        any_of = AnyOf(sim, [ev, sim.timeout(50.0)])
        with pytest.raises(Boom, match="already over"):
            sim.run_until_event(any_of)

    def test_anyof_pending_children_still_race(self):
        sim = Simulator()
        fast = sim.timeout(1.0, value="fast")
        slow = sim.timeout(9.0, value="slow")
        assert sim.run_until_event(AnyOf(sim, [slow, fast])) == "fast"

    def test_allof_with_dispatched_children_collects_values(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("early")
        sim.run()
        all_of = AllOf(sim, [done, sim.timeout(3.0, value="late")])
        assert sim.run_until_event(all_of) == ["early", "late"]

    def test_allof_with_dispatched_failed_child_fails(self):
        sim = Simulator()
        bad = sim.event()
        bad.fail(Boom("pre-failed"))
        sim.run()
        all_of = AllOf(sim, [bad, sim.timeout(3.0)])
        with pytest.raises(Boom, match="pre-failed"):
            sim.run_until_event(all_of)

    def test_allof_pending_child_failure_fails_combinator(self):
        sim = Simulator()
        ok = sim.timeout(1.0)
        bad = sim.event()
        all_of = AllOf(sim, [ok, bad])
        bad.fail(Boom("late failure"))
        with pytest.raises(Boom, match="late failure"):
            sim.run_until_event(all_of)

    def test_process_waits_on_anyof_of_processes(self):
        sim = Simulator()

        def worker(delay, tag):
            yield sim.timeout(delay)
            return tag

        def coordinator():
            winner = yield AnyOf(
                sim, [sim.process(worker(7.0, "slow")), sim.process(worker(2.0, "quick"))]
            )
            return winner

        assert sim.run_until_event(sim.process(coordinator())) == "quick"
