"""Regression tests for the engine's hot-path optimizations.

Pins the two structural guarantees the hot-path work introduced:

* every event class uses ``__slots__`` (no per-instance ``__dict__``) —
  a loaded sweep allocates tens of millions of events;
* combinators detach from losing children at resolution, so a
  long-lived event's callback list stays bounded no matter how many
  ``AnyOf``/``AllOf`` races it participates in.
"""

import pytest

from repro.sim.engine import AllOf, AnyOf, Event, Simulator, Timeout


class TestSlots:
    def test_event_classes_have_no_instance_dict(self):
        sim = Simulator()

        def gen():
            yield sim.timeout(1.0)

        never = sim.event()
        instances = [
            sim.event(),
            sim.timeout(1.0),
            sim.process(gen()),
            sim.all_of([never]),
            sim.any_of([never]),
        ]
        for obj in instances:
            assert not hasattr(obj, "__dict__"), type(obj).__name__

    def test_subclasses_declare_slots(self):
        for cls in (Event, Timeout, AllOf, AnyOf):
            assert "__slots__" in cls.__dict__, cls.__name__


class TestCombinatorPruning:
    def test_anyof_detaches_losing_child(self):
        sim = Simulator()
        never = sim.event()
        race = sim.any_of([sim.timeout(1.0), never])
        assert len(never.callbacks) == 1
        sim.run()
        assert race.triggered and not race.failed
        assert never.callbacks == []

    def test_allof_failure_detaches_pending_children(self):
        sim = Simulator()
        never = sim.event()
        bad = sim.event()
        combo = sim.all_of([never, bad])
        bad.fail(RuntimeError("boom"))
        sim.run()
        assert combo.triggered and combo.failed
        assert never.callbacks == []

    def test_callback_list_bounded_across_10k_anyof_races(self):
        # The regression this guards: before pruning, every race left a
        # stale callback on the never-firing event — 10k races, 10k
        # callbacks, and O(n^2) dispatch if the event ever fired.
        sim = Simulator()
        never = sim.event()
        peak = 0

        def racer():
            nonlocal peak
            for _ in range(10_000):
                yield sim.any_of([sim.timeout(1.0), never])
                peak = max(peak, len(never.callbacks))

        done = sim.process(racer())
        sim.run()
        assert done.triggered and not done.failed
        assert peak <= 1
        assert len(never.callbacks) == 0

    def test_anyof_still_fails_on_failing_child(self):
        sim = Simulator()
        never = sim.event()
        bad = sim.event(); bad.fail(ValueError("x"))
        race = sim.any_of([never, bad])
        sim.run()
        assert race.failed and isinstance(race.value, ValueError)
        assert never.callbacks == []

    def test_allof_success_value_order_preserved(self):
        sim = Simulator()
        combo = sim.all_of([sim.timeout(2.0, "late"), sim.timeout(1.0, "early")])
        sim.run()
        assert combo.value == ["late", "early"]


class TestResumeHotPath:
    def test_failed_event_still_throws_into_process(self):
        sim = Simulator()
        seen = []

        def waiter(ev):
            try:
                yield ev
            except RuntimeError as exc:
                seen.append(str(exc))

        ev = sim.event()
        done = sim.process(waiter(ev))
        ev.fail(RuntimeError("kaboom"))
        sim.run()
        assert done.triggered and not done.failed
        assert seen == ["kaboom"]

    def test_yielding_non_event_raises(self):
        from repro.errors import SimulationError

        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()
