"""Tests for the bandwidth monitor."""

import pytest

from repro.errors import SimulationError
from repro.sim import BandwidthMonitor
from repro.sim.traffic import TrafficDemand, max_min_allocate


def allocate(rates, capacity=10.0):
    demands = [TrafficDemand(f"s{i}", ("r",), rate) for i, rate in enumerate(rates)]
    return max_min_allocate(demands, {"r": capacity})


class TestBandwidthMonitor:
    def test_accumulates_series(self):
        monitor = BandwidthMonitor()
        monitor.observe(0.0, allocate([4.0]))
        monitor.observe(10.0, allocate([8.0]))
        assert monitor.peak_utilization("r") == pytest.approx(0.8)
        assert list(monitor.resources()) == ["r"]
        assert len(monitor.achieved["s0"]) == 2

    def test_time_ordering_enforced(self):
        monitor = BandwidthMonitor()
        monitor.observe(10.0, allocate([1.0]))
        with pytest.raises(SimulationError):
            monitor.observe(5.0, allocate([1.0]))

    def test_mean_utilization_time_weighted(self):
        monitor = BandwidthMonitor()
        monitor.observe(0.0, allocate([10.0]))   # u=1.0 for 1s
        monitor.observe(1e9, allocate([0.0]))    # u=0.0 for 3s
        monitor.observe(4e9, allocate([10.0]))   # terminal sample
        assert monitor.mean_utilization("r") == pytest.approx(0.25)

    def test_byte_accounting(self):
        monitor = BandwidthMonitor()
        monitor.observe(0.0, allocate([4.0]), interval_ns=1e9)
        monitor.observe(1e9, allocate([4.0]), interval_ns=1e9)
        assert monitor.total_bytes("s0") == pytest.approx(8.0)
        assert monitor.total_bytes("ghost") == 0.0

    def test_unobserved_resource_defaults(self):
        monitor = BandwidthMonitor()
        assert monitor.peak_utilization("nope") == 0.0
        assert monitor.mean_utilization("nope") == 0.0

    def test_byte_crediting_unit_round_trip(self):
        # observe() credits rate (bytes/s) * interval (ns) / 1e9 per
        # round: a source sustaining 4 B/s over 2.5 simulated seconds
        # must round-trip to exactly 10 bytes, whatever the split.
        monitor = BandwidthMonitor()
        monitor.observe(0.0, allocate([4.0]), interval_ns=1e9)
        monitor.observe(1e9, allocate([4.0]), interval_ns=0.5e9)
        monitor.observe(1.5e9, allocate([4.0]), interval_ns=1e9)
        assert monitor.total_bytes("s0") == pytest.approx(4.0 * 2.5)

    def test_zero_interval_credits_nothing(self):
        monitor = BandwidthMonitor()
        monitor.observe(0.0, allocate([8.0]))  # default interval_ns=0
        monitor.observe(1.0, allocate([8.0]), interval_ns=0.0)
        assert monitor.total_bytes("s0") == 0.0
        # The rate series itself is still recorded.
        assert len(monitor.achieved["s0"]) == 2

    def test_contended_sources_credit_achieved_not_requested(self):
        # Two sources asking 8 B/s each on a 10 B/s link achieve 5 B/s:
        # byte totals must reflect the allocation, not the demand.
        monitor = BandwidthMonitor()
        monitor.observe(0.0, allocate([8.0, 8.0], capacity=10.0), interval_ns=2e9)
        assert monitor.total_bytes("s0") == pytest.approx(10.0)
        assert monitor.total_bytes("s1") == pytest.approx(10.0)
