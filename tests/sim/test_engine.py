"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestClockAndEvents:
    def test_clock_starts_at_zero(self):
        sim = Simulator()
        assert sim.now == 0.0

    def test_timeout_fires_at_scheduled_time(self):
        sim = Simulator()
        fired = []
        ev = sim.timeout(100.0, value="x")
        ev.callbacks.append(lambda e: fired.append((sim.now, e.value)))
        sim.run()
        assert fired == [(100.0, "x")]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        order = []
        for delay in (30.0, 10.0, 20.0):
            sim.timeout(delay).callbacks.append(
                lambda e, d=delay: order.append(d)
            )
        sim.run()
        assert order == [10.0, 20.0, 30.0]

    def test_simultaneous_events_fire_in_schedule_order(self):
        sim = Simulator()
        order = []
        for tag in "abc":
            sim.timeout(5.0).callbacks.append(lambda e, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_event_cannot_trigger_twice(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_run_until_leaves_clock_at_until(self):
        sim = Simulator()
        sim.timeout(50.0)
        sim.run(until=200.0)
        assert sim.now == 200.0

    def test_run_until_does_not_fire_later_events(self):
        sim = Simulator()
        fired = []
        sim.timeout(300.0).callbacks.append(lambda e: fired.append(1))
        sim.run(until=200.0)
        assert fired == []
        sim.run()
        assert fired == [1]

    def test_run_until_past_raises(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=5.0)

    def test_step_without_events_raises(self):
        with pytest.raises(SimulationError):
            Simulator().step()

    def test_peek_returns_next_event_time(self):
        sim = Simulator()
        sim.timeout(42.0)
        assert sim.peek() == 42.0
        sim.run()
        assert sim.peek() == float("inf")


class TestProcesses:
    def test_process_advances_through_timeouts(self):
        sim = Simulator()
        trace = []

        def proc():
            trace.append(sim.now)
            yield sim.timeout(10.0)
            trace.append(sim.now)
            yield sim.timeout(5.0)
            trace.append(sim.now)

        sim.process(proc())
        sim.run()
        assert trace == [0.0, 10.0, 15.0]

    def test_process_receives_event_value(self):
        sim = Simulator()
        got = []

        def proc():
            value = yield sim.timeout(1.0, value="payload")
            got.append(value)

        sim.process(proc())
        sim.run()
        assert got == ["payload"]

    def test_process_return_value_becomes_event_value(self):
        sim = Simulator()

        def child():
            yield sim.timeout(3.0)
            return 99

        def parent(results):
            result = yield sim.process(child())
            results.append(result)

        results = []
        sim.process(parent(results))
        sim.run()
        assert results == [99]

    def test_process_waiting_on_pending_event(self):
        sim = Simulator()
        gate = sim.event()
        log = []

        def waiter():
            value = yield gate
            log.append((sim.now, value))

        def opener():
            yield sim.timeout(25.0)
            gate.succeed("open")

        sim.process(waiter())
        sim.process(opener())
        sim.run()
        assert log == [(25.0, "open")]

    def test_failed_event_raises_inside_process(self):
        sim = Simulator()
        gate = sim.event()
        caught = []

        def waiter():
            try:
                yield gate
            except RuntimeError as exc:
                caught.append(str(exc))

        def failer():
            yield sim.timeout(1.0)
            gate.fail(RuntimeError("boom"))

        sim.process(waiter())
        sim.process(failer())
        sim.run()
        assert caught == ["boom"]

    def test_yielding_non_event_raises(self):
        sim = Simulator()

        def bad():
            yield 42

        sim.process(bad())
        with pytest.raises(SimulationError):
            sim.run()

    def test_process_crash_propagates_when_unwatched(self):
        sim = Simulator()

        def crasher():
            yield sim.timeout(1.0)
            raise ValueError("unhandled")

        sim.process(crasher())
        with pytest.raises(ValueError):
            sim.run()

    def test_waiting_on_already_dispatched_event_resumes(self):
        sim = Simulator()
        done = sim.event()
        done.succeed("early")
        results = []

        def late_waiter():
            yield sim.timeout(10.0)
            value = yield done
            results.append((sim.now, value))

        sim.process(late_waiter())
        sim.run()
        assert results == [(10.0, "early")]


class TestCombinators:
    def test_all_of_waits_for_every_event(self):
        sim = Simulator()
        results = []

        def proc():
            values = yield sim.all_of([sim.timeout(5.0, "a"), sim.timeout(9.0, "b")])
            results.append((sim.now, values))

        sim.process(proc())
        sim.run()
        assert results == [(9.0, ["a", "b"])]

    def test_all_of_empty_list_fires_immediately(self):
        sim = Simulator()
        ev = sim.all_of([])
        assert ev.triggered

    def test_any_of_fires_on_first(self):
        sim = Simulator()
        results = []

        def proc():
            value = yield sim.any_of([sim.timeout(50.0, "slow"), sim.timeout(2.0, "fast")])
            results.append((sim.now, value))

        sim.process(proc())
        sim.run()
        assert results == [(2.0, "fast")]

    def test_any_of_requires_events(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.any_of([])

    def test_run_until_event(self):
        sim = Simulator()

        def proc():
            yield sim.timeout(7.0)
            return "done"

        proc_ev = sim.process(proc())
        assert sim.run_until_event(proc_ev) == "done"
        assert sim.now == 7.0

    def test_run_until_event_drained_queue_raises(self):
        sim = Simulator()
        never = sim.event()
        with pytest.raises(SimulationError):
            sim.run_until_event(never)


class TestDeterminism:
    def test_identical_runs_produce_identical_traces(self):
        def run_once():
            sim = Simulator()
            trace = []

            def worker(name, period):
                for _ in range(5):
                    yield sim.timeout(period)
                    trace.append((sim.now, name))

            sim.process(worker("a", 3.0))
            sim.process(worker("b", 5.0))
            sim.run()
            return trace

        assert run_once() == run_once()
