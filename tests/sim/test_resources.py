"""Tests for Resource and TokenBucket."""

import pytest

from repro.errors import SimulationError
from repro.sim import Resource, Simulator, TokenBucket


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Resource(Simulator(), 0)

    def test_grant_when_available(self):
        sim = Simulator()
        res = Resource(sim, 2)
        ev = res.request()
        assert ev.triggered
        assert res.available == 1

    def test_queueing_and_fifo_handoff(self):
        sim = Simulator()
        res = Resource(sim, 1)
        order = []

        def worker(name, hold_ns):
            grant = res.request()
            yield grant
            order.append((sim.now, name, "start"))
            yield sim.timeout(hold_ns)
            res.release()
            order.append((sim.now, name, "end"))

        sim.process(worker("a", 10.0))
        sim.process(worker("b", 10.0))
        sim.process(worker("c", 10.0))
        sim.run()
        starts = [(t, n) for t, n, kind in order if kind == "start"]
        assert starts == [(0.0, "a"), (10.0, "b"), (20.0, "c")]

    def test_release_without_request_raises(self):
        sim = Simulator()
        res = Resource(sim, 1)
        with pytest.raises(SimulationError):
            res.release()

    def test_queue_length(self):
        sim = Simulator()
        res = Resource(sim, 1)
        res.request()
        res.request()
        res.request()
        assert res.queue_length == 2

    def test_release_skips_failed_waiter(self):
        # Regression: a waiter shed while queued (its grant event failed
        # by a deadline shedder) must not swallow the released slot.
        sim = Simulator()
        res = Resource(sim, 1)
        res.request()  # holder
        shed = res.request()  # queued, then shed
        survivor = res.request()  # queued, still pending
        shed.fail(SimulationError("deadline shed"))
        res.release()
        assert survivor.triggered and not survivor.failed
        assert res.in_use == 1  # slot moved, not leaked

    def test_release_with_only_dead_waiters_frees_slot(self):
        sim = Simulator()
        res = Resource(sim, 2)
        res.request()
        res.request()
        dead_a = res.request()
        dead_b = res.request()
        dead_a.fail(SimulationError("shed"))
        dead_b.succeed()  # e.g. cancelled out-of-band
        res.release()
        # Queue held no live waiter, so the slot returns to the pool.
        assert res.available == 1
        assert res.queue_length == 0

    def test_shedding_interleaved_with_release(self):
        # End-to-end: shed processes interleaved with releases; every
        # pending waiter is eventually served and no slot leaks.
        sim = Simulator()
        res = Resource(sim, 1)
        served = []

        def holder():
            grant = res.request()
            yield grant
            yield sim.timeout(10.0)
            res.release()

        def doomed(name):
            grant = res.request()
            # Shed from outside before the slot frees.
            def shed():
                yield sim.timeout(5.0)
                if not grant.triggered:
                    grant.fail(SimulationError(f"{name} shed"))
            sim.process(shed())
            try:
                yield grant
            except SimulationError:
                return
            served.append(name)  # pragma: no cover - must not happen
            res.release()

        def patient(name, hold_ns):
            grant = res.request()
            yield grant
            served.append(name)
            yield sim.timeout(hold_ns)
            res.release()

        sim.process(holder())
        sim.process(doomed("d1"))
        sim.process(patient("p1", 10.0))
        sim.process(doomed("d2"))
        sim.process(patient("p2", 10.0))
        sim.run()
        assert served == ["p1", "p2"]
        assert res.in_use == 0
        assert res.available == 1


class TestTokenBucket:
    def test_validation(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            TokenBucket(sim, rate_per_ns=-1.0, burst=1.0)
        with pytest.raises(SimulationError):
            TokenBucket(sim, rate_per_ns=1.0, burst=0.0)

    def test_starts_full(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate_per_ns=1.0, burst=10.0)
        assert tb.tokens == 10.0
        assert tb.try_take(10.0)
        assert not tb.try_take(0.1)

    def test_refills_with_simulated_time(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate_per_ns=2.0, burst=100.0)
        assert tb.try_take(100.0)

        def advance():
            yield sim.timeout(25.0)

        sim.process(advance())
        sim.run()
        # 25 ns at 2 tokens/ns = 50 tokens.
        assert tb.tokens == pytest.approx(50.0)

    def test_never_exceeds_burst(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate_per_ns=1000.0, burst=5.0)

        def advance():
            yield sim.timeout(1000.0)

        sim.process(advance())
        sim.run()
        assert tb.tokens == 5.0

    def test_negative_take_rejected(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate_per_ns=1.0, burst=1.0)
        with pytest.raises(SimulationError):
            tb.try_take(-1.0)

    def test_set_rate(self):
        sim = Simulator()
        tb = TokenBucket(sim, rate_per_ns=1.0, burst=10.0)
        tb.try_take(10.0)
        tb.set_rate(5.0)

        def advance():
            yield sim.timeout(1.0)

        sim.process(advance())
        sim.run()
        assert tb.tokens == pytest.approx(5.0)
        with pytest.raises(SimulationError):
            tb.set_rate(-1.0)


class TestRngFactory:
    def test_same_seed_same_stream(self):
        from repro.sim import RngFactory

        a = RngFactory(seed=7).stream("ycsb")
        b = RngFactory(seed=7).stream("ycsb")
        assert list(a.integers(0, 100, 10)) == list(b.integers(0, 100, 10))

    def test_different_names_are_independent(self):
        from repro.sim import RngFactory

        f = RngFactory(seed=7)
        a = list(f.stream("a").integers(0, 1_000_000, 20))
        b = list(f.stream("b").integers(0, 1_000_000, 20))
        assert a != b

    def test_stream_is_cached(self):
        from repro.sim import RngFactory

        f = RngFactory(seed=7)
        assert f.stream("x") is f.stream("x")

    def test_fork_changes_streams(self):
        from repro.sim import RngFactory

        f = RngFactory(seed=7)
        g = f.fork(1)
        assert list(f.stream("x").integers(0, 1000, 10)) != list(
            g.stream("x").integers(0, 1000, 10)
        )


class TestWaiterCompaction:
    """Dead (externally failed) waiters must not accumulate in the queue."""

    def test_queue_stays_bounded_despite_dead_waiters(self):
        sim = Simulator()
        res = Resource(sim, 1)
        assert res.request().triggered  # take the only slot
        for _ in range(500):
            res.request().fail(RuntimeError("shed while queued"))
        # 500 dead waiters were enqueued; amortized compaction keeps the
        # deque bounded by the (empty) live demand, not the churn.
        assert len(res._waiters) <= 32
        sim.run()

    def test_live_waiters_survive_compaction_in_order(self):
        sim = Simulator()
        res = Resource(sim, 1)
        assert res.request().triggered
        live = []
        for i in range(60):
            ev = res.request()
            if i % 2:
                ev.fail(RuntimeError("shed"))
            else:
                live.append(ev)
        assert res.queue_length == len(live)
        for expected in live:
            res.release()
            assert expected.triggered and not expected.failed
        sim.run()

    def test_compaction_threshold_doubles_with_live_queue(self):
        sim = Simulator()
        res = Resource(sim, 1)
        assert res.request().triggered
        live = [res.request() for _ in range(40)]  # all live, none compact away
        assert res.queue_length == 40
        assert len(res._waiters) == 40
        for ev in live:
            res.release()
            assert ev.triggered
        sim.run()
