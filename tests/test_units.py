"""Tests for unit conversion helpers."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


class TestSizes:
    def test_binary_multipliers(self):
        assert units.KiB(1) == 1024
        assert units.MiB(1) == 1024**2
        assert units.GiB(1) == 1024**3
        assert units.TiB(1) == 1024**4

    def test_decimal_multipliers(self):
        assert units.kb(1) == 1000
        assert units.mb(1) == 10**6
        assert units.gb(1) == 10**9
        assert units.tb(1) == 10**12

    def test_fractional_sizes_truncate_to_bytes(self):
        assert units.GiB(0.5) == 512 * 1024**2
        assert isinstance(units.GiB(0.5), int)

    def test_page_and_cacheline(self):
        assert units.PAGE_SIZE == 4096
        assert units.CACHELINE_SIZE == 64


class TestTime:
    def test_time_conversions_roundtrip(self):
        assert units.us(1) == 1_000
        assert units.ms(1) == 1_000_000
        assert units.seconds(1) == 1_000_000_000
        assert units.ns_to_us(units.us(3.5)) == pytest.approx(3.5)
        assert units.ns_to_ms(units.ms(2)) == pytest.approx(2)
        assert units.ns_to_s(units.seconds(7)) == pytest.approx(7)

    @given(st.floats(min_value=1e-3, max_value=1e12, allow_nan=False))
    def test_seconds_roundtrip_property(self, t):
        assert units.ns_to_s(units.seconds(t)) == pytest.approx(t, rel=1e-12)


class TestBandwidth:
    def test_gb_per_s_roundtrip(self):
        assert units.to_gb_per_s(units.gb_per_s(67.0)) == pytest.approx(67.0)

    def test_bytes_per_ns(self):
        # 1 GB/s is one byte per nanosecond.
        assert units.bytes_per_ns(units.gb_per_s(1.0)) == pytest.approx(1.0)


class TestFormatting:
    def test_format_bytes(self):
        assert units.format_bytes(2 * 1024**3) == "2.00 GiB"
        assert units.format_bytes(512) == "512 B"
        assert units.format_bytes(-1024**2) == "-1.00 MiB"

    def test_format_bandwidth_matches_paper_convention(self):
        assert units.format_bandwidth(67e9) == "67.00 GB/s"

    def test_format_time_selects_unit(self):
        assert units.format_time_ns(250.42) == "250.4 ns"
        assert units.format_time_ns(1500) == "1.500 us"
        assert units.format_time_ns(2.5e6) == "2.500 ms"
        assert units.format_time_ns(2.5e9) == "2.500 s"

    def test_format_time_handles_nonfinite(self):
        assert units.format_time_ns(math.inf) == "inf"
