"""The job manager: lifecycle, byte-identity, shedding, recovery."""

import json
import os
import time

import pytest

from repro.cache import SweepCache, load_resume_manifest
from repro.parallel import merge_metrics_documents, run_sweep
from repro.serve.jobs import JobManager, build_sweep_spec, demo_sweep_spec
from repro.serve.protocol import (
    Job,
    JobSpec,
    JobState,
    ServeConfig,
    write_journal,
)

#: Small demo payload every test reuses (milliseconds of work).
DEMO = {"target": "demo", "points": 3, "draws": 64}


def _config(**overrides):
    defaults = dict(max_running=1, queue_depth=2, table_limit=8,
                    default_deadline_s=120.0, drain_budget_s=5.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture
def manager(tmp_path):
    cache = SweepCache(root=str(tmp_path / "cache"))
    mgr = JobManager(_config(), cache=cache)
    mgr.start()
    yield mgr
    mgr.drain(budget_s=10.0)


def _wait_terminal(manager, job_id, timeout_s=60.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        job = manager.get(job_id)
        if job is not None and job.terminal:
            return job
        time.sleep(0.02)
    raise TimeoutError(f"job {job_id!r} never terminated")


def reference_bytes(payload):
    """What `repro sweep <target> --json` would print for this spec."""
    spec = JobSpec.from_payload(payload)
    sweep = run_sweep(build_sweep_spec(spec), workers=1)
    sweep.raise_failures()
    merged = merge_metrics_documents(
        [(pr.key, pr.value["metrics"]) for pr in sweep.results],
        generated_by=f"repro sweep {spec.target}",
    )
    return (json.dumps(merged, indent=2) + "\n").encode("utf-8")


class TestSweepSpecs:
    def test_demo_spec_shape(self):
        spec = demo_sweep_spec(points=3, draws=64)
        assert spec.name == "serve-demo-3x64"
        assert [p.key for p in spec.points] == ["d000", "d001", "d002"]
        assert all(p.params["draws"] == 64 for p in spec.points)

    def test_demo_seeds_derive_per_key(self):
        spec = demo_sweep_spec(points=2, draws=64)
        assert spec.points[0].seed != spec.points[1].seed

    def test_chaos_block_wraps_the_spec(self):
        spec = build_sweep_spec(JobSpec(
            target="demo", points=2, draws=64,
            chaos={"transient_prob": 1.0},
        ))
        assert spec.name.endswith("+chaos")

    def test_stock_target_uses_cli_points(self):
        from repro.cli import stock_sweep_spec

        built = build_sweep_spec(JobSpec(target="fig5", quick=True))
        stock = stock_sweep_spec("fig5", quick=True, seed=0xC0FFEE,
                                 mode="controlled")
        assert [p.key for p in built.points] == [p.key for p in stock.points]


class TestLifecycle:
    def test_demo_job_runs_to_done(self, manager):
        decision, job = manager.submit(DEMO)
        assert decision.admitted
        landed = _wait_terminal(manager, job.id)
        assert landed.state is JobState.DONE
        assert (landed.done, landed.total) == (3, 3)
        events = [e["event"] for e in landed.events]
        assert events[0] == "queued" and events[-1] == "done"
        assert events.count("point") == 3

    def test_result_is_byte_identical_to_cli_merge(self, manager):
        _, job = manager.submit(DEMO)
        _wait_terminal(manager, job.id)
        assert manager.result_bytes(job.id) == reference_bytes(DEMO)

    def test_done_job_clears_its_resume_manifest(self, manager):
        _, job = manager.submit(DEMO)
        _wait_terminal(manager, job.id)
        assert load_resume_manifest(manager.cache, "serve-demo-3x64") is None

    def test_bad_spec_raises_before_admission(self, manager):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            manager.submit({"target": "fig99"})
        assert manager.list_jobs() == []

    def test_quarantine_when_retries_exhausted(self, manager):
        _, job = manager.submit(dict(
            DEMO, retries=0,
            chaos={"transient_prob": 1.0, "max_faulty_attempts": 3},
        ))
        landed = _wait_terminal(manager, job.id)
        assert landed.state is JobState.QUARANTINED
        assert landed.error is not None and landed.error["retryable"]
        assert manager.result_bytes(job.id) is None

    def test_chaos_survived_by_retries_is_byte_identical(self, manager):
        payload = dict(
            DEMO, retries=3,
            chaos={"transient_prob": 0.8, "max_faulty_attempts": 1},
        )
        _, job = manager.submit(payload)
        landed = _wait_terminal(manager, job.id)
        assert landed.state is JobState.DONE
        # Values never feel the faults: same bytes as the clean run.
        assert manager.result_bytes(job.id) == reference_bytes(payload)


class TestCancellation:
    def test_cancel_queued_job(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        manager = JobManager(_config(), cache=cache)
        # Scheduler not started: submissions stay queued.
        _, job = manager.submit(DEMO)
        cancelled = manager.cancel(job.id)
        assert cancelled.state is JobState.CANCELLED
        assert cancelled.reason == "cancelled by client"

    def test_cancel_running_job_checkpoints(self, manager):
        _, job = manager.submit(dict(DEMO, points=6, sleep_s=0.2))
        deadline = time.monotonic() + 30.0
        while manager.get(job.id).state is not JobState.RUNNING:
            assert time.monotonic() < deadline
            time.sleep(0.02)
        manager.cancel(job.id)
        landed = _wait_terminal(manager, job.id)
        assert landed.state is JobState.CANCELLED

    def test_cancel_unknown_job_is_none(self, manager):
        assert manager.cancel("nope-000000") is None


class TestDeadlines:
    def test_running_job_past_deadline_fails(self, manager):
        _, job = manager.submit(dict(DEMO, points=8, sleep_s=0.3,
                                     deadline_s=0.4))
        landed = _wait_terminal(manager, job.id)
        assert landed.state is JobState.FAILED
        assert landed.error["type"] == "DeadlineExceeded"

    def test_zero_deadline_means_none(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        manager = JobManager(_config(), cache=cache)
        _, job = manager.submit(dict(DEMO, deadline_s=0))
        assert job.deadline_ns is None


class TestShedding:
    def test_queue_full_sheds(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        manager = JobManager(_config(queue_depth=2), cache=cache)
        # No scheduler: both slots stay queued, the third sheds.
        assert manager.submit(DEMO)[0].admitted
        assert manager.submit(DEMO)[0].admitted
        decision, job = manager.submit(DEMO)
        assert not decision.admitted and job is None
        assert decision.reason == "queue-full"
        assert decision.retry_after_s > 0
        # Sheds never allocate table space or journal bytes.
        assert len(manager.list_jobs()) == 2
        assert len(os.listdir(manager.jobs_dir)) == 2

    def test_rate_limit_sheds_with_429_reason(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        manager = JobManager(
            _config(rate_per_s=1.0, burst=1.0, queue_depth=8,
                    table_limit=16),
            cache=cache,
        )
        assert manager.submit(DEMO)[0].admitted
        decision, _ = manager.submit(DEMO)
        assert decision.reason == "rate"

    def test_draining_sheds_everything(self, manager):
        manager.drain(budget_s=5.0)
        decision, job = manager.submit(DEMO)
        assert not decision.admitted
        assert decision.reason == "draining"


class TestRecoveryAndEviction:
    def test_running_journal_entry_is_requeued_and_resumed(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        config = _config()
        # A dead server's journal: the job was mid-flight.
        crashed = Job(id="demo-000000", seq=0,
                      spec=JobSpec.from_payload(DEMO),
                      state=JobState.RUNNING, done=1, total=3)
        write_journal(os.path.join(cache.root, "serve", "jobs"), crashed)

        manager = JobManager(config, cache=cache)
        manager.start()
        try:
            assert manager.recovered == 1
            landed = _wait_terminal(manager, "demo-000000")
            assert landed.state is JobState.DONE
            assert landed.resumed == 1
            assert manager.result_bytes("demo-000000") == \
                reference_bytes(DEMO)
        finally:
            manager.drain(budget_s=10.0)

    def test_terminal_journal_entries_stay_terminal(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        done = Job(id="demo-000000", seq=0,
                   spec=JobSpec.from_payload(DEMO),
                   state=JobState.DONE, done=3, total=3)
        write_journal(os.path.join(cache.root, "serve", "jobs"), done)
        manager = JobManager(_config(), cache=cache)
        manager.start()
        try:
            assert manager.recovered == 0
            assert manager.get("demo-000000").state is JobState.DONE
        finally:
            manager.drain(budget_s=5.0)

    def test_seq_continues_past_recovered_jobs(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        old = Job(id="demo-000004", seq=4, spec=JobSpec.from_payload(DEMO),
                  state=JobState.DONE)
        write_journal(os.path.join(cache.root, "serve", "jobs"), old)
        manager = JobManager(_config(), cache=cache)
        manager._recover()
        _, job = manager.submit(DEMO)
        assert job.seq == 5
        assert job.id == "demo-000005"

    def test_eviction_bounds_the_table(self, manager):
        ids = []
        for _ in range(manager.config.table_limit + 2):
            decision, job = manager.submit(DEMO)
            assert decision.admitted, decision
            ids.append(job.id)
            _wait_terminal(manager, job.id)
        table = {job.id for job in manager.list_jobs()}
        assert len(table) <= manager.config.table_limit
        assert ids[-1] in table and ids[0] not in table
        # Evicted journals and results are gone from disk too.
        assert f"{ids[0]}.json" not in os.listdir(manager.jobs_dir)


class TestStats:
    def test_snapshot_shape(self, manager):
        _, job = manager.submit(DEMO)
        _wait_terminal(manager, job.id)
        stats = manager.stats()
        assert stats["jobs_total"] == 1
        assert stats["jobs"]["done"] == 1
        assert stats["recovered"] == 0
        assert stats["draining"] is False
        assert {"queued", "running", "max_running",
                "rejected_full"} <= set(stats)
