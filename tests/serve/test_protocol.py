"""The serve wire/journal protocol: specs, the state machine, journals."""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.serve.protocol import (
    JOB_SCHEMA,
    JOB_TARGETS,
    TERMINAL_STATES,
    Job,
    JobSpec,
    JobState,
    ServeConfig,
    clear_journal,
    load_journal,
    write_journal,
)


class TestTargets:
    def test_targets_pin_the_cli_sweeps(self):
        # JOB_TARGETS duplicates repro.cli.SWEEP_TARGETS so importing
        # the protocol never drags in the analysis stack; this pin
        # catches the two drifting apart.
        from repro.cli import SWEEP_TARGETS

        assert JOB_TARGETS == ("demo",) + SWEEP_TARGETS


class TestJobSpec:
    def test_defaults_round_trip_through_payload(self):
        spec = JobSpec(target="fig5")
        assert JobSpec.from_payload(spec.as_dict()) == spec

    def test_demo_round_trip_keeps_grid_shape(self):
        spec = JobSpec(target="demo", points=3, draws=64, sleep_s=0.1,
                       deadline_s=5.0, workers=2)
        doc = spec.as_dict()
        assert doc["points"] == 3 and doc["sleep_s"] == 0.1
        assert JobSpec.from_payload(doc) == spec

    def test_figure_spec_omits_demo_fields(self):
        doc = JobSpec(target="fig5").as_dict()
        assert "points" not in doc and "draws" not in doc

    def test_unknown_target_rejected(self):
        with pytest.raises(ConfigurationError):
            JobSpec(target="fig99")

    def test_unknown_payload_key_rejected(self):
        with pytest.raises(ConfigurationError, match="deadine_s"):
            JobSpec.from_payload({"target": "demo", "deadine_s": 5})

    def test_payload_needs_target(self):
        with pytest.raises(ConfigurationError, match="target"):
            JobSpec.from_payload({"points": 4})

    def test_payload_must_be_object(self):
        with pytest.raises(ConfigurationError):
            JobSpec.from_payload(["demo"])

    def test_malformed_numeric_field(self):
        with pytest.raises(ConfigurationError, match="malformed"):
            JobSpec.from_payload({"target": "demo", "draws": "many"})

    @pytest.mark.parametrize("bad", [
        {"seed": -1},
        {"workers": 0},
        {"deadline_s": -1.0},
        {"point_timeout_s": 0},
        {"retries": -1},
        {"points": 0},
        {"points": 5000},
        {"draws": 0},
        {"sleep_s": -0.1},
        {"mode": "chaotic"},
    ])
    def test_envelope_validation(self, bad):
        with pytest.raises(ConfigurationError):
            JobSpec(target="demo", **bad)

    def test_chaos_plan_validated_at_submission(self):
        JobSpec(target="demo", chaos={"transient_prob": 0.5})
        with pytest.raises(ConfigurationError, match="chaos"):
            JobSpec(target="demo", chaos={"transient_probb": 0.5})


class TestStateMachine:
    def _job(self, state=JobState.QUEUED):
        return Job(id="demo-000000", seq=0, spec=JobSpec(target="demo"),
                   state=state)

    def test_happy_path(self):
        job = self._job()
        job.transition(JobState.RUNNING)
        job.transition(JobState.DONE, "completed")
        assert job.terminal and not job.active
        assert job.reason == "completed"

    def test_recovery_edge_running_back_to_queued(self):
        job = self._job(JobState.RUNNING)
        job.transition(JobState.QUEUED, "recovered after crash")
        assert job.state is JobState.QUEUED

    def test_terminal_states_are_absorbing(self):
        for state in TERMINAL_STATES:
            job = self._job(state)
            with pytest.raises(ConfigurationError, match="illegal"):
                job.transition(JobState.RUNNING)

    def test_queued_cannot_jump_to_done(self):
        with pytest.raises(ConfigurationError, match="illegal"):
            self._job().transition(JobState.DONE)

    def test_self_transition_is_a_noop(self):
        job = self._job()
        job.transition(JobState.QUEUED)
        assert job.state is JobState.QUEUED

    def test_emit_sequences_events(self):
        job = self._job()
        job.emit({"event": "queued"})
        job.emit({"event": "running"})
        assert [e["seq"] for e in job.events] == [0, 1]


class TestJournal:
    def _job(self, job_id="demo-000007", seq=7):
        job = Job(id=job_id, seq=seq, spec=JobSpec(target="demo", points=2),
                  state=JobState.RUNNING, done=1, total=2)
        return job

    def test_round_trip(self, tmp_path):
        directory = str(tmp_path)
        write_journal(directory, self._job())
        (job,) = load_journal(directory)
        assert job.id == "demo-000007"
        assert job.state is JobState.RUNNING
        assert (job.done, job.total) == (1, 2)
        assert job.spec.points == 2

    def test_journal_document_carries_schema(self, tmp_path):
        path = write_journal(str(tmp_path), self._job())
        with open(path) as fh:
            doc = json.load(fh)
        assert doc["schema"] == JOB_SCHEMA

    def test_sorted_by_submission_seq(self, tmp_path):
        directory = str(tmp_path)
        write_journal(directory, self._job("z-000009", seq=9))
        write_journal(directory, self._job("a-000001", seq=1))
        assert [job.seq for job in load_journal(directory)] == [1, 9]

    def test_corrupt_documents_demote_to_skip(self, tmp_path):
        directory = str(tmp_path)
        write_journal(directory, self._job())
        with open(os.path.join(directory, "torn.json"), "w") as fh:
            fh.write('{"schema": "repro.job/v1", "id":')
        with open(os.path.join(directory, "foreign.json"), "w") as fh:
            json.dump({"schema": "other/v1", "id": "x"}, fh)
        with open(os.path.join(directory, "badspec.json"), "w") as fh:
            json.dump({"schema": JOB_SCHEMA, "id": "x", "seq": 0,
                       "state": "queued",
                       "spec": {"target": "fig99"}}, fh)
        jobs = load_journal(directory)
        assert [job.id for job in jobs] == ["demo-000007"]

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_journal(str(tmp_path / "nope")) == []

    def test_clear(self, tmp_path):
        directory = str(tmp_path)
        write_journal(directory, self._job())
        assert clear_journal(directory, "demo-000007")
        assert not clear_journal(directory, "demo-000007")
        assert load_journal(directory) == []


class TestServeConfig:
    def test_defaults_are_valid(self):
        config = ServeConfig()
        assert config.port == 8023
        assert config.table_limit >= config.max_running + config.queue_depth

    @pytest.mark.parametrize("bad", [
        {"port": -1},
        {"port": 70000},
        {"workers": 0},
        {"max_running": 0},
        {"queue_depth": 0},
        {"rate_per_s": 0},
        {"table_limit": 1},
        {"default_deadline_s": -1},
        {"drain_budget_s": 0},
        {"request_timeout_s": 0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ConfigurationError):
            ServeConfig(**bad)
