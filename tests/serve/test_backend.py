"""Backend selection in serve job specs."""

import pytest

from repro.errors import ConfigurationError
from repro.serve.jobs import build_sweep_spec
from repro.serve.protocol import JobSpec


class TestJobSpecBackend:
    def test_default_is_des_and_not_emitted(self):
        spec = JobSpec.from_payload({"target": "fig5"})
        assert spec.backend == "des"
        assert "backend" not in spec.as_dict()

    @pytest.mark.parametrize("backend", ["analytic", "auto"])
    def test_round_trips(self, backend):
        spec = JobSpec.from_payload({"target": "fig5", "backend": backend})
        assert spec.backend == backend
        doc = spec.as_dict()
        assert doc["backend"] == backend
        assert JobSpec.from_payload(doc) == spec

    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError, match="backend"):
            JobSpec.from_payload({"target": "fig5", "backend": "magic"})

    def test_rejects_forced_analytic_without_fast_path(self):
        # Submission-time rejection (HTTP 400), not a failed job later.
        for target in ("fig7", "fig10", "overload", "demo"):
            with pytest.raises(ConfigurationError,
                               match="no analytical backend"):
                JobSpec.from_payload({"target": target,
                                      "backend": "analytic"})

    def test_auto_is_legal_on_every_target(self):
        for target in ("fig5", "fig7", "overload", "demo"):
            spec = JobSpec.from_payload({"target": target, "backend": "auto"})
            assert spec.backend == "auto"

    def test_unknown_keys_still_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown job spec"):
            JobSpec.from_payload({"target": "fig5", "backnd": "auto"})


class TestBuildSweepSpec:
    def test_backend_reaches_the_sweep_spec(self):
        des = build_sweep_spec(JobSpec(target="fig8"))
        ana = build_sweep_spec(JobSpec(target="fig8", backend="analytic"))
        assert des.task is not ana.task
        assert [p.key for p in des.points] == [p.key for p in ana.points]

    def test_auto_demo_stays_on_des(self):
        spec = build_sweep_spec(JobSpec(target="demo", backend="auto",
                                        points=2, draws=8))
        assert spec.points
