"""The HTTP front-end, end to end over real sockets."""

import json
import time

import pytest

from repro.cache import SweepCache
from repro.serve import BackgroundServer, ServeClient, ServeConfig

from .test_jobs import DEMO, reference_bytes

#: Slow demo payload a test can observe mid-flight.
SLOW = dict(DEMO, points=6, sleep_s=0.3)


def _config(**overrides):
    defaults = dict(port=0, max_running=1, queue_depth=2, table_limit=8,
                    default_deadline_s=120.0, drain_budget_s=10.0)
    defaults.update(overrides)
    return ServeConfig(**defaults)


@pytest.fixture
def server(tmp_path):
    cache = SweepCache(root=str(tmp_path / "cache"))
    with BackgroundServer(_config(), cache=cache) as srv:
        yield srv


@pytest.fixture
def client(server):
    return ServeClient("127.0.0.1", server.port)


class TestProbes:
    def test_healthz(self, client):
        response = client.healthz()
        assert response.status == 200 and response.json == {"ok": True}

    def test_readyz_when_idle(self, client):
        response = client.readyz()
        assert response.status == 200
        assert response.json["ready"] is True

    def test_metrics_is_a_metrics_document(self, client):
        doc = client.metrics().json
        assert doc["schema"] == "repro.metrics/v1"
        names = {m["name"] for m in doc["metrics"]}
        assert {"serve_queued", "serve_running", "serve_draining"} <= names

    def test_unknown_path_404(self, client):
        assert client._request("GET", "/nope").status == 404

    def test_wrong_method_405(self, client):
        assert client._request("DELETE", "/healthz").status == 405


class TestJobsOverHttp:
    def test_submit_poll_result_round_trip(self, client):
        response = client.submit(DEMO)
        assert response.status == 201
        record = response.json
        assert record["schema"] == "repro.job/v1"
        assert record["state"] in ("queued", "running")
        landed = client.wait(record["id"], timeout_s=60.0)
        assert landed["state"] == "done"
        assert client.result(record["id"]) == reference_bytes(DEMO)

    def test_job_table_lists_submissions(self, client):
        job_id = client.submit(DEMO).json["id"]
        client.wait(job_id, timeout_s=60.0)
        assert job_id in {job["id"] for job in client.jobs()}

    def test_submit_rejects_bad_spec_with_400(self, client):
        response = client.submit({"target": "fig99"})
        assert response.status == 400
        assert "fig99" in response.json["error"]

    def test_submit_rejects_unknown_field_with_400(self, client):
        assert client.submit({"target": "demo", "bogus": 1}).status == 400

    def test_submit_rejects_non_json_body(self, client):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", client.port,
                                          timeout=10)
        try:
            conn.request("POST", "/jobs", body=b"not json{",
                         headers={"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_unknown_job_404(self, client):
        assert client.job("demo-999999").status == 404
        assert client.cancel("demo-999999").status == 404

    def test_result_before_done_is_409(self, client):
        job_id = client.submit(SLOW).json["id"]
        response = client._request("GET", f"/jobs/{job_id}/result")
        assert response.status == 409
        client.cancel(job_id)
        client.wait(job_id, timeout_s=60.0)

    def test_cancel_running_job_over_http(self, client):
        job_id = client.submit(SLOW).json["id"]
        client.wait_for_event(
            job_id, lambda e: e["event"] == "running", timeout_s=30.0
        )
        assert client.cancel(job_id).status == 200
        landed = client.wait(job_id, timeout_s=60.0)
        assert landed["state"] == "cancelled"


class TestEventStream:
    def test_stream_carries_lifecycle_and_progress(self, client):
        job_id = client.submit(DEMO).json["id"]
        events = list(client.events(job_id))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "queued" and kinds[-1] == "done"
        assert kinds.count("point") == DEMO["points"]
        # Monotonic sequence numbers: no event lost or duplicated.
        assert [e["seq"] for e in events] == list(range(len(events)))

    def test_stream_for_unknown_job_is_404(self, client):
        with pytest.raises(RuntimeError, match="404"):
            next(client.events("demo-999999"))


class TestBackpressure:
    def test_queue_full_sheds_503_and_readyz_flips(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        with BackgroundServer(
            _config(max_running=1, queue_depth=1), cache=cache
        ) as server:
            client = ServeClient("127.0.0.1", server.port)
            accepted = []
            shed = None
            for _ in range(6):
                response = client.submit(SLOW)
                if response.status == 201:
                    accepted.append(response.json["id"])
                else:
                    shed = response
                    break
            assert shed is not None, "queue never filled"
            assert shed.status == 503
            assert shed.retry_after_s is not None and shed.retry_after_s >= 1
            assert shed.json["decision"]["reason"] == "queue-full"
            # Saturated queue flips readiness (with its own hint).
            ready = client.readyz()
            assert ready.status == 503
            assert ready.json["ready"] is False
            assert ready.retry_after_s is not None
            for job_id in accepted:
                client.cancel(job_id)
                client.wait(job_id, timeout_s=60.0)

    def test_rate_burst_sheds_429(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        with BackgroundServer(
            _config(rate_per_s=1.0, burst=1.0, queue_depth=8,
                    table_limit=16),
            cache=cache,
        ) as server:
            client = ServeClient("127.0.0.1", server.port)
            verdicts = [client.submit(DEMO) for _ in range(4)]
            statuses = [v.status for v in verdicts]
            assert statuses[0] == 201
            assert 429 in statuses
            shed = next(v for v in verdicts if v.status == 429)
            assert shed.retry_after_s is not None
            assert shed.json["decision"]["reason"] == "rate"


class TestDrain:
    def test_drain_flips_readyz_then_sheds(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        server = BackgroundServer(_config(), cache=cache).start()
        client = ServeClient("127.0.0.1", server.port)
        job_id = client.submit(SLOW).json["id"]
        client.wait_for_event(
            job_id, lambda e: e["event"] == "running", timeout_s=30.0
        )
        assert server.stop() is True  # checkpointed inside the budget
        # The manager refuses new work after the drain.
        decision, job = server.manager.submit(DEMO)
        assert not decision.admitted and decision.reason == "draining"
        # The interrupted job is still `running` on disk for the next
        # boot to requeue — the SIGTERM-resume contract.
        job_doc = json.loads(
            open(f"{server.manager.jobs_dir}/{job_id}.json").read()
        )
        assert job_doc["state"] in ("running", "done")

    def test_checkpointed_job_resumes_on_next_boot(self, tmp_path):
        cache_root = str(tmp_path / "cache")
        config = _config()
        server = BackgroundServer(
            config, cache=SweepCache(root=cache_root)
        ).start()
        client = ServeClient("127.0.0.1", server.port)
        job_id = client.submit(SLOW).json["id"]
        client.wait_for_event(
            job_id, lambda e: e.get("done", 0) >= 1, timeout_s=60.0
        )
        assert server.stop() is True

        # Second boot on the same cache: the journal requeues the job
        # and the finished points come back as cache hits.
        with BackgroundServer(
            config, cache=SweepCache(root=cache_root)
        ) as reborn:
            client = ServeClient("127.0.0.1", reborn.port)
            landed = client.wait(job_id, timeout_s=120.0)
            assert landed["state"] == "done"
            assert landed["resumed"] >= 1
            assert client.result(job_id) == reference_bytes(SLOW)


class TestRequestHygiene:
    def test_malformed_request_line_is_400(self, server):
        import socket

        with socket.create_connection(("127.0.0.1", server.port),
                                      timeout=10) as sock:
            sock.sendall(b"GARBAGE\r\n\r\n")
            assert b"400" in sock.recv(4096).split(b"\r\n", 1)[0]

    def test_stalled_client_gets_408(self, tmp_path):
        import socket

        cache = SweepCache(root=str(tmp_path / "cache"))
        with BackgroundServer(
            _config(request_timeout_s=0.3), cache=cache
        ) as server:
            with socket.create_connection(("127.0.0.1", server.port),
                                          timeout=10) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\n")  # never finishes
                deadline = time.monotonic() + 10.0
                data = b""
                while b"\r\n" not in data and time.monotonic() < deadline:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    data += chunk
                assert b"408" in data.split(b"\r\n", 1)[0]

    def test_oversized_body_rejected(self, server):
        import http.client

        conn = http.client.HTTPConnection("127.0.0.1", server.port,
                                          timeout=10)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Length", str(2 << 20))
            conn.endheaders()
            assert conn.getresponse().status == 400
        finally:
            conn.close()
