"""Tests for the declarative hardware specs."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.spec import CpuSpec, CxlDeviceSpec, DimmSpec, NicSpec, ServerSpec, SsdSpec
from repro.units import GIB


class TestDimmSpec:
    def test_channel_peak_ddr5_4800(self):
        """DDR5-4800 x 8 bytes = 38.4 GB/s — the §3.1 theoretical figure."""
        dimm = DimmSpec(speed_mt_s=4800)
        assert dimm.channel_peak_bytes_per_s == pytest.approx(38.4e9)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DimmSpec(capacity_bytes=0)
        with pytest.raises(ConfigurationError):
            DimmSpec(speed_mt_s=0)


class TestCpuSpec:
    def test_channels_per_domain(self):
        cpu = CpuSpec(memory_channels=8, snc_domains=4)
        assert cpu.channels_per_domain == 2

    def test_socket_memory(self):
        cpu = CpuSpec(memory_channels=8, dimm=DimmSpec(capacity_bytes=64 * GIB))
        assert cpu.socket_memory_bytes == 512 * GIB

    def test_channels_must_divide(self):
        with pytest.raises(ConfigurationError):
            CpuSpec(memory_channels=6, snc_domains=4)
        with pytest.raises(ConfigurationError):
            CpuSpec(cores=0)


class TestCxlDeviceSpec:
    def test_pcie_raw_rate_x16_gen5(self):
        dev = CxlDeviceSpec(pcie_lanes=16, pcie_gts=32.0)
        assert dev.pcie_raw_bytes_per_s == pytest.approx(64e9)

    def test_lane_widths(self):
        for lanes in (4, 8, 16):
            CxlDeviceSpec(pcie_lanes=lanes)
        with pytest.raises(ConfigurationError):
            CxlDeviceSpec(pcie_lanes=2)
        with pytest.raises(ConfigurationError):
            CxlDeviceSpec(capacity_bytes=0)


class TestSsdAndNic:
    def test_ssd_validation(self):
        with pytest.raises(ConfigurationError):
            SsdSpec(capacity_bytes=0)
        with pytest.raises(ConfigurationError):
            SsdSpec(read_latency_ns=0)
        with pytest.raises(ConfigurationError):
            SsdSpec(read_bandwidth_bytes_per_s=0)

    def test_nic_bytes(self):
        nic = NicSpec(bandwidth_bits_per_s=100e9)
        assert nic.bandwidth_bytes_per_s == pytest.approx(12.5e9)


class TestServerSpec:
    def test_totals(self):
        spec = ServerSpec(
            sockets=2,
            cxl_devices=(CxlDeviceSpec(), CxlDeviceSpec()),
        )
        assert spec.total_cores == 2 * spec.cpu.cores
        assert spec.total_memory_bytes == spec.total_mmem_bytes + 512 * GIB

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServerSpec(sockets=-1)
        with pytest.raises(ConfigurationError):
            ServerSpec(sockets=1, cxl_socket=1)
