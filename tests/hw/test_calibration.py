"""The hardware model must reproduce the paper's §3 anchors."""

import pytest

from repro.hw.calibration import (
    ANCHORS,
    path_bandwidth_curve,
    path_latency_model,
)
from repro.units import to_gb_per_s


class TestIdleLatencyAnchors:
    def test_mmem_local_read_97ns(self):
        assert path_latency_model("mmem_local").idle_ns(0.0) == pytest.approx(97.0)

    def test_mmem_remote_read_130ns_write_71_77ns(self):
        model = path_latency_model("mmem_remote")
        assert model.idle_ns(0.0) == pytest.approx(130.0)
        assert model.idle_ns(1.0) == pytest.approx(71.77)

    def test_cxl_local_250_42ns(self):
        assert path_latency_model("cxl_local").idle_ns(0.0) == pytest.approx(250.42)

    def test_cxl_remote_485ns(self):
        assert path_latency_model("cxl_remote").idle_ns(0.0) == pytest.approx(485.0)

    def test_cxl_vs_mmem_ratio_in_paper_band(self):
        """CXL latency is 2.4-2.6x local DDR (§3.3)."""
        ratio = path_latency_model("cxl_local").idle_ns(0.0) / path_latency_model(
            "mmem_local"
        ).idle_ns(0.0)
        lo, hi = ANCHORS.cxl_vs_mmem_latency_ratio
        assert lo <= ratio <= hi

    def test_cxl_vs_mmem_remote_ratio_in_paper_band(self):
        """CXL latency is 1.5-1.92x remote-socket DDR (§3.3)."""
        ratio = path_latency_model("cxl_local").idle_ns(0.0) / path_latency_model(
            "mmem_remote"
        ).idle_ns(0.0)
        lo, hi = ANCHORS.cxl_vs_mmem_remote_latency_ratio
        assert lo <= ratio <= hi + 0.02  # 250.42/130 = 1.926

    def test_distance_ordering(self):
        """MMEM < MMEM-snc < MMEM-r < CXL < CXL-r for read idle latency."""
        latencies = [
            path_latency_model(k).idle_ns(0.0)
            for k in ("mmem_local", "mmem_snc", "mmem_remote", "cxl_local", "cxl_remote")
        ]
        assert latencies == sorted(latencies)


class TestBandwidthAnchors:
    def test_mmem_read_67_write_54_6(self):
        curve = path_bandwidth_curve("mmem_local")
        assert to_gb_per_s(curve(0.0)) == pytest.approx(67.0)
        assert to_gb_per_s(curve(1.0)) == pytest.approx(54.6)

    def test_mmem_read_efficiency_87_percent(self):
        """67 GB/s is 87 % of the 76.8 GB/s theoretical peak (§3.2)."""
        eff = ANCHORS.mmem_read_peak_gbps / ANCHORS.snc_domain_theoretical_gbps
        assert eff == pytest.approx(0.87, abs=0.01)

    def test_cxl_peaks_at_2_1_mix(self):
        curve = path_bandwidth_curve("cxl_local")
        frac, peak = curve.peak()
        assert frac == pytest.approx(1 / 3)
        assert to_gb_per_s(peak) == pytest.approx(56.7)

    def test_cxl_read_only_below_mixed_peak(self):
        """Read-only cannot use both PCIe directions (§3.2)."""
        curve = path_bandwidth_curve("cxl_local")
        assert curve(0.0) < curve(1 / 3)

    def test_cxl_remote_halved_by_rsf(self):
        """Remote CXL is 20.4 GB/s at 2:1 — far below local 56.7 (§3.2)."""
        local = path_bandwidth_curve("cxl_local")(1 / 3)
        remote = path_bandwidth_curve("cxl_remote")(1 / 3)
        assert to_gb_per_s(remote) == pytest.approx(20.4, abs=0.1)
        assert remote < local / 2.5

    def test_mmem_remote_write_only_is_worst(self):
        """Write-only remote suffers most: one UPI direction idle (§3.2)."""
        curve = path_bandwidth_curve("mmem_remote")
        assert curve(1.0) < curve(0.5) < curve(0.0)

    def test_unknown_kind_raises(self):
        with pytest.raises(KeyError):
            path_bandwidth_curve("nvram")
        with pytest.raises(KeyError):
            path_latency_model("nvram")


class TestApplicationAnchors:
    def test_cost_model_example_values(self):
        ex = ANCHORS.cost_example
        assert ex["R_d"] == 10.0 and ex["R_c"] == 8.0
        assert ex["server_ratio"] == pytest.approx(0.6729, abs=1e-4)
        assert ex["tco_saving"] == pytest.approx(0.2598, abs=1e-4)

    def test_keydb_bands_sane(self):
        lo, hi = ANCHORS.keydb_interleave_slowdown
        assert 1.0 < lo < hi
        assert ANCHORS.keydb_ssd_slowdown > hi
