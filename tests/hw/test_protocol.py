"""Tests for the CXL.mem protocol budget — and its consistency with the
calibrated bandwidth curves."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.calibration import path_bandwidth_curve
from repro.hw.protocol import CxlLinkBudget


class TestLinkBudget:
    def test_raw_rate_x16_gen5(self):
        budget = CxlLinkBudget()
        assert budget.raw_bytes_per_s_per_direction == pytest.approx(64e9)

    def test_flit_framing_efficiency(self):
        budget = CxlLinkBudget()
        assert budget.link_efficiency == pytest.approx(64 / 68)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CxlLinkBudget(lanes=0)
        with pytest.raises(ConfigurationError):
            CxlLinkBudget(link_efficiency=0.0)
        with pytest.raises(ConfigurationError):
            CxlLinkBudget().data_bandwidth(1.5)

    def test_mixed_traffic_beats_unidirectional(self):
        """§3.2: read-only cannot use both PCIe directions, so a mixed
        stream delivers more data — derived, not assumed."""
        budget = CxlLinkBudget()
        assert budget.data_bandwidth(1 / 3) > budget.data_bandwidth(0.0)
        assert budget.data_bandwidth(1 / 3) > budget.data_bandwidth(1.0)

    def test_best_mix_is_interior(self):
        best = CxlLinkBudget().best_mix()
        assert 0.2 < best < 0.8

    def test_read_only_efficiency_near_75_percent(self):
        """Read-only moves ~72 B per 64 B of data after framing: ~78 %
        of the raw line rate, bracketing the A1000's measured 73.6 %."""
        eff = CxlLinkBudget().efficiency(0.0)
        assert 0.70 <= eff <= 0.85

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_bandwidth_positive_and_bounded(self, wf):
        budget = CxlLinkBudget()
        bw = budget.data_bandwidth(wf)
        # Both directions together can never move more than 2x one
        # direction's payload rate.
        assert 0 < bw <= 2 * budget.payload_bytes_per_s_per_direction


class TestCalibrationConsistency:
    """The calibrated (measured) curves must respect protocol physics."""

    @pytest.mark.parametrize("wf", [0.0, 1 / 3, 0.5, 2 / 3, 1.0])
    def test_calibrated_cxl_curve_within_link_budget(self, wf):
        budget = CxlLinkBudget()
        measured = path_bandwidth_curve("cxl_local")(wf)
        assert measured <= budget.data_bandwidth(wf) * 1.001

    @pytest.mark.parametrize("wf", [0.0, 1 / 3, 1.0])
    def test_calibrated_curve_within_dram_backend(self, wf):
        """The device's two DDR5 channels are the other ceiling."""
        dram_backend = path_bandwidth_curve("mmem_local")(wf)  # 2 channels
        measured = path_bandwidth_curve("cxl_local")(wf)
        assert measured <= dram_backend * 1.001

    def test_controller_efficiency_grounds_the_gap(self):
        """Measured peak / min(link, DRAM) = the ASIC controller's own
        efficiency; it must be high (ASIC) but below 1."""
        wf = 1 / 3
        budget = CxlLinkBudget()
        bound = min(
            budget.data_bandwidth(wf), path_bandwidth_curve("mmem_local")(wf)
        )
        measured = path_bandwidth_curve("cxl_local")(wf)
        assert 0.80 <= measured / bound <= 1.0
