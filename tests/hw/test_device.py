"""Tests for runtime devices (SSD model, shared resources, nodes)."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hw.bandwidth import PeakBandwidthCurve
from repro.hw.device import MemoryNode, NodeKind, SharedResource, SsdDevice
from repro.hw.spec import SsdSpec


class TestSsdDevice:
    def test_read_time_components(self):
        ssd = SsdDevice(SsdSpec())
        t = ssd.access_time_ns(1_000_000, is_write=False)
        expected = 80_000.0 + 1_000_000 / 3.2e9 * 1e9
        assert t == pytest.approx(expected)
        assert ssd.bytes_read == 1_000_000

    def test_write_time_components(self):
        ssd = SsdDevice(SsdSpec())
        t = ssd.access_time_ns(1_000_000, is_write=True)
        expected = 20_000.0 + 1_000_000 / 2.0e9 * 1e9
        assert t == pytest.approx(expected)
        assert ssd.bytes_written == 1_000_000

    def test_queueing_inflation(self):
        ssd = SsdDevice(SsdSpec())
        idle = ssd.access_time_ns(4096, False, utilization=0.0)
        busy = ssd.access_time_ns(4096, False, utilization=0.5)
        assert busy == pytest.approx(idle * 2.0)

    def test_validation(self):
        ssd = SsdDevice(SsdSpec())
        with pytest.raises(CapacityError):
            ssd.access_time_ns(-1, False)
        with pytest.raises(ConfigurationError):
            ssd.access_time_ns(1, False, utilization=1.5)

    def test_reset_counters(self):
        ssd = SsdDevice(SsdSpec())
        ssd.access_time_ns(100, False)
        ssd.reset_counters()
        assert ssd.bytes_read == 0 and ssd.bytes_written == 0


class TestSharedResourceAndNode:
    def test_resource_capacity_follows_curve(self):
        res = SharedResource("r", PeakBandwidthCurve.from_points([(0.0, 10.0), (1.0, 5.0)]))
        assert res.capacity(0.0) == 10.0
        assert res.capacity(1.0) == 5.0

    def test_node_validation(self):
        res = SharedResource("r", PeakBandwidthCurve.flat(1.0))
        with pytest.raises(ConfigurationError):
            MemoryNode(0, NodeKind.DRAM, 0, capacity_bytes=0, resource=res)
        with pytest.raises(ConfigurationError):
            MemoryNode(0, NodeKind.CXL, 0, capacity_bytes=1, resource=res, domain=2)

    def test_is_cxl(self):
        res = SharedResource("r", PeakBandwidthCurve.flat(1.0))
        assert MemoryNode(0, NodeKind.CXL, 0, 1, res).is_cxl
        assert not MemoryNode(0, NodeKind.DRAM, 0, 1, res).is_cxl
