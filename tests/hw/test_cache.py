"""Tests for the cache hierarchy simulation."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw.cache import CacheHierarchy, CacheLevel, sapphire_rapids_caches
from repro.units import KIB, MIB
from repro.workloads import sequential_trace, uniform_trace, zipfian_trace


def small_hierarchy():
    return CacheHierarchy(
        levels=(
            CacheLevel("L1", 8 * 4096, 1.0),   # 8 pages
            CacheLevel("L2", 64 * 4096, 5.0),  # 64 pages
        ),
        granule_bytes=4096,
    )


class TestValidation:
    def test_level_validation(self):
        with pytest.raises(ConfigurationError):
            CacheLevel("bad", 0, 1.0)
        with pytest.raises(ConfigurationError):
            CacheLevel("bad", 100, 0.0)

    def test_levels_must_grow(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(
                levels=(CacheLevel("big", MIB, 1.0), CacheLevel("small", KIB, 5.0))
            )

    def test_empty_hierarchy(self):
        with pytest.raises(ConfigurationError):
            CacheHierarchy(levels=())

    def test_memory_latency_positive(self):
        with pytest.raises(ConfigurationError):
            small_hierarchy().simulate(sequential_trace(4, 10), 0.0)


class TestSimulation:
    def test_tiny_footprint_all_l1(self):
        h = small_hierarchy()
        # 4 pages fit L1; after the first cold pass everything hits L1.
        trace = sequential_trace(4, 4000)
        result = h.simulate(trace, memory_latency_ns=97.0)
        assert result.hit_rate("L1") > 0.99
        assert result.amat_ns < 1.2

    def test_medium_footprint_spills_to_l2(self):
        h = small_hierarchy()
        trace = sequential_trace(32, 3200)  # > L1 (8), < L2 (64)
        result = h.simulate(trace, memory_latency_ns=97.0)
        assert result.hit_rate("L2") > 0.5
        assert result.miss_rate < 0.05

    def test_huge_footprint_converges_to_memory_latency(self):
        h = small_hierarchy()
        rng = np.random.default_rng(1)
        trace = uniform_trace(100_000, 20_000, rng=rng)
        result = h.simulate(trace, memory_latency_ns=97.0)
        assert result.miss_rate > 0.95
        assert result.amat_ns == pytest.approx(97.0, rel=0.06)

    def test_amat_monotone_in_footprint(self):
        h = small_hierarchy()
        amats = []
        for pages in (4, 32, 256, 4096):
            trace = sequential_trace(pages, pages * 20)
            amats.append(h.simulate(trace, 97.0).amat_ns)
        assert amats == sorted(amats)

    def test_zipfian_beats_uniform(self):
        """Skewed reuse caches better than uniform at equal footprint —
        the same property that drives Hot-Promote."""
        h = small_hierarchy()
        rng = np.random.default_rng(2)
        z = h.simulate(zipfian_trace(10_000, 20_000, rng=rng), 97.0)
        u = h.simulate(uniform_trace(10_000, 20_000, rng=rng), 97.0)
        assert z.amat_ns < u.amat_ns

    def test_cxl_memory_raises_amat_only_by_miss_share(self):
        """With a hot working set, swapping the backing store from DRAM
        (97 ns) to CXL (250 ns) barely moves AMAT — the §4.3 effect."""
        h = small_hierarchy()
        # Hot set (~96 pages) fits L2: only the Zipfian tail reaches memory.
        trace = zipfian_trace(96, 50_000, rng=np.random.default_rng(3))
        dram = h.simulate(trace, 97.0)
        cxl = h.simulate(trace, 250.42)
        assert dram.miss_rate < 0.1
        assert cxl.amat_ns / dram.amat_ns < 1.8  # far below the raw 2.58x

    def test_result_helpers(self):
        h = small_hierarchy()
        result = h.simulate(sequential_trace(4, 100), 97.0)
        d = result.as_dict()
        assert set(d) == {"hit_L1", "hit_L2", "miss", "amat_ns"}
        assert d["hit_L1"] + d["hit_L2"] + d["miss"] == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            result.hit_rate("L9")

    def test_spr_preset(self):
        levels = sapphire_rapids_caches()
        assert [l.name for l in levels] == ["L1D", "L2", "L3"]
        assert levels[0].capacity_bytes < levels[1].capacity_bytes < levels[2].capacity_bytes
