"""Regression tests for PeakBandwidthCurve's precomputed knot list.

The knots (``_fracs``) are computed once at construction because
``__call__`` sits under every loaded-latency evaluation.  The cache
must be *exact*: identical segment selection and identical arithmetic
to recomputing the knot list per lookup.
"""

from bisect import bisect_right

import pytest

from repro.errors import ConfigurationError
from repro.hw.bandwidth import PeakBandwidthCurve

CURVE = PeakBandwidthCurve.from_points(
    [(0.0, 67e9), (1.0 / 3.0, 62e9), (0.5, 58.5e9), (1.0, 54.6e9)]
)


def _uncached(curve, write_fraction):
    """Reference lookup rebuilding the knot list (the pre-cache code)."""
    fracs = [p[0] for p in curve.points]
    i = bisect_right(fracs, write_fraction)
    if i == 0:
        return curve.points[0][1]
    if i == len(curve.points):
        return curve.points[-1][1]
    (f0, b0), (f1, b1) = curve.points[i - 1], curve.points[i]
    t = (write_fraction - f0) / (f1 - f0)
    return b0 + t * (b1 - b0)


class TestKnotCache:
    def test_cache_matches_points(self):
        assert CURVE._fracs == tuple(p[0] for p in CURVE.points)

    def test_exact_at_every_knot(self):
        for frac, bw in CURVE.points:
            assert CURVE(frac) == bw

    def test_exact_against_uncached_lookup(self):
        # Dense sweep including irrational-ish fractions: the cached
        # lookup must be bit-for-bit the uncached one.
        for i in range(501):
            wf = i / 500.0
            assert CURVE(wf) == _uncached(CURVE, wf), wf

    def test_scaled_copy_rebuilds_cache(self):
        doubled = CURVE.scaled(2.0)
        assert doubled._fracs == CURVE._fracs
        assert doubled(0.25) == 2.0 * CURVE(0.25)

    def test_flat_curve_cached(self):
        flat = PeakBandwidthCurve.flat(10e9)
        assert flat._fracs == (0.0, 1.0)
        assert flat(0.0) == flat(0.7) == flat(1.0) == 10e9

    def test_cache_excluded_from_equality(self):
        # _fracs is derived state; equality stays defined by the points.
        assert CURVE == PeakBandwidthCurve(CURVE.points)

    def test_out_of_range_still_rejected(self):
        with pytest.raises(ConfigurationError):
            CURVE(1.5)

    def test_frozen_dataclass_stays_immutable(self):
        with pytest.raises(AttributeError):
            CURVE.points = ()
