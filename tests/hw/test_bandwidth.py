"""Tests for peak-bandwidth curves."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.bandwidth import PeakBandwidthCurve, write_fraction_of_mix


class TestWriteFractionOfMix:
    def test_paper_mix_labels(self):
        assert write_fraction_of_mix(1, 0) == 0.0  # read-only
        assert write_fraction_of_mix(0, 1) == 1.0  # write-only
        assert write_fraction_of_mix(2, 1) == pytest.approx(1 / 3)
        assert write_fraction_of_mix(1, 1) == pytest.approx(0.5)
        assert write_fraction_of_mix(1, 2) == pytest.approx(2 / 3)

    def test_invalid_mixes(self):
        with pytest.raises(ConfigurationError):
            write_fraction_of_mix(0, 0)
        with pytest.raises(ConfigurationError):
            write_fraction_of_mix(-1, 1)


class TestPeakBandwidthCurve:
    def test_requires_two_points_covering_both_ends(self):
        with pytest.raises(ConfigurationError):
            PeakBandwidthCurve(((0.0, 1.0),))
        with pytest.raises(ConfigurationError):
            PeakBandwidthCurve(((0.1, 1.0), (1.0, 2.0)))
        with pytest.raises(ConfigurationError):
            PeakBandwidthCurve(((0.0, 1.0), (0.9, 2.0)))

    def test_points_must_increase(self):
        with pytest.raises(ConfigurationError):
            PeakBandwidthCurve(((0.0, 1.0), (0.5, 2.0), (0.5, 3.0), (1.0, 1.0)))

    def test_bandwidth_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PeakBandwidthCurve(((0.0, 0.0), (1.0, 1.0)))

    def test_endpoints_and_interpolation(self):
        curve = PeakBandwidthCurve.from_points([(0.0, 100.0), (1.0, 50.0)])
        assert curve(0.0) == 100.0
        assert curve(1.0) == 50.0
        assert curve(0.5) == pytest.approx(75.0)

    def test_non_monotone_peak_shape(self):
        """CXL peaks at 2:1, not at read-only (Fig. 3(c))."""
        curve = PeakBandwidthCurve.from_points(
            [(0.0, 50.0), (1 / 3, 56.7), (1.0, 41.0)]
        )
        frac, peak = curve.peak()
        assert frac == pytest.approx(1 / 3)
        assert peak == pytest.approx(56.7)
        assert curve(0.0) < curve(1 / 3)
        assert curve(1.0) < curve(1 / 3)

    def test_out_of_range_write_fraction(self):
        curve = PeakBandwidthCurve.flat(10.0)
        with pytest.raises(ConfigurationError):
            curve(-0.1)
        with pytest.raises(ConfigurationError):
            curve(1.1)

    def test_flat_curve(self):
        curve = PeakBandwidthCurve.flat(42.0)
        assert curve(0.0) == curve(0.5) == curve(1.0) == 42.0

    def test_scaled(self):
        curve = PeakBandwidthCurve.from_points([(0.0, 10.0), (1.0, 5.0)]).scaled(4.0)
        assert curve(0.0) == 40.0
        assert curve(1.0) == 20.0
        with pytest.raises(ConfigurationError):
            curve.scaled(0.0)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_interpolation_within_envelope_property(self, wf):
        curve = PeakBandwidthCurve.from_points(
            [(0.0, 50.0), (1 / 3, 56.7), (0.5, 54.0), (1.0, 41.0)]
        )
        value = curve(wf)
        assert 41.0 <= value <= 56.7
