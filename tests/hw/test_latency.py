"""Tests for the loaded-latency model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hw.latency import IdleLatency, LoadedLatencyModel, QueueingModel


class TestIdleLatency:
    def test_interpolates_between_read_and_write(self):
        idle = IdleLatency(read_ns=130.0, write_ns=71.77)
        assert idle(0.0) == 130.0
        assert idle(1.0) == 71.77
        assert idle(0.5) == pytest.approx((130.0 + 71.77) / 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            IdleLatency(read_ns=0.0, write_ns=1.0)
        idle = IdleLatency(100.0, 100.0)
        with pytest.raises(ConfigurationError):
            idle(1.5)


class TestQueueingModel:
    def test_zero_at_idle(self):
        q = QueueingModel(amplitude_ns=60.0, sharpness=6.0)
        assert q.delay_ns(0.0) == 0.0

    def test_monotonically_increasing(self):
        q = QueueingModel(amplitude_ns=60.0, sharpness=6.0)
        prev = -1.0
        for u in [i / 100 for i in range(101)]:
            d = q.delay_ns(u)
            assert d >= prev
            prev = d

    def test_flat_before_knee_steep_after(self):
        """The paper's signature shape: negligible added latency at 50 %
        utilization, large at 95 % (§3.2)."""
        q = QueueingModel(amplitude_ns=60.0, sharpness=6.0)
        assert q.delay_ns(0.5) < 10.0
        assert q.delay_ns(0.95) > 200.0

    def test_knee_in_paper_band_for_mmem_parameters(self):
        """Local DDR5 knee lands at 75-83 % utilization (§3.2)."""
        from repro.hw.calibration import path_latency_model

        q = path_latency_model("mmem_local").queueing
        knee = q.knee_utilization(threshold_ns=50.0)
        assert 0.75 <= knee <= 0.83

    def test_remote_knee_is_earlier_than_local(self):
        """'Latency escalation occurs earlier in remote socket memory
        accesses than in local ones' (§3.2)."""
        from repro.hw.calibration import path_latency_model

        local = path_latency_model("mmem_local").queueing.knee_utilization()
        remote = path_latency_model("mmem_remote").queueing.knee_utilization()
        assert remote < local

    def test_closed_loop_bound(self):
        """Even at nominal 100 % utilization the delay stays finite and
        bounded by amplitude * max_queue."""
        q = QueueingModel(amplitude_ns=60.0, sharpness=6.0, max_queue=16.0)
        assert q.delay_ns(1.0) <= 60.0 * 16.0
        assert q.delay_ns(5.0) == q.delay_ns(1.0)  # clamped

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QueueingModel(amplitude_ns=-1.0, sharpness=2.0)
        with pytest.raises(ConfigurationError):
            QueueingModel(amplitude_ns=1.0, sharpness=0.5)
        with pytest.raises(ConfigurationError):
            QueueingModel(amplitude_ns=1.0, sharpness=2.0, max_queue=0.5)
        q = QueueingModel(amplitude_ns=1.0, sharpness=2.0)
        with pytest.raises(ConfigurationError):
            q.delay_ns(-0.1)

    def test_knee_returns_one_when_never_exceeds(self):
        q = QueueingModel(amplitude_ns=0.0, sharpness=2.0)
        assert q.knee_utilization() == 1.0

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_monotonicity_property(self, u1, u2):
        q = QueueingModel(amplitude_ns=80.0, sharpness=4.0)
        lo, hi = sorted((u1, u2))
        assert q.delay_ns(lo) <= q.delay_ns(hi) + 1e-9


class TestLoadedLatencyModel:
    def test_combines_idle_and_queueing(self):
        model = LoadedLatencyModel(
            idle=IdleLatency(100.0, 80.0),
            queueing=QueueingModel(amplitude_ns=60.0, sharpness=6.0),
        )
        assert model.latency_ns(0.0, 0.0) == 100.0
        assert model.latency_ns(0.0, 1.0) == 80.0
        assert model.latency_ns(0.9, 0.0) > 100.0
        assert model.idle_ns(0.0) == 100.0
