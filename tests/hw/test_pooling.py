"""Tests for the CXL 2.0 pooling extension (§7.1)."""

import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.hw import CxlSwitch, MemoryPool, a1000_card
from repro.hw.calibration import path_latency_model
from repro.units import GIB


def make_pool(n_devices=4, ports=16):
    return MemoryPool(
        devices=tuple(a1000_card() for _ in range(n_devices)),
        switch=CxlSwitch(ports=ports),
    )


class TestSwitch:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CxlSwitch(ports=1)
        with pytest.raises(ConfigurationError):
            CxlSwitch(hop_latency_ns=-1)
        with pytest.raises(ConfigurationError):
            CxlSwitch(aggregate_bandwidth=0)


class TestPoolAllocation:
    def test_empty_pool_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryPool(devices=())

    def test_capacity_accounting(self):
        pool = make_pool(4)
        assert pool.total_bytes == 4 * 256 * GIB
        pool.allocate("host-a", 100 * GIB)
        assert pool.free_bytes == pool.total_bytes - 100 * GIB
        assert pool.bytes_of("host-a") == 100 * GIB

    def test_allocation_spans_devices(self):
        pool = make_pool(2)
        slices = pool.allocate("host-a", 300 * GIB)  # > one 256 GiB device
        assert len(slices) == 2
        assert {s.device_index for s in slices} == {0, 1}
        assert sum(s.bytes_allocated for s in slices) == 300 * GIB

    def test_pool_exhaustion(self):
        pool = make_pool(1)
        with pytest.raises(CapacityError):
            pool.allocate("host-a", 300 * GIB)
        with pytest.raises(CapacityError):
            pool.allocate("host-a", 0)

    def test_port_limit_16_hosts(self):
        """CXL 2.0: 'up to 16 different hosts' — one port is the pool's."""
        pool = make_pool(4, ports=4)
        pool.allocate("h1", GIB)
        pool.allocate("h2", GIB)
        pool.allocate("h3", GIB)
        with pytest.raises(ConfigurationError):
            pool.allocate("h4", GIB)
        # An existing host can still grow.
        pool.allocate("h1", GIB)
        assert pool.bytes_of("h1") == 2 * GIB

    def test_release_returns_capacity(self):
        pool = make_pool(2)
        pool.allocate("host-a", 300 * GIB)
        freed = pool.release("host-a")
        assert freed == 300 * GIB
        assert pool.free_bytes == pool.total_bytes
        assert "host-a" not in pool.hosts

    def test_release_unknown_host_is_noop(self):
        pool = make_pool(1)
        assert pool.release("ghost") == 0


class TestPooledLatency:
    def test_one_hop_adds_switch_latency(self):
        pool = make_pool(1)
        direct = path_latency_model("cxl_local")
        pooled = pool.latency_model(hops=1)
        assert pooled.idle_ns(0.0) == pytest.approx(
            direct.idle_ns(0.0) + pool.switch.hop_latency_ns
        )

    def test_multi_hop_scales(self):
        pool = make_pool(1)
        one = pool.latency_model(hops=1).idle_ns(0.0)
        two = pool.latency_model(hops=2).idle_ns(0.0)
        assert two - one == pytest.approx(pool.switch.hop_latency_ns)

    def test_pooled_still_below_remote_socket_cxl(self):
        """One-hop pooled CXL (~335 ns) beats the RSF-crippled remote
        socket path (485 ns) — the §7.1 case for switched pooling."""
        pool = make_pool(1)
        pooled = pool.latency_model(hops=1).idle_ns(0.0)
        remote = path_latency_model("cxl_remote").idle_ns(0.0)
        assert pooled < remote

    def test_hops_validated(self):
        with pytest.raises(ConfigurationError):
            make_pool(1).latency_model(hops=0)

    def test_resource_chain(self):
        pool = make_pool(2)
        (piece,) = pool.allocate("host-a", GIB)
        chain = pool.resources_for(piece)
        assert chain[0] == "pool/switch"
        assert chain[1].startswith("pool/dev")
        assert set(pool.resource_map()) >= set(chain)
