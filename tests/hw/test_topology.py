"""Tests for platform topology, path resolution, and mix-aware allocation."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.hw import (
    NodeKind,
    PathKind,
    paper_baseline_platform,
    paper_cxl_platform,
    paper_testbed,
)
from repro.hw.spec import CpuSpec, ServerSpec
from repro.units import GIB, gb_per_s, to_gb_per_s


class TestSpecs:
    def test_paper_cxl_server_memory_totals(self):
        """1 TB MMEM + 512 GB CXL per CXL server (§2.4)."""
        p = paper_cxl_platform()
        assert p.spec.total_mmem_bytes == 1024 * GIB
        assert p.spec.total_cxl_bytes == 512 * GIB
        assert p.spec.total_memory_bytes == 1536 * GIB

    def test_baseline_has_no_cxl(self):
        p = paper_baseline_platform()
        assert p.spec.total_cxl_bytes == 0
        assert p.cxl_nodes() == []

    def test_snc_partitioning(self):
        snc = paper_cxl_platform(snc_enabled=True)
        flat = paper_cxl_platform(snc_enabled=False)
        assert len(snc.dram_nodes()) == 8  # 4 domains x 2 sockets
        assert len(flat.dram_nodes()) == 2
        # Capacity is conserved either way.
        assert sum(n.capacity_bytes for n in snc.dram_nodes()) == sum(
            n.capacity_bytes for n in flat.dram_nodes()
        )

    def test_snc_domain_has_two_channels_of_capacity(self):
        snc = paper_cxl_platform(snc_enabled=True)
        domain = snc.dram_nodes(0)[0]
        assert domain.capacity_bytes == 128 * GIB  # 2 x 64 GB DIMMs

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerSpec(sockets=0)
        with pytest.raises(ConfigurationError):
            ServerSpec(sockets=2, cxl_socket=5)
        with pytest.raises(ConfigurationError):
            CpuSpec(memory_channels=7, snc_domains=4)

    def test_testbed_has_three_servers(self):
        s0, s1, baseline = paper_testbed()
        assert s0.cxl_nodes() and s1.cxl_nodes() and not baseline.cxl_nodes()


class TestPathResolution:
    @pytest.fixture
    def platform(self):
        return paper_cxl_platform(snc_enabled=True)

    def test_unknown_node_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.path(0, 999)

    def test_unknown_socket_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.path(7, 0)

    def test_local_dram_path(self, platform):
        node = platform.dram_nodes(0)[0]
        path = platform.path(0, node.node_id, initiator_domain=node.domain)
        assert path.kind is PathKind.MMEM_LOCAL
        assert path.resources == (node.resource.name,)

    def test_snc_sibling_domain_path(self, platform):
        nodes = platform.dram_nodes(0)
        path = platform.path(0, nodes[1].node_id, initiator_domain=0)
        assert path.kind is PathKind.MMEM_SNC
        # Slightly slower than the local domain, far below remote socket.
        local = platform.path(0, nodes[0].node_id, initiator_domain=0)
        remote = platform.path(1, nodes[0].node_id)
        assert local.idle_latency_ns() < path.idle_latency_ns() < remote.idle_latency_ns()

    def test_remote_dram_path_crosses_upi(self, platform):
        node = platform.dram_nodes(1)[0]
        path = platform.path(0, node.node_id)
        assert path.kind is PathKind.MMEM_REMOTE
        assert any(r.startswith("upi/") for r in path.resources)

    def test_local_cxl_path_crosses_pcie(self, platform):
        node = platform.cxl_nodes()[0]
        path = platform.path(0, node.node_id)
        assert path.kind is PathKind.CXL_LOCAL
        assert any("pcie" in r for r in path.resources)
        assert not any("rsf" in r for r in path.resources)

    def test_remote_cxl_path_crosses_upi_and_rsf(self, platform):
        node = platform.cxl_nodes()[0]
        path = platform.path(1, node.node_id)
        assert path.kind is PathKind.CXL_REMOTE
        assert any(r.startswith("upi/") for r in path.resources)
        assert any("rsf" in r for r in path.resources)

    def test_path_kind_predicates(self, platform):
        cxl = platform.cxl_nodes()[0]
        assert platform.path(0, cxl.node_id).kind.is_cxl
        assert platform.path(1, cxl.node_id).kind.is_remote
        assert not platform.path(0, cxl.node_id).kind.is_remote

    def test_node_kind_helpers(self, platform):
        assert platform.cxl_nodes()[0].is_cxl
        assert not platform.dram_nodes()[0].is_cxl
        assert platform.cxl_nodes()[0].kind is NodeKind.CXL


class TestAllocation:
    def test_single_flow_saturates_at_device_peak(self):
        p = paper_cxl_platform(snc_enabled=True)
        node = p.dram_nodes(0)[0]
        path = p.path(0, node.node_id, initiator_domain=0)
        d = p.demand("flow", path, float("inf"), write_fraction=0.0)
        res = p.allocate([d])
        assert to_gb_per_s(res.achieved["flow"]) == pytest.approx(67.0, rel=0.01)

    def test_write_mix_lowers_capacity(self):
        p = paper_cxl_platform(snc_enabled=True)
        node = p.dram_nodes(0)[0]
        path = p.path(0, node.node_id, initiator_domain=0)
        d = p.demand("flow", path, float("inf"), write_fraction=1.0)
        res = p.allocate([d])
        assert to_gb_per_s(res.achieved["flow"]) == pytest.approx(54.6, rel=0.01)

    def test_remote_cxl_flow_limited_by_rsf(self):
        p = paper_cxl_platform(snc_enabled=True)
        node = p.cxl_nodes()[0]
        path = p.path(1, node.node_id)
        d = p.demand("flow", path, float("inf"), write_fraction=1 / 3)
        res = p.allocate([d])
        assert to_gb_per_s(res.achieved["flow"]) == pytest.approx(20.4, rel=0.02)

    def test_local_cxl_flow_not_limited_by_rsf(self):
        p = paper_cxl_platform(snc_enabled=True)
        node = p.cxl_nodes()[0]
        path = p.path(0, node.node_id)
        d = p.demand("flow", path, float("inf"), write_fraction=1 / 3)
        res = p.allocate([d])
        assert to_gb_per_s(res.achieved["flow"]) == pytest.approx(56.7, rel=0.02)

    def test_two_flows_share_dram_fairly(self):
        p = paper_cxl_platform(snc_enabled=True)
        node = p.dram_nodes(0)[0]
        path = p.path(0, node.node_id, initiator_domain=0)
        demands = [
            p.demand("a", path, gb_per_s(50.0)),
            p.demand("b", path, gb_per_s(50.0)),
        ]
        res = p.allocate(demands)
        assert res.achieved["a"] == pytest.approx(res.achieved["b"])
        assert to_gb_per_s(res.achieved["a"] + res.achieved["b"]) == pytest.approx(
            67.0, rel=0.01
        )

    def test_cxl_offload_increases_total_bandwidth(self):
        """The §3.4 insight: MMEM-only tops out at the DRAM peak; adding a
        CXL flow raises aggregate deliverable bandwidth."""
        p = paper_cxl_platform(snc_enabled=True)
        dram = p.dram_nodes(0)[0]
        cxl = p.cxl_nodes()[0]
        dram_path = p.path(0, dram.node_id, initiator_domain=0)
        cxl_path = p.path(0, cxl.node_id)

        only_dram = p.allocate([p.demand("d", dram_path, float("inf"))])
        both = p.allocate(
            [
                p.demand("d", dram_path, float("inf")),
                p.demand("c", cxl_path, float("inf")),
            ]
        )
        total_only = only_dram.achieved["d"]
        total_both = both.achieved["d"] + both.achieved["c"]
        assert total_both > total_only * 1.5

    def test_empty_demands(self):
        p = paper_cxl_platform()
        res = p.allocate([])
        assert res.achieved == {}

    def test_snc_off_socket_has_4x_domain_bandwidth(self):
        p = paper_cxl_platform(snc_enabled=False)
        node = p.dram_nodes(0)[0]
        path = p.path(0, node.node_id)
        res = p.allocate([p.demand("f", path, float("inf"))])
        assert to_gb_per_s(res.achieved["f"]) == pytest.approx(67.0 * 4, rel=0.01)

    def test_duplicate_resource_name_rejected(self):
        from repro.hw.topology import Platform

        p = paper_cxl_platform()
        from repro.hw.bandwidth import PeakBandwidthCurve
        from repro.hw.device import SharedResource

        with pytest.raises(TopologyError):
            p._add_resource(SharedResource("skt0/dram0", PeakBandwidthCurve.flat(1.0)))
