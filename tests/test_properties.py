"""Cross-cutting property-based tests (hypothesis).

These target invariants that must hold for *any* input, not just the
paper's configurations: conservation, monotonicity, and bounds that the
analytical models promise.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AbstractCostModel, BandwidthAwarePlacer
from repro.errors import CostModelError
from repro.hw import paper_cxl_platform
from repro.hw.calibration import path_bandwidth_curve, path_latency_model
from repro.hw.protocol import CxlLinkBudget
from repro.mem.policy import WeightedInterleavePolicy
from repro.units import PAGE_SIZE
from repro.workloads.mlc import MlcProbe

PLATFORM = paper_cxl_platform(snc_enabled=True)
DRAM = PLATFORM.dram_nodes(0)[0]
CXL = PLATFORM.cxl_nodes()[0]
DRAM_PATH = PLATFORM.path(0, DRAM.node_id, initiator_domain=DRAM.domain)
CXL_PATH = PLATFORM.path(0, CXL.node_id)


class TestSurfaceProperties:
    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_cxl_always_slower_than_dram_at_idle(self, wf):
        assert path_latency_model("cxl_local").idle_ns(wf) > path_latency_model(
            "mmem_local"
        ).idle_ns(wf)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_loaded_latency_monotone_in_utilization(self, u1, u2):
        lo, hi = sorted((u1, u2))
        for kind in ("mmem_local", "cxl_local", "mmem_remote", "cxl_remote"):
            model = path_latency_model(kind)
            assert model.latency_ns(lo, 0.0) <= model.latency_ns(hi, 0.0) + 1e-9

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_remote_cxl_never_beats_local_cxl(self, wf):
        assert path_bandwidth_curve("cxl_remote")(wf) < path_bandwidth_curve(
            "cxl_local"
        )(wf)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_calibrated_curves_respect_protocol(self, wf):
        budget = CxlLinkBudget()
        assert path_bandwidth_curve("cxl_local")(wf) <= budget.data_bandwidth(wf) * 1.001


class TestMlcProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=4), st.integers(min_value=0, max_value=4))
    def test_achieved_never_exceeds_offered(self, r_extra, w_extra):
        reads, writes = 1 + r_extra, w_extra
        probe = MlcProbe(PLATFORM, threads=16)
        curve = probe.loaded_latency_curve(DRAM_PATH, reads, writes)
        for p in curve.points:
            assert p.achieved_bytes_per_s <= p.offered_bytes_per_s * (1 + 1e-9)

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from(["mmem_local", "cxl_local"]))
    def test_latency_non_decreasing_along_sweep(self, kind):
        path = DRAM_PATH if kind == "mmem_local" else CXL_PATH
        probe = MlcProbe(PLATFORM, threads=16)
        curve = probe.loaded_latency_curve(path, 1, 0)
        latencies = [p.latency_ns for p in curve.points]
        assert latencies == sorted(latencies)


class TestPlacementProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.floats(min_value=0.05, max_value=1.4),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_optimum_never_worse_than_endpoints(self, level, wf):
        placer = BandwidthAwarePlacer(DRAM_PATH, CXL_PATH, resolution=50)
        demand = level * DRAM_PATH.peak_bandwidth(wf)
        report = placer.optimal_split(demand, wf)
        assert report.best.average_latency_ns <= report.curve[0].average_latency_ns + 1e-9
        assert report.best.average_latency_ns <= report.curve[-1].average_latency_ns + 1e-9


class TestCostModelProperties:
    @settings(max_examples=50)
    @given(
        st.floats(min_value=1.5, max_value=100.0),
        st.floats(min_value=0.1, max_value=1.0),
        st.floats(min_value=0.2, max_value=10.0),
        st.floats(min_value=0.5, max_value=3.0),
    )
    def test_time_identity_at_server_ratio(self, r_d, rc_frac, c, r_t):
        """For ANY valid parameters, T_baseline == T_cxl at the ratio."""
        r_c = max(1.01, r_d * rc_frac)
        try:
            model = AbstractCostModel(r_d=r_d, r_c=r_c, c=c, r_t=r_t)
            ratio = model.server_ratio()
        except CostModelError:
            return  # degenerate region is allowed to refuse
        n_base, d = 50.0, 1.0
        w = n_base * d * (1 + 1 / c) * 5  # both clusters spill
        t_base = model.t_baseline(n_base, w, d)
        t_cxl = model.t_cxl(n_base * ratio, w, d)
        assert t_base == pytest.approx(t_cxl, rel=1e-9)


class TestPolicyProperties:
    @settings(max_examples=30)
    @given(
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=1, max_value=9),
        st.integers(min_value=20, max_value=400),
    )
    def test_weighted_interleave_never_overfills(self, n, m, pages):
        """Even with one node capped, placement respects capacity."""
        policy = WeightedInterleavePolicy.from_ratio([0], [1], n, m)
        cap0 = pages // 3 * PAGE_SIZE
        free = {0: cap0, 1: pages * PAGE_SIZE * 2}
        placed0 = 0
        for _ in range(pages):
            node = policy.place(dict(free), PAGE_SIZE)
            free[node] -= PAGE_SIZE
            assert free[node] >= 0
            if node == 0:
                placed0 += 1
        assert placed0 <= cap0 // PAGE_SIZE


class TestAllocatorProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(min_value=0.5, max_value=80.0), min_size=1, max_size=6),
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=6),
    )
    def test_platform_allocation_bounded_by_capacity(self, rates, wfs):
        n = min(len(rates), len(wfs))
        demands = [
            PLATFORM.demand(f"f{i}", DRAM_PATH, rates[i] * 1e9, wfs[i])
            for i in range(n)
        ]
        result = PLATFORM.allocate(demands)
        total = sum(result.achieved.values())
        # Aggregate never exceeds the mix-appropriate capacity envelope.
        cap_max = DRAM_PATH.peak_bandwidth(0.0)
        assert total <= cap_max * (1 + 1e-6)
        for i in range(n):
            assert result.achieved[f"f{i}"] <= rates[i] * 1e9 * (1 + 1e-9)
