"""Tests for the JSON-schema-subset validator."""

import json

import pytest

from repro.obs.schema import main as schema_main
from repro.obs.schema import validate


class TestValidate:
    def test_type_checks(self):
        assert validate({"type": "object"}, {}) == []
        assert validate({"type": "object"}, []) != []
        assert validate({"type": ["number", "null"]}, None) == []
        assert validate({"type": ["number", "null"]}, 3.5) == []
        assert validate({"type": ["number", "null"]}, "x") != []

    def test_bool_is_not_a_number(self):
        assert validate({"type": "number"}, True) != []
        assert validate({"type": "boolean"}, True) == []

    def test_integer_accepts_integral_float(self):
        assert validate({"type": "integer"}, 3.0) == []
        assert validate({"type": "integer"}, 3.5) != []

    def test_const_and_enum(self):
        assert validate({"const": "v1"}, "v1") == []
        assert validate({"const": "v1"}, "v2") != []
        assert validate({"enum": ["a", "b"]}, "b") == []
        assert validate({"enum": ["a", "b"]}, "c") != []

    def test_required_and_additional_properties(self):
        schema = {
            "type": "object",
            "required": ["a"],
            "additionalProperties": False,
            "properties": {"a": {"type": "integer"}},
        }
        assert validate(schema, {"a": 1}) == []
        assert validate(schema, {}) != []
        assert validate(schema, {"a": 1, "b": 2}) != []

    def test_nested_paths_in_messages(self):
        schema = {
            "type": "object",
            "properties": {
                "xs": {"type": "array", "items": {"type": "number"}}
            },
        }
        (error,) = validate(schema, {"xs": [1.0, "bad"]})
        assert "$.xs[1]" in error

    def test_bounds_and_min_items(self):
        assert validate({"minimum": 0}, -1) != []
        assert validate({"maximum": 0.01}, 0.5) != []
        assert validate({"type": "array", "minItems": 1}, []) != []

    def test_pattern(self):
        schema = {"type": "string", "pattern": "^[a-z_]+$"}
        assert validate(schema, "ok_name") == []
        assert validate(schema, "Bad Name") != []

    def test_unsupported_type_keyword_raises(self):
        with pytest.raises(ValueError):
            validate({"type": "tuple"}, [])


class TestCliEntry:
    def _write(self, path, doc):
        path.write_text(json.dumps(doc))
        return str(path)

    def test_passing_document(self, tmp_path, capsys):
        schema = self._write(tmp_path / "s.json", {"type": "object"})
        data = self._write(tmp_path / "d.json", {"x": 1})
        assert schema_main([schema, data]) == 0
        assert "OK" in capsys.readouterr().out

    def test_failing_document(self, tmp_path, capsys):
        schema = self._write(
            tmp_path / "s.json", {"type": "object", "required": ["missing"]}
        )
        data = self._write(tmp_path / "d.json", {})
        assert schema_main([schema, data]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_usage_error(self, capsys):
        assert schema_main(["only-one-arg"]) == 2


class TestCheckedInSchemas:
    """The shipped schemas accept what the exporters actually emit."""

    def _load(self, name):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        with open(root / "docs" / "schemas" / name) as f:
            return json.load(f)

    def test_metrics_schema_matches_registry_output(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("ops_total", "ops", ("node",)).inc(3, node="cxl0")
        reg.histogram("lat_ns", "latency").observe(100.0)
        doc = json.loads(reg.to_json())
        assert validate(self._load("metrics.schema.json"), doc) == []

    def test_trace_schema_matches_tracer_output(self):
        from repro.obs import Tracer

        tracer = Tracer()
        op = tracer.op("ycsb.get", 0.0)
        op.span("admission", "queue_wait", 0.0, 5.0)
        op.span("app", "redis_cpu", 5.0, 5.0, accesses=3)
        op.finish(10.0)
        doc = tracer.as_dict()
        assert validate(self._load("trace.schema.json"), doc) == []

    def test_trace_schema_rejects_unknown_layer(self):
        from repro.obs import Tracer

        tracer = Tracer()
        op = tracer.op("x", 0.0)
        op.span("not-a-layer", "y", 0.0, 1.0)
        op.finish(1.0)
        assert validate(self._load("trace.schema.json"), tracer.as_dict()) != []
