"""Tests for engine profiling hooks."""

import pytest

from repro.obs import EngineProfile, MetricsRegistry
from repro.sim import Simulator


def _two_process_sim(profile=None):
    sim = Simulator()
    if profile is not None:
        profile.attach(sim)

    def fast():
        for _ in range(10):
            yield sim.timeout(1.0)

    def slow():
        yield sim.timeout(100.0)

    sim.process(fast(), label="fast")
    sim.process(slow(), label="slow")
    sim.run()
    return sim


class TestEngineProfile:
    def test_counts_events_and_processes(self):
        profile = EngineProfile()
        _two_process_sim(profile)
        # 10 fast timeouts + 1 slow timeout + 2 start timeouts.
        assert profile.event_counts["Timeout"] == 13
        assert profile.event_counts["Process"] == 2
        assert profile.process_counts["fast"] == 11
        assert profile.process_counts["slow"] == 2
        assert profile.steps == sum(profile.event_counts.values())

    def test_sim_time_attribution(self):
        profile = EngineProfile()
        _two_process_sim(profile)
        # fast owns the first 10 ns; slow owns the 10 -> 100 ns stretch.
        assert profile.process_time_ns["fast"] == pytest.approx(10.0)
        assert profile.process_time_ns["slow"] == pytest.approx(90.0)
        assert profile.dominant_process() == "slow"

    def test_label_defaults_to_generator_name(self):
        sim = Simulator()
        profile = EngineProfile().attach(sim)

        def pinger():
            yield sim.timeout(1.0)

        sim.process(pinger())
        sim.run()
        assert "pinger" in profile.process_counts

    def test_profiling_does_not_perturb_timing(self):
        bare = _two_process_sim()
        profiled = _two_process_sim(EngineProfile())
        assert profiled.now == bare.now

    def test_empty_profile_defaults(self):
        profile = EngineProfile()
        assert profile.dominant_process() == ""
        assert profile.rows() == []
        assert profile.as_dict()["steps"] == 0

    def test_register_into(self):
        profile = EngineProfile()
        _two_process_sim(profile)
        registry = MetricsRegistry()
        profile.register_into(registry)
        by_name = {}
        for s in registry.samples():
            by_name.setdefault(s.name, []).append(s)
        assert by_name["engine_steps_total"][0].value == float(profile.steps)
        times = {
            s.labels["process"]: s.value
            for s in by_name["engine_process_sim_time_ns"]
        }
        assert times["slow"] == pytest.approx(90.0)
