"""The observability layer wired through the other subsystems.

One small run per subsystem (overload runner, faults runner, Spark
driver, LLM router) checking that the registry/tracer hooks actually
collect samples — the cross-layer half of the tentpole."""

import pytest

from repro.obs import EngineProfile, MetricsRegistry, Tracer


def _names(registry):
    return {s.name for s in registry.samples()}


class TestOverloadRunnerWiring:
    def test_run_offered_load_exports_funnel_and_profile(self):
        from repro.overload.runner import control_policy, run_offered_load

        registry = MetricsRegistry()
        tracer = Tracer()
        profile = EngineProfile()
        summary = run_offered_load(
            rate_ops_per_s=200_000.0,
            policy=control_policy(200_000.0, budget_ns=1e6),
            duration_ns=5e6,
            record_count=2_048,
            seed=11,
            label="wiring",
            registry=registry,
            tracer=tracer,
            engine_profile=profile,
        )
        names = _names(registry)
        assert "overload_offered_total" in names
        assert "overload_latency_ns_p99" in names
        assert "engine_steps_total" in names
        offered = next(
            s for s in registry.samples()
            if s.name == "overload_offered_total"
        )
        assert offered.labels["run"] == "wiring"
        assert offered.value == float(summary.offered)
        # Completed ops were traced and decompose cleanly.
        assert len(tracer.ops) == summary.completed
        assert tracer.validate()["within_tolerance"]
        assert profile.steps > 0


class TestFaultsRunnerWiring:
    def test_faulted_keydb_exports_ras_metrics(self):
        from repro.faults.runner import run_faulted_app

        registry = MetricsRegistry()
        summary = run_faulted_app(
            "keydb", "link-degrade", seed=11, quick=True, registry=registry
        )
        names = _names(registry)
        assert "faulted_throughput" in names
        assert "ras_offered_total" in names
        by_name = {
            (s.name, tuple(sorted(s.labels.items()))): s.value
            for s in registry.samples()
        }
        key = (
            "faulted_availability",
            (("app", "keydb"), ("scenario", "link-degrade")),
        )
        assert by_name[key] == pytest.approx(summary.availability)

    def test_faulted_spark_exports_summary(self):
        from repro.faults.runner import run_faulted_app

        registry = MetricsRegistry()
        run_faulted_app(
            "spark", "device-loss", seed=11, quick=True, registry=registry
        )
        assert "faulted_counter_total" in _names(registry)


class TestSparkWiring:
    def test_run_spark_config_exports_query_gauges(self):
        from repro.apps.spark.experiment import run_spark_config
        from repro.workloads.tpch import paper_queries

        queries = paper_queries()
        first = next(iter(queries))
        registry = MetricsRegistry()
        results = run_spark_config(
            "mmem", {first: queries[first]}, registry=registry
        )
        samples = {
            (s.name, s.labels.get("query")): s.value
            for s in registry.samples()
        }
        assert samples[("spark_query_total_ns", first)] == pytest.approx(
            results[first].total_ns
        )
        assert ("spark_query_shuffle_fraction", first) in samples


class TestLlmWiring:
    def test_router_traces_requests(self):
        from repro.apps.llm.router import LlmRouter
        from repro.apps.llm.serving import LlmServingExperiment
        from repro.sim.rng import RngFactory
        from repro.workloads.llm_trace import chat_trace

        rng = RngFactory(11).stream("obs-llm")
        requests = list(chat_trace(rng, 6, mean_new_tokens=8))
        tracer = Tracer()
        profile = EngineProfile()
        router = LlmRouter(
            LlmServingExperiment("3:1"), backends=2,
            tracer=tracer, engine_profile=profile,
        )
        run = router.serve(requests)
        assert len(tracer.ops) == run.requests_completed
        layers = set(tracer.layer_totals())
        assert "device" in layers  # decode steps
        for op in tracer.ops:
            assert op.kind == "llm.request"
            assert op.duration_ns > 0
        assert profile.steps > 0

    def test_traced_llm_run_is_bit_identical(self):
        from repro.apps.llm.router import LlmRouter
        from repro.apps.llm.serving import LlmServingExperiment
        from repro.sim.rng import RngFactory
        from repro.workloads.llm_trace import chat_trace

        def serve(tracer):
            rng = RngFactory(11).stream("obs-llm")
            requests = list(chat_trace(rng, 6, mean_new_tokens=8))
            router = LlmRouter(
                LlmServingExperiment("3:1"), backends=2, tracer=tracer
            )
            return router.serve(requests)

        from repro.obs import NULL_TRACER

        bare = serve(NULL_TRACER)
        traced = serve(Tracer())
        assert bare.elapsed_ns == traced.elapsed_ns
        assert bare.tokens_per_second == traced.tokens_per_second
