"""Tests for request-scoped tracing — including the two acceptance
criteria: per-op span sums match end-to-end latency within 1 %, and a
traced run is bit-identical to an untraced run with the same seed."""

import pytest

from repro.obs import NULL_TRACER, Tracer, run_observed_keydb
from repro.obs.tracing import NullTracer


class TestTracerUnit:
    def test_spans_accumulate(self):
        tracer = Tracer()
        op = tracer.op("get", 100.0)
        op.span("app", "cpu", 100.0, 30.0)
        op.span("hw", "value", 130.0, 70.0)
        op.finish(200.0)
        assert op.duration_ns == 100.0
        assert op.layer_sum_ns() == 100.0
        assert tracer.layer_totals() == {"app": (1, 30.0), "hw": (1, 70.0)}

    def test_negative_span_duration_rejected(self):
        op = Tracer().op("get", 0.0)
        with pytest.raises(ValueError):
            op.span("app", "cpu", 0.0, -1.0)

    def test_validate_flags_mismatched_op(self):
        tracer = Tracer()
        op = tracer.op("get", 0.0)
        op.span("app", "cpu", 0.0, 10.0)  # only half the op
        op.finish(20.0)
        check = tracer.validate(tolerance=0.01)
        assert not check["within_tolerance"]
        assert check["violations"] == [op.op_id]
        assert check["max_rel_error"] == pytest.approx(0.5)

    def test_capacity_drops_whole_ops(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            op = tracer.op("get", float(i))
            op.span("app", "cpu", float(i), 1.0)
            op.finish(i + 1.0)
        assert len(tracer.ops) == 2
        assert tracer.dropped_ops == 3
        # Every kept op is still internally consistent.
        assert tracer.validate()["within_tolerance"]
        assert tracer.as_dict()["dropped_ops"] == 3

    def test_as_dict_limit(self):
        tracer = Tracer()
        for i in range(10):
            tracer.op("get", float(i)).finish(i + 1.0)
        doc = tracer.as_dict(limit=3)
        assert doc["op_count"] == 10
        assert len(doc["ops"]) == 3

    def test_null_tracer_records_nothing(self):
        op = NULL_TRACER.op("get", 0.0)
        op.span("app", "cpu", 0.0, 10.0)
        op.finish(10.0)
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.ops == []
        assert op.spans == []

    def test_null_tracer_is_reusable(self):
        a = NullTracer()
        assert a.op("x", 0.0) is a.op("y", 1.0)


class TestAcceptance:
    """The issue's two hard numbers, pinned as tests."""

    def _runs(self):
        kwargs = dict(config="1:1", record_count=1_024, total_ops=1_200, seed=7)
        return (
            run_observed_keydb(tracing=False, **kwargs),
            run_observed_keydb(tracing=True, **kwargs),
        )

    def test_span_sums_match_end_to_end_within_1pct(self):
        _, traced = self._runs()
        assert len(traced.tracer.ops) == 1_200
        check = traced.tracer.validate(tolerance=0.01)
        assert check["ops_checked"] == 1_200
        assert check["within_tolerance"], check
        # In practice the decomposition is exact to fp rounding.
        assert check["max_rel_error"] < 1e-9

    def test_tracing_does_not_perturb_the_simulation(self):
        untraced, traced = self._runs()
        # Bit-identical, not approximately equal: tracing only records
        # numbers the simulation already computed.
        assert traced.result.elapsed_ns == untraced.result.elapsed_ns
        assert traced.result.ops == untraced.result.ops
        assert (
            traced.result.throughput_ops_per_s
            == untraced.result.throughput_ops_per_s
        )
        for p in (50, 95, 99):
            assert traced.result.read_latency.percentile(p) == (
                untraced.result.read_latency.percentile(p)
            )
            assert traced.result.write_latency.percentile(p) == (
                untraced.result.write_latency.percentile(p)
            )

    def test_every_layer_appears(self):
        _, traced = self._runs()
        layers = set(traced.tracer.layer_totals())
        # 1:1 interleave without SSD spill: no device layer expected.
        assert {"admission", "app", "mem", "hw"} <= layers

    def test_queue_wait_plus_service_is_total_latency(self):
        _, traced = self._runs()
        for op in traced.tracer.ops[:50]:
            wait = sum(
                s.duration_ns for s in op.spans if s.layer == "admission"
            )
            service = op.layer_sum_ns() - wait
            assert wait + service == pytest.approx(op.duration_ns, rel=1e-9)
