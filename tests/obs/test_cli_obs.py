"""End-to-end tests for ``repro metrics`` / ``repro trace``.

Runs the CLI in-process, captures stdout, and validates the JSON output
against the checked-in schemas — the same check CI's smoke step runs
from the shell."""

import csv
import io
import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs.schema import validate

_SCHEMAS = Path(__file__).resolve().parents[2] / "docs" / "schemas"

QUICK = ["--quick", "--seed", "7"]


def _schema(name):
    with open(_SCHEMAS / name) as f:
        return json.load(f)


@pytest.fixture(scope="module")
def metrics_json():
    import contextlib

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        assert main(["metrics", *QUICK, "--json"]) == 0
    return json.loads(buf.getvalue())


@pytest.fixture(scope="module")
def trace_json():
    import contextlib

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        assert main(["trace", *QUICK, "--json", "--limit", "4"]) == 0
    return json.loads(buf.getvalue())


class TestMetricsCommand:
    def test_json_matches_checked_in_schema(self, metrics_json):
        assert validate(_schema("metrics.schema.json"), metrics_json) == []

    def test_json_contains_expected_metrics(self, metrics_json):
        names = {m["name"] for m in metrics_json["metrics"]}
        assert "keydb_run" in names
        assert "engine_steps_total" in names
        assert "keydb_read_latency_ns_p99" in names

    def test_csv_output(self, capsys):
        assert main(["metrics", *QUICK, "--csv"]) == 0
        rows = list(csv.reader(io.StringIO(capsys.readouterr().out)))
        assert rows[0] == ["name", "kind", "labels", "value"]
        assert all(len(r) == 4 for r in rows)

    def test_table_output(self, capsys):
        assert main(["metrics", *QUICK]) == 0
        out = capsys.readouterr().out
        assert "Metrics snapshot" in out
        assert "keydb_run" in out


class TestTraceCommand:
    def test_json_matches_checked_in_schema(self, trace_json):
        assert validate(_schema("trace.schema.json"), trace_json) == []

    def test_limit_respected(self, trace_json):
        assert len(trace_json["ops"]) == 4
        assert trace_json["op_count"] == 1_500

    def test_validation_embedded_and_clean(self, trace_json):
        check = trace_json["validation"]
        assert check["within_tolerance"] is True
        assert check["ops_checked"] == 1_500
        assert check["max_rel_error"] < 1e-9

    def test_table_output(self, capsys):
        assert main(["trace", *QUICK]) == 0
        out = capsys.readouterr().out
        assert "Per-layer latency breakdown" in out
        assert "[ok] span sums vs end-to-end latency" in out
        assert "dominant process" in out
