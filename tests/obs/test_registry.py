"""Tests for the metrics registry and its exporters."""

import csv
import io
import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry, Sample, histogram_samples
from repro.sim.stats import Counter, LatencyHistogram


class TestFamilies:
    def test_counter_increments_per_label_set(self):
        reg = MetricsRegistry()
        ops = reg.counter("ops_total", "ops", ("node",))
        ops.inc(node="mmem")
        ops.inc(2, node="cxl0")
        ops.labels(node="cxl0").inc()
        values = {s.labels["node"]: s.value for s in reg.samples()}
        assert values == {"mmem": 1.0, "cxl0": 3.0}

    def test_counter_is_monotonic(self):
        reg = MetricsRegistry()
        ops = reg.counter("ops_total")
        with pytest.raises(ConfigurationError):
            ops.inc(-1)

    def test_gauge_sets(self):
        reg = MetricsRegistry()
        util = reg.gauge("util", "utilization", ("link",))
        util.set(0.7, link="cxl")
        util.set(0.4, link="cxl")  # gauges move both ways
        (sample,) = reg.samples()
        assert sample.value == 0.4
        assert sample.kind == "gauge"

    def test_histogram_flattens_to_scalars(self):
        reg = MetricsRegistry()
        lat = reg.histogram("lat_ns", "latency", ("op",))
        for v in (100.0, 200.0, 300.0):
            lat.observe(v, op="get")
        names = {s.name for s in reg.samples()}
        assert names == {
            "lat_ns_count", "lat_ns_mean", "lat_ns_min", "lat_ns_max",
            "lat_ns_p50", "lat_ns_p95", "lat_ns_p99",
        }
        by_name = {s.name: s for s in reg.samples()}
        assert by_name["lat_ns_count"].value == 3.0
        assert by_name["lat_ns_mean"].value == pytest.approx(200.0)

    def test_label_schema_enforced(self):
        reg = MetricsRegistry()
        ops = reg.counter("ops_total", "ops", ("node",))
        with pytest.raises(ConfigurationError):
            ops.inc(socket=0)
        with pytest.raises(ConfigurationError):
            ops.inc(node="x", extra="y")

    def test_registration_idempotent_same_schema(self):
        reg = MetricsRegistry()
        a = reg.counter("ops_total", "ops", ("node",))
        b = reg.counter("ops_total", "ops", ("node",))
        assert a is b

    def test_conflicting_reregistration_raises(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "ops", ("node",))
        with pytest.raises(ConfigurationError):
            reg.gauge("ops_total", "ops", ("node",))
        with pytest.raises(ConfigurationError):
            reg.counter("ops_total", "ops", ("socket",))

    def test_invalid_metric_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("9bad-name")


class TestCollectors:
    def test_counter_bag_registers_lazily(self):
        reg = MetricsRegistry()
        bag = Counter()
        bag.register_into(reg, "keydb_ops", labels={"run": "a"})
        bag.add("hits", 3)
        bag.add("misses")  # post-registration increments are visible
        samples = {s.labels["counter"]: s for s in reg.samples()}
        assert samples["hits"].value == 3.0
        assert samples["misses"].value == 1.0
        assert samples["hits"].name == "keydb_ops_total"
        assert samples["hits"].labels["run"] == "a"

    def test_histogram_samples_helper(self):
        hist = LatencyHistogram()
        hist.record(500.0, count=4)
        out = list(histogram_samples("lat", {"op": "get"}, hist))
        by_name = {s.name: s.value for s in out}
        assert by_name["lat_count"] == 4.0
        assert by_name["lat_mean"] == pytest.approx(500.0)


class TestExport:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", "ops", ("node",)).inc(5, node="cxl0")
        reg.gauge("util").set(0.5)
        return reg

    def test_as_dict_schema(self):
        doc = self._registry().as_dict()
        assert doc["schema"] == "repro.metrics/v1"
        assert all(
            set(m) == {"name", "kind", "labels", "value"}
            for m in doc["metrics"]
        )

    def test_json_round_trip(self):
        doc = json.loads(self._registry().to_json())
        assert doc["schema"] == "repro.metrics/v1"
        assert len(doc["metrics"]) == 2

    def test_nonfinite_values_become_null_in_json(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(math.nan)
        doc = json.loads(reg.to_json())
        assert doc["metrics"][0]["value"] is None

    def test_csv_is_rectangular(self):
        rows = list(csv.reader(io.StringIO(self._registry().to_csv())))
        assert rows[0] == ["name", "kind", "labels", "value"]
        assert all(len(r) == 4 for r in rows)
        assert ["ops_total", "counter", "node=cxl0", "5.0"] in rows

    def test_sample_as_dict_stringifies_labels(self):
        sample = Sample("n", "gauge", {"id": 3}, 1.0)
        assert sample.as_dict()["labels"] == {"id": "3"}
