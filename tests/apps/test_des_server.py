"""Cross-validation: the event-driven KeyDB agrees with the epoch model."""

import pytest

from repro.apps.kvstore import KeyValueStore, ServiceProfile
from repro.apps.kvstore.des_server import DesKeyDbServer
from repro.apps.kvstore.server import KeyDbServer
from repro.errors import ConfigurationError
from repro.hw import paper_cxl_platform
from repro.mem import AddressSpace, MemoryInventory, numactl
from repro.sim import RngFactory
from repro.workloads import WORKLOADS, YcsbGenerator

RECORDS = 16_384
OPS = 30_000


def build(config: str):
    platform = paper_cxl_platform(snc_enabled=False)
    space = AddressSpace(MemoryInventory(platform))
    if config == "mmem":
        policy = numactl.membind(platform, socket=0)
    else:
        n, m = (int(x) for x in config.split(":"))
        policy = numactl.tier_interleave(platform, n, m)
    store = KeyValueStore(
        space, policy, record_count=RECORDS, profile=ServiceProfile.capacity()
    )
    return platform, store


def generator(seed=7, workload="A"):
    return YcsbGenerator(
        WORKLOADS[workload], RECORDS, RngFactory(seed).stream("des")
    )


class TestValidation:
    def test_parameters(self):
        platform, store = build("mmem")
        with pytest.raises(ConfigurationError):
            DesKeyDbServer(platform, store, threads=0)
        with pytest.raises(ConfigurationError):
            DesKeyDbServer(platform, store, clients=0)
        with pytest.raises(ConfigurationError):
            DesKeyDbServer(platform, store, utilization_refresh_ops=0)
        with pytest.raises(ConfigurationError):
            DesKeyDbServer(platform, store).run(generator(), 0)


class TestCrossValidation:
    @pytest.mark.parametrize("config", ["mmem", "1:1"])
    def test_throughput_agrees_with_epoch_model(self, config):
        platform, store = build(config)
        des = DesKeyDbServer(platform, store, threads=7, clients=16)
        des_result = des.run(generator(seed=7), OPS)

        platform2, store2 = build(config)
        epoch = KeyDbServer(platform2, store2, threads=7)
        epoch_result = epoch.run(generator(seed=7), OPS, warmup_ops=0)

        ratio = (
            des_result.throughput_ops_per_s / epoch_result.throughput_ops_per_s
        )
        assert 0.9 <= ratio <= 1.1, ratio

    def test_interleave_ordering_preserved(self):
        results = {}
        for config in ("mmem", "1:1"):
            platform, store = build(config)
            server = DesKeyDbServer(platform, store, clients=16)
            results[config] = server.run(generator(seed=3), OPS)
        assert (
            results["mmem"].throughput_ops_per_s
            > results["1:1"].throughput_ops_per_s
        )

    def test_queueing_visible_in_tails(self):
        """More clients than threads -> thread-queueing inflates the
        closed-loop tail above the bare service time."""
        platform, store = build("mmem")
        saturated = DesKeyDbServer(platform, store, threads=7, clients=28)
        r = saturated.run(generator(seed=5), 20_000)
        # Bare service for mmem ~5 us; with 4x oversubscription the
        # closed-loop p50 must sit well above it.
        assert r.read_latency.percentile(50) > 10_000

    def test_all_ops_complete(self):
        platform, store = build("mmem")
        server = DesKeyDbServer(platform, store, clients=4)
        result = server.run(generator(seed=1), 5_000)
        assert result.ops == 5_000
        assert result.elapsed_ns > 0
