"""Unit tests for the Spark result aggregation types."""

import pytest

from repro.apps.spark import QueryResult, StageResult


def stage(name="s", compute=10.0, sw=2.0, sr=3.0, spill=1.0, net=0.5, spilled=100):
    s = StageResult(name)
    s.compute_ns = compute
    s.shuffle_write_ns = sw
    s.shuffle_read_ns = sr
    s.spill_ssd_ns = spill
    s.network_ns = net
    s.spilled_bytes = spilled
    return s


class TestStageResult:
    def test_shuffle_and_total(self):
        s = stage()
        assert s.shuffle_ns == pytest.approx(5.0)
        assert s.total_ns == pytest.approx(15.0)


class TestQueryResult:
    def test_aggregation(self):
        q = QueryResult("Q9", "mmem", stages=[stage(), stage(compute=20.0)])
        assert q.total_ns == pytest.approx(15.0 + 25.0)
        assert q.shuffle_ns == pytest.approx(10.0)
        assert q.shuffle_write_ns == pytest.approx(4.0)
        assert q.shuffle_read_ns == pytest.approx(6.0)
        assert q.spilled_bytes == 200

    def test_shuffle_fraction(self):
        q = QueryResult("Q5", "mmem", stages=[stage()])
        assert q.shuffle_fraction == pytest.approx(5.0 / 15.0)

    def test_empty_query(self):
        q = QueryResult("Q0", "mmem")
        assert q.total_ns == 0.0
        assert q.shuffle_fraction == 0.0
        assert q.spilled_bytes == 0
