"""Tests for the Spark application model (units + §4.2 shape checks)."""

import pytest

from repro.errors import ConfigurationError
from repro.hw.spec import NicSpec, SsdSpec
from repro.apps.spark import (
    SPARK_CONFIGS,
    ExecutorSpec,
    SparkAppSpec,
    SparkQueryRunner,
    build_cluster_config,
    measure_cost_model_inputs,
    network_time_ns,
    plan_spill,
    run_spark_config,
    ssd_time_ns,
    tier_bandwidths,
)
from repro.units import GIB, gb, tb
from repro.workloads import paper_queries


class TestSpecs:
    def test_paper_app_sizing(self):
        """§4.2.1: 150 executors x 1 core x 8 GB = 150 cores, 1.2 TB."""
        app = SparkAppSpec()
        assert app.total_cores == 150
        assert app.total_memory_bytes == 150 * 8 * GIB

    def test_executor_validation(self):
        with pytest.raises(ConfigurationError):
            ExecutorSpec(cores=0)
        with pytest.raises(ConfigurationError):
            ExecutorSpec(shuffle_fraction=0.0)
        with pytest.raises(ConfigurationError):
            SparkAppSpec(executors=0)
        with pytest.raises(ConfigurationError):
            SparkAppSpec(skew=0.5)

    def test_shuffle_capacity(self):
        assert ExecutorSpec().shuffle_capacity_bytes == 4 * GIB


class TestSpillPlanning:
    def test_no_spill_when_fits(self):
        plan = plan_spill(SparkAppSpec(), shuffle_bytes=gb(400))
        assert plan.spilled_bytes == 0
        assert plan.in_memory_bytes == gb(400)

    def test_mmem_config_never_spills_paper_queries(self):
        """§4.2.1: with full memory 'there is no data spilled to disk'."""
        app = SparkAppSpec()
        for profile in paper_queries().values():
            for stage in profile.stages:
                assert plan_spill(app, stage.shuffle_bytes).spilled_bytes == 0

    def test_restriction_causes_spill(self):
        app = SparkAppSpec()
        big = gb(550)  # fits 600 GB cluster capacity, not 80 % of it
        assert plan_spill(app, big, memory_restriction=1.0).spilled_bytes == 0
        spilled = plan_spill(app, big, memory_restriction=0.8).spilled_bytes
        assert spilled == pytest.approx(big - 0.8 * 150 * 4 * GIB, rel=0.01)

    def test_deeper_restriction_spills_more(self):
        app = SparkAppSpec()
        s08 = plan_spill(app, gb(550), 0.8).spilled_bytes
        s06 = plan_spill(app, gb(550), 0.6).spilled_bytes
        assert s06 > s08 > 0

    def test_spill_fraction(self):
        plan = plan_spill(SparkAppSpec(), gb(550), 0.6)
        assert 0 < plan.spill_fraction < 1
        assert plan.in_memory_bytes + plan.spilled_bytes == gb(550)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            plan_spill(SparkAppSpec(), -1)
        with pytest.raises(ConfigurationError):
            plan_spill(SparkAppSpec(), 100, memory_restriction=0.0)


class TestSsdAndNetwork:
    def test_ssd_time_zero_for_no_spill(self):
        assert ssd_time_ns(0, 3, SsdSpec()) == 0.0

    def test_ssd_time_scales_inverse_with_servers(self):
        t3 = ssd_time_ns(gb(100), 3, SsdSpec())
        t1 = ssd_time_ns(gb(100), 1, SsdSpec())
        assert t1 == pytest.approx(3 * t3)

    def test_ssd_validation(self):
        with pytest.raises(ConfigurationError):
            ssd_time_ns(gb(1), 0, SsdSpec())
        with pytest.raises(ConfigurationError):
            ssd_time_ns(gb(1), 1, SsdSpec(), io_efficiency=0.0)

    def test_network_time_zero_single_server(self):
        assert network_time_ns(gb(100), 1, NicSpec()) == 0.0

    def test_network_cross_fraction(self):
        # 3 servers: 2/3 of bytes cross, at 3x NIC bandwidth.
        nic = NicSpec()
        t = network_time_ns(gb(300), 3, nic)
        expected = gb(200) / (nic.bandwidth_bytes_per_s * 3) * 1e9
        assert t == pytest.approx(expected)


class TestClusterConfigs:
    def test_all_paper_configs_build(self):
        for name in SPARK_CONFIGS:
            cfg = build_cluster_config(name)
            assert cfg.name == name

    def test_mmem_uses_three_servers(self):
        assert build_cluster_config("mmem").servers == 3
        assert build_cluster_config("mmem").dram_fraction == 1.0

    def test_interleave_uses_two_cxl_servers(self):
        cfg = build_cluster_config("1:3")
        assert cfg.servers == 2
        assert cfg.dram_fraction == pytest.approx(0.25)
        assert cfg.platform.cxl_nodes()

    def test_hot_promote_capacity_driven_fraction(self):
        cfg = build_cluster_config("hot-promote")
        # 600 GB working set per server vs 512 GB of MMEM.
        assert cfg.dram_fraction == pytest.approx(512 / 600, abs=0.01)
        assert cfg.thrash_overhead > 0

    def test_unknown_config(self):
        with pytest.raises(ConfigurationError):
            build_cluster_config("4:0")
        with pytest.raises(ConfigurationError):
            build_cluster_config("nvme")

    def test_tier_bandwidths(self):
        bw = tier_bandwidths(build_cluster_config("1:1").platform)
        assert bw["dram"] > bw["cxl"] > 0
        baseline = tier_bandwidths(build_cluster_config("mmem").platform)
        assert baseline["cxl"] == 0


class TestFig7Shape:
    @pytest.fixture(scope="class")
    def results(self):
        queries = paper_queries()
        return {name: run_spark_config(name, queries) for name in SPARK_CONFIGS}

    @pytest.fixture(scope="class")
    def slowdowns(self, results):
        base = {q: r.total_ns for q, r in results["mmem"].items()}
        return {
            name: {q: r.total_ns / base[q] for q, r in per_query.items()}
            for name, per_query in results.items()
        }

    def test_mmem_is_best(self, slowdowns):
        for name, per_query in slowdowns.items():
            if name == "mmem":
                continue
            for q, ratio in per_query.items():
                assert ratio >= 1.0, (name, q)

    def test_interleave_band_1_4_to_9_8(self, slowdowns):
        """§4.2.2: interleave slowdowns range from 1.4x to 9.8x."""
        ratios = [
            slowdowns[name][q]
            for name in ("3:1", "1:1", "1:3")
            for q in ("Q5", "Q7", "Q8", "Q9")
        ]
        assert min(ratios) == pytest.approx(1.4, abs=0.15)
        assert 6.0 <= max(ratios) <= 11.0

    def test_slowdown_grows_with_cxl_fraction(self, slowdowns):
        """§4.2.2: 'degradation becomes worse as a larger proportion of
        memory is allocated to CXL'."""
        for q in ("Q5", "Q7", "Q8", "Q9"):
            assert slowdowns["3:1"][q] < slowdowns["1:1"][q] < slowdowns["1:3"][q]

    def test_q9_suffers_most_from_interleave(self, slowdowns):
        for name in ("3:1", "1:1", "1:3"):
            per_query = slowdowns[name]
            assert per_query["Q9"] == max(per_query.values())

    def test_hot_promote_over_34_percent_slowdown(self, slowdowns):
        """§4.2.2: Hot-Promote shows >34 % slowdown vs MMEM on Spark."""
        for q, ratio in slowdowns["hot-promote"].items():
            assert ratio >= 1.34

    def test_hot_promote_better_than_plain_interleave(self, slowdowns):
        for q in ("Q5", "Q7", "Q8", "Q9"):
            assert slowdowns["hot-promote"][q] < slowdowns["1:1"][q]

    def test_deep_spill_worse_than_any_interleave(self, slowdowns):
        """§4.2.2: 'the interleaving approach remains significantly
        faster than spilling data to SSDs'."""
        for q in ("Q5", "Q7", "Q8", "Q9"):
            worst_interleave = max(
                slowdowns[name][q] for name in ("3:1", "1:1", "1:3")
            )
            assert slowdowns["spill-0.6"][q] > worst_interleave

    def test_spill_dominated_by_shuffle(self, results):
        """Fig. 7(b): 'shuffling overshadows the total execution time due
        to the intensification of data spill issues'."""
        for q, r in results["spill-0.6"].items():
            assert r.shuffle_fraction > 0.9
        for q, r in results["mmem"].items():
            assert r.shuffle_fraction < results["spill-0.6"][q].shuffle_fraction

    def test_spill_volumes_ordered(self, results):
        spilled_08 = sum(r.spilled_bytes for r in results["spill-0.8"].values())
        spilled_06 = sum(r.spilled_bytes for r in results["spill-0.6"].values())
        assert 0 < spilled_08 < spilled_06
        # Rough §4.2.1 magnitudes at the 7 TB scale (hundreds of GB).
        assert gb(50) < spilled_08 < tb(1)
        assert gb(300) < spilled_06 < tb(1.5)

    def test_shuffle_write_read_split_present(self, results):
        r = results["mmem"]["Q9"]
        assert r.shuffle_write_ns > 0
        assert r.shuffle_read_ns > 0


class TestCostModelInputs:
    def test_ordering(self):
        inputs = measure_cost_model_inputs()
        assert inputs.r_d > inputs.r_c > 1.0

    def test_validation(self):
        from repro.apps.spark import CostModelInputs

        with pytest.raises(ValueError):
            CostModelInputs(r_d=2.0, r_c=3.0)


class TestSkew:
    def test_skew_raises_spill(self):
        """A skewed partitioner spills earlier: the most loaded executor
        crosses its capacity while the average still fits."""
        balanced = SparkAppSpec(skew=1.0)
        skewed = SparkAppSpec(skew=1.3)
        ws = gb(500)  # average share 3.33 GB < 4 GB capacity
        assert plan_spill(balanced, ws).spilled_bytes == 0
        assert plan_spill(skewed, ws).spilled_bytes > 0
