"""End-to-end acceptance: the three apps degrade gracefully, deterministically.

These pin the RAS layer's contract at the application level:

* a fault scenario can take the CXL expander offline mid-run and every
  app still completes, at degraded-but-nonzero throughput;
* poisoned reads surface as :class:`PoisonedReadError` and are retried /
  failed over per the app's policy (visible in the counters);
* the same seed always produces the identical fault trace and summary.
"""

import pytest

from repro.errors import ConfigurationError
from repro.faults import run_faulted_app

SEED = 0xC0FFEE


class TestDeviceLossDegradesButCompletes:
    @pytest.mark.parametrize("app", ["keydb", "llm", "spark"])
    def test_run_completes_with_nonzero_throughput(self, app):
        summary = run_faulted_app(app, "device-loss", seed=SEED, quick=True)
        assert summary.faulted_throughput > 0
        assert summary.healthy_throughput > 0
        # Losing the expander costs throughput; it must not cost the run.
        assert summary.throughput_ratio <= 1.0
        assert 0.0 < summary.availability <= 1.0
        assert any("OFFLINE" in line for line in summary.trace)


class TestPerAppPolicies:
    def test_keydb_fails_over_and_sheds_nothing_on_poison(self):
        summary = run_faulted_app("keydb", "poison", seed=SEED, quick=True)
        # Poison hits happened, each retried onto surviving DRAM.
        assert summary.counters.get("poison_reads", 0) > 0
        assert summary.counters.get("fault_retries", 0) >= summary.counters["poison_reads"]
        assert summary.counters.get("failover_bytes", 0) > 0
        # Failover absorbs every hit: nothing shed, full availability.
        assert summary.counters.get("ops_shed", 0) == 0
        assert summary.availability == pytest.approx(1.0)

    def test_keydb_retry_backoff_budget_is_spent_not_blown(self):
        summary = run_faulted_app("keydb", "poison", seed=SEED, quick=True)
        retries = summary.counters.get("fault_retries", 0)
        backoff = summary.counters.get("retry_backoff_ns", 0)
        assert retries > 0
        # Each retry backs off at least the policy's base (200 us).
        assert backoff >= retries * 200e3

    def test_llm_routes_around_dead_backend(self):
        summary = run_faulted_app("llm", "device-loss", seed=SEED, quick=True)
        assert summary.counters["reroutes"] > 0
        assert summary.counters["requests_completed"] > 0
        # The router keeps serving on surviving backends.
        assert summary.availability > 0.5

    def test_llm_breaker_trips_under_error_storm(self):
        summary = run_faulted_app("llm", "error-storm", seed=SEED, quick=True)
        assert summary.counters["breaker_trips"] > 0
        assert any("error storm" in line for line in summary.trace)
        # The storm clears: the run still completes every request.
        assert summary.counters["requests_failed"] == 0

    def test_spark_reexecutes_lost_shuffle_work(self):
        summary = run_faulted_app("spark", "device-loss", seed=SEED, quick=True)
        assert summary.counters["reexec_ns"] > 0
        assert summary.counters["slowdown"] >= 1.0
        # Work is re-executed, never dropped.
        assert summary.availability == 1.0

    def test_spark_charges_poisoned_shuffle_bytes(self):
        summary = run_faulted_app("spark", "meltdown", seed=SEED, quick=True)
        assert summary.counters["poisoned_bytes"] > 0
        assert summary.counters["slowdown"] > 1.0


class TestDeterminism:
    @pytest.mark.parametrize("app,scenario", [
        ("keydb", "device-flap"),
        ("llm", "device-loss"),
        ("spark", "meltdown"),
    ])
    def test_same_seed_identical_trace_and_summary(self, app, scenario):
        a = run_faulted_app(app, scenario, seed=SEED, quick=True)
        b = run_faulted_app(app, scenario, seed=SEED, quick=True)
        assert a.trace == b.trace
        assert a.counters == b.counters
        assert a.faulted_throughput == b.faulted_throughput
        assert a.availability == b.availability

    def test_transient_fault_has_finite_recovery(self):
        summary = run_faulted_app("keydb", "device-flap", seed=SEED, quick=True)
        assert summary.report is not None
        import math

        assert math.isfinite(summary.report.recovery_ns)


class TestDispatch:
    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown app"):
            run_faulted_app("postgres", "device-loss")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault scenario"):
            run_faulted_app("keydb", "asteroid")
