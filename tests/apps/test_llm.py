"""Tests for the LLM serving model (units + §5.2/Fig. 10 shape checks)."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.units import GIB, MIB
from repro.workloads.llm_trace import ChatRequest, chat_trace
from repro.apps.llm import (
    LLM_CONFIGS,
    BackendSpec,
    CpuBackend,
    KvCache,
    LlmRouter,
    LlmServingExperiment,
    alpaca_7b,
)


class TestModelSpec:
    def test_alpaca_7b_preset(self):
        model = alpaca_7b()
        # §5.1: "the Alpaca 7B model ... requiring 4.1 GB of memory".
        assert model.weight_bytes == pytest.approx(4.1 * GIB, rel=0.001)
        assert model.n_parameters == 7_000_000_000
        # fp16 KV per token: 2 x 32 layers x 4096 x 2 B = 512 KiB.
        assert model.kv_bytes_per_token == 512 * 1024

    def test_kv_cache_bytes(self):
        model = alpaca_7b()
        assert model.kv_cache_bytes(0) == 0
        assert model.kv_cache_bytes(100) == 100 * model.kv_bytes_per_token
        with pytest.raises(ConfigurationError):
            model.kv_cache_bytes(-1)


class TestKvCache:
    def test_admit_and_grow(self):
        cache = KvCache(alpaca_7b(), capacity_bytes=GIB)
        cache.admit(0, prompt_tokens=100)
        assert cache.tokens_of(0) == 100
        cache.append_token(0)
        assert cache.tokens_of(0) == 101
        assert cache.total_bytes == alpaca_7b().kv_cache_bytes(101)

    def test_capacity_enforced(self):
        model = alpaca_7b()
        cache = KvCache(model, capacity_bytes=model.kv_bytes_per_token * 10)
        cache.admit(0, prompt_tokens=10)
        with pytest.raises(CapacityError):
            cache.append_token(0)
        with pytest.raises(CapacityError):
            cache.admit(1, prompt_tokens=5)

    def test_release_frees(self):
        model = alpaca_7b()
        cache = KvCache(model, capacity_bytes=model.kv_bytes_per_token * 10)
        cache.admit(0, prompt_tokens=10)
        cache.release(0)
        assert cache.total_bytes == 0
        cache.admit(1, prompt_tokens=10)  # fits again

    def test_append_requires_admission(self):
        cache = KvCache(alpaca_7b(), capacity_bytes=GIB)
        with pytest.raises(CapacityError):
            cache.append_token(7)

    def test_sequences_isolated(self):
        """'Different requests typically do not share the KV cache'."""
        cache = KvCache(alpaca_7b(), capacity_bytes=GIB)
        cache.admit(0, 50)
        cache.admit(1, 30)
        assert cache.tokens_of(0) == 50
        assert cache.tokens_of(1) == 30
        assert cache.sequences == 2


class TestBackend:
    def test_offered_bandwidth_plateau(self):
        spec = BackendSpec()
        assert BackendSpec(threads=12).offered_bandwidth == pytest.approx(12.6e9)
        assert BackendSpec(threads=48).offered_bandwidth == spec.stream_cap

    def test_token_time_monotone_in_latency(self):
        backend = CpuBackend()
        fast = backend.token_time_ns(12.6e9, loaded_latency_ns=97.0)
        slow = backend.token_time_ns(12.6e9, loaded_latency_ns=500.0)
        assert slow > fast

    def test_token_time_monotone_in_kv(self):
        backend = CpuBackend()
        short = backend.token_time_ns(12.6e9, 97.0, kv_bytes=0)
        long = backend.token_time_ns(12.6e9, 97.0, kv_bytes=GIB)
        assert long > short

    def test_validation(self):
        backend = CpuBackend()
        with pytest.raises(ConfigurationError):
            backend.token_time_ns(0.0, 97.0)
        with pytest.raises(ConfigurationError):
            backend.token_time_ns(1e9, 97.0, kv_bytes=-1)
        with pytest.raises(ConfigurationError):
            BackendSpec(threads=0)


class TestFig10aShape:
    @pytest.fixture(scope="class")
    def sweeps(self):
        return {
            config: {p.threads: p for p in LlmServingExperiment(config).sweep()}
            for config in LLM_CONFIGS
        }

    def test_linear_scaling_below_saturation(self, sweeps):
        """§5.2: 'the serving rate improves almost linearly' at first."""
        mmem = sweeps["mmem"]
        r12, r36 = mmem[12].tokens_per_second, mmem[36].tokens_per_second
        assert r36 / r12 == pytest.approx(3.0, abs=0.15)

    def test_mmem_saturates_at_48_threads(self, sweeps):
        """§5.2: 'at 48 threads, MMEM bandwidth saturation limits the
        serving rate'."""
        mmem = sweeps["mmem"]
        gain_to_48 = mmem[48].tokens_per_second / mmem[36].tokens_per_second
        gain_past_48 = mmem[60].tokens_per_second / mmem[48].tokens_per_second
        assert gain_to_48 < 48 / 36  # sub-linear already
        assert gain_past_48 < 1.05  # flat or declining

    def test_3_1_beats_mmem_by_95_percent_at_60_threads(self, sweeps):
        gain = (
            sweeps["3:1"][60].tokens_per_second
            / sweeps["mmem"][60].tokens_per_second
        )
        assert gain == pytest.approx(1.95, abs=0.25)

    def test_interleaving_scales_past_mmem_saturation(self, sweeps):
        for config in ("3:1", "1:1"):
            s = sweeps[config]
            assert s[72].tokens_per_second > s[48].tokens_per_second

    def test_mmem_heavy_interleave_is_best_at_60(self, sweeps):
        """§5.2: 'configurations with a higher proportion of data in main
        memory demonstrate superior inference performance'."""
        at60 = {c: sweeps[c][60].tokens_per_second for c in LLM_CONFIGS}
        assert at60["3:1"] > at60["1:1"] > at60["1:3"]

    def test_mmem_only_loses_to_1_3_beyond_64_threads(self, sweeps):
        """§5.2: MMEM-only is ~14 % below 1:3 beyond 64 threads."""
        deficit = (
            sweeps["1:3"][72].tokens_per_second
            / sweeps["mmem"][72].tokens_per_second
            - 1.0
        )
        assert 0.05 <= deficit <= 0.30

    def test_utilizations_reported(self, sweeps):
        point = sweeps["1:1"][60]
        assert 0 < point.dram_utilization <= 1
        assert 0 < point.cxl_utilization <= 1


class TestFig10bAnd10c:
    @pytest.fixture(scope="class")
    def experiment(self):
        return LlmServingExperiment("mmem")

    def test_fig10b_linear_then_plateau(self, experiment):
        """§5.2: 'bandwidth utilization grows linearly with thread count,
        plateauing at 24.2 GB/s for 24 threads'."""
        assert experiment.fig10b_bandwidth_gbps(12) == pytest.approx(12.6, abs=0.5)
        assert experiment.fig10b_bandwidth_gbps(24) == pytest.approx(24.2, abs=0.5)
        assert experiment.fig10b_bandwidth_gbps(32) == pytest.approx(24.2, abs=0.5)

    def test_fig10b_validation(self, experiment):
        with pytest.raises(ConfigurationError):
            experiment.fig10b_bandwidth_gbps(0)

    def test_fig10c_model_load_floor(self, experiment):
        """§5.2: '~12 GB/s originates from I/O threads loading the model'."""
        assert experiment.fig10c_bandwidth_gbps(0) == pytest.approx(12.0, abs=2.0)

    def test_fig10c_plateau_near_21(self, experiment):
        """§5.2: 'bandwidth utilization stops increasing beyond ~21 GB/s'."""
        big = experiment.fig10c_bandwidth_gbps(32 * GIB)
        assert big == pytest.approx(21.0, abs=1.5)

    def test_fig10c_monotone(self, experiment):
        values = [
            experiment.fig10c_bandwidth_gbps(i * GIB) for i in (0, 1, 2, 4, 8)
        ]
        assert values == sorted(values)


class TestRouter:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LlmRouter(LlmServingExperiment("mmem"), backends=0)
        with pytest.raises(ConfigurationError):
            LlmServingExperiment("5:5:5")

    def test_serves_all_requests(self):
        router = LlmRouter(LlmServingExperiment("3:1"), backends=2)
        rng = np.random.default_rng(11)
        requests = list(chat_trace(rng, 8, mean_new_tokens=16))
        result = router.serve(requests)
        assert result.requests_completed == 8
        assert result.tokens_generated == sum(r.max_new_tokens for r in requests)
        assert result.tokens_per_second > 0

    def test_least_loaded_distribution(self):
        router = LlmRouter(LlmServingExperiment("mmem"), backends=4)
        # With equal load the picker cycles through all backends.
        picks = set()
        for _ in range(4):
            idx = router._pick_backend()
            picks.add(idx)
            router.active_sequences[idx] += 1
        assert picks == {0, 1, 2, 3}

    def test_longer_requests_take_longer(self):
        exp = LlmServingExperiment("mmem")
        short = LlmRouter(exp, backends=1).serve([ChatRequest(64, 8)])
        long = LlmRouter(exp, backends=1).serve([ChatRequest(64, 64)])
        assert long.elapsed_ns > short.elapsed_ns
