"""Tests for the trace replayer."""

import numpy as np
import pytest

from repro.apps import TraceReplayer
from repro.errors import ConfigurationError
from repro.hw import paper_cxl_platform
from repro.mem import AddressSpace, HotPageSelectionDaemon, MemoryInventory, numactl
from repro.units import gb_per_s
from repro.workloads import sequential_trace, zipfian_trace


@pytest.fixture
def platform():
    return paper_cxl_platform(snc_enabled=False)


def make_space(platform, pages, policy=None):
    space = AddressSpace(MemoryInventory(platform))
    space.allocate_pages(pages, policy or numactl.membind(platform, socket=0))
    return space


class TestValidation:
    def test_concurrency(self, platform):
        space = make_space(platform, 16)
        with pytest.raises(ConfigurationError):
            TraceReplayer(platform, space, concurrency=0)

    def test_trace_must_fit_space(self, platform):
        space = make_space(platform, 16)
        trace = sequential_trace(32, 100)
        with pytest.raises(ConfigurationError):
            TraceReplayer(platform, space).replay(trace)

    def test_epoch_size(self, platform):
        space = make_space(platform, 16)
        with pytest.raises(ConfigurationError):
            TraceReplayer(platform, space).replay(
                sequential_trace(16, 10), epoch_accesses=0
            )


class TestReplay:
    def test_dram_only_latency_near_idle(self, platform):
        space = make_space(platform, 256)
        result = TraceReplayer(platform, space).replay(sequential_trace(256, 5000))
        assert result.accesses == 5000
        assert result.average_latency_ns == pytest.approx(97.0, abs=10)
        assert result.node_fraction([0]) == 1.0

    def test_interleave_latency_between_tiers(self, platform):
        space = make_space(platform, 256, numactl.tier_interleave(platform, 1, 1))
        result = TraceReplayer(platform, space).replay(sequential_trace(256, 5000))
        assert 97.0 < result.average_latency_ns < 250.42
        cxl_ids = [n.node_id for n in platform.cxl_nodes()]
        assert result.node_fraction(cxl_ids) == pytest.approx(0.5, abs=0.02)

    def test_write_trace_uses_write_latency(self, platform):
        space = make_space(platform, 64)
        reads = TraceReplayer(platform, space).replay(
            sequential_trace(64, 2000, write_fraction=0.0)
        )
        writes = TraceReplayer(platform, space).replay(
            sequential_trace(64, 2000, write_fraction=1.0,
                             rng=np.random.default_rng(1))
        )
        # Local NT writes are slightly cheaper than reads (90 vs 97 ns).
        assert writes.average_latency_ns < reads.average_latency_ns

    def test_bandwidth_reported(self, platform):
        space = make_space(platform, 64)
        result = TraceReplayer(platform, space, concurrency=16).replay(
            sequential_trace(64, 10_000)
        )
        assert result.achieved_bandwidth > 0
        assert result.elapsed_ns > 0

    def test_tiering_daemon_improves_zipfian_placement(self, platform):
        """End-to-end: replaying a Zipfian trace over 1:1 placement with
        the hot-page daemon pulls the hot set to DRAM and cuts latency."""
        rng = np.random.default_rng(5)
        trace = zipfian_trace(2048, 120_000, rng=rng)

        def run(with_daemon):
            space = make_space(
                platform, 2048, numactl.tier_interleave(platform, 1, 1)
            )
            daemon = None
            if with_daemon:
                daemon = HotPageSelectionDaemon(
                    space,
                    dram_nodes=[platform.dram_nodes(0)[0].node_id],
                    cxl_nodes=[n.node_id for n in platform.cxl_nodes()],
                    scan_period_ns=1e6,
                    promote_rate_limit_bytes_per_s=gb_per_s(0.5),
                    initial_threshold=2.0,
                )
            replayer = TraceReplayer(platform, space, tiering=daemon)
            return replayer.replay(trace)

        static = run(False)
        tiered = run(True)
        assert tiered.migrated_bytes > 0
        cxl_ids = [n.node_id for n in platform.cxl_nodes()]
        assert tiered.node_fraction(cxl_ids) < static.node_fraction(cxl_ids)

    def test_deterministic(self, platform):
        trace = zipfian_trace(512, 20_000, rng=np.random.default_rng(2))

        def run():
            space = make_space(platform, 512, numactl.tier_interleave(platform, 3, 1))
            return TraceReplayer(platform, space).replay(trace).average_latency_ns

        assert run() == pytest.approx(run(), rel=0)
