"""Tests for the KeyDB application model (units + §4.1/§4.3 shape checks)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw import paper_cxl_platform
from repro.hw.device import SsdDevice
from repro.hw.spec import SsdSpec
from repro.mem import AddressSpace, BindPolicy, MemoryInventory
from repro.apps.kvstore import (
    TABLE1_CONFIGS,
    FlashTier,
    KeyValueStore,
    ServiceProfile,
    build_keydb_experiment,
    run_keydb_config,
    run_keydb_cxl_only,
)


@pytest.fixture
def platform():
    return paper_cxl_platform(snc_enabled=False)


@pytest.fixture
def space(platform):
    return AddressSpace(MemoryInventory(platform))


def make_store(space, platform, records=4096, flash=None):
    policy = BindPolicy([platform.dram_nodes(0)[0].node_id])
    return KeyValueStore(space, policy, record_count=records, flash=flash)


class TestServiceProfile:
    def test_presets(self):
        cap = ServiceProfile.capacity()
        vm = ServiceProfile.vm()
        # §4.3: Redis processing dominates in the VM experiment, so its
        # CPU share is larger and its memory sensitivity smaller.
        assert vm.cpu_ns > cap.cpu_ns
        assert vm.struct_accesses + vm.value_accesses < (
            cap.struct_accesses + cap.value_accesses
        )

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ServiceProfile(cpu_ns=-1, struct_accesses=1, value_accesses=1)
        with pytest.raises(ConfigurationError):
            ServiceProfile(cpu_ns=1, struct_accesses=-1, value_accesses=1)


class TestKeyValueStore:
    def test_key_to_page_mapping(self, space, platform):
        store = make_store(space, platform)
        # 1 KB values, 4 KiB pages: four consecutive keys share a page.
        assert store.page_of(0) is store.page_of(3)
        assert store.page_of(0) is not store.page_of(4)

    def test_key_out_of_range(self, space, platform):
        store = make_store(space, platform)
        with pytest.raises(KeyError):
            store.page_of(999_999)

    def test_large_values_span_pages(self, space, platform):
        policy = BindPolicy([0])
        store = KeyValueStore(space, policy, record_count=10, value_size=8192)
        assert len(store.pages) == 20  # 2 pages per 8 KB value
        assert len(store.pages_of(4)) == 2
        assert store.page_of(4) is store.pages_of(4)[0]
        with pytest.raises(ConfigurationError):
            KeyValueStore(space, policy, record_count=10, value_size=0)

    def test_small_values_pages_of_single(self, space, platform):
        store = make_store(space, platform)
        assert store.pages_of(3) == [store.page_of(3)]

    def test_plan_get_touches_page(self, space, platform):
        store = make_store(space, platform)
        plan = store.plan_get(5, now_ns=123.0)
        assert plan.value_page.access_count == 1
        assert plan.value_page.last_access_ns == 123.0
        assert not plan.is_write
        assert plan.ssd_read_bytes == 0

    def test_plan_set_grows_space(self, space, platform):
        store = make_store(space, platform, records=16)
        plan = store.plan_set(100, now_ns=0.0)
        assert plan.is_write
        assert store.record_count == 101

    def test_dataset_bytes(self, space, platform):
        store = make_store(space, platform, records=1000)
        assert store.dataset_bytes() == 1000 * 1024

    def test_node_mix_sums_to_one(self, space, platform):
        store = make_store(space, platform)
        assert sum(store.node_mix().values()) == pytest.approx(1.0)


class TestFlashTier:
    def make_flash(self, resident=100, **kwargs):
        ssd = SsdDevice(SsdSpec())
        return FlashTier(ssd, resident_values=resident, value_size=1024, **kwargs)

    def test_validation(self):
        ssd = SsdDevice(SsdSpec())
        with pytest.raises(ConfigurationError):
            FlashTier(ssd, resident_values=0, value_size=1024)
        with pytest.raises(ConfigurationError):
            FlashTier(ssd, resident_values=1, value_size=1024, cache_inefficiency=2.0)
        with pytest.raises(ConfigurationError):
            FlashTier(ssd, resident_values=1, value_size=1024, os_cache_hit_rate=1.0)

    def test_new_writes_are_memtable_resident(self):
        flash = self.make_flash(resident=2, cache_inefficiency=0.0)
        flash.register_value(0)
        flash.register_value(1)
        flash.register_value(2)  # over capacity: displaces the LRU (key 0)
        assert not flash.is_resident(0)
        assert flash.is_resident(1)
        assert flash.is_resident(2)
        assert flash.spilled_fraction == pytest.approx(1 / 3)

    def test_lru_eviction_order(self):
        flash = self.make_flash(resident=2, cache_inefficiency=0.0)
        for key in (0, 1, 2):
            flash.register_value(key)
        # Capacity 2: registering key 2 displaced key 0 (the LRU).
        assert not flash.is_resident(0)
        flash.note_use(1)  # 2 becomes LRU
        flash.fault_in(0)  # evicts 2
        assert flash.is_resident(0)
        assert flash.is_resident(1)
        assert not flash.is_resident(2)
        assert flash.evictions == 2  # one at register, one at fault

    def test_churn_probability(self):
        flash = self.make_flash(
            resident=50, cache_inefficiency=1.0, rng=np.random.default_rng(1)
        )
        for key in range(100):  # 50 % spilled, churn = 0.5
            flash.register_value(key)
        # Key 99 is resident (newest); churn still forces ~50 % misses.
        hits = sum(flash.is_resident(99) for _ in range(2000))
        assert 800 < hits < 1200

    def test_write_amortization(self):
        flash = self.make_flash(resident=10)
        raw = flash.ssd.access_time_ns(1024, is_write=True)
        assert flash.write_time_ns(1024) == pytest.approx(raw * 0.10)

    def test_os_cache_hit_path(self):
        flash = self.make_flash(
            resident=10, os_cache_hit_rate=0.999, rng=np.random.default_rng(2)
        )
        assert flash.read_time_ns(4096) == FlashTier.PAGE_CACHE_HIT_NS


class TestExperimentAssembly:
    def test_table1_configs_all_build(self):
        for config in TABLE1_CONFIGS:
            exp = build_keydb_experiment(config, record_count=4096)
            assert exp.name == config

    def test_unknown_config_rejected(self):
        with pytest.raises(ConfigurationError):
            build_keydb_experiment("mmem-ssd-2.0", record_count=4096)
        with pytest.raises(ConfigurationError):
            build_keydb_experiment("nvram", record_count=4096)

    def test_unknown_workload_rejected(self):
        with pytest.raises(ConfigurationError):
            build_keydb_experiment("mmem", workload="Z", record_count=4096)

    def test_interleave_config_places_across_tiers(self):
        exp = build_keydb_experiment("1:1", record_count=8192)
        store = exp.server.store
        cxl_ids = {n.node_id for n in exp.platform.cxl_nodes()}
        mix = store.node_mix()
        cxl_share = sum(frac for node, frac in mix.items() if node in cxl_ids)
        assert cxl_share == pytest.approx(0.5, abs=0.01)

    def test_hot_promote_has_daemon_and_capped_dram(self):
        exp = build_keydb_experiment("hot-promote", record_count=8192)
        assert exp.server.tiering is not None
        dram = exp.platform.dram_nodes(0)[0]
        inv = exp.server.store.space.inventory
        assert inv.capacity(dram.node_id) == exp.server.store.dataset_bytes() // 2

    def test_ssd_config_has_flash(self):
        exp = build_keydb_experiment("mmem-ssd-0.2", record_count=4096)
        flash = exp.server.store.flash
        assert flash is not None
        assert flash.spilled_fraction == pytest.approx(0.2, abs=0.01)

    def test_deterministic_runs(self):
        a = run_keydb_config("1:1", record_count=4096, total_ops=4000, seed=3)
        b = run_keydb_config("1:1", record_count=4096, total_ops=4000, seed=3)
        assert a.throughput_ops_per_s == pytest.approx(b.throughput_ops_per_s)


class TestFig5Shape:
    """Scaled-down §4.1.2 shape checks (full scale runs in benchmarks/)."""

    @pytest.fixture(scope="class")
    def results(self):
        return {
            config: run_keydb_config(
                config, workload="A", record_count=16_384, total_ops=30_000
            )
            for config in ("mmem", "3:1", "1:1", "1:3", "mmem-ssd-0.2")
        }

    def test_mmem_fastest(self, results):
        base = results["mmem"].throughput_ops_per_s
        for config, r in results.items():
            if config != "mmem":
                assert r.throughput_ops_per_s < base

    def test_interleave_slowdown_band(self, results):
        """§4.1.2: interleaving is 1.2-1.5x slower than MMEM."""
        base = results["mmem"].throughput_ops_per_s
        for config in ("1:1", "1:3"):
            slowdown = base / results[config].throughput_ops_per_s
            assert 1.15 <= slowdown <= 1.65

    def test_more_cxl_is_slower(self, results):
        assert (
            results["3:1"].throughput_ops_per_s
            > results["1:1"].throughput_ops_per_s
            > results["1:3"].throughput_ops_per_s
        )

    def test_ssd_slowest_and_heavy_tail(self, results):
        """SSD spill is the slowest configuration and has a far worse
        tail than any in-memory configuration (Fig. 5(b))."""
        ssd = results["mmem-ssd-0.2"]
        for config in ("mmem", "3:1", "1:1", "1:3"):
            assert ssd.throughput_ops_per_s < results[config].throughput_ops_per_s
        assert ssd.read_latency.percentile(99.9) > (
            results["1:1"].read_latency.percentile(99.9) * 5
        )

    def test_interleave_raises_read_tail(self, results):
        """Fig. 5(c): the interleave CDF is right-shifted vs MMEM."""
        assert results["1:1"].read_latency.percentile(99) > (
            results["mmem"].read_latency.percentile(99)
        )


class TestFig8CxlOnly:
    """§4.3: KeyDB bound entirely to CXL vs entirely to MMEM."""

    @pytest.fixture(scope="class")
    def pair(self):
        mmem = run_keydb_cxl_only(on_cxl=False, record_count=20_480, total_ops=30_000)
        cxl = run_keydb_cxl_only(on_cxl=True, record_count=20_480, total_ops=30_000)
        return mmem, cxl

    def test_throughput_drop_near_12_5_percent(self, pair):
        mmem, cxl = pair
        drop = 1.0 - cxl.throughput_ops_per_s / mmem.throughput_ops_per_s
        assert 0.08 <= drop <= 0.17

    def test_latency_penalty_in_9_27_band(self, pair):
        mmem, cxl = pair
        penalty = cxl.read_latency.percentile(50) / mmem.read_latency.percentile(50) - 1
        assert 0.05 <= penalty <= 0.30

    def test_penalty_below_raw_latency_ratio(self, pair):
        """§4.3.2: the app-level penalty is far below the raw 2.5x path
        latency ratio, because Redis processing dominates."""
        mmem, cxl = pair
        penalty = cxl.read_latency.mean / mmem.read_latency.mean
        assert penalty < 1.5
