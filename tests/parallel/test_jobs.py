"""Tests for the sweep job model (spec, seeds, results)."""

import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    PointError,
    PointResult,
    SweepExecutionError,
    SweepPoint,
    SweepSpec,
    derive_seed,
    tasks,
)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(7, "a/b") == derive_seed(7, "a/b")

    def test_known_value_pinned(self):
        # SHA-256 derivation must never drift: a new Python, platform or
        # PYTHONHASHSEED must reproduce historical sweeps bit-for-bit.
        assert derive_seed(0, "x") == 0xDBCDD5257900
        assert derive_seed(0xC0FFEE, "A/mmem") == 0x908C7278C1AC

    def test_distinct_keys_distinct_seeds(self):
        seeds = {derive_seed(1, f"k{i}") for i in range(64)}
        assert len(seeds) == 64

    def test_fits_in_48_bits(self):
        for i in range(16):
            assert 0 <= derive_seed(3, f"p{i}") < 2**48

    def test_negative_base_rejected(self):
        with pytest.raises(ConfigurationError):
            derive_seed(-1, "x")


class TestSweepSpec:
    def test_empty_points_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(name="s", task=tasks.demo_point, points=())

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(
                name="s",
                task=tasks.demo_point,
                points=(SweepPoint(key="a"), SweepPoint(key="a")),
            )

    def test_lambda_task_rejected(self):
        # Spawned workers import the task by reference; a lambda would
        # only fail later, inside the pool.
        with pytest.raises(ConfigurationError):
            SweepSpec(
                name="s",
                task=lambda params, seed: None,
                points=(SweepPoint(key="a"),),
            )

    def test_local_function_rejected(self):
        def local_task(params, seed):
            return None

        with pytest.raises(ConfigurationError):
            SweepSpec(name="s", task=local_task, points=(SweepPoint(key="a"),))

    def test_empty_key_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepPoint(key="")

    def test_from_grid_derives_per_key_seeds(self):
        spec = SweepSpec.from_grid(
            "s", tasks.demo_point, {"a": {}, "b": {}}, base_seed=5
        )
        assert [p.key for p in spec.points] == ["a", "b"]
        assert spec.points[0].seed == derive_seed(5, "a")
        assert spec.points[1].seed == derive_seed(5, "b")

    def test_from_grid_shared_seed_pins_base(self):
        spec = SweepSpec.from_grid(
            "s", tasks.demo_point, {"a": {}, "b": {}}, base_seed=5,
            shared_seed=True,
        )
        assert all(p.seed == 5 for p in spec.points)


class TestPointResult:
    def test_as_dict_excludes_wall_clock(self):
        # elapsed_s is host timing; exports must be identical across
        # worker counts and machine speeds.
        pr = PointResult(key="a", index=0, seed=1, params={}, ok=True,
                         value=42, elapsed_s=1.23)
        assert "elapsed_s" not in pr.as_dict()
        assert pr.as_dict()["ok"] is True

    def test_sweep_execution_error_lists_failures(self):
        pr = PointResult(
            key="a", index=0, seed=1, params={}, ok=False,
            error=PointError(type="RuntimeError", message="boom", traceback=""),
        )
        err = SweepExecutionError([pr])
        assert "a" in str(err) and "RuntimeError" in str(err)
