"""Tests for merging per-point repro.metrics/v1 documents."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.parallel import (
    merge_metrics_documents,
    merged_metrics_json,
    register_point_samples,
)


def _doc(name="m", value=1.0, labels=None):
    return {
        "schema": "repro.metrics/v1",
        "generated_by": "test",
        "metrics": [
            {"name": name, "kind": "counter",
             "labels": dict(labels or {}), "value": value}
        ],
    }


class TestMerge:
    def test_point_label_added_in_order(self):
        merged = merge_metrics_documents(
            [("a", _doc(value=1.0)), ("b", _doc(value=2.0))]
        )
        assert merged["schema"] == "repro.metrics/v1"
        assert [s["labels"]["point"] for s in merged["metrics"]] == ["a", "b"]
        assert [s["value"] for s in merged["metrics"]] == [1.0, 2.0]

    def test_original_labels_preserved(self):
        merged = merge_metrics_documents([("a", _doc(labels={"cfg": "1:1"}))])
        assert merged["metrics"][0]["labels"] == {"cfg": "1:1", "point": "a"}

    def test_duplicate_point_keys_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_metrics_documents([("a", _doc()), ("a", _doc())])

    def test_preexisting_point_label_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_metrics_documents([("a", _doc(labels={"point": "x"}))])

    def test_wrong_schema_rejected(self):
        with pytest.raises(ConfigurationError):
            merge_metrics_documents([("a", {"schema": "other", "metrics": []})])

    def test_json_form_matches_registry_style(self):
        text = merged_metrics_json([("a", _doc())])
        doc = json.loads(text)
        assert doc["generated_by"] == "repro.parallel.merge"
        # Same indent=2 serialization as MetricsRegistry.to_json.
        assert text == json.dumps(doc, indent=2)


class TestRegisterPointSamples:
    def test_samples_replay_through_registry(self):
        registry = MetricsRegistry()
        local = registry.counter("local_ops", "locally owned", ())
        local.inc(3)
        register_point_samples(registry, "a", _doc(name="remote", value=7.0))
        samples = {(s.name, s.labels.get("point")): s.value
                   for s in registry.samples()}
        assert samples[("local_ops", None)] == 3.0
        assert samples[("remote", "a")] == 7.0

    def test_bad_document_rejected_up_front(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            register_point_samples(registry, "a", {"schema": "nope"})
