"""Chaos harness: injected faults never change what a sweep computes."""

import pytest

from repro.cache import SweepCache
from repro.errors import ConfigurationError
from repro.faults.retry import RetryPolicy
from repro.parallel import SweepPoint, SweepSpec, SupervisorConfig, run_sweep, tasks
from repro.parallel.chaos import (
    ChaosPlan,
    chaos_task,
    chaos_wrap,
    corrupt_cache_entries,
)

#: Millisecond backoff + generous retry budget: every chaos fault is
#: recoverable, so the sweep must converge.
RETRYING = SupervisorConfig(
    max_attempts=6,
    backoff=RetryPolicy(
        max_attempts=6, base_backoff_ns=1e6, multiplier=2.0, max_backoff_ns=1e7
    ),
)


def _demo_spec(n=6, name="demo"):
    return SweepSpec(
        name=name,
        task=tasks.demo_point,
        points=tuple(
            SweepPoint(key=f"p{i}", params={"draws": 32}, seed=100 + i)
            for i in range(n)
        ),
    )


class TestChaosPlan:
    def test_roll_is_deterministic(self):
        plan = ChaosPlan(seed=1, transient_prob=0.5)
        assert plan.roll("p0", 1, "kill") == plan.roll("p0", 1, "kill")
        assert plan.roll("p0", 1, "kill") != plan.roll("p0", 2, "kill")
        assert plan.roll("p0", 1, "kill") != plan.roll("p1", 1, "kill")
        assert plan.roll("p0", 1, "kill") != plan.roll("p0", 1, "hang")
        assert 0.0 <= plan.roll("p0", 1, "kill") < 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosPlan(kill_prob=1.5)
        with pytest.raises(ConfigurationError):
            ChaosPlan(hang_s=-1)
        with pytest.raises(ConfigurationError):
            ChaosPlan(max_faulty_attempts=-1)

    def test_as_dict_roundtrips(self):
        plan = ChaosPlan(seed=3, transient_prob=0.4)
        assert ChaosPlan(**plan.as_dict()) == plan


class TestChaosWrap:
    def test_wrapped_spec_preserves_keys_and_seeds(self):
        spec = _demo_spec()
        wrapped = chaos_wrap(spec, ChaosPlan())
        assert wrapped.name == "demo+chaos"
        assert wrapped.task is chaos_task
        assert [p.key for p in wrapped.points] == [p.key for p in spec.points]
        assert [p.seed for p in wrapped.points] == [p.seed for p in spec.points]
        assert wrapped.points[0].params["_task"] == (
            "repro.parallel.tasks:demo_point"
        )

    def test_zero_probability_chaos_is_identity(self):
        spec = _demo_spec(n=3)
        clean = run_sweep(spec, workers=1)
        chaotic = run_sweep(chaos_wrap(spec, ChaosPlan()), workers=1)
        assert [pr.value for pr in chaotic.results] == [
            pr.value for pr in clean.results
        ]

    def test_transient_chaos_serial_still_converges(self):
        spec = _demo_spec()
        plan = ChaosPlan(transient_prob=0.6, max_faulty_attempts=2)
        clean = run_sweep(spec, workers=1)
        chaotic = run_sweep(chaos_wrap(spec, plan), workers=1,
                            supervise=RETRYING)
        assert chaotic.ok
        assert [pr.value for pr in chaotic.results] == [
            pr.value for pr in clean.results
        ]
        # With prob 0.6 over 6 points, some attempt must have failed;
        # otherwise this test exercises nothing.
        assert chaotic.runner_health.retries > 0

    def test_full_chaos_parallel_byte_identical_to_clean_serial(self):
        spec = _demo_spec(n=8)
        plan = ChaosPlan(
            kill_prob=0.25, transient_prob=0.4, max_faulty_attempts=2
        )
        clean = run_sweep(spec, workers=1)
        chaotic = run_sweep(chaos_wrap(spec, plan), workers=2,
                            supervise=RETRYING)
        assert chaotic.ok, [str(f.error) for f in chaotic.failures()]
        assert [pr.value for pr in chaotic.results] == [
            pr.value for pr in clean.results
        ]
        assert chaotic.runner_health.any


class TestChaosCli:
    def test_bad_probability_is_oneline_error(self, capsys):
        from repro.parallel.chaos import main

        assert main(["fig5", "--kill-prob", "1.5"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:") and "Traceback" not in err

    def test_hang_without_deadline_rejected(self, capsys):
        from repro.parallel.chaos import main

        # hang_s defaults to an hour and heartbeats keep flowing during
        # a sleep, so an undeadlined hang would stall the whole sweep.
        assert main(["fig5", "--hang-prob", "0.1"]) == 2
        assert "--point-timeout" in capsys.readouterr().err

    def test_unknown_target_rejected(self, capsys):
        from repro.parallel.chaos import main

        assert main(["fig99"]) == 2
        assert "unknown sweep target" in capsys.readouterr().err


class TestCacheCorruption:
    def test_corrupted_entries_demote_to_miss_and_recompute(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        spec = _demo_spec(n=4, name="corruptible")
        cold = run_sweep(spec, workers=1, cache=cache)
        assert cold.cache_stats.stores == 4

        damaged = corrupt_cache_entries(cache, fraction=1.0)
        assert damaged == 4

        warm = run_sweep(spec, workers=1, cache=cache)
        assert warm.ok
        assert warm.cache_stats.hits == 0
        assert warm.cache_stats.misses == 4  # every bad entry re-executed
        assert [pr.value for pr in warm.results] == [
            pr.value for pr in cold.results
        ]

    def test_fraction_selects_deterministic_subset(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        run_sweep(_demo_spec(n=6, name="partial"), workers=1, cache=cache)
        damaged = corrupt_cache_entries(cache, fraction=0.5, seed=1)
        assert 0 < damaged < 6
        # Same seed, same subset: nothing new left to damage after a
        # repair-free second pass over the already-corrupted store.
        assert corrupt_cache_entries(cache, fraction=0.5, seed=1) == damaged

    def test_bad_fraction_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            corrupt_cache_entries(SweepCache(root=str(tmp_path)), fraction=2.0)
