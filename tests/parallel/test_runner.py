"""Tests for the sweep runner: determinism, fan-out, failure isolation."""

import os
import time

import pytest

from repro.errors import ConfigurationError
from repro.parallel import (
    WORKERS_ENV,
    SweepExecutionError,
    SweepPoint,
    SweepSpec,
    resolve_workers,
    run_sweep,
    tasks,
)


def _demo_spec(n=6, poison=()):
    return SweepSpec(
        name="demo",
        task=tasks.demo_point,
        points=tuple(
            SweepPoint(
                key=f"p{i}",
                params={"draws": 32, "poison": i in poison},
                seed=100 + i,
            )
            for i in range(n)
        ),
    )


def _sleep_task_available():
    return len(os.sched_getaffinity(0)) >= 4


def sleep_point(params, seed):
    """Module-level so spawn workers can import it (speedup test only)."""
    time.sleep(params["seconds"])
    return seed


class TestResolveWorkers:
    def test_defaults_to_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_argument_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_used_when_no_argument(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers() == 4

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ConfigurationError):
            resolve_workers()

    def test_nonpositive_rejected(self):
        with pytest.raises(ConfigurationError):
            resolve_workers(0)


class TestSerialRunner:
    def test_results_in_spec_order(self):
        sweep = run_sweep(_demo_spec(), workers=1)
        assert [pr.key for pr in sweep.results] == [f"p{i}" for i in range(6)]
        assert sweep.ok and sweep.workers == 1

    def test_deterministic_across_runs(self):
        spec = _demo_spec()
        a = run_sweep(spec, workers=1)
        b = run_sweep(spec, workers=1)
        assert [pr.value for pr in a.results] == [pr.value for pr in b.results]

    def test_values_depend_only_on_seed(self):
        sweep = run_sweep(_demo_spec(), workers=1)
        means = {pr.value["mean"] for pr in sweep.results}
        assert len(means) == 6  # distinct seeds, distinct draws

    def test_progress_called_per_point(self):
        calls = []
        run_sweep(
            _demo_spec(n=3), workers=1,
            progress=lambda done, total, pr: calls.append((done, total, pr.key)),
        )
        assert calls == [(1, 3, "p0"), (2, 3, "p1"), (3, 3, "p2")]

    def test_crash_isolated_and_structured(self):
        sweep = run_sweep(_demo_spec(n=4, poison={2}), workers=1)
        assert not sweep.ok
        assert [pr.ok for pr in sweep.results] == [True, True, False, True]
        failure = sweep.failures()[0]
        assert failure.error.type == "RuntimeError"
        assert "poisoned" in failure.error.message
        assert "demo_point" in failure.error.traceback
        with pytest.raises(SweepExecutionError):
            sweep.raise_failures()

    def test_value_by_key(self):
        sweep = run_sweep(_demo_spec(n=2), workers=1)
        assert sweep.value("p1") == sweep.results[1].value
        with pytest.raises(KeyError):
            sweep.value("nope")


class TestParallelRunner:
    def test_parallel_matches_serial_exactly(self):
        spec = _demo_spec()
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=2)
        assert parallel.workers == 2
        assert [pr.key for pr in parallel.results] == [
            pr.key for pr in serial.results
        ]
        assert [pr.value for pr in parallel.results] == [
            pr.value for pr in serial.results
        ]
        assert [pr.seed for pr in parallel.results] == [
            pr.seed for pr in serial.results
        ]

    def test_worker_crash_isolated(self):
        sweep = run_sweep(_demo_spec(n=4, poison={1}), workers=2)
        assert [pr.ok for pr in sweep.results] == [True, False, True, True]
        failure = sweep.results[1]
        assert failure.error.type == "RuntimeError"
        assert "poisoned" in failure.error.message
        # The healthy points match a serial run despite the crash.
        serial = run_sweep(_demo_spec(n=4, poison={1}), workers=1)
        for par, ser in zip(sweep.results, serial.results):
            if par.ok:
                assert par.value == ser.value

    def test_pool_not_wider_than_points(self):
        sweep = run_sweep(_demo_spec(n=2), workers=16)
        assert sweep.workers == 2

    @pytest.mark.skipif(
        not _sleep_task_available(),
        reason="wall-clock speedup needs >= 4 CPU cores",
    )
    def test_speedup_on_sleepy_points(self):
        spec = SweepSpec(
            name="sleepy",
            task=sleep_point,
            points=tuple(
                SweepPoint(key=f"s{i}", params={"seconds": 0.5}) for i in range(8)
            ),
        )
        serial = run_sweep(spec, workers=1)
        parallel = run_sweep(spec, workers=4)
        assert serial.elapsed_s / parallel.elapsed_s >= 2.0
