"""Serial-vs-parallel bit-identity of real experiment sweeps.

The acceptance contract of the parallel runner: fanning a sweep across
worker processes changes wall-clock only.  These tests run scaled-down
fig5 and overload sweeps at 1 and 2 workers and require the merged
``repro.metrics/v1`` JSON exports to be **byte-identical**.
"""

import pytest

from repro.analysis.figures import fig5_sweep_spec
from repro.overload.runner import offered_load_sweep_spec
from repro.parallel import merged_metrics_json, run_sweep


def _merged_json(spec, workers):
    sweep = run_sweep(spec, workers=workers).raise_failures()
    return merged_metrics_json(
        [(pr.key, pr.value["metrics"]) for pr in sweep.results]
    )


@pytest.mark.slow
class TestFig5BitIdentity:
    def test_merged_export_identical_across_worker_counts(self):
        spec = fig5_sweep_spec(
            workloads=("A",),
            configs=("mmem", "1:1"),
            record_count=1_024,
            total_ops=1_500,
            observed=True,
        )
        serial = _merged_json(spec, workers=1)
        parallel = _merged_json(spec, workers=2)
        assert serial == parallel
        assert '"point": "A/mmem"' in serial


@pytest.mark.slow
class TestOverloadBitIdentity:
    def test_merged_export_identical_across_worker_counts(self):
        spec = offered_load_sweep_spec(
            factors=[0.8, 1.25],
            controlled=True,
            duration_ns=10e6,
            record_count=2_048,
            observed=True,
        )
        serial = _merged_json(spec, workers=1)
        parallel = _merged_json(spec, workers=2)
        assert serial == parallel
        assert '"point": "controlled@0.80x"' in serial
