"""Failure matrix of the supervised runner: crashes, hangs, retries,
quarantine, unpicklable demotion, and graceful drain with resume."""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.cache import SweepCache, load_resume_manifest
from repro.errors import (
    ConfigurationError,
    FaultError,
    TransientError,
    is_retryable,
)
from repro.faults.retry import RetryPolicy
from repro.parallel import (
    RunnerHealth,
    SupervisorConfig,
    SweepPoint,
    SweepSpec,
    last_run_health,
    run_sweep,
)
from repro.parallel.chaos import flaky_point, hanging_point, killer_point
from repro.parallel.supervisor import (
    CRASH_ERROR,
    TIMEOUT_ERROR,
    UNPICKLABLE_PARAMS_ERROR,
    current_attempt,
    current_worker_id,
)

#: Millisecond-scale backoff so the failure matrix runs fast.
FAST = SupervisorConfig(
    max_attempts=3,
    backoff=RetryPolicy(
        max_attempts=3, base_backoff_ns=1e6, multiplier=2.0, max_backoff_ns=1e7
    ),
)


def _spec(task, n=4, name="matrix", **extra):
    return SweepSpec(
        name=name,
        task=task,
        points=tuple(
            SweepPoint(key=f"p{i}", params={"i": i, **extra}, seed=100 + i)
            for i in range(n)
        ),
        base_seed=7,
    )


def unpicklable_result_point(params, seed):
    """Module-level (spawn-importable); returns something pickle rejects."""
    return lambda: seed  # noqa: E731 - the point is that it won't pickle


def permanent_error_point(params, seed):
    """Module-level (spawn-importable); a non-retryable logic bug."""
    raise RuntimeError("logic bug")


class TestClassification:
    def test_transient_and_fault_errors_are_retryable(self):
        assert is_retryable(TransientError("blip"))
        assert is_retryable(FaultError("sim fault"))
        assert is_retryable(OSError("fd pressure"))
        assert is_retryable(MemoryError())

    def test_permanent_errors_are_not(self):
        assert not is_retryable(RuntimeError("logic bug"))
        assert not is_retryable(ValueError("bad input"))
        assert not is_retryable(ConfigurationError("bad flag"))

    def test_stream_errors_are_transient(self):
        # OS-level stream failures are exactly the weather a serving
        # stack retries through: the peer vanished or the read stalled,
        # not a logic bug.
        assert is_retryable(BrokenPipeError("peer closed"))
        assert is_retryable(ConnectionResetError("reset mid-read"))
        assert is_retryable(ConnectionAbortedError("aborted"))
        assert is_retryable(TimeoutError("read deadline"))

    def test_futures_timeout_is_transient(self):
        from concurrent.futures import TimeoutError as FuturesTimeout

        assert is_retryable(FuturesTimeout())


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(ConfigurationError):
            SupervisorConfig(max_attempts=0)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(point_timeout_s=0)
        with pytest.raises(ConfigurationError):
            SupervisorConfig(heartbeat_s=-1)

    def test_backoff_is_deterministic_and_grows(self):
        config = SupervisorConfig()
        a1 = config.backoff_s(1, "p0")
        assert a1 == config.backoff_s(1, "p0")  # same schedule on rerun
        assert config.backoff_s(2, "p0") > a1  # exponential
        assert a1 != config.backoff_s(1, "p1")  # decorrelated across keys

    def test_heartbeat_timeout_derived(self):
        assert SupervisorConfig(heartbeat_s=0.5).effective_heartbeat_timeout_s == 10.0
        assert SupervisorConfig(heartbeat_timeout_s=3.0).effective_heartbeat_timeout_s == 3.0


class TestRetry:
    def test_flaky_point_succeeds_on_second_attempt(self):
        sweep = run_sweep(_spec(flaky_point, succeed_on=2), workers=2,
                          supervise=FAST)
        assert sweep.ok
        assert all(pr.value["attempt_succeeded"] == 2 for pr in sweep.results)
        health = sweep.runner_health
        assert health.retries == 4 and health.transient_errors == 4
        assert health.quarantined == 0
        assert last_run_health() is health

    def test_serial_retry_matches_parallel(self):
        spec = _spec(flaky_point, succeed_on=2)
        serial = run_sweep(spec, workers=1, supervise=FAST)
        parallel = run_sweep(spec, workers=2, supervise=FAST)
        assert serial.ok and parallel.ok
        assert [pr.value for pr in serial.results] == [
            pr.value for pr in parallel.results
        ]
        assert serial.runner_health.retries == parallel.runner_health.retries

    def test_quarantine_after_exhausted_attempts(self):
        sweep = run_sweep(_spec(flaky_point, n=2, succeed_on=99), workers=2,
                          supervise=FAST)
        assert not sweep.ok
        for failure in sweep.failures():
            assert failure.error.type == "TransientError"
            assert failure.error.attempts == FAST.max_attempts
            assert failure.error.retryable
            assert "after 3 attempts" in str(failure.error)
        assert sweep.runner_health.quarantined == 2

    def test_permanent_error_fails_without_retry(self):
        sweep = run_sweep(_spec(permanent_error_point, n=2), workers=1,
                          supervise=FAST)
        assert not sweep.ok
        for failure in sweep.failures():
            assert failure.error.type == "RuntimeError"
            assert failure.error.attempts == 1
            assert not failure.error.retryable
        assert sweep.runner_health.retries == 0
        assert sweep.runner_health.quarantined == 0

    def test_fail_fast_stops_dispatch(self):
        config = SupervisorConfig(max_attempts=1, fail_fast=True)
        sweep = run_sweep(_spec(permanent_error_point, n=6), workers=1,
                          supervise=config)
        assert not sweep.ok
        assert len(sweep.results) < 6  # stopped before running everything


class TestCrashes:
    def test_sigkilled_worker_redispatches_point(self):
        spec = _spec(killer_point, n=3, succeed_on=2)
        sweep = run_sweep(spec, workers=2, supervise=FAST)
        assert sweep.ok
        health = sweep.runner_health
        assert health.crashes == 3 and health.retries == 3
        # Replacements only spawn while there is work left to fill them,
        # so the exact count depends on interleaving — but the pool must
        # have been repaired at least once for the sweep to finish.
        assert health.worker_restarts >= 1
        # The supervised values match an unperturbed in-process run
        # (killer_point skips the kill when no worker id is set).
        clean = run_sweep(
            _spec(killer_point, n=3, succeed_on=0), workers=1,
            supervise=SupervisorConfig(max_attempts=1),
        )
        assert [pr.value["seed"] for pr in sweep.results] == [
            pr.value["seed"] for pr in clean.results
        ]

    def test_crash_quarantines_after_budget(self):
        config = SupervisorConfig(max_attempts=2, backoff=FAST.backoff)
        sweep = run_sweep(_spec(killer_point, n=2, succeed_on=99), workers=2,
                          supervise=config)
        assert not sweep.ok
        for failure in sweep.failures():
            assert failure.error.type == CRASH_ERROR
            assert failure.error.attempts == 2
            assert failure.error.retryable
        assert sweep.runner_health.quarantined == 2


class TestDeadlines:
    def test_hung_point_is_killed_and_retried(self):
        config = SupervisorConfig(
            max_attempts=3, point_timeout_s=0.6, backoff=FAST.backoff
        )
        started = time.monotonic()
        sweep = run_sweep(
            _spec(hanging_point, n=2, succeed_on=2, hang_s=120.0),
            workers=2, supervise=config,
        )
        assert sweep.ok
        assert time.monotonic() - started < 30.0  # nowhere near 120 s
        assert all(pr.value["attempt_succeeded"] == 2 for pr in sweep.results)
        health = sweep.runner_health
        assert health.timeouts == 2 and health.worker_restarts >= 1

    def test_hung_point_quarantined_with_timeout_error(self):
        config = SupervisorConfig(
            max_attempts=2, point_timeout_s=0.4, backoff=FAST.backoff
        )
        sweep = run_sweep(
            # n=2: a single pending point would fall back to the serial
            # path, which has no deadline enforcement.
            _spec(hanging_point, n=2, succeed_on=99, hang_s=120.0),
            workers=2, supervise=config,
        )
        assert not sweep.ok
        for failure in sweep.failures():
            assert failure.error.type == TIMEOUT_ERROR
            assert "deadline" in failure.error.message
            assert failure.error.attempts == 2


class TestUnpicklable:
    def test_unpicklable_params_demoted_not_fatal(self):
        points = (
            SweepPoint(key="good", params={"i": 0}, seed=1),
            SweepPoint(key="bad", params={"fn": lambda: None}, seed=2),
            SweepPoint(key="also-good", params={"i": 2}, seed=3),
        )
        spec = SweepSpec(name="unpicklable", task=flaky_point, points=points)
        sweep = run_sweep(spec, workers=2, supervise=SupervisorConfig(
            max_attempts=1
        ))
        by_key = {pr.key: pr for pr in sweep.results}
        assert not by_key["bad"].ok
        assert by_key["bad"].error.type == UNPICKLABLE_PARAMS_ERROR
        assert not by_key["bad"].error.retryable

    def test_unpicklable_result_demoted(self):
        sweep = run_sweep(
            _spec(unpicklable_result_point, n=2), workers=2,
            supervise=SupervisorConfig(max_attempts=1),
        )
        assert not sweep.ok
        for failure in sweep.failures():
            assert failure.error.type == "UnpicklableResult"
            assert not failure.error.retryable


class TestContext:
    def test_in_process_context_defaults(self):
        assert current_attempt() == 1
        assert current_worker_id() is None

    def test_worker_context_visible_to_tasks(self):
        sweep = run_sweep(_spec(flaky_point, n=2, succeed_on=1), workers=2,
                          supervise=FAST)
        # flaky_point reads current_attempt(); succeeding on attempt 1
        # proves the context was set before the task ran.
        assert all(pr.value["attempt_succeeded"] == 1 for pr in sweep.results)


_DRAIN_SCRIPT = textwrap.dedent("""\
    import sys

    from repro.cache import SweepCache
    from repro.parallel import SweepPoint, SweepSpec, run_sweep
    from tests.parallel.test_supervisor import slow_logging_point


    def main():
        cache = SweepCache(root=sys.argv[1])
        spec = SweepSpec(
            name="drainable",
            task=slow_logging_point,
            points=tuple(
                SweepPoint(
                    key=f"p{i}",
                    params={"name": f"p{i}", "log_dir": sys.argv[2]},
                    seed=100 + i,
                )
                for i in range(8)
            ),
        )
        print("ready", flush=True)
        try:
            run_sweep(spec, workers=int(sys.argv[3]), cache=cache)
        except KeyboardInterrupt:
            return 130
        return 0


    if __name__ == "__main__":
        sys.exit(main())
""")


def slow_logging_point(params, seed):
    """Module-level (spawn-importable): logs, then sleeps a beat."""
    marker = os.path.join(params["log_dir"], params["name"])
    with open(marker, "a") as fh:
        fh.write("x\n")
    time.sleep(0.4)
    return {"name": params["name"], "seed": seed * 3}


class TestDrain:
    def test_sigint_drains_persists_and_resumes_byte_identical(self, tmp_path):
        cache_root = tmp_path / "cache"
        log = tmp_path / "log"
        log.mkdir()
        script = tmp_path / "drain.py"
        script.write_text(_DRAIN_SCRIPT)
        env = dict(os.environ)
        repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(repo, "src"), repo,
                        env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, str(script), str(cache_root), str(log), "2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
        )
        assert proc.stdout.readline().strip() == "ready"
        # Wait until at least one point has completed (two in flight).
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and len(os.listdir(log)) < 3:
            time.sleep(0.05)
        proc.send_signal(signal.SIGINT)
        _, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 130, stderr

        cache = SweepCache(root=str(cache_root))
        manifest = load_resume_manifest(cache, "drainable")
        assert manifest is not None, stderr
        assert manifest.reason == "SIGINT"
        assert manifest.total == 8 and manifest.workers == 2
        assert 0 < len(manifest.completed) < 8

        # Resume in-process: completed points are cache hits, the rest
        # execute, and the full result set matches a clean serial run.
        spec = SweepSpec(
            name="drainable",
            task=slow_logging_point,
            points=tuple(
                SweepPoint(
                    key=f"p{i}",
                    params={"name": f"p{i}", "log_dir": str(log)},
                    seed=100 + i,
                )
                for i in range(8)
            ),
        )
        resumed = run_sweep(spec, workers=2, cache=cache)
        assert resumed.ok and len(resumed.results) == 8
        assert resumed.cache_stats.hits == len(manifest.completed)
        cached_keys = {pr.key for pr in resumed.results if pr.cached}
        assert cached_keys == set(manifest.completed)  # zero points lost
        assert [pr.value for pr in resumed.results] == [
            {"name": f"p{i}", "seed": (100 + i) * 3} for i in range(8)
        ]
        # Successful completion cleared the manifest.
        assert load_resume_manifest(cache, "drainable") is None

    def test_sigterm_drains_serial_run(self, tmp_path):
        # The workers=1 path has no supervisor to own signals; its own
        # SIGTERM hook must still drain with a manifest — this is the
        # path `repro serve --workers 1` jobs and plain serial CLI
        # sweeps take.
        cache_root = tmp_path / "cache"
        log = tmp_path / "log"
        log.mkdir()
        script = tmp_path / "drain.py"
        script.write_text(_DRAIN_SCRIPT)
        env = dict(os.environ)
        repo = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(repo, "src"), repo,
                        env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, str(script), str(cache_root), str(log), "1"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True,
        )
        assert proc.stdout.readline().strip() == "ready"
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline and len(os.listdir(log)) < 2:
            time.sleep(0.05)
        proc.send_signal(signal.SIGTERM)
        _, stderr = proc.communicate(timeout=60)
        assert proc.returncode == 130, stderr

        cache = SweepCache(root=str(cache_root))
        manifest = load_resume_manifest(cache, "drainable")
        assert manifest is not None, stderr
        assert manifest.reason == "SIGTERM"
        assert manifest.workers == 1
        assert 0 < len(manifest.completed) < 8

        # Every manifest-listed point really is a cache hit on resume.
        spec = SweepSpec(
            name="drainable",
            task=slow_logging_point,
            points=tuple(
                SweepPoint(
                    key=f"p{i}",
                    params={"name": f"p{i}", "log_dir": str(log)},
                    seed=100 + i,
                )
                for i in range(8)
            ),
        )
        resumed = run_sweep(spec, workers=1, cache=cache)
        assert resumed.ok
        assert {pr.key for pr in resumed.results if pr.cached} >= set(
            manifest.completed
        )
        assert load_resume_manifest(cache, "drainable") is None

    def test_serial_interrupt_writes_manifest(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        log = tmp_path / "log"
        log.mkdir()
        spec = SweepSpec(
            name="serial-drain",
            task=slow_logging_point,
            points=tuple(
                SweepPoint(key=f"p{i}",
                           params={"name": f"p{i}", "log_dir": str(log)},
                           seed=i)
                for i in range(4)
            ),
        )

        def kill_after_two(done, total, pr):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, workers=1, cache=cache, progress=kill_after_two)
        manifest = load_resume_manifest(cache, "serial-drain")
        assert manifest is not None
        assert manifest.completed == ("p0", "p1")
        assert manifest.remaining == 2
        assert last_run_health().drained == 1

        resumed = run_sweep(spec, workers=1, cache=cache)
        assert resumed.ok
        assert load_resume_manifest(cache, "serial-drain") is None


class TestHealthSidecar:
    def test_health_export_is_sidecar_only(self):
        from repro.obs import MetricsRegistry
        from repro.cache.obs import register_sweep_result

        sweep = run_sweep(_spec(flaky_point, n=2, succeed_on=2), workers=1,
                          supervise=FAST)
        registry = MetricsRegistry()
        register_sweep_result(registry, sweep)
        names = {s.name for s in registry.samples()}
        assert "sweep_runner_retries" in names
        by_name = {
            s.name: s.value for s in registry.samples()
            if s.name.startswith("sweep_runner_")
        }
        assert by_name["sweep_runner_retries"] == 2.0
        assert by_name["sweep_runner_quarantined"] == 0.0
        # ...but the merged per-point export never carries health.
        from repro.parallel import merge_metrics_documents

        from repro.parallel import tasks

        obs_sweep = run_sweep(
            SweepSpec(
                name="obs",
                task=tasks.fig7_config_observed,
                points=(SweepPoint(key="mmem", params={"config": "mmem"},
                                   seed=1),),
            ),
            workers=1, supervise=FAST,
        )
        merged = merge_metrics_documents(
            [(pr.key, pr.value["metrics"]) for pr in obs_sweep.results]
        )
        merged_names = {m["name"] for m in merged["metrics"]}
        assert not any(n.startswith("sweep_runner_") for n in merged_names)

    def test_health_as_dict_and_any(self):
        health = RunnerHealth()
        assert not health.any
        health.retries = 1
        assert health.any
        assert health.as_dict()["retries"] == 1
        assert "1 retries" in health.summary()
