"""Tests for the spare-core revenue model (§4.3) and the config advisor."""

import pytest

from repro.core import (
    PROCESSOR_SERIES,
    ConfigAdvisor,
    Severity,
    SpareCoreModel,
    WorkloadProfile,
)
from repro.errors import ConfigurationError, CostModelError
from repro.hw import paper_baseline_platform, paper_cxl_platform
from repro.units import GIB, TIB, gb_per_s


class TestSpareCoreModel:
    def test_paper_example_26_77_percent(self):
        """§4.3.2: 1:3 server, 20 % discount → '20/75 = 26.77 %' recovered
        revenue.  (The paper's quoted 26.77 % is its rounding of 20/75,
        which is exactly 26.67 %.)"""
        model = SpareCoreModel(actual_ratio=3.0, target_ratio=4.0, discount=0.20)
        assert model.sellable_fraction == pytest.approx(0.75)
        assert model.stranded_fraction == pytest.approx(0.25)
        assert model.recovered_revenue_fraction == pytest.approx(20 / 75, abs=1e-9)
        assert model.recovered_revenue_fraction == pytest.approx(0.2677, abs=2e-3)
        assert model.revenue_gain == pytest.approx(1.2667, abs=1e-3)

    def test_balanced_server_recovers_nothing(self):
        model = SpareCoreModel(actual_ratio=4.0, target_ratio=4.0)
        assert model.stranded_fraction == 0.0
        assert model.recovered_revenue_fraction == 0.0

    def test_validation(self):
        with pytest.raises(CostModelError):
            SpareCoreModel(actual_ratio=0)
        with pytest.raises(CostModelError):
            SpareCoreModel(actual_ratio=5.0, target_ratio=4.0)
        with pytest.raises(CostModelError):
            SpareCoreModel(actual_ratio=3.0, discount=1.0)

    def test_required_cxl_capacity(self):
        model = SpareCoreModel(actual_ratio=3.0, target_ratio=4.0)
        # 1152 vCPUs at 4 GiB each: a quarter are stranded.
        needed = model.required_cxl_bytes(1152, 4 * GIB)
        assert needed == int(0.25 * 1152 * 4 * GIB)
        with pytest.raises(CostModelError):
            model.required_cxl_bytes(0, GIB)

    def test_table2_dataset(self):
        """Table 2: Sierra Forest needs 4.5 TB at 1:4 but caps at 4 TB."""
        years = [row[0] for row in PROCESSOR_SERIES]
        assert years == sorted(years)
        sierra = next(r for r in PROCESSOR_SERIES if r[1] == "Sierra Forest")
        assert sierra[2] == 1152
        assert sierra[5] > sierra[4]  # required > max: the §4.3 gap
        icelake = next(r for r in PROCESSOR_SERIES if r[1] == "IceLake-SP")
        assert icelake[5] <= icelake[4]  # older parts had headroom

    def test_required_memory_matches_1_4_rule(self):
        for _, _, vcpus, _, _, required_tb in PROCESSOR_SERIES:
            assert required_tb == pytest.approx(vcpus * 4 / 1024, rel=0.05)


class TestConfigAdvisor:
    @pytest.fixture(scope="class")
    def advisor(self):
        return ConfigAdvisor(paper_cxl_platform(snc_enabled=True))

    def test_requires_cxl_platform(self):
        with pytest.raises(ConfigurationError):
            ConfigAdvisor(paper_baseline_platform())

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            WorkloadProfile(demand_bytes_per_s=-1.0)
        with pytest.raises(ConfigurationError):
            WorkloadProfile(demand_bytes_per_s=1.0, locality=2.0)

    def test_low_demand_gets_dram_only_info(self, advisor):
        advice = advisor.advise(WorkloadProfile(demand_bytes_per_s=gb_per_s(5)))
        codes = {a.code for a in advice}
        assert "dram-only-ok" in codes
        assert "interleave-offload" not in codes

    def test_high_demand_gets_offload_recommendation(self, advisor):
        advice = advisor.advise(WorkloadProfile(demand_bytes_per_s=gb_per_s(55)))
        by_code = {a.code: a for a in advice}
        assert "interleave-offload" in by_code
        assert by_code["interleave-offload"].severity is Severity.RECOMMEND
        assert "N:M" in by_code["interleave-offload"].message

    def test_cross_socket_warning(self, advisor):
        advice = advisor.advise(
            WorkloadProfile(demand_bytes_per_s=gb_per_s(5), spans_sockets=True)
        )
        codes = {a.code for a in advice}
        assert "remote-cxl-access" in codes

    def test_low_locality_thrash_warning(self, advisor):
        advice = advisor.advise(
            WorkloadProfile(demand_bytes_per_s=gb_per_s(5), locality=0.1)
        )
        assert "tiering-thrash-risk" in {a.code for a in advice}

    def test_bandwidth_oblivious_promotion_warning(self, advisor):
        """§5.3: promotion into a >70 %-utilized MMEM tier backfires."""
        advice = advisor.advise(WorkloadProfile(demand_bytes_per_s=gb_per_s(50)))
        assert "bandwidth-oblivious-promotion" in {a.code for a in advice}

    def test_capacity_advice_tiers(self, advisor):
        fits_dram = advisor.advise(
            WorkloadProfile(demand_bytes_per_s=gb_per_s(1), working_set_bytes=GIB)
        )
        assert "cxl-capacity-fit" not in {a.code for a in fits_dram}

        # Socket 0 has 512 GiB of DRAM and 512 GiB of CXL (two A1000s).
        needs_cxl = advisor.advise(
            WorkloadProfile(
                demand_bytes_per_s=gb_per_s(1),
                working_set_bytes=int(0.8 * TIB),
            )
        )
        assert "cxl-capacity-fit" in {a.code for a in needs_cxl}

        too_big = advisor.advise(
            WorkloadProfile(
                demand_bytes_per_s=gb_per_s(1),
                working_set_bytes=10 * TIB,
            )
        )
        assert "capacity-exceeded" in {a.code for a in too_big}

    def test_warnings_sorted_first(self, advisor):
        advice = advisor.advise(
            WorkloadProfile(
                demand_bytes_per_s=gb_per_s(55),
                locality=0.1,
                spans_sockets=True,
            )
        )
        severities = [a.severity for a in advice]
        first_non_warning = next(
            (i for i, s in enumerate(severities) if s is not Severity.WARNING),
            len(severities),
        )
        assert all(s is not Severity.WARNING for s in severities[first_non_warning:])
