"""Tests for the Abstract Cost Model (§6) — including the paper's exact
worked example."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import AbstractCostModel, fixed_cost_r_t, sweep_c, sweep_r_c, sweep_r_t
from repro.errors import CostModelError


class TestPaperExample:
    """R_d=10, R_c=8, C=2, R_t=1.1 → 67.29 % and 25.98 % (§6)."""

    def test_server_ratio_67_29(self):
        model = AbstractCostModel.paper_example()
        assert model.server_ratio() == pytest.approx(0.6729, abs=2e-4)

    def test_tco_saving_25_98(self):
        model = AbstractCostModel.paper_example()
        assert model.tco_saving() == pytest.approx(0.2598, abs=2e-4)

    def test_servers_saved_32_71(self):
        """'We may reduce the number of servers by 32.71 %.'"""
        model = AbstractCostModel.paper_example()
        assert model.servers_saved_fraction() == pytest.approx(0.3271, abs=2e-4)

    def test_estimate_bundle(self):
        est = AbstractCostModel.paper_example().estimate()
        assert est.server_ratio == pytest.approx(0.6729, abs=2e-4)
        assert est.tco_saving == pytest.approx(0.2598, abs=2e-4)
        assert est.servers_saved_fraction == pytest.approx(1 - est.server_ratio)


class TestDerivation:
    """The ratio must actually equalize the two execution times."""

    def test_equal_performance_at_ratio(self):
        model = AbstractCostModel.paper_example()
        d = 1.0
        w = 1000.0
        n_base = 100.0
        n_cxl = n_base * model.server_ratio()
        assert model.t_baseline(n_base, w, d) == pytest.approx(
            model.t_cxl(n_cxl, w, d), rel=1e-9
        )

    def test_ratio_independent_of_working_set(self):
        """§6 derives the ratio from T_baseline == T_cxl; W cancels."""
        model = AbstractCostModel.paper_example()
        d, n_base = 1.0, 100.0
        n_cxl = n_base * model.server_ratio()
        for w in (500.0, 2000.0, 50_000.0):
            assert model.t_baseline(n_base, w, d) == pytest.approx(
                model.t_cxl(n_cxl, w, d), rel=1e-9
            )

    def test_time_args_validated(self):
        model = AbstractCostModel.paper_example()
        with pytest.raises(CostModelError):
            model.t_baseline(0, 100, 1)
        with pytest.raises(CostModelError):
            # Working set smaller than cluster memory: no-spill regime.
            model.t_baseline(100, 10, 1)
        with pytest.raises(CostModelError):
            model.t_cxl(100, 10, 1)


class TestValidation:
    def test_r_d_must_exceed_one(self):
        with pytest.raises(CostModelError):
            AbstractCostModel(r_d=1.0, r_c=0.9, c=2)

    def test_r_c_must_exceed_one(self):
        with pytest.raises(CostModelError):
            AbstractCostModel(r_d=10, r_c=1.0, c=2)

    def test_r_c_cannot_exceed_r_d(self):
        with pytest.raises(CostModelError):
            AbstractCostModel(r_d=5, r_c=6, c=2)

    def test_positive_c_and_r_t(self):
        with pytest.raises(CostModelError):
            AbstractCostModel(r_d=10, r_c=8, c=0)
        with pytest.raises(CostModelError):
            AbstractCostModel(r_d=10, r_c=8, c=2, r_t=0)

    def test_d_for_completeness_only(self):
        """Table 3 lists D 'for completeness only, not used in cost model'."""
        with_d = AbstractCostModel(r_d=10, r_c=8, c=2, r_t=1.1, d=512.0)
        without = AbstractCostModel(r_d=10, r_c=8, c=2, r_t=1.1)
        assert with_d.server_ratio() == without.server_ratio()
        with pytest.raises(CostModelError):
            AbstractCostModel(r_d=10, r_c=8, c=2, d=-1.0)


class TestProperties:
    @given(
        st.floats(min_value=2.0, max_value=50.0),
        st.floats(min_value=0.3, max_value=1.0),
        st.floats(min_value=0.5, max_value=8.0),
    )
    def test_server_ratio_below_one(self, r_d, rc_frac, c):
        """Adding CXL capacity never *increases* the server count."""
        r_c = max(1.01, r_d * rc_frac)
        model = AbstractCostModel(r_d=r_d, r_c=r_c, c=c)
        assert 0.0 < model.server_ratio() <= 1.0 + 1e-9

    @given(st.floats(min_value=1.05, max_value=10.0))
    def test_saving_decreases_with_premium(self, r_t):
        base = AbstractCostModel(10, 8, 2, 1.0)
        premium = AbstractCostModel(10, 8, 2, r_t)
        assert premium.tco_saving() < base.tco_saving()

    @given(st.floats(min_value=1.5, max_value=9.9))
    def test_saving_increases_with_r_c(self, r_c):
        """A faster CXL tier always helps."""
        slow = AbstractCostModel(10, r_c, 2)
        fast = AbstractCostModel(10, min(9.99, r_c + 0.05), 2)
        assert fast.server_ratio() <= slow.server_ratio() + 1e-12

    def test_breakeven_r_t(self):
        model = AbstractCostModel.paper_example()
        breakeven = model.breakeven_r_t()
        zeroed = AbstractCostModel(10, 8, 2, breakeven)
        assert zeroed.tco_saving() == pytest.approx(0.0, abs=1e-9)


class TestSweeps:
    def test_sweep_r_t_monotone(self):
        points = sweep_r_t(AbstractCostModel.paper_example(), [1.0, 1.1, 1.2, 1.4])
        savings = [p.tco_saving for p in points]
        assert savings == sorted(savings, reverse=True)
        assert all(p.server_ratio == points[0].server_ratio for p in points)

    def test_sweep_c_more_cxl_saves_more(self):
        points = sweep_c(AbstractCostModel.paper_example(), [4.0, 2.0, 1.0, 0.5])
        savings = [p.tco_saving for p in points]
        assert savings == sorted(savings)

    def test_sweep_r_c(self):
        points = sweep_r_c(AbstractCostModel.paper_example(), [4.0, 6.0, 8.0])
        savings = [p.tco_saving for p in points]
        assert savings == sorted(savings)

    def test_fixed_cost_folding(self):
        """§6: controllers/switches/cables fold into R_t as constants."""
        r_t = fixed_cost_r_t(
            base_server_cost=10_000,
            cxl_memory_cost=800,
            controller_cost=150,
            switch_cost=0,
            cabling_cost=50,
        )
        assert r_t == pytest.approx(1.1)
        with pytest.raises(CostModelError):
            fixed_cost_r_t(0, 1)
        with pytest.raises(CostModelError):
            fixed_cost_r_t(100, -1)

    def test_measured_inputs_compose(self):
        """The §6 pipeline: measure on the simulator, estimate TCO."""
        from repro.apps.spark import measure_cost_model_inputs

        inputs = measure_cost_model_inputs()
        model = AbstractCostModel.from_measurements(
            r_d=inputs.r_d, r_c=inputs.r_c, c=2.0, r_t=1.1
        )
        assert 0.0 < model.server_ratio() < 1.0
