"""Tests for the fleet planner."""

import pytest

from repro.core.fleet import FleetPlanner, Verdict, WorkloadClass
from repro.errors import CostModelError
from repro.hw import paper_baseline_platform, paper_cxl_platform


@pytest.fixture(scope="module")
def planner():
    return FleetPlanner(paper_cxl_platform(snc_enabled=True))


class TestValidation:
    def test_needs_cxl_platform(self):
        with pytest.raises(CostModelError):
            FleetPlanner(paper_baseline_platform())

    def test_workload_validation(self):
        with pytest.raises(CostModelError):
            WorkloadClass("x", servers=0, memory_pressure=1.0)
        with pytest.raises(CostModelError):
            WorkloadClass("x", servers=1, memory_pressure=-1.0)


class TestVerdicts:
    def test_comfortable_class_stays_dram_only(self, planner):
        plan = planner.plan_class(
            WorkloadClass("web", servers=100, memory_pressure=0.5)
        )
        assert plan.verdict is Verdict.DRAM_ONLY
        assert plan.servers_saved == 0
        assert plan.tco_saving == 0.0

    def test_capacity_bound_class_gets_cost_model(self, planner):
        plan = planner.plan_class(
            WorkloadClass("kv", servers=100, memory_pressure=1.5,
                          r_d=10, r_c=8, c=2, r_t=1.1)
        )
        assert plan.verdict is Verdict.CXL_CAPACITY
        # §6 example: 67.29 % of servers.
        assert plan.servers_after == 67
        assert plan.tco_saving == pytest.approx(0.2598, abs=2e-4)
        assert "§6" in plan.detail

    def test_capacity_bound_with_overpriced_cxl_declines(self, planner):
        plan = planner.plan_class(
            WorkloadClass("kv", servers=100, memory_pressure=1.5, r_t=1.6)
        )
        # Premium above breakeven (1.486): no saving, stay DRAM-only.
        assert plan.verdict is Verdict.DRAM_ONLY

    def test_bandwidth_bound_class_gets_interleave(self, planner):
        plan = planner.plan_class(
            WorkloadClass("inference", servers=50, memory_pressure=0.3,
                          bandwidth_pressure=0.9)
        )
        assert plan.verdict is Verdict.CXL_BANDWIDTH
        assert "N:M" in plan.detail
        assert plan.servers_after == 50

    def test_moderate_bandwidth_stays_dram(self, planner):
        plan = planner.plan_class(
            WorkloadClass("batch", servers=10, memory_pressure=0.3,
                          bandwidth_pressure=0.3)
        )
        assert plan.verdict is Verdict.DRAM_ONLY

    def test_core_bound_class_gets_spare_cores(self, planner):
        plan = planner.plan_class(
            WorkloadClass("ecs", servers=200, memory_pressure=0.8,
                          vcpu_actual_ratio=3.0)
        )
        assert plan.verdict is Verdict.CXL_SPARE_CORES
        assert plan.tco_saving == pytest.approx(20 / 75, abs=1e-6)

    def test_core_bound_takes_priority(self, planner):
        """A memory-bound ECS class is still handled as spare cores —
        that is where the revenue is."""
        plan = planner.plan_class(
            WorkloadClass("ecs", servers=10, memory_pressure=1.4,
                          vcpu_actual_ratio=3.5)
        )
        assert plan.verdict is Verdict.CXL_SPARE_CORES


class TestFleetAggregation:
    def test_mixed_fleet(self, planner):
        fleet = planner.plan(
            [
                WorkloadClass("kv", servers=100, memory_pressure=1.5),
                WorkloadClass("inference", servers=50, memory_pressure=0.3,
                              bandwidth_pressure=0.9),
                WorkloadClass("web", servers=200, memory_pressure=0.4),
                WorkloadClass("ecs", servers=150, memory_pressure=0.8,
                              vcpu_actual_ratio=3.0),
            ]
        )
        assert fleet.servers_before == 500
        assert fleet.servers_after == 500 - 33  # only kv shrinks
        assert fleet.classes_adopting_cxl == 3
        assert 0.0 < fleet.fleet_tco_saving() < 0.2598

    def test_empty_fleet(self, planner):
        fleet = planner.plan([])
        assert fleet.servers_before == 0
        assert fleet.fleet_tco_saving() == 0.0
