"""Tests for the pooling economics model (§7.1)."""

import numpy as np
import pytest

from repro.core import AbstractCostModel, PoolSavingsModel
from repro.errors import CostModelError


def anti_correlated_demands(hosts=8, samples=200, seed=3):
    """Hosts whose peaks don't coincide: the pooling sweet spot."""
    rng = np.random.default_rng(seed)
    base = rng.uniform(50, 100, size=(hosts, samples))
    for i in range(hosts):
        # Each host peaks in its own window.
        lo = (i * samples) // hosts
        hi = ((i + 1) * samples) // hosts
        base[i, lo:hi] += 200.0
    return base


class TestValidation:
    def test_shape(self):
        with pytest.raises(CostModelError):
            PoolSavingsModel([[1.0, 2.0]])  # one host
        with pytest.raises(CostModelError):
            PoolSavingsModel(np.zeros((3, 2, 2)))

    def test_negative_demand(self):
        with pytest.raises(CostModelError):
            PoolSavingsModel([[1.0], [-1.0]])

    def test_percentile_and_overhead(self):
        demands = [[1.0, 2.0], [2.0, 1.0]]
        with pytest.raises(CostModelError):
            PoolSavingsModel(demands, percentile=0.0)
        with pytest.raises(CostModelError):
            PoolSavingsModel(demands, pool_overhead=-0.1)


class TestSavings:
    def test_anti_correlated_hosts_save_a_lot(self):
        model = PoolSavingsModel(anti_correlated_demands())
        # Per-host peaks sum to ~8x300; the aggregate peaks near
        # 8x100 + 200 — pooling strands far less capacity.
        assert model.stranded_fraction > 0.3

    def test_perfectly_correlated_hosts_save_nothing(self):
        demand = np.tile(np.linspace(10, 100, 50), (4, 1))
        model = PoolSavingsModel(demand, pool_overhead=0.1)
        # Aggregate peak == sum of peaks; overhead makes pooling worse.
        assert model.stranded_fraction == 0.0

    def test_overhead_reduces_savings(self):
        demands = anti_correlated_demands()
        lean = PoolSavingsModel(demands, pool_overhead=0.0)
        fat = PoolSavingsModel(demands, pool_overhead=0.3)
        assert fat.stranded_fraction < lean.stranded_fraction

    def test_provisioned_bytes_ordering(self):
        model = PoolSavingsModel(anti_correlated_demands())
        assert model.pooled_provisioned_bytes < model.per_host_provisioned_bytes


class TestCostModelIntegration:
    def test_effective_r_t_below_dedicated(self):
        model = PoolSavingsModel(anti_correlated_demands())
        r_t = model.effective_r_t(
            base_server_cost=10_000, memory_cost=2_000, pool_fabric_cost=300
        )
        # Pooling trims the memory bill more than the fabric costs.
        assert r_t < 1.0

    def test_costs_validated(self):
        model = PoolSavingsModel(anti_correlated_demands())
        with pytest.raises(CostModelError):
            model.effective_r_t(0, 100)
        with pytest.raises(CostModelError):
            model.effective_r_t(100, -1)

    def test_composes_with_abstract_cost_model(self):
        """§7.1 end-to-end: pooled R_t feeds the §6 model."""
        pool = PoolSavingsModel(anti_correlated_demands())
        r_t = pool.effective_r_t(10_000, 2_000, 300)
        cxl = AbstractCostModel(r_d=10, r_c=8, c=2, r_t=max(r_t, 0.5))
        dedicated = AbstractCostModel(r_d=10, r_c=8, c=2, r_t=1.1)
        assert cxl.tco_saving() > dedicated.tco_saving()
