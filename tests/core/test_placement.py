"""Tests for the bandwidth-aware placement optimizer (§3.4 insight)."""

import pytest

from repro.core import BandwidthAwarePlacer
from repro.errors import ConfigurationError
from repro.hw import paper_cxl_platform
from repro.units import gb_per_s


@pytest.fixture(scope="module")
def placer():
    platform = paper_cxl_platform(snc_enabled=True)
    dram = platform.dram_nodes(0)[0]
    cxl = platform.cxl_nodes()[0]
    return BandwidthAwarePlacer(
        platform.path(0, dram.node_id, initiator_domain=dram.domain),
        platform.path(0, cxl.node_id),
    )


class TestValidation:
    def test_resolution(self, placer):
        with pytest.raises(ConfigurationError):
            BandwidthAwarePlacer(placer.dram_path, placer.cxl_path, resolution=5)

    def test_split_point_args(self, placer):
        with pytest.raises(ConfigurationError):
            placer.split_point(1.5, gb_per_s(10))
        with pytest.raises(ConfigurationError):
            placer.split_point(0.5, 0.0)


class TestLowLoad:
    def test_dram_only_optimal_at_low_demand(self, placer):
        """Far below the knee, CXL's idle latency penalty dominates."""
        report = placer.optimal_split(gb_per_s(10.0))
        assert report.best.cxl_fraction == 0.0
        assert not report.should_offload

    def test_recommend_ratio_none_at_low_demand(self, placer):
        assert placer.recommend_ratio(gb_per_s(10.0)) is None


class TestPaperHeadline:
    """'Even if ... 30 % of MMEM bandwidth remains unused, offloading
    ~20 % to CXL memory can lead to overall performance improvements.'"""

    def test_offload_wins_with_dram_at_70_percent(self, placer):
        """Even at 70 % DRAM utilization — 30 % of bandwidth unused — a
        (small) CXL offload already reduces average latency."""
        demand = 0.70 * placer.dram_path.peak_bandwidth(0.0)
        report = placer.optimal_split(demand)
        assert report.should_offload
        assert 0.01 <= report.best.cxl_fraction <= 0.40
        assert report.latency_gain > 0.005

    def test_offload_near_20_percent_at_higher_load(self, placer):
        """Around the knee, the optimizer lands on the paper's ~20 %
        offload figure."""
        demand = 0.88 * placer.dram_path.peak_bandwidth(0.0)
        report = placer.optimal_split(demand)
        assert 0.08 <= report.best.cxl_fraction <= 0.45
        assert report.latency_gain > 0.05

    def test_offload_is_decisive_past_the_knee(self, placer):
        demand = 0.95 * placer.dram_path.peak_bandwidth(0.0)
        report = placer.optimal_split(demand)
        assert report.should_offload
        assert report.latency_gain > 0.3

    def test_optimal_fraction_grows_with_demand(self, placer):
        peak = placer.dram_path.peak_bandwidth(0.0)
        fractions = [
            placer.optimal_split(level * peak).best.cxl_fraction
            for level in (0.7, 0.9, 1.1)
        ]
        assert fractions == sorted(fractions)
        assert fractions[-1] > fractions[0]

    def test_best_never_worse_than_dram_only(self, placer):
        for level in (0.2, 0.5, 0.8, 1.0, 1.3):
            demand = level * placer.dram_path.peak_bandwidth(0.0)
            report = placer.optimal_split(demand)
            assert (
                report.best.average_latency_ns
                <= report.dram_only.average_latency_ns + 1e-9
            )


class TestReporting:
    def test_curve_covers_unit_interval(self, placer):
        report = placer.optimal_split(gb_per_s(50.0))
        assert report.curve[0].cxl_fraction == 0.0
        assert report.curve[-1].cxl_fraction == 1.0
        assert len(report.curve) == placer.resolution + 1

    def test_utilizations_consistent(self, placer):
        point = placer.split_point(0.25, gb_per_s(40.0))
        expected_u_d = 0.75 * gb_per_s(40.0) / placer.dram_path.peak_bandwidth(0.0)
        assert point.dram_utilization == pytest.approx(expected_u_d)

    def test_effective_bandwidth_is_sum(self, placer):
        total = placer.effective_bandwidth(0.0)
        assert total == pytest.approx(
            placer.dram_path.peak_bandwidth(0.0)
            + placer.cxl_path.peak_bandwidth(0.0)
        )

    def test_recommend_ratio_format(self, placer):
        demand = 0.9 * placer.dram_path.peak_bandwidth(0.0)
        ratio = placer.recommend_ratio(demand)
        assert ratio is not None
        n, m = ratio.split(":")
        assert int(n) >= 1 and int(m) >= 1

    def test_write_fraction_shifts_optimum(self, placer):
        """Writes shrink peak bandwidths, so the same absolute demand is
        closer to the knee and offloading starts earlier."""
        demand = 0.65 * placer.dram_path.peak_bandwidth(0.0)
        read_heavy = placer.optimal_split(demand, write_fraction=0.0)
        write_heavy = placer.optimal_split(demand, write_fraction=1.0)
        assert write_heavy.best.cxl_fraction >= read_heavy.best.cxl_fraction
