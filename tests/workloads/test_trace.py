"""Tests for page-trace generation."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    PageTrace,
    graph_walk_trace,
    sequential_trace,
    strided_trace,
    uniform_trace,
    zipfian_trace,
)


@pytest.fixture
def rng():
    return np.random.default_rng(9)


class TestPageTrace:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            PageTrace(np.array([0]), np.array([False]), page_count=0)
        with pytest.raises(WorkloadError):
            PageTrace(np.array([5]), np.array([False]), page_count=3)
        with pytest.raises(WorkloadError):
            PageTrace(np.array([], dtype=np.int64), np.array([], dtype=bool), 10)
        with pytest.raises(WorkloadError):
            PageTrace(np.array([0, 1]), np.array([False]), 10)

    def test_metrics(self):
        trace = PageTrace(
            np.array([0, 0, 1, 2]), np.array([False, True, False, False]), 10
        )
        assert len(trace) == 4
        assert trace.write_fraction == pytest.approx(0.25)
        assert trace.footprint_pages == 3
        assert trace.reuse_factor() == pytest.approx(4 / 3)

    def test_concat(self, rng):
        a = sequential_trace(100, 50)
        b = uniform_trace(100, 50, rng=rng)
        combined = a.concat(b)
        assert len(combined) == 100
        with pytest.raises(WorkloadError):
            a.concat(uniform_trace(200, 10, rng=rng))

    def test_interleave(self, rng):
        a = sequential_trace(100, 40)
        b = uniform_trace(100, 40, rng=rng)
        merged = a.interleave(b)
        assert len(merged) == 80
        assert list(merged.pages[0:4:2]) == list(a.pages[:2])


class TestGenerators:
    def test_sequential_wraps(self):
        trace = sequential_trace(10, 25)
        assert list(trace.pages[:12]) == list(range(10)) + [0, 1]
        assert trace.footprint_pages == 10

    def test_strided(self):
        trace = strided_trace(100, 10, stride=7)
        assert list(trace.pages[:3]) == [0, 7, 14]
        with pytest.raises(WorkloadError):
            strided_trace(100, 10, stride=0)

    def test_uniform_covers_space(self, rng):
        trace = uniform_trace(50, 5000, rng=rng)
        assert trace.footprint_pages == 50

    def test_zipfian_skew(self, rng):
        trace = zipfian_trace(10_000, 20_000, rng=rng)
        # High reuse on a small hot set: reuse factor far above uniform.
        uniform = uniform_trace(10_000, 20_000, rng=rng)
        counts = np.bincount(trace.pages, minlength=10_000)
        ucounts = np.bincount(uniform.pages, minlength=10_000)
        assert counts.max() > ucounts.max() * 5

    def test_graph_walk_locality(self, rng):
        trace = graph_walk_trace(10_000, 5000, rng=rng, neighborhood=32)
        # Mostly local steps: consecutive accesses are usually close.
        deltas = np.abs(np.diff(trace.pages.astype(np.int64)))
        wrapped = np.minimum(deltas, 10_000 - deltas)
        assert np.median(wrapped) <= 32

    def test_graph_walk_validation(self, rng):
        with pytest.raises(WorkloadError):
            graph_walk_trace(100, 10, jump_probability=1.5, rng=rng)
        with pytest.raises(WorkloadError):
            graph_walk_trace(100, 10, neighborhood=0, rng=rng)

    def test_write_fraction_respected(self, rng):
        trace = uniform_trace(100, 10_000, write_fraction=0.3, rng=rng)
        assert trace.write_fraction == pytest.approx(0.3, abs=0.03)
        with pytest.raises(WorkloadError):
            uniform_trace(100, 10, write_fraction=1.5, rng=rng)

    def test_deterministic(self):
        a = zipfian_trace(1000, 500, rng=np.random.default_rng(3))
        b = zipfian_trace(1000, 500, rng=np.random.default_rng(3))
        assert np.array_equal(a.pages, b.pages)
        assert np.array_equal(a.writes, b.writes)
