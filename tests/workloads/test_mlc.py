"""Tests for the MLC-style loaded-latency probe — these are the Fig. 3/4
shape checks."""

import pytest

from repro.errors import WorkloadError
from repro.hw import PathKind, paper_cxl_platform
from repro.workloads import MlcProbe


@pytest.fixture(scope="module")
def platform():
    return paper_cxl_platform(snc_enabled=True)


@pytest.fixture(scope="module")
def probe(platform):
    return MlcProbe(platform, threads=16)


def dram_path(platform):
    node = platform.dram_nodes(0)[0]
    return platform.path(0, node.node_id, initiator_domain=0)


def cxl_path(platform, socket=0):
    node = platform.cxl_nodes()[0]
    return platform.path(socket, node.node_id)


def remote_dram_path(platform):
    node = platform.dram_nodes(1)[0]
    return platform.path(0, node.node_id)


class TestValidation:
    def test_thread_count(self, platform):
        with pytest.raises(WorkloadError):
            MlcProbe(platform, threads=0)

    def test_pattern(self, platform):
        with pytest.raises(WorkloadError):
            MlcProbe(platform, pattern="strided")

    def test_mix(self, probe, platform):
        with pytest.raises(WorkloadError):
            probe.loaded_latency_curve(dram_path(platform), 0, 0)

    def test_load_fractions(self, probe, platform):
        with pytest.raises(WorkloadError):
            probe.loaded_latency_curve(dram_path(platform), 1, 0, load_points=[0.0])


class TestFig3aMmem:
    def test_read_only_idle_and_peak(self, probe, platform):
        """Fig. 3(a): ~97 ns idle, ~67 GB/s read peak."""
        curve = probe.loaded_latency_curve(dram_path(platform), 1, 0)
        assert curve.idle_latency_ns == pytest.approx(97.0, abs=5.0)
        assert curve.peak_bandwidth_gbps == pytest.approx(67.0, rel=0.02)

    def test_write_only_peak_54_6(self, probe, platform):
        curve = probe.loaded_latency_curve(dram_path(platform), 0, 1)
        assert curve.peak_bandwidth_gbps == pytest.approx(54.6, rel=0.02)

    def test_latency_spikes_near_saturation(self, probe, platform):
        curve = probe.loaded_latency_curve(dram_path(platform), 1, 0)
        assert curve.points[-1].latency_ns > 3 * curve.idle_latency_ns

    def test_knee_in_75_83_percent_band(self, probe, platform):
        """'Latency starts to significantly increase at 75-83 % of
        bandwidth utilization' (§3.2)."""
        curve = probe.loaded_latency_curve(
            dram_path(platform), 1, 0,
            load_points=[i / 100 for i in range(2, 116, 1)],
        )
        assert 0.70 <= curve.knee_bandwidth_fraction(50.0) <= 0.86


class TestFig3cCxl:
    def test_idle_250ns(self, probe, platform):
        curve = probe.loaded_latency_curve(cxl_path(platform), 1, 0)
        assert curve.idle_latency_ns == pytest.approx(250.42, abs=10)

    def test_peak_at_2_1_mix(self, probe, platform):
        curves = {
            (r, w): probe.loaded_latency_curve(cxl_path(platform), r, w)
            for (r, w) in ((1, 0), (2, 1), (0, 1))
        }
        peak_21 = curves[(2, 1)].peak_bandwidth_gbps
        assert peak_21 == pytest.approx(56.7, rel=0.02)
        assert curves[(1, 0)].peak_bandwidth_gbps < peak_21
        assert curves[(0, 1)].peak_bandwidth_gbps < peak_21

    def test_latency_relatively_stable_before_saturation(self, probe, platform):
        """§3.2: CXL latency 'remains relatively stable as bandwidth
        increases' — below 80 % of peak it must stay within 25 % of idle."""
        curve = probe.loaded_latency_curve(
            cxl_path(platform), 2, 1, load_points=[0.1, 0.4, 0.6, 0.8]
        )
        for p in curve.points[:-1]:
            assert p.latency_ns < curve.idle_latency_ns * 1.25


class TestFig3dRemoteCxl:
    def test_idle_485ns(self, probe, platform):
        curve = probe.loaded_latency_curve(cxl_path(platform, socket=1), 1, 0)
        assert curve.idle_latency_ns == pytest.approx(485.0, abs=15)

    def test_bandwidth_halved(self, probe, platform):
        remote = probe.loaded_latency_curve(cxl_path(platform, socket=1), 2, 1)
        local = probe.loaded_latency_curve(cxl_path(platform, socket=0), 2, 1)
        assert remote.peak_bandwidth_gbps == pytest.approx(20.4, rel=0.03)
        assert remote.peak_bandwidth_gbps < local.peak_bandwidth_gbps / 2.5


class TestFig3bRemoteDram:
    def test_write_only_low_idle_latency(self, probe, platform):
        """Non-temporal writes: 71.77 ns idle on the remote socket."""
        curve = probe.loaded_latency_curve(remote_dram_path(platform), 0, 1)
        assert curve.idle_latency_ns == pytest.approx(71.77, abs=5)

    def test_write_only_lowest_bandwidth(self, probe, platform):
        ro = probe.loaded_latency_curve(remote_dram_path(platform), 1, 0)
        wo = probe.loaded_latency_curve(remote_dram_path(platform), 0, 1)
        assert wo.peak_bandwidth_gbps < ro.peak_bandwidth_gbps / 2

    def test_overload_droop_for_write_heavy_remote(self, probe, platform):
        """Fig. 3(b)'s past-saturation anomaly: offered load beyond peak
        *reduces* achieved bandwidth on write-heavy remote flows."""
        curve = probe.loaded_latency_curve(
            remote_dram_path(platform), 0, 1, load_points=[0.9, 1.0, 1.15]
        )
        assert curve.points[-1].achieved_gbps < curve.points[1].achieved_gbps

    def test_no_droop_for_local(self, probe, platform):
        curve = probe.loaded_latency_curve(
            dram_path(platform), 0, 1, load_points=[0.9, 1.0, 1.15]
        )
        assert curve.points[-1].achieved_gbps >= curve.points[1].achieved_gbps * 0.999


class TestFig4Comparisons:
    def test_latency_ratio_bands(self, probe, platform):
        """§3.3: local CXL latency is 2.4-2.6x local DDR and 1.5-1.92x
        remote DDR for read-dominated workloads."""
        cxl = probe.loaded_latency_curve(cxl_path(platform), 1, 0).idle_latency_ns
        dram = probe.loaded_latency_curve(dram_path(platform), 1, 0).idle_latency_ns
        rdram = probe.loaded_latency_curve(remote_dram_path(platform), 1, 0).idle_latency_ns
        assert 2.4 <= cxl / dram <= 2.6
        assert 1.5 <= cxl / rdram <= 1.95

    def test_knee_shifts_left_with_write_share(self, probe, platform):
        """§3.3: 'the latency-bandwidth knee-point shifts to the left as
        the proportion of write operations increases' — in absolute GB/s."""
        points = [i / 100 for i in range(2, 116)]
        ro = probe.loaded_latency_curve(dram_path(platform), 1, 0, load_points=points)
        wo = probe.loaded_latency_curve(dram_path(platform), 0, 1, load_points=points)
        knee_bw_ro = ro.knee_bandwidth_fraction() * ro.peak_bandwidth_gbps
        knee_bw_wo = wo.knee_bandwidth_fraction() * wo.peak_bandwidth_gbps
        assert knee_bw_wo < knee_bw_ro

    def test_random_pattern_no_disparity(self, platform):
        """§3.3: random vs sequential shows no significant difference."""
        seq = MlcProbe(platform, pattern="sequential")
        rnd = MlcProbe(platform, pattern="random")
        path = dram_path(platform)
        c_seq = seq.loaded_latency_curve(path, 1, 0)
        c_rnd = rnd.loaded_latency_curve(path, 1, 0)
        assert c_seq.peak_bandwidth_gbps == pytest.approx(c_rnd.peak_bandwidth_gbps)
        assert c_seq.idle_latency_ns == pytest.approx(c_rnd.idle_latency_ns)

    def test_sweep_mixes_returns_all_panels(self, probe, platform):
        curves = probe.sweep_mixes(dram_path(platform))
        assert len(curves) == 6
        write_fracs = [c.write_fraction for c in curves]
        assert write_fracs == sorted(write_fracs)


class TestBackgroundContention:
    def test_background_flow_raises_probe_latency(self, probe, platform):
        """A steady interfering flow pushes the probe's knee earlier."""
        from repro.units import gb_per_s

        path = dram_path(platform)
        quiet = probe.loaded_latency_curve(path, 1, 0, load_points=[0.5])
        noisy = probe.loaded_latency_curve(
            path, 1, 0, load_points=[0.5],
            background=[(path, gb_per_s(30.0), 0.0)],
        )
        assert noisy.points[0].latency_ns > quiet.points[0].latency_ns


class TestMatrixModes:
    def test_latency_matrix_anchors(self, platform):
        probe = MlcProbe(platform)
        matrix = probe.latency_matrix()
        dram0 = platform.dram_nodes(0)[0].node_id
        dram1 = platform.dram_nodes(1)[0].node_id
        cxl0 = platform.cxl_nodes()[0].node_id
        assert matrix[(0, dram0)] == pytest.approx(97.0)
        assert matrix[(0, dram1)] == pytest.approx(130.0)
        assert matrix[(0, cxl0)] == pytest.approx(250.42)
        assert matrix[(1, cxl0)] == pytest.approx(485.0)
        # Full coverage: sockets x nodes entries.
        assert len(matrix) == platform.spec.sockets * len(platform.nodes)

    def test_bandwidth_matrix_anchors(self, platform):
        probe = MlcProbe(platform)
        matrix = probe.bandwidth_matrix()
        cxl0 = platform.cxl_nodes()[0].node_id
        assert matrix[(0, cxl0)] / 1e9 == pytest.approx(50.0, rel=0.02)
        assert matrix[(1, cxl0)] / 1e9 == pytest.approx(18.0, rel=0.05)

    def test_bandwidth_matrix_mix_validation(self, platform):
        with pytest.raises(WorkloadError):
            MlcProbe(platform).bandwidth_matrix(0, 0)
