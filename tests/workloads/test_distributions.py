"""Tests for key distributions."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import (
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestUniform:
    def test_keys_in_range(self, rng):
        c = UniformChooser(100)
        keys = [c.next_key(rng) for _ in range(1000)]
        assert all(0 <= k < 100 for k in keys)

    def test_roughly_uniform(self, rng):
        c = UniformChooser(10)
        counts = np.bincount([c.next_key(rng) for _ in range(10_000)], minlength=10)
        assert counts.min() > 800 and counts.max() < 1200

    def test_validation(self):
        with pytest.raises(WorkloadError):
            UniformChooser(0)

    def test_grow(self, rng):
        c = UniformChooser(10)
        c.grow(20)
        assert c.item_count == 20
        with pytest.raises(WorkloadError):
            c.grow(5)


class TestZipfian:
    def test_keys_in_range(self, rng):
        c = ZipfianChooser(1000)
        keys = [c.next_key(rng) for _ in range(5000)]
        assert all(0 <= k < 1000 for k in keys)

    def test_skew_low_keys_dominate(self, rng):
        c = ZipfianChooser(10_000)
        keys = [c.next_key(rng) for _ in range(20_000)]
        head = sum(1 for k in keys if k < 100)  # top 1 % of key space
        assert head / len(keys) > 0.3  # zipf(0.99): head gets most traffic

    def test_theta_validation(self):
        with pytest.raises(WorkloadError):
            ZipfianChooser(10, theta=1.0)
        with pytest.raises(WorkloadError):
            ZipfianChooser(10, theta=0.0)

    def test_large_keyspace_constructs_fast(self):
        # Euler-Maclaurin path: must not iterate 50M terms.
        c = ZipfianChooser(50_000_000)
        assert c.zetan > 0

    def test_zeta_approximation_accuracy(self):
        exact = ZipfianChooser(10_000)  # exact summation path
        # Compare against brute force at the boundary.
        brute = sum(1.0 / i**0.99 for i in range(1, 10_001))
        assert exact.zetan == pytest.approx(brute, rel=1e-9)

    def test_grow_recomputes(self, rng):
        c = ZipfianChooser(100)
        z_before = c.zetan
        c.grow(1000)
        assert c.zetan > z_before


class TestScrambledZipfian:
    def test_hot_keys_scattered(self, rng):
        """Scrambling must spread the hot set across the key space."""
        c = ScrambledZipfianChooser(100_000)
        keys = [c.next_key(rng) for _ in range(20_000)]
        # Hot keys should not be concentrated in the low ids.
        head = sum(1 for k in keys if k < 1000)
        assert head / len(keys) < 0.1

    def test_still_skewed(self, rng):
        """Scrambling preserves the popularity skew itself."""
        c = ScrambledZipfianChooser(100_000)
        keys = [c.next_key(rng) for _ in range(30_000)]
        values, counts = np.unique(keys, return_counts=True)
        # The most popular single key receives far more than uniform share.
        assert counts.max() > 30_000 / 100_000 * 50

    def test_deterministic_scramble(self):
        assert ScrambledZipfianChooser._fnv_hash(12345) == ScrambledZipfianChooser._fnv_hash(12345)


class TestLatest:
    def test_newest_keys_hottest(self, rng):
        c = LatestChooser(10_000)
        keys = [c.next_key(rng) for _ in range(10_000)]
        newest = sum(1 for k in keys if k >= 9_900)  # newest 1 %
        assert newest / len(keys) > 0.3

    def test_grow_shifts_hot_set(self, rng):
        c = LatestChooser(100)
        c.grow(200)
        keys = [c.next_key(rng) for _ in range(2000)]
        assert all(0 <= k < 200 for k in keys)
        newest = sum(1 for k in keys if k >= 190)
        assert newest / len(keys) > 0.2
