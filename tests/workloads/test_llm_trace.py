"""Tests for the chat-request trace generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads import ChatRequest, chat_trace


@pytest.fixture
def rng():
    return np.random.default_rng(5)


class TestChatRequest:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            ChatRequest(prompt_tokens=0, max_new_tokens=10)
        with pytest.raises(WorkloadError):
            ChatRequest(prompt_tokens=10, max_new_tokens=0)

    def test_total_tokens(self):
        assert ChatRequest(100, 28).total_tokens == 128


class TestChatTrace:
    def test_count(self, rng):
        assert len(list(chat_trace(rng, 25))) == 25

    def test_validation(self, rng):
        with pytest.raises(WorkloadError):
            list(chat_trace(rng, 0))
        with pytest.raises(WorkloadError):
            list(chat_trace(rng, 5, prompt_context_bytes=0))
        with pytest.raises(WorkloadError):
            list(chat_trace(rng, 5, mean_new_tokens=0))

    def test_prompt_centered_on_context(self, rng):
        """§5.1: 'the prompt context is set to 2048 bytes' — prompts vary
        around 2048/4 = 512 tokens."""
        prompts = [r.prompt_tokens for r in chat_trace(rng, 3000)]
        mean = float(np.mean(prompts))
        assert 450 <= mean <= 650

    def test_output_long_tail(self, rng):
        """Chat responses: many short, a long tail."""
        outs = np.array([r.max_new_tokens for r in chat_trace(rng, 3000)])
        assert np.median(outs) < np.mean(outs)
        assert outs.min() >= 8

    def test_deterministic_with_seed(self):
        a = [(r.prompt_tokens, r.max_new_tokens)
             for r in chat_trace(np.random.default_rng(1), 50)]
        b = [(r.prompt_tokens, r.max_new_tokens)
             for r in chat_trace(np.random.default_rng(1), 50)]
        assert a == b

    def test_custom_context(self, rng):
        prompts = [r.prompt_tokens for r in chat_trace(
            rng, 1000, prompt_context_bytes=8192)]
        assert 1800 <= float(np.mean(prompts)) <= 2400
