"""Tests for the TPC-H query profiles."""

import pytest

from repro.errors import WorkloadError
from repro.units import gb, tb
from repro.workloads import PAPER_QUERY_NAMES, QueryProfile, QueryStage, paper_queries


class TestQueryStage:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            QueryStage("s", input_bytes=-1, shuffle_bytes=0, cpu_ns_per_byte=1.0)
        with pytest.raises(WorkloadError):
            QueryStage("s", input_bytes=1, shuffle_bytes=-1, cpu_ns_per_byte=1.0)
        with pytest.raises(WorkloadError):
            QueryStage("s", input_bytes=1, shuffle_bytes=0, cpu_ns_per_byte=-1.0)
        with pytest.raises(WorkloadError):
            QueryStage("s", 1, 0, 1.0, rand_per_byte=-0.1)


class TestQueryProfile:
    def test_needs_stages(self):
        with pytest.raises(WorkloadError):
            QueryProfile("empty", ())

    def test_totals(self):
        p = QueryProfile(
            "q",
            (
                QueryStage("s0", 100, 40, 1.0),
                QueryStage("s1", 40, 10, 1.0),
            ),
        )
        assert p.total_input_bytes == 140
        assert p.total_shuffle_bytes == 50
        assert p.shuffle_intensity == pytest.approx(50 / 140)


class TestPaperQueries:
    def test_all_four_queries(self):
        queries = paper_queries()
        assert set(queries) == set(PAPER_QUERY_NAMES)

    def test_scales_with_dataset(self):
        small = paper_queries(tb(1))
        big = paper_queries(tb(7))
        for q in PAPER_QUERY_NAMES:
            ratio = big[q].total_input_bytes / small[q].total_input_bytes
            assert ratio == pytest.approx(7.0, rel=0.001)

    def test_dataset_must_be_positive(self):
        with pytest.raises(WorkloadError):
            paper_queries(0)

    def test_q9_is_heaviest(self):
        """Q9 joins nearly everything: most input, most shuffle, most
        latency-sensitive — the paper's worst case."""
        queries = paper_queries()
        q9 = queries["Q9"]
        for name in ("Q5", "Q7", "Q8"):
            assert q9.total_input_bytes > queries[name].total_input_bytes
            assert q9.total_shuffle_bytes > queries[name].total_shuffle_bytes
            assert q9.stages[0].rand_per_byte > queries[name].stages[0].rand_per_byte

    def test_latency_sensitivity_ordering(self):
        """Q5 < Q7 < Q8 < Q9 in join-probe density, spreading the
        Fig. 7(a) interleave slowdowns."""
        queries = paper_queries()
        rands = [queries[q].stages[0].rand_per_byte for q in ("Q5", "Q7", "Q8", "Q9")]
        assert rands == sorted(rands)

    def test_major_stages_sized_for_spill_experiment(self):
        """At 7 TB, every query's largest shuffle must fit the full
        cluster (600 GB shuffle capacity) but exceed the 80 %-restricted
        one (480 GB) — the §4.2.1 spill construction."""
        for profile in paper_queries(tb(7)).values():
            biggest = max(s.shuffle_bytes for s in profile.stages)
            assert gb(480) < biggest < gb(615)

    def test_stage_pipeline_shrinks(self):
        """Each stage consumes the previous shuffle: inputs decrease."""
        for profile in paper_queries().values():
            inputs = [s.input_bytes for s in profile.stages]
            assert inputs == sorted(inputs, reverse=True)
