"""Tests for the YCSB generator."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.units import KIB
from repro.workloads import WORKLOADS, OpType, YcsbGenerator, YcsbSpec


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestSpecs:
    def test_paper_workloads_registered(self):
        assert set(WORKLOADS) == {"A", "B", "C", "D"}

    def test_workload_a_mix(self):
        spec = WORKLOADS["A"]
        assert spec.read_fraction == 0.5
        assert spec.update_fraction == 0.5
        assert spec.write_fraction == 0.5
        assert spec.distribution == "zipfian"

    def test_workload_c_read_only(self):
        assert WORKLOADS["C"].write_fraction == 0.0

    def test_workload_d_latest_inserts(self):
        spec = WORKLOADS["D"]
        assert spec.insert_fraction == 0.05
        assert spec.distribution == "latest"

    def test_default_value_size_is_1kb(self):
        assert WORKLOADS["A"].value_size == KIB

    def test_mix_must_sum_to_one(self):
        with pytest.raises(WorkloadError):
            YcsbSpec("bad", read_fraction=0.5, update_fraction=0.2)

    def test_unknown_distribution(self):
        with pytest.raises(WorkloadError):
            YcsbSpec("bad", read_fraction=1.0, distribution="gaussian")

    def test_bad_value_size(self):
        with pytest.raises(WorkloadError):
            YcsbSpec("bad", read_fraction=1.0, value_size=0)


class TestGenerator:
    def test_record_count_validation(self, rng):
        with pytest.raises(WorkloadError):
            YcsbGenerator(WORKLOADS["A"], 0, rng)

    def test_mix_fractions_observed(self, rng):
        gen = YcsbGenerator(WORKLOADS["A"], 10_000, rng)
        ops = list(gen.operations(10_000))
        reads = sum(1 for o in ops if o.op is OpType.READ)
        assert reads / len(ops) == pytest.approx(0.5, abs=0.03)

    def test_workload_c_all_reads(self, rng):
        gen = YcsbGenerator(WORKLOADS["C"], 1000, rng)
        assert all(o.op is OpType.READ for o in gen.operations(2000))

    def test_inserts_extend_key_space(self, rng):
        gen = YcsbGenerator(WORKLOADS["D"], 1000, rng)
        inserted = [o for o in gen.operations(5000) if o.op is OpType.INSERT]
        assert inserted, "workload D must produce inserts"
        assert gen.record_count == 1000 + len(inserted)
        # Inserted keys are fresh and sequential.
        keys = [o.key for o in inserted]
        assert keys == sorted(keys)
        assert keys[0] == 1000

    def test_is_write_predicate(self):
        from repro.workloads.ycsb import Operation

        assert not Operation(OpType.READ, 1).is_write
        assert Operation(OpType.UPDATE, 1).is_write
        assert Operation(OpType.INSERT, 1).is_write

    def test_deterministic_with_seed(self):
        a = YcsbGenerator(WORKLOADS["A"], 1000, np.random.default_rng(3))
        b = YcsbGenerator(WORKLOADS["A"], 1000, np.random.default_rng(3))
        ops_a = [(o.op, o.key) for o in a.operations(500)]
        ops_b = [(o.op, o.key) for o in b.operations(500)]
        assert ops_a == ops_b

    def test_zipfian_hot_set_small(self, rng):
        """The Zipfian working set property Hot-Promote relies on (§4.1.2):
        a small fraction of keys receives the majority of accesses."""
        gen = YcsbGenerator(WORKLOADS["C"], 50_000, rng)
        keys = [o.key for o in gen.operations(30_000)]
        values, counts = np.unique(keys, return_counts=True)
        counts.sort()
        top_10pct = counts[-len(counts) // 10 :].sum()
        assert top_10pct / counts.sum() > 0.5
