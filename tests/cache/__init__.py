"""Tests for the content-addressed sweep cache (repro.cache)."""
