"""Fingerprint invalidation: every input to the key must matter."""

import dataclasses
import enum

import pytest

from repro.cache import (
    canonical_params,
    code_fingerprint,
    point_fingerprint,
    task_name,
)
from repro.parallel import tasks


class Color(enum.Enum):
    RED = 1
    BLUE = 2


@dataclasses.dataclass(frozen=True)
class Knob:
    rate: float
    depth: int


class NoRepr:
    """Default object.__repr__ — address-based, must be rejected."""


BASE = {"workload": "A", "config": "mmem", "total_ops": 20_000}


class TestCanonicalParams:
    def test_dict_order_invariant(self):
        a = {"x": 1, "y": 2, "z": {"b": 2, "a": 1}}
        b = {"z": {"a": 1, "b": 2}, "y": 2, "x": 1}
        assert canonical_params(a) == canonical_params(b)

    def test_tuple_and_list_interchangeable(self):
        assert canonical_params({"v": (1, 2)}) == canonical_params({"v": [1, 2]})

    def test_float_precision_preserved(self):
        a = canonical_params({"f": 0.1})
        b = canonical_params({"f": float("0.1")})  # same double
        c = canonical_params({"f": 0.1 + 2e-17})  # adjacent double
        assert a == b
        assert a != c

    def test_int_and_float_distinct(self):
        assert canonical_params({"v": 1}) != canonical_params({"v": 1.0})

    def test_enum_and_dataclass_and_set(self):
        text = canonical_params(
            {"color": Color.RED, "knob": Knob(0.5, 3), "tags": {"b", "a"}}
        )
        assert "Color.RED" in text
        assert "Knob" in text
        # Set encoding is order-independent.
        assert canonical_params({"tags": {"a", "b"}}) == canonical_params(
            {"tags": {"b", "a"}}
        )

    def test_address_based_repr_rejected(self):
        with pytest.raises(TypeError, match="not\\s+value-based"):
            canonical_params({"bad": NoRepr()})


class TestPointFingerprint:
    def test_hex_digest_shape(self):
        fp = point_fingerprint("t", BASE, 1, code_fp="c")
        assert len(fp) == 64
        assert int(fp, 16) >= 0

    def test_stable_for_equal_inputs(self):
        reordered = dict(reversed(list(BASE.items())))
        assert point_fingerprint("t", BASE, 1, code_fp="c") == point_fingerprint(
            "t", reordered, 1, code_fp="c"
        )

    def test_param_value_change_changes_key(self):
        base = point_fingerprint("t", BASE, 1, code_fp="c")
        changed = dict(BASE, total_ops=20_001)
        assert point_fingerprint("t", changed, 1, code_fp="c") != base

    def test_seed_change_changes_key(self):
        assert point_fingerprint("t", BASE, 1, code_fp="c") != point_fingerprint(
            "t", BASE, 2, code_fp="c"
        )

    def test_code_fp_change_changes_key(self):
        assert point_fingerprint("t", BASE, 1, code_fp="c1") != point_fingerprint(
            "t", BASE, 1, code_fp="c2"
        )

    def test_task_change_changes_key(self):
        assert point_fingerprint("t1", BASE, 1, code_fp="c") != point_fingerprint(
            "t2", BASE, 1, code_fp="c"
        )


class TestCodeFingerprint:
    def test_memoized_and_stable(self):
        a = code_fingerprint()
        b = code_fingerprint()
        assert a == b
        assert len(a) == 64
        assert code_fingerprint(refresh=True) == a  # source unchanged

    def test_default_code_fp_used_by_point_fingerprint(self):
        live = point_fingerprint("t", BASE, 1)
        pinned = point_fingerprint("t", BASE, 1, code_fp=code_fingerprint())
        assert live == pinned


def test_task_name_is_import_path():
    assert task_name(tasks.demo_point) == "repro.parallel.tasks.demo_point"
