"""Cache-aware sweeps: warm hits, crash resume, failure exclusion."""

import os

import pytest

from repro.cache import SweepCache
from repro.parallel import SweepPoint, SweepSpec, run_sweep, tasks


def logging_point(params, seed):
    """Module-level (spawn-importable): records each execution on disk."""
    log_dir = params["log_dir"]
    marker = os.path.join(log_dir, f"{params['name']}.{seed}")
    with open(marker, "a") as fh:
        fh.write("x\n")
    return {"name": params["name"], "seed": seed}


def failing_point(params, seed):
    if params["poison"]:
        raise RuntimeError("poisoned")
    return seed


def _logging_spec(log_dir, n=5):
    return SweepSpec(
        name="logged",
        task=logging_point,
        points=tuple(
            SweepPoint(
                key=f"p{i}",
                params={"name": f"p{i}", "log_dir": str(log_dir)},
                seed=100 + i,
            )
            for i in range(n)
        ),
    )


def _executions(log_dir):
    return sum(
        sum(1 for _ in open(os.path.join(log_dir, fn)))
        for fn in os.listdir(log_dir)
    )


class TestWarmRuns:
    def test_warm_run_serves_every_point(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        log = tmp_path / "log"
        log.mkdir()
        spec = _logging_spec(log)

        cold = run_sweep(spec, workers=1, cache=cache)
        assert cold.cache_stats.misses == 5 and cold.cache_stats.stores == 5
        assert cold.cache_stats.hits == 0 and cold.cache_stats.resumed == 0
        assert not any(pr.cached for pr in cold.results)
        assert _executions(str(log)) == 5

        warm = run_sweep(spec, workers=1, cache=cache)
        assert warm.cache_stats.hits == 5 and warm.cache_stats.misses == 0
        assert all(pr.cached for pr in warm.results)
        assert all(pr.elapsed_s == 0.0 for pr in warm.results)
        # A full-hit run is not a "resume" — nothing executed.
        assert warm.cache_stats.resumed == 0
        assert _executions(str(log)) == 5  # nothing re-ran
        assert [pr.value for pr in warm.results] == [
            pr.value for pr in cold.results
        ]
        assert [pr.key for pr in warm.results] == [pr.key for pr in cold.results]

    def test_progress_fires_for_cached_points(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        log = tmp_path / "log"
        log.mkdir()
        spec = _logging_spec(log, n=3)
        run_sweep(spec, workers=1, cache=cache)
        calls = []
        run_sweep(
            spec, workers=1, cache=cache,
            progress=lambda done, total, pr: calls.append(
                (done, total, pr.key, pr.cached)
            ),
        )
        assert calls == [(1, 3, "p0", True), (2, 3, "p1", True), (3, 3, "p2", True)]

    def test_no_cache_keeps_stats_none(self):
        sweep = run_sweep(_demo_spec(), workers=1)
        assert sweep.cache_stats is None
        assert not any(pr.cached for pr in sweep.results)


def _demo_spec(n=4, poison=()):
    return SweepSpec(
        name="demo",
        task=tasks.demo_point,
        points=tuple(
            SweepPoint(
                key=f"p{i}",
                params={"draws": 32, "poison": i in poison},
                seed=100 + i,
            )
            for i in range(n)
        ),
    )


class TestResume:
    def test_interrupted_sweep_resumes_from_last_completed(self, tmp_path):
        cache = SweepCache(root=str(tmp_path / "cache"))
        log = tmp_path / "log"
        log.mkdir()
        spec = _logging_spec(log, n=5)

        def kill_after_two(done, total, pr):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(spec, workers=1, cache=cache, progress=kill_after_two)
        assert _executions(str(log)) == 2  # both persisted before the kill

        resumed = run_sweep(spec, workers=1, cache=cache)
        assert _executions(str(log)) == 5  # only the remaining 3 executed
        assert resumed.cache_stats.hits == 2
        assert resumed.cache_stats.misses == 3
        assert resumed.cache_stats.resumed == 2  # hits alongside executions
        assert [pr.cached for pr in resumed.results] == [
            True, True, False, False, False,
        ]
        assert resumed.ok and len(resumed.results) == 5

    def test_failed_points_never_cached(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        spec = SweepSpec(
            name="flaky",
            task=failing_point,
            points=tuple(
                SweepPoint(key=f"p{i}", params={"poison": i == 1}, seed=i)
                for i in range(3)
            ),
        )
        first = run_sweep(spec, workers=1, cache=cache)
        assert not first.ok
        assert first.cache_stats.stores == 2  # only the ok points persisted
        second = run_sweep(spec, workers=1, cache=cache)
        assert second.cache_stats.hits == 2 and second.cache_stats.misses == 1
        assert not second.results[1].ok  # the poisoned point re-executed


class TestParallelWithCache:
    def test_pool_run_populates_and_serves(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        spec = _demo_spec(n=6)
        cold = run_sweep(spec, workers=2, cache=cache)
        assert cold.workers == 2
        assert cold.cache_stats.misses == 6 and cold.cache_stats.stores == 6
        warm = run_sweep(spec, workers=2, cache=cache)
        # All points hit, so no pool is spun up at all.
        assert warm.workers == 1
        assert warm.cache_stats.hits == 6
        assert [pr.value for pr in warm.results] == [
            pr.value for pr in cold.results
        ]
        serial = run_sweep(spec, workers=1)
        assert [pr.value for pr in warm.results] == [
            pr.value for pr in serial.results
        ]
