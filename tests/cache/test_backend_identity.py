"""Backend identity in the point fingerprint (v2).

Analytic and DES runs of the *same* parameters answer different
questions to different accuracy — they must never alias in the
content-addressed store.  The backend marker (``__repro_backend__``)
joins the fingerprint payload, so a des result can never be served for
an analytic request or vice versa, and bumping the analytic model
version invalidates exactly the analytic entries.
"""

from repro.cache import backend_identity, point_fingerprint
from repro.cache.store import SweepCache
from repro.parallel import tasks

PARAMS = {"config": "mmem", "workload": "A", "total_ops": 20_000}


def _des_task(params, seed):
    return {"ok": True}


def _marked_task(params, seed):
    return {"ok": True}


_marked_task.__repro_backend__ = ("analytic", 3)


def _routed_task(params, seed):
    return {"ok": True}


_routed_task.__repro_backend__ = lambda params: (
    ("analytic", 1) if params.get("config") != "hot-promote" else ("des", 0)
)


class TestBackendIdentity:
    def test_unmarked_task_is_des(self):
        assert backend_identity(_des_task, PARAMS) == ("des", 0)

    def test_static_marker(self):
        assert backend_identity(_marked_task, PARAMS) == ("analytic", 3)

    def test_callable_marker_routes_per_params(self):
        assert backend_identity(_routed_task, PARAMS) == ("analytic", 1)
        assert backend_identity(
            _routed_task, {"config": "hot-promote"}
        ) == ("des", 0)

    def test_stock_tasks_declare_their_backend(self):
        assert backend_identity(tasks.fig5_cell, PARAMS) == ("des", 0)
        name, version = backend_identity(tasks.fig5_cell_analytic, PARAMS)
        assert name == "analytic" and version >= 1
        # The auto router resolves per point.
        assert backend_identity(tasks.fig5_cell_auto, PARAMS)[0] == "analytic"
        assert backend_identity(
            tasks.fig5_cell_auto, {"config": "hot-promote"}
        ) == ("des", 0)


class TestFingerprintSeparation:
    def test_backends_never_alias(self):
        des = point_fingerprint("fig5_cell", PARAMS, 7)
        ana = point_fingerprint("fig5_cell", PARAMS, 7,
                                backend=("analytic", 1))
        assert des != ana

    def test_default_backend_is_des(self):
        implicit = point_fingerprint("fig5_cell", PARAMS, 7)
        explicit = point_fingerprint("fig5_cell", PARAMS, 7,
                                     backend=("des", 0))
        assert implicit == explicit

    def test_model_version_bumps_invalidate(self):
        v1 = point_fingerprint("fig5_cell", PARAMS, 7, backend=("analytic", 1))
        v2 = point_fingerprint("fig5_cell", PARAMS, 7, backend=("analytic", 2))
        assert v1 != v2

    def test_cache_keys_diverge_per_backend(self, tmp_path):
        cache = SweepCache(str(tmp_path))
        des_key = cache.key_for(tasks.fig5_cell, PARAMS, 7)
        ana_key = cache.key_for(tasks.fig5_cell_analytic, PARAMS, 7)
        auto_key = cache.key_for(tasks.fig5_cell_auto, PARAMS, 7)
        assert des_key != ana_key
        # Three distinct task names, so all three differ; the invariant
        # that matters is the auto key matching its routed backend, which
        # the runner exercises end to end.
        assert len({des_key, ana_key, auto_key}) == 3
