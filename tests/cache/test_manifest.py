"""Resume manifests: drained sweeps leave accounting, completions clear it."""

import json
import os

from repro.cache import (
    MANIFEST_SCHEMA,
    ResumeManifest,
    SweepCache,
    clear_resume_manifest,
    list_resume_manifests,
    load_resume_manifest,
    manifest_path,
    write_resume_manifest,
)


def _manifest(name="fig5", completed=("a", "b")):
    return ResumeManifest(
        name=name,
        base_seed=0xC0FFEE,
        total=5,
        completed=tuple(completed),
        reason="SIGINT",
        workers=2,
    )


class TestRoundtrip:
    def test_write_then_load(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        path = write_resume_manifest(cache, _manifest())
        assert path == manifest_path(cache, "fig5")
        loaded = load_resume_manifest(cache, "fig5")
        assert loaded == _manifest()
        assert loaded.remaining == 3

    def test_as_dict_carries_schema(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        write_resume_manifest(cache, _manifest())
        with open(manifest_path(cache, "fig5")) as fh:
            doc = json.load(fh)
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["completed"] == ["a", "b"]

    def test_rewrite_replaces(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        write_resume_manifest(cache, _manifest(completed=("a",)))
        write_resume_manifest(cache, _manifest(completed=("a", "b", "c")))
        assert load_resume_manifest(cache, "fig5").completed == ("a", "b", "c")


class TestMissingAndMalformed:
    def test_missing_is_none(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        assert load_resume_manifest(cache, "nope") is None

    def test_truncated_json_is_none(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        path = manifest_path(cache, "broken")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write('{"schema": "repro.manifest/v1", "name":')
        assert load_resume_manifest(cache, "broken") is None

    def test_foreign_schema_is_none(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        path = manifest_path(cache, "foreign")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"schema": "other/v9", "name": "foreign"}, fh)
        assert load_resume_manifest(cache, "foreign") is None

    def test_missing_fields_is_none(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        path = manifest_path(cache, "partial")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"schema": MANIFEST_SCHEMA, "name": "partial"}, fh)
        assert load_resume_manifest(cache, "partial") is None


class TestClearAndList:
    def test_clear_removes(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        write_resume_manifest(cache, _manifest())
        assert clear_resume_manifest(cache, "fig5")
        assert load_resume_manifest(cache, "fig5") is None
        assert not clear_resume_manifest(cache, "fig5")  # already gone

    def test_list_sorted_by_name(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        assert list_resume_manifests(cache) == []
        write_resume_manifest(cache, _manifest(name="zeta"))
        write_resume_manifest(cache, _manifest(name="alpha"))
        names = [m.name for m in list_resume_manifests(cache)]
        assert names == ["alpha", "zeta"]
