"""Resume manifests: drained sweeps leave accounting, completions clear it."""

import json
import os

from repro.cache import (
    MANIFEST_SCHEMA,
    ResumeManifest,
    SweepCache,
    clear_resume_manifest,
    list_resume_manifests,
    load_resume_manifest,
    manifest_path,
    verify_resume_manifests,
    write_resume_manifest,
)
from repro.parallel import SweepPoint, SweepSpec, run_sweep


def _manifest(name="fig5", completed=("a", "b")):
    return ResumeManifest(
        name=name,
        base_seed=0xC0FFEE,
        total=5,
        completed=tuple(completed),
        reason="SIGINT",
        workers=2,
    )


class TestRoundtrip:
    def test_write_then_load(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        path = write_resume_manifest(cache, _manifest())
        assert path == manifest_path(cache, "fig5")
        loaded = load_resume_manifest(cache, "fig5")
        assert loaded == _manifest()
        assert loaded.remaining == 3

    def test_as_dict_carries_schema(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        write_resume_manifest(cache, _manifest())
        with open(manifest_path(cache, "fig5")) as fh:
            doc = json.load(fh)
        assert doc["schema"] == MANIFEST_SCHEMA
        assert doc["completed"] == ["a", "b"]

    def test_rewrite_replaces(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        write_resume_manifest(cache, _manifest(completed=("a",)))
        write_resume_manifest(cache, _manifest(completed=("a", "b", "c")))
        assert load_resume_manifest(cache, "fig5").completed == ("a", "b", "c")


class TestMissingAndMalformed:
    def test_missing_is_none(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        assert load_resume_manifest(cache, "nope") is None

    def test_truncated_json_is_none(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        path = manifest_path(cache, "broken")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write('{"schema": "repro.manifest/v1", "name":')
        assert load_resume_manifest(cache, "broken") is None

    def test_foreign_schema_is_none(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        path = manifest_path(cache, "foreign")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"schema": "other/v9", "name": "foreign"}, fh)
        assert load_resume_manifest(cache, "foreign") is None

    def test_missing_fields_is_none(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        path = manifest_path(cache, "partial")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"schema": MANIFEST_SCHEMA, "name": "partial"}, fh)
        assert load_resume_manifest(cache, "partial") is None


def square_point(params, seed):
    """Module-level (spawn-importable) trivial task."""
    return {"sq": params["i"] * params["i"], "seed": seed}


class TestCorruptDemotesToFresh:
    """A damaged manifest must never block a sweep — it runs fresh."""

    def _spec(self, n=4):
        return SweepSpec(
            name="dented",
            task=square_point,
            points=tuple(
                SweepPoint(key=f"p{i}", params={"i": i}, seed=100 + i)
                for i in range(n)
            ),
        )

    def _corrupt(self, cache, name="dented"):
        path = manifest_path(cache, name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as fh:
            fh.write('{"schema": "repro.manifest/v1", "completed": [')
        return path

    def test_truncated_manifest_runs_fresh_and_completes(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        self._corrupt(cache)
        result = run_sweep(self._spec(), workers=1, cache=cache)
        assert result.ok
        assert [pr.value["sq"] for pr in result.results] == [0, 1, 4, 9]
        assert not any(pr.cached for pr in result.results)
        # The completed sweep clears the debris along with its manifest.
        assert load_resume_manifest(cache, "dented") is None
        assert not os.path.exists(manifest_path(cache, "dented"))

    def test_verify_reports_and_purges_corruption(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        self._corrupt(cache)
        write_resume_manifest(cache, _manifest(name="fine"))
        bad = verify_resume_manifests(cache)
        assert [name for name, _ in bad] == ["manifest:dented"]
        assert "JSON" in bad[0][1]
        # Reporting alone leaves the file; purge removes it.
        assert os.path.exists(manifest_path(cache, "dented"))
        bad = verify_resume_manifests(cache, purge=True)
        assert [name for name, _ in bad] == ["manifest:dented"]
        assert not os.path.exists(manifest_path(cache, "dented"))
        assert verify_resume_manifests(cache) == []
        assert load_resume_manifest(cache, "fine") is not None


class TestClearAndList:
    def test_clear_removes(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        write_resume_manifest(cache, _manifest())
        assert clear_resume_manifest(cache, "fig5")
        assert load_resume_manifest(cache, "fig5") is None
        assert not clear_resume_manifest(cache, "fig5")  # already gone

    def test_list_sorted_by_name(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        assert list_resume_manifests(cache) == []
        write_resume_manifest(cache, _manifest(name="zeta"))
        write_resume_manifest(cache, _manifest(name="alpha"))
        names = [m.name for m in list_resume_manifests(cache)]
        assert names == ["alpha", "zeta"]
