"""Cache counters surfaced through the repro.obs registry."""

from repro.cache import (
    SweepCache,
    register_cache_stats,
    register_store_snapshot,
    register_sweep_result,
)
from repro.obs import MetricsRegistry
from repro.parallel import SweepPoint, SweepSpec, run_sweep, tasks


def _spec(n=3):
    return SweepSpec(
        name="demo",
        task=tasks.demo_point,
        points=tuple(
            SweepPoint(key=f"p{i}", params={"draws": 16, "poison": False},
                       seed=i)
            for i in range(n)
        ),
    )


def _by_name(registry):
    out = {}
    for s in registry.samples():
        out.setdefault(s.name, []).append(s)
    return out


def test_cache_stats_collector(tmp_path):
    cache = SweepCache(root=str(tmp_path))
    run_sweep(_spec(), workers=1, cache=cache)
    run_sweep(_spec(), workers=1, cache=cache)

    registry = MetricsRegistry()
    register_cache_stats(registry, cache.stats, labels={"store": "test"})
    named = _by_name(registry)
    assert named["sweep_cache_hits"][0].value == 3.0
    assert named["sweep_cache_misses"][0].value == 3.0
    assert named["sweep_cache_stores"][0].value == 3.0
    assert named["sweep_cache_evictions"][0].value == 0.0
    assert named["sweep_points_resumed"][0].value == 0.0
    assert named["sweep_cache_hits"][0].labels == {"store": "test"}
    assert named["sweep_cache_hits"][0].kind == "counter"

    # Lazy collector: later activity shows up without re-registering.
    run_sweep(_spec(), workers=1, cache=cache)
    assert _by_name(registry)["sweep_cache_hits"][0].value == 6.0


def test_store_snapshot_collector(tmp_path):
    cache = SweepCache(root=str(tmp_path))
    run_sweep(_spec(), workers=1, cache=cache)
    registry = MetricsRegistry()
    register_store_snapshot(registry, cache)
    named = _by_name(registry)
    assert named["sweep_cache_entries"][0].value == 3.0
    assert named["sweep_cache_bytes"][0].value > 0
    assert named["sweep_cache_max_bytes"][0].value == float(cache.max_bytes)
    assert named["sweep_cache_entries"][0].kind == "gauge"


def test_sweep_result_collector(tmp_path):
    cache = SweepCache(root=str(tmp_path))
    run_sweep(_spec(), workers=1, cache=cache)
    warm = run_sweep(_spec(), workers=1, cache=cache)

    registry = MetricsRegistry()
    register_sweep_result(registry, warm)
    named = _by_name(registry)
    elapsed = named["sweep_point_elapsed_s"]
    assert len(elapsed) == 3
    assert {s.labels["point"] for s in elapsed} == {"p0", "p1", "p2"}
    assert all(s.labels["sweep"] == "demo" for s in elapsed)
    assert all(s.labels["cached"] == "1" for s in elapsed)
    assert all(s.value == 0.0 for s in elapsed)
    # The sweep ran with a cache, so its counters ride along labeled.
    assert named["sweep_cache_hits"][0].value == 3.0
    assert named["sweep_cache_hits"][0].labels == {"sweep": "demo"}


def test_sweep_result_collector_without_cache():
    sweep = run_sweep(_spec(), workers=1)
    registry = MetricsRegistry()
    register_sweep_result(registry, sweep)
    named = _by_name(registry)
    assert len(named["sweep_point_elapsed_s"]) == 3
    assert all(
        s.labels["cached"] == "0" for s in named["sweep_point_elapsed_s"]
    )
    assert "sweep_cache_hits" not in named
