"""Store robustness: corruption demotes to miss, LRU eviction, races."""

import multiprocessing
import os

import pytest

from repro.errors import ConfigurationError
from repro.cache import (
    CACHE_DIR_ENV,
    CACHE_MAX_BYTES_ENV,
    DEFAULT_MAX_BYTES,
    SweepCache,
    default_cache_dir,
)

FP_A = "a" * 64
FP_B = "b" * 64
FP_C = "c" * 64


def _put(cache, fp, value="v"):
    assert cache.put(fp, value, key="k", task="t", seed=1, elapsed_s=0.5)


def _entry_path(cache, fp):
    infos = [e for e in cache.entries() if e.fingerprint == fp]
    assert len(infos) == 1
    return infos[0].path


def _racing_writer(root, fp, value, rounds):
    """Module-level so spawn children can import it."""
    cache = SweepCache(root=root)
    for _ in range(rounds):
        cache.put(fp, value, key="race", task="t", seed=7)


class TestRoundTrip:
    def test_put_then_lookup(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        _put(cache, FP_A, value={"mean": 1.5, "rows": [1, 2]})
        entry = cache.lookup(FP_A)
        assert entry is not None
        assert entry.value == {"mean": 1.5, "rows": [1, 2]}
        assert entry.key == "k" and entry.task == "t" and entry.seed == 1
        assert entry.elapsed_s == 0.5
        assert cache.stats.hits == 1 and cache.stats.stores == 1

    def test_absent_is_miss(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        assert cache.lookup(FP_A) is None
        assert cache.stats.misses == 1 and cache.stats.corrupted == 0

    def test_unpicklable_value_is_store_failure(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        assert not cache.put(FP_A, lambda: None, key="k", task="t", seed=1)
        assert cache.stats.store_failures == 1
        assert len(cache) == 0


class TestCorruption:
    def test_truncated_entry_is_miss_not_raise(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        _put(cache, FP_A)
        path = _entry_path(cache, FP_A)
        blob = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert cache.lookup(FP_A) is None
        assert cache.stats.corrupted == 1 and cache.stats.misses == 1
        assert not os.path.exists(path)  # carcass removed

    def test_bitflip_is_miss(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        _put(cache, FP_A)
        path = _entry_path(cache, FP_A)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        assert cache.lookup(FP_A) is None
        assert cache.stats.corrupted == 1

    def test_bad_magic_is_miss(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        _put(cache, FP_A)
        path = _entry_path(cache, FP_A)
        with open(path, "wb") as fh:
            fh.write(b"JUNK" + b"\0" * 40)
        assert cache.lookup(FP_A) is None
        assert cache.stats.corrupted == 1

    def test_wrong_address_is_miss(self, tmp_path):
        # A valid entry copied to the wrong fingerprint must not serve.
        cache = SweepCache(root=str(tmp_path))
        _put(cache, FP_A)
        src = _entry_path(cache, FP_A)
        dst = cache._path(FP_B)
        os.makedirs(os.path.dirname(dst), exist_ok=True)
        with open(src, "rb") as s, open(dst, "wb") as d:
            d.write(s.read())
        assert cache.lookup(FP_B) is None
        assert cache.stats.corrupted == 1

    def test_verify_reports_and_purges(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        _put(cache, FP_A)
        _put(cache, FP_B)
        path = _entry_path(cache, FP_B)
        with open(path, "wb") as fh:
            fh.write(b"garbage")
        report = cache.verify()
        assert report.checked == 2 and not report.ok
        assert [fp for fp, _ in report.bad] == [FP_B]
        assert os.path.exists(path)  # report-only scan keeps the file
        purged = cache.verify(purge=True)
        assert not purged.ok
        assert not os.path.exists(path)
        assert cache.verify().ok


class TestEviction:
    def test_lru_eviction_under_cap(self, tmp_path):
        cache = SweepCache(root=str(tmp_path), max_bytes=DEFAULT_MAX_BYTES)
        payload = "x" * 4096
        for i, fp in enumerate((FP_A, FP_B)):
            _put(cache, fp, value=payload)
            os.utime(_entry_path(cache, fp), (1000.0 + i, 1000.0 + i))
        # Cap to roughly one entry; the next store evicts the oldest (A).
        cache.max_bytes = _one_entry_cap(cache)
        _put(cache, FP_C, value=payload)
        survivors = {e.fingerprint for e in cache.entries()}
        assert FP_C in survivors  # just-written entry is never self-evicted
        assert FP_A not in survivors
        assert cache.stats.evictions >= 1

    def test_hit_refreshes_recency(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        payload = "x" * 4096
        for i, fp in enumerate((FP_A, FP_B)):
            _put(cache, fp, value=payload)
            os.utime(_entry_path(cache, fp), (1000.0 + i, 1000.0 + i))
        assert cache.lookup(FP_A) is not None  # bumps A's mtime to now
        # Cap fits two entries: storing C must evict exactly one, and
        # the freshly-touched A outlives the stale B.
        sizes = [e.size for e in cache.entries()]
        cache.max_bytes = sum(sizes) + min(sizes) // 2
        _put(cache, FP_C, value=payload)
        survivors = {e.fingerprint for e in cache.entries()}
        assert FP_A in survivors and FP_B not in survivors

    def test_clear_removes_everything(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        _put(cache, FP_A)
        _put(cache, FP_B)
        assert cache.clear() == 2
        assert len(cache) == 0 and cache.size_bytes() == 0


def _one_entry_cap(cache):
    """A byte cap that fits one entry of this store but not two."""
    sizes = sorted(e.size for e in cache.entries())
    return sizes[-1] + sizes[0] // 2


class TestConcurrency:
    def test_racing_same_key_writers_leave_valid_entry(self, tmp_path):
        root = str(tmp_path)
        ctx = multiprocessing.get_context("spawn")
        procs = [
            ctx.Process(target=_racing_writer, args=(root, FP_A, "payload", 25))
            for _ in range(2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        cache = SweepCache(root=root)
        entry = cache.lookup(FP_A)
        assert entry is not None and entry.value == "payload"
        assert cache.verify().ok
        # No orphaned temp files left behind by the race.
        leftovers = [
            fn
            for _, _, fns in os.walk(root)
            for fn in fns
            if fn.endswith(".tmp")
        ]
        assert leftovers == []


class TestConfiguration:
    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "custom"))
        assert default_cache_dir() == str(tmp_path / "custom")
        monkeypatch.delenv(CACHE_DIR_ENV)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_cache_dir() == str(tmp_path / "xdg" / "repro" / "sweeps")

    def test_max_bytes_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "12345")
        assert SweepCache(root=str(tmp_path)).max_bytes == 12345
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "lots")
        with pytest.raises(ConfigurationError):
            SweepCache(root=str(tmp_path))
        monkeypatch.setenv(CACHE_MAX_BYTES_ENV, "0")
        with pytest.raises(ConfigurationError):
            SweepCache(root=str(tmp_path))

    def test_explicit_cap_must_be_positive(self, tmp_path):
        with pytest.raises(ConfigurationError):
            SweepCache(root=str(tmp_path), max_bytes=0)

    def test_stats_snapshot_shape(self, tmp_path):
        cache = SweepCache(root=str(tmp_path))
        _put(cache, FP_A)
        snap = cache.stats_snapshot()
        assert snap["entries"] == 1
        assert snap["total_bytes"] > 0
        assert snap["root"] == cache.root
        assert snap["max_bytes"] == cache.max_bytes
