"""Tests for the figure runners (small scales; full runs in benchmarks/)."""

import pytest

from repro.analysis import (
    TABLE1,
    TABLE3,
    TABLE4,
    ascii_bars,
    ascii_series,
    ascii_table,
    fig3_loaded_latency,
    fig8_cxl_only,
    fig10_llm,
    table2_rows,
)
from repro.analysis.figures import FIG3_PANELS, fig5_keydb


class TestTables:
    def test_table1_has_seven_configs(self):
        assert len(TABLE1) == 7
        names = [name for name, _ in TABLE1]
        assert names[0] == "mmem" and names[-1] == "hot-promote"

    def test_table2_rows(self):
        rows = table2_rows()
        assert len(rows) == 5
        assert rows[0][1] == "IceLake-SP"

    def test_table3_has_example_values(self):
        by_name = {row[0]: row[2] for row in TABLE3}
        assert by_name["R_d"] == "10"
        assert by_name["R_c"] == "8"
        assert by_name["C"] == "2"
        assert by_name["R_t"] == "1.1"

    def test_table4_tier_mapping(self):
        mapping = dict(TABLE4)
        assert mapping["Local GPU HBM"] == "Local DDR"
        assert mapping["Local CPU DDR"] == "CXL memory expansion"


class TestReportRendering:
    def test_ascii_table(self):
        text = ascii_table(["a", "bb"], [[1, 2], ["xxx", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "xxx" in text and "bb" in text

    def test_ascii_bars(self):
        text = ascii_bars(["one", "two"], [1.0, 2.0], width=10, unit="x")
        assert "one" in text and "#" in text
        with pytest.raises(ValueError):
            ascii_bars(["one"], [1.0, 2.0])

    def test_ascii_bars_zero_values(self):
        text = ascii_bars(["z"], [0.0])
        assert "0.00" in text

    def test_ascii_series(self):
        text = ascii_series([(1.0, 5.0), (2.0, 10.0)], "load", "lat")
        assert "load" in text and "*" in text


class TestFig3Runner:
    @pytest.fixture(scope="class")
    def panels(self):
        return fig3_loaded_latency(load_points=6)

    def test_all_panels_present(self, panels):
        assert set(panels) == set(FIG3_PANELS)

    def test_mix_legend(self, panels):
        assert set(panels["mmem"]) == {"1:0", "2:1", "1:1", "0:1"}

    def test_idle_latency_ordering_across_panels(self, panels):
        idles = [panels[p]["1:0"].idle_latency_ns for p in FIG3_PANELS]
        assert idles == sorted(idles)

    def test_mmem_read_peak(self, panels):
        assert panels["mmem"]["1:0"].peak_bandwidth_gbps == pytest.approx(
            67.0, rel=0.02
        )


class TestFig5Runner:
    def test_small_run_structure(self):
        result = fig5_keydb(
            workloads=("C",),
            configs=("mmem", "1:1"),
            record_count=8192,
            total_ops=8000,
        )
        table = result.throughput_table()
        assert [row[0] for row in table] == ["mmem", "1:1"]
        assert result.slowdown("C", "1:1") > 1.0


class TestFig8Runner:
    def test_shape(self):
        result = fig8_cxl_only(record_count=8192, total_ops=10_000)
        assert 0.05 <= result.throughput_drop <= 0.20
        assert result.latency_penalty(50.0) > 0.0


class TestFig10Runner:
    def test_structure(self):
        result = fig10_llm(backend_counts=(1, 5))
        assert set(result.serving) == {"mmem", "3:1", "1:1", "1:3"}
        assert result.rate("3:1", 60) > result.rate("mmem", 60)
        with pytest.raises(KeyError):
            result.rate("mmem", 999)
        assert result.fig10b[-1][1] == pytest.approx(24.2, abs=0.5)
        assert result.fig10c[0][1] < result.fig10c[-1][1]


class TestFig4Runner:
    def test_structure_and_patterns(self):
        from repro.analysis import fig4_path_comparison

        data = fig4_path_comparison(
            write_fractions_mixes=((1, 0), (0, 1)),
            load_points=4,
        )
        assert set(data) == {"sequential", "random"}
        assert set(data["sequential"]) == {"1:0", "0:1"}
        panels = data["sequential"]["1:0"]
        assert set(panels) == {"mmem", "mmem-r", "cxl", "cxl-r"}
        # Pattern insensitivity holds through the runner too.
        assert data["random"]["1:0"]["mmem"].peak_bandwidth_gbps == pytest.approx(
            data["sequential"]["1:0"]["mmem"].peak_bandwidth_gbps
        )
