"""Tests for the repetition utilities — including seed-stability of the
headline application ratios."""

import pytest

from repro.analysis.repeat import RepeatedMetric, repeat_metric
from repro.apps.kvstore import run_keydb_config
from repro.errors import ConfigurationError


class TestRepeatedMetric:
    def test_needs_two_values(self):
        with pytest.raises(ConfigurationError):
            RepeatedMetric((1.0,))
        with pytest.raises(ConfigurationError):
            repeat_metric(lambda s: 1.0, seeds=(1,))

    def test_statistics(self):
        metric = RepeatedMetric((2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0))
        assert metric.mean == pytest.approx(5.0)
        assert metric.stddev == pytest.approx(2.138, abs=1e-3)
        assert metric.n == 8

    def test_confidence_interval(self):
        metric = RepeatedMetric((10.0, 10.0, 10.0, 10.0))
        lo, hi = metric.confidence_interval(0.95)
        assert lo == hi == pytest.approx(10.0)
        with pytest.raises(ConfigurationError):
            metric.confidence_interval(0.5)

    def test_within(self):
        metric = RepeatedMetric((1.0, 1.1, 0.9, 1.0))
        assert metric.within(0.5, 1.5)
        assert not metric.within(1.05, 1.5)

    def test_str(self):
        text = str(RepeatedMetric((1.0, 2.0, 3.0)))
        assert "95% CI" in text and "n=3" in text

    def test_repeat_metric_runs_every_seed(self):
        seen = []
        metric = repeat_metric(lambda s: (seen.append(s), float(s))[1], seeds=(3, 5, 9))
        assert seen == [3, 5, 9]
        assert metric.mean == pytest.approx((3 + 5 + 9) / 3)


class TestSeedStability:
    def test_keydb_interleave_ratio_stable_across_seeds(self):
        """The 1:1 interleave slowdown band must not be a seed artifact."""

        def slowdown(seed: int) -> float:
            base = run_keydb_config(
                "mmem", record_count=16_384, total_ops=20_000, seed=seed
            ).throughput_ops_per_s
            inter = run_keydb_config(
                "1:1", record_count=16_384, total_ops=20_000, seed=seed
            ).throughput_ops_per_s
            return base / inter

        metric = repeat_metric(slowdown, seeds=(11, 22, 33))
        assert metric.relative_spread < 0.05
        assert metric.within(1.15, 1.6)
