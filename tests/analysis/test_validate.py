"""Tests for the anchor self-check."""

import pytest

from repro.analysis import validate_anchors
from repro.cli import main


class TestValidateAnchors:
    def test_all_anchors_hold(self):
        checks = validate_anchors()
        failing = [c.name for c in checks if not c.ok]
        assert not failing, failing

    def test_covers_the_headline_anchors(self):
        names = {c.name for c in validate_anchors()}
        assert "idle latency cxl_local" in names
        assert "cxl peak at 2:1" in names
        assert "mmem latency knee" in names
        assert "cost model TCO saving" in names
        assert any("link budget" in n for n in names)

    def test_check_structure(self):
        check = validate_anchors()[0]
        assert check.expected and check.measured
        assert isinstance(check.ok, bool)


class TestValidateCli:
    def test_exit_zero_when_green(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "anchors hold" in out
        assert "FAIL" not in out
