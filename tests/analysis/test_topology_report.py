"""Tests for the topology renderer."""

from repro.analysis import describe_platform, path_surface_table
from repro.hw import paper_baseline_platform, paper_cxl_platform


class TestDescribePlatform:
    def test_snc_platform_lists_all_nodes(self):
        text = describe_platform(paper_cxl_platform(snc_enabled=True))
        assert "SNC on (4 domains)" in text
        assert text.count("dram node") == 8
        assert text.count("cxl node") == 2
        assert "nic: 12.50 GB/s" in text

    def test_baseline_has_no_cxl(self):
        text = describe_platform(paper_baseline_platform())
        assert "cxl node" not in text
        assert "SNC off" in text

    def test_capacities_rendered(self):
        text = describe_platform(paper_cxl_platform())
        assert "512.00 GiB" in text  # one socket's DRAM, SNC off
        assert "256.00 GiB" in text  # one A1000


class TestPathSurface:
    def test_all_nodes_listed_with_kinds(self):
        platform = paper_cxl_platform(snc_enabled=True)
        text = path_surface_table(platform, initiator_socket=0)
        assert text.count("-> node") == len(platform.nodes)
        assert "mmem-r" in text and "cxl-r" not in text  # cxl is socket-0 local
        text1 = path_surface_table(platform, initiator_socket=1)
        assert "cxl-r" in text1

    def test_anchor_latencies_visible(self):
        text = path_surface_table(paper_cxl_platform(), 0)
        assert "97.0 ns" in text
        assert "250.4 ns" in text
