"""Tests for the CSV/JSON exporters."""

import csv
import io
import json

from repro.analysis.export import (
    curve_to_rows,
    fig3_to_csv,
    fig10_to_json,
    rows_to_csv,
    write_text,
)
from repro.analysis.figures import fig3_loaded_latency, fig10_llm


class TestCsv:
    def test_rows_to_csv_roundtrip(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 3, "b": 4.0}]
        text = rows_to_csv(rows)
        back = list(csv.DictReader(io.StringIO(text)))
        assert len(back) == 2
        assert back[0]["a"] == "1"

    def test_empty_rows(self):
        assert rows_to_csv([]) == ""

    def test_fig3_to_csv(self):
        panels = fig3_loaded_latency(panels=("mmem",), load_points=4)
        text = fig3_to_csv(panels)
        back = list(csv.DictReader(io.StringIO(text)))
        assert len(back) == 4 * 4  # 4 mixes x 4 load points
        assert {r["panel"] for r in back} == {"mmem"}
        assert {r["mix"] for r in back} == {"1:0", "2:1", "1:1", "0:1"}
        # Values parse as floats.
        assert all(float(r["latency_ns"]) > 0 for r in back)

    def test_curve_to_rows_fields(self):
        panels = fig3_loaded_latency(panels=("mmem",), load_points=3)
        rows = curve_to_rows(panels["mmem"]["1:0"])
        assert set(rows[0]) == {
            "write_fraction",
            "offered_bytes_per_s",
            "achieved_gbps",
            "latency_ns",
        }


class TestJson:
    def test_fig10_to_json(self):
        result = fig10_llm(backend_counts=(1, 5))
        payload = json.loads(fig10_to_json(result))
        assert set(payload["serving"]) == {"mmem", "3:1", "1:1", "1:3"}
        point = payload["serving"]["mmem"][0]
        assert point["threads"] == 12
        assert point["tokens_per_second"] > 0
        assert len(payload["fig10b_threads_gbps"]) > 0


class TestWriteText:
    def test_writes_file(self, tmp_path):
        path = tmp_path / "artifact.csv"
        write_text(str(path), "a,b\n1,2\n")
        assert path.read_text() == "a,b\n1,2\n"
