"""The DES-vs-analytic golden grid: pinned per-metric error bounds.

Runs the calibration grid (fig3 curves, a fig5 cell per configuration
family x workload shape, both fig8 halves) on *both* backends and
asserts every comparison honors :data:`repro.analytic.validate.
PINNED_TOLERANCES`.  A model regression — in either backend — moves a
metric past its pinned bound and fails here, instead of silently
shifting published curves.

Wall-clock (the speedup floor) is deliberately *not* asserted here:
timing under pytest is noisy, and ``benchmarks/bench_analytic.py
--check`` gates it in its own CI job.
"""

import pytest

from repro.analytic import (
    DEFAULT_FIG5_CELLS,
    PINNED_TOLERANCES,
    run_calibration,
)

# Half the default quick scale keeps the DES side of the grid fast
# while exercising every model term (flash spill, recency mix, RMW).
RECORD_COUNT = 16_384
TOTAL_OPS = 20_000
SEED = 0xC0FFEE


@pytest.fixture(scope="module")
def report():
    return run_calibration(
        record_count=RECORD_COUNT, total_ops=TOTAL_OPS, seed=SEED,
        load_points=6,
    )


class TestGoldenGrid:
    def test_every_metric_within_pinned_tolerance(self, report):
        violations = report.violations()
        detail = "; ".join(
            f"{v.key}@{v.point}: rel {v.rel_error:.4f} "
            f"(des {v.des:.6g}, analytic {v.analytic:.6g})"
            for v in violations
        )
        assert report.ok, f"tolerance violations: {detail}"

    def test_grid_covers_every_pinned_metric(self, report):
        observed = {err.key for err in report.errors}
        assert observed == set(PINNED_TOLERANCES)

    def test_fig3_is_bit_identical(self, report):
        fig3 = [e for e in report.errors if e.figure == "fig3"]
        assert fig3
        assert all(e.analytic == e.des for e in fig3)

    def test_fig8_is_float_exact(self, report):
        fig8 = [e for e in report.errors if e.figure == "fig8"]
        assert fig8
        assert all(e.rel_error < 1e-6 for e in fig8)

    def test_worst_reports_one_entry_per_metric(self, report):
        worst = report.worst()
        assert set(worst) == set(PINNED_TOLERANCES)
        for key, err in worst.items():
            assert err.key == key
            assert err.rel_error <= PINNED_TOLERANCES[key]

    def test_grid_includes_every_configuration_family(self):
        configs = {c for c, _ in DEFAULT_FIG5_CELLS}
        assert {"mmem", "hot-promote"} <= configs
        assert any(c.startswith("mmem-ssd") for c in configs)
        assert any(":" in c for c in configs)
        workloads = {w for _, w in DEFAULT_FIG5_CELLS}
        assert {"A", "C", "D"} <= workloads
