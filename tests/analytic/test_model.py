"""The shared analytic machinery: solver and single-flow closed form."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import (
    chain_capacity,
    single_flow_operating_point,
    solve_fixed_point,
)
from repro.errors import ConfigurationError
from repro.hw import paper_cxl_platform
from repro.sim.traffic import TrafficDemand

PLATFORM = paper_cxl_platform(snc_enabled=True)
DRAM = PLATFORM.dram_nodes(0)[0]
CXL = PLATFORM.cxl_nodes()[0]
DRAM_PATH = PLATFORM.path(0, DRAM.node_id, initiator_domain=DRAM.domain)
CXL_PATH = PLATFORM.path(0, CXL.node_id)


class TestSolveFixedPoint:
    def test_converges_on_contraction(self):
        # x <- (x + 2/x) / 2 converges to sqrt(2) (Babylonian method).
        fp = solve_fixed_point(lambda x: (x + 2.0 / x) / 2.0, 1.0)
        assert fp.converged
        assert fp.value == pytest.approx(2.0 ** 0.5, rel=1e-9)

    def test_reports_non_convergence(self):
        # x <- x + 1 never settles; the solver must say so, not spin.
        fp = solve_fixed_point(lambda x: x + 1.0, 0.0, max_iterations=8)
        assert not fp.converged
        assert fp.iterations == 8

    def test_damping_tames_oscillation(self):
        # x <- -x oscillates undamped but contracts at damping 0.5.
        fp = solve_fixed_point(lambda x: -x, 1.0, damping=0.5,
                               max_iterations=64, tolerance=1e-9)
        assert fp.converged
        assert fp.value == pytest.approx(0.0, abs=1e-8)

    def test_rejects_bad_knobs(self):
        with pytest.raises(ConfigurationError):
            solve_fixed_point(lambda x: x, 0.0, max_iterations=0)
        with pytest.raises(ConfigurationError):
            solve_fixed_point(lambda x: x, 0.0, damping=0.0)
        with pytest.raises(ConfigurationError):
            solve_fixed_point(lambda x: x, 0.0, damping=1.5)


class TestSingleFlowClosedForm:
    @given(
        st.sampled_from(["dram", "cxl"]),
        st.floats(min_value=1e6, max_value=1e12),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_allocator_with_one_demand(self, which, offered, wf):
        """The closed form IS Platform.allocate for a lone flow."""
        path = DRAM_PATH if which == "dram" else CXL_PATH
        achieved, utilization = single_flow_operating_point(
            PLATFORM, path, offered, wf
        )
        alloc = PLATFORM.allocate([
            TrafficDemand(source="flow", resources=path.resources,
                          rate=offered, write_fraction=wf)
        ])
        assert achieved == pytest.approx(alloc.achieved["flow"], rel=1e-12)
        assert utilization == pytest.approx(
            alloc.bottleneck(path.resources), rel=1e-12, abs=1e-12
        )

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_never_exceeds_chain_capacity(self, wf):
        cap, name = chain_capacity(PLATFORM, CXL_PATH, wf)
        achieved, utilization = single_flow_operating_point(
            PLATFORM, CXL_PATH, float("inf"), wf
        )
        assert achieved == pytest.approx(cap)
        assert utilization == pytest.approx(1.0)
        assert name in CXL_PATH.resources

    @given(
        st.floats(min_value=1e6, max_value=1e12),
        st.floats(min_value=1e6, max_value=1e12),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_achieved_monotone_in_offered_load(self, lo, hi, wf):
        if lo > hi:
            lo, hi = hi, lo
        a_lo, u_lo = single_flow_operating_point(PLATFORM, CXL_PATH, lo, wf)
        a_hi, u_hi = single_flow_operating_point(PLATFORM, CXL_PATH, hi, wf)
        assert a_lo <= a_hi + 1e-9
        assert u_lo <= u_hi + 1e-12
