"""Monotonicity properties of the analytical models (hypothesis).

The closed forms must inherit the physical orderings the DES obeys by
construction: more offered load never lowers achieved bandwidth (or
latency), and faster hardware — every bandwidth-curve knot scaled up —
never lowers capacity or raises latency.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytic import AnalyticMlcProbe, chain_capacity
from repro.hw import paper_cxl_platform
from repro.hw.bandwidth import PeakBandwidthCurve

PLATFORM = paper_cxl_platform(snc_enabled=True)
CXL = PLATFORM.cxl_nodes()[0]
CXL_PATH = PLATFORM.path(0, CXL.node_id)
PROBE = AnalyticMlcProbe(PLATFORM, threads=16)

# Sorted offered-load fractions spanning idle through past-saturation.
_load_grids = st.lists(
    st.floats(min_value=0.02, max_value=1.15),
    min_size=3, max_size=8, unique=True,
).map(sorted)

# Interior bandwidth-curve knots; endpoints 0 and 1 are appended.
_knot_curves = st.lists(
    st.tuples(
        st.floats(min_value=0.05, max_value=0.95),
        st.floats(min_value=1e9, max_value=1e11),
    ),
    min_size=0, max_size=4,
    unique_by=lambda p: round(p[0], 3),
)


@st.composite
def _curves(draw):
    interior = sorted(draw(_knot_curves))
    lo = draw(st.floats(min_value=1e9, max_value=1e11))
    hi = draw(st.floats(min_value=1e9, max_value=1e11))
    return PeakBandwidthCurve.from_points(
        [(0.0, lo)] + interior + [(1.0, hi)]
    )


class TestLoadMonotonicity:
    @given(_load_grids, st.integers(min_value=0, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_curve_monotone_in_offered_load(self, loads, writes):
        curve = PROBE.loaded_latency_curve(
            CXL_PATH, reads=4, writes=writes, load_points=loads
        )
        pts = curve.points
        for prev, cur in zip(pts, pts[1:]):
            assert cur.achieved_bytes_per_s >= prev.achieved_bytes_per_s - 1e-6
            assert cur.latency_ns >= prev.latency_ns - 1e-9

    @given(_load_grids)
    @settings(max_examples=20, deadline=None)
    def test_achieved_never_exceeds_offered_or_capacity(self, loads):
        curve = PROBE.loaded_latency_curve(
            CXL_PATH, reads=3, writes=1, load_points=loads
        )
        cap, _ = chain_capacity(PLATFORM, CXL_PATH, 0.25)
        for pt in curve.points:
            assert pt.achieved_bytes_per_s <= pt.offered_bytes_per_s + 1e-6
            assert pt.achieved_bytes_per_s <= cap + 1e-6


class TestKnotMonotonicity:
    @given(
        _curves(),
        st.floats(min_value=1.0, max_value=4.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_capacity_monotone_in_knots(self, curve, scale, wf):
        """Scaling every knot up never lowers the interpolated peak."""
        scaled = curve.scaled(scale)
        assert scaled(wf) >= curve(wf) - 1e-6
        assert scaled(wf) == pytest.approx(
            curve(wf) * scale, rel=1e-12
        )

    @given(_curves(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=40, deadline=None)
    def test_capacity_within_knot_envelope(self, curve, wf):
        """Linear interpolation stays inside the knot values' range."""
        bws = [bw for _, bw in curve.points]
        assert min(bws) - 1e-6 <= curve(wf) <= max(bws) + 1e-6
