"""The ``--backend auto`` routing policy and its summary line."""

import pytest

from repro.analytic import (
    ANALYTIC_TARGETS,
    BACKENDS,
    estimated_events_avoided,
    require_analytic,
    routing_summary,
    select_backend,
)
from repro.errors import ConfigurationError


class TestSelectBackend:
    def test_steady_state_targets_route_analytic(self):
        assert select_backend("fig3", {"panel": "a"}) == "analytic"
        assert select_backend("fig4", {"pattern": "sequential"}) == "analytic"
        assert select_backend("fig8", {"on_cxl": True}) == "analytic"

    def test_fig5_routes_analytic_except_hot_promote(self):
        assert select_backend("fig5", {"config": "mmem"}) == "analytic"
        assert select_backend("fig5", {"config": "1:1"}) == "analytic"
        # The hot-promotion cell's figure of merit is the migration
        # transient — it must stay on the event-driven path.
        assert select_backend("fig5", {"config": "hot-promote"}) == "des"

    @pytest.mark.parametrize("target", ["fig7", "fig10", "overload", "demo"])
    def test_transient_targets_route_des(self, target):
        assert select_backend(target, {}) == "des"

    def test_backends_tuple_is_the_cli_contract(self):
        assert BACKENDS == ("des", "analytic", "auto")
        assert ANALYTIC_TARGETS == {"fig3", "fig4", "fig5", "fig8"}


class TestRequireAnalytic:
    @pytest.mark.parametrize("target", sorted(ANALYTIC_TARGETS))
    def test_accepts_targets_with_a_fast_path(self, target):
        require_analytic(target)  # must not raise

    @pytest.mark.parametrize("target", ["fig7", "fig10", "overload", "demo"])
    def test_rejects_targets_without_one(self, target):
        with pytest.raises(ConfigurationError, match="no analytical backend"):
            require_analytic(target)


class TestEventsAvoided:
    def test_keydb_points_count_operations(self):
        assert estimated_events_avoided("fig5", {"total_ops": 20_000}) == 20_000
        assert estimated_events_avoided("fig8", {"total_ops": 150_000}) == 150_000

    def test_mlc_points_count_allocator_solves(self):
        params = {"mixes": [[1, 0], [3, 1]], "fractions": [0.1, 0.5, 1.0]}
        assert estimated_events_avoided("fig3", params) == 6
        assert estimated_events_avoided("fig4", {"fractions": [0.1, 0.5]}) == 8

    def test_unknown_targets_count_zero(self):
        assert estimated_events_avoided("fig7", {"total_ops": 999}) == 0


class TestRoutingSummary:
    def test_counts_and_sums(self):
        line = routing_summary([
            ("analytic", 20_000), ("analytic", 20_000), ("des", 20_000),
        ])
        assert line == "backend: 2 analytic, 1 des (~40000 est. DES events avoided)"

    def test_empty_sweep(self):
        assert routing_summary([]) == (
            "backend: 0 analytic, 0 des (~0 est. DES events avoided)"
        )
