"""The ``--backend`` flag: parsing, routing, guards, summary line."""

import json

import pytest

from repro.cli import build_parser, main, stock_sweep_spec
from repro.errors import ConfigurationError


class TestParsing:
    def test_default_is_des(self):
        args = build_parser().parse_args(["sweep", "fig5", "--quick"])
        assert args.backend == "des"

    @pytest.mark.parametrize("backend", ["des", "analytic", "auto"])
    def test_accepted_values(self, backend):
        args = build_parser().parse_args(
            ["sweep", "fig5", "--backend", backend]
        )
        assert args.backend == backend

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "fig5", "--backend", "magic"])

    @pytest.mark.parametrize(
        "command", ["fig3", "fig4", "fig5", "fig7", "fig8", "fig10"]
    )
    def test_every_figure_command_has_the_flag(self, command):
        args = build_parser().parse_args([command, "--backend", "auto"])
        assert args.backend == "auto"


class TestStockSweepSpec:
    def test_analytic_spec_builds_for_fast_path_targets(self):
        for target in ("fig3", "fig4", "fig5", "fig8"):
            spec = stock_sweep_spec(target, quick=True, backend="analytic")
            assert spec.points

    def test_forced_analytic_rejected_without_fast_path(self):
        for target in ("fig7", "fig10", "overload"):
            with pytest.raises(ConfigurationError,
                               match="no analytical backend"):
                stock_sweep_spec(target, quick=True, backend="analytic")

    def test_auto_keeps_transient_targets_on_des(self):
        des = stock_sweep_spec("fig7", quick=True, backend="des")
        auto = stock_sweep_spec("fig7", quick=True, backend="auto")
        assert auto.task is des.task

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            stock_sweep_spec("fig5", quick=True, backend="magic")

    def test_backend_selects_distinct_tasks(self):
        des = stock_sweep_spec("fig5", quick=True, backend="des")
        ana = stock_sweep_spec("fig5", quick=True, backend="analytic")
        assert des.task is not ana.task


class TestEndToEnd:
    def test_forced_analytic_on_fig7_exits_2(self, capsys):
        assert main(["sweep", "fig7", "--quick", "--backend", "analytic",
                     "--no-progress"]) == 2
        assert "no analytical backend" in capsys.readouterr().err

    def test_fig7_command_guard(self, capsys):
        assert main(["fig7", "--quick", "--backend", "analytic"]) == 2
        assert "no analytical backend" in capsys.readouterr().err

    def test_auto_sweep_prints_routing_summary(self, capsys):
        assert main(["sweep", "fig5", "--quick", "--backend", "auto",
                     "--no-progress", "--no-cache", "--json"]) == 0
        captured = capsys.readouterr()
        assert "backend: 24 analytic, 4 des" in captured.err
        assert "est. DES events avoided" in captured.err
        doc = json.loads(captured.out)
        assert doc["schema"] == "repro.metrics/v1"

    def test_des_sweep_prints_no_routing_summary(self, capsys):
        assert main(["sweep", "fig8", "--quick", "--backend", "des",
                     "--no-progress", "--no-cache"]) == 0
        assert "backend:" not in capsys.readouterr().err

    def test_analytic_fig8_export_is_valid_metrics_v1(self, capsys):
        assert main(["sweep", "fig8", "--quick", "--backend", "analytic",
                     "--no-progress", "--no-cache", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.metrics/v1"
        assert doc["metrics"]
