"""Chaos harness: inject *real* faults into supervised sweeps.

PR 1 proved the simulated applications' RAS machinery by injecting
simulated faults; this module does the same for the harness that
produces every number in the repo.  :func:`chaos_wrap` rewrites a
:class:`~repro.parallel.jobs.SweepSpec` so each point first rolls a
deterministic fault die and may then

* **SIGKILL its own worker process** (exercising crash detection and
  re-dispatch),
* **hang** far past the point deadline (exercising deadline kills and
  requeue), or
* **raise** :class:`~repro.errors.TransientError` (exercising bounded
  retry and backoff),

before executing the *unmodified* task with the *unmodified*
``(params, seed)``.  Faults are a pure function of
``(plan.seed, point key, attempt, kind)``, so a chaos run is exactly
reproducible, and :attr:`ChaosPlan.max_faulty_attempts` caps how many
attempts of one point can be sabotaged — with a retry budget beyond the
cap, every point eventually executes cleanly and the sweep's merged
``repro.metrics/v1`` export is **byte-identical** to an unperturbed
serial run.  That comparison is the chaos guarantee CI enforces.

:func:`corrupt_cache_entries` covers the remaining failure class — bad
bytes at rest — by flipping payload bits in real store entries, which
the cache must demote to misses and recompute.

Run standalone against any stock sweep target::

    python -m repro.parallel.chaos fig5 --quick --workers 2 \\
        --kill-prob 0.1 --hang-prob 0.05 --transient-prob 0.2 \\
        --point-timeout 30 --retries 4 --json

Kills and hangs only fire inside supervised workers
(:func:`~repro.parallel.supervisor.current_worker_id` is set); a
``workers=1`` in-process run injects only transient exceptions — the
parent is not a valid blast radius.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING, Any, Dict, Mapping

from ..errors import ConfigurationError, TransientError
from .jobs import SweepPoint, SweepSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..cache.store import SweepCache

__all__ = [
    "ChaosPlan",
    "chaos_wrap",
    "chaos_task",
    "flaky_point",
    "hanging_point",
    "killer_point",
    "corrupt_cache_entries",
]


@dataclass(frozen=True)
class ChaosPlan:
    """Deterministic fault-injection policy for one sweep."""

    #: Root of every fault decision; same seed, same fault schedule.
    seed: int = 0xBADC0DE
    #: Probability a given (point, attempt) SIGKILLs its worker.
    kill_prob: float = 0.0
    #: Probability a given (point, attempt) sleeps ``hang_s`` first.
    hang_prob: float = 0.0
    #: Probability a given (point, attempt) raises ``TransientError``.
    transient_prob: float = 0.0
    #: How long a hang sleeps (set well past the point deadline to
    #: exercise deadline kills; below it, the hang is merely latency).
    hang_s: float = 3600.0
    #: Attempts beyond this number run clean, guaranteeing progress as
    #: long as the retry budget exceeds it.
    max_faulty_attempts: int = 2

    def __post_init__(self) -> None:
        for prob in (self.kill_prob, self.hang_prob, self.transient_prob):
            if not 0.0 <= prob <= 1.0:
                raise ConfigurationError(
                    f"chaos probabilities must be in [0, 1], got {prob}"
                )
        if self.hang_s < 0:
            raise ConfigurationError("hang_s must be >= 0")
        if self.max_faulty_attempts < 0:
            raise ConfigurationError("max_faulty_attempts must be >= 0")

    def as_dict(self) -> Dict[str, Any]:
        """Picklable, JSON-ready form (travels inside point params)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def roll(self, key: str, attempt: int, kind: str) -> float:
        """A uniform [0, 1) draw, pure in (seed, key, attempt, kind)."""
        digest = hashlib.sha256(
            f"{self.seed}:{key}:{attempt}:{kind}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2**64


def _task_path(task: Any) -> str:
    return f"{task.__module__}:{task.__qualname__}"


def _resolve_task(path: str) -> Any:
    import importlib

    module_name, _, qualname = path.partition(":")
    obj: Any = importlib.import_module(module_name)
    for part in qualname.split("."):
        obj = getattr(obj, part)
    return obj


def inject(plan: ChaosPlan, key: str, attempt: int) -> None:
    """Maybe sabotage the current attempt (kill, hang, or raise).

    Kill and hang need a supervised worker around them; in-process
    execution only ever sees the transient-exception fault.
    """
    from . import supervisor

    if attempt > plan.max_faulty_attempts:
        return
    in_worker = supervisor.current_worker_id() is not None
    if in_worker and plan.roll(key, attempt, "kill") < plan.kill_prob:
        os.kill(os.getpid(), signal.SIGKILL)
    if in_worker and plan.roll(key, attempt, "hang") < plan.hang_prob:
        time.sleep(plan.hang_s)
    if plan.roll(key, attempt, "transient") < plan.transient_prob:
        raise TransientError(
            f"chaos: injected transient failure ({key}, attempt {attempt})"
        )


def chaos_task(params: Mapping[str, Any], seed: int) -> Any:
    """The wrapped task: roll for sabotage, then run the real one.

    A surviving attempt calls the original task with the original
    ``(params, seed)``, so the value that lands is byte-identical to an
    unperturbed run — chaos changes *when* a point completes, never
    *what* it computes.
    """
    from . import supervisor

    plan = ChaosPlan(**params["_chaos"])
    inject(plan, params["_key"], supervisor.current_attempt())
    task = _resolve_task(params["_task"])
    return task(dict(params["_params"]), seed)


def chaos_wrap(spec: SweepSpec, plan: ChaosPlan) -> SweepSpec:
    """``spec`` with every point routed through :func:`chaos_task`."""
    return SweepSpec(
        name=f"{spec.name}+chaos",
        task=chaos_task,
        points=tuple(
            SweepPoint(
                key=point.key,
                params={
                    "_chaos": plan.as_dict(),
                    "_key": point.key,
                    "_task": _task_path(spec.task),
                    "_params": dict(point.params),
                },
                seed=point.seed,
            )
            for point in spec.points
        ),
        base_seed=spec.base_seed,
    )


# -- attempt-scripted tasks ---------------------------------------------------
#
# Spawn-importable tasks for the failure-matrix tests and benchmarks:
# rather than rolling probabilities they follow an explicit script of
# which attempts fail and how, making every recovery path individually
# addressable.


def flaky_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Raises ``TransientError`` until ``params['succeed_on']``."""
    from . import supervisor

    attempt = supervisor.current_attempt()
    if attempt < int(params.get("succeed_on", 2)):
        raise TransientError(f"flaky: attempt {attempt} failed on purpose")
    return {"seed": seed, "attempt_succeeded": attempt}


def killer_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """SIGKILLs its worker on attempts below ``params['succeed_on']``.

    In-process execution (no worker) skips the kill — the parent is not
    a valid blast radius — and returns immediately.
    """
    from . import supervisor

    attempt = supervisor.current_attempt()
    if (
        supervisor.current_worker_id() is not None
        and attempt < int(params.get("succeed_on", 2))
    ):
        os.kill(os.getpid(), signal.SIGKILL)
    return {"seed": seed, "attempt_succeeded": attempt}


def hanging_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """Sleeps ``params['hang_s']`` on attempts below ``succeed_on``."""
    from . import supervisor

    attempt = supervisor.current_attempt()
    if attempt < int(params.get("succeed_on", 2)):
        time.sleep(float(params.get("hang_s", 3600.0)))
    return {"seed": seed, "attempt_succeeded": attempt}


# -- at-rest corruption -------------------------------------------------------


def corrupt_cache_entries(
    cache: "SweepCache", fraction: float = 1.0, seed: int = 0xBADC0DE
) -> int:
    """Flip one payload byte in a deterministic subset of entries.

    Returns how many entries were damaged.  The store's embedded digest
    must catch every one on the next lookup and demote it to a miss, so
    a sweep over a corrupted cache recomputes the affected points and
    still exports byte-identical results.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError(f"fraction must be in [0, 1], got {fraction}")
    plan = ChaosPlan(seed=seed)
    damaged = 0
    for info in list(cache.entries()):
        if plan.roll(info.fingerprint, 1, "corrupt") >= fraction:
            continue
        try:
            with open(info.path, "r+b") as fh:
                fh.seek(-1, os.SEEK_END)
                last = fh.read(1)
                fh.seek(-1, os.SEEK_END)
                fh.write(bytes([last[0] ^ 0xFF]))
        except OSError:
            continue
        damaged += 1
    return damaged


# -- standalone runner --------------------------------------------------------


def main(argv=None) -> int:
    """Run a stock sweep target under chaos; print the merged export.

    The stdout document is generated with the same ``generated_by`` as
    ``repro sweep <target> --json``, so CI can ``cmp`` a chaos run
    against a clean serial one byte for byte.
    """
    import argparse
    import json
    import sys

    from .merge import merge_metrics_documents
    from .runner import run_sweep
    from .supervisor import SupervisorConfig

    parser = argparse.ArgumentParser(
        prog="python -m repro.parallel.chaos",
        description="Inject worker kills, hangs and transient errors "
                    "into a stock sweep; the merged export must match a "
                    "clean run.",
    )
    parser.add_argument("target", help="stock sweep target (e.g. fig5)")
    parser.add_argument("--quick", action="store_true", help="small, fast run")
    parser.add_argument("--seed", type=lambda s: int(s, 0), default=0xC0FFEE,
                        help="sweep seed (decimal or 0x-hex)")
    parser.add_argument("--chaos-seed", type=lambda s: int(s, 0),
                        default=0xBADC0DE, help="fault-schedule seed")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--kill-prob", type=float, default=0.1)
    parser.add_argument("--hang-prob", type=float, default=0.05)
    parser.add_argument("--transient-prob", type=float, default=0.2)
    parser.add_argument("--hang-s", type=float, default=3600.0)
    parser.add_argument("--max-faulty-attempts", type=int, default=2)
    parser.add_argument("--point-timeout", type=float, default=None,
                        metavar="S", help="per-attempt deadline in seconds")
    parser.add_argument("--retries", type=int, default=4,
                        help="extra attempts per point after the first")
    parser.add_argument("--json", action="store_true",
                        help="print the merged repro.metrics/v1 document")
    parser.add_argument("--no-progress", action="store_true")

    args = parser.parse_args(argv)
    from ..cli import SWEEP_TARGETS, stock_sweep_spec

    if args.target not in SWEEP_TARGETS:
        print(f"error: unknown sweep target {args.target!r}; expected one of "
              f"{SWEEP_TARGETS}", file=sys.stderr)
        return 2
    try:
        plan = ChaosPlan(
            seed=args.chaos_seed,
            kill_prob=args.kill_prob,
            hang_prob=args.hang_prob,
            transient_prob=args.transient_prob,
            hang_s=args.hang_s,
            max_faulty_attempts=args.max_faulty_attempts,
        )
        config = SupervisorConfig(
            point_timeout_s=args.point_timeout,
            max_attempts=max(1, args.retries + 1),
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if plan.hang_prob > 0 and config.point_timeout_s is None:
        # Heartbeats keep flowing while a point sleeps, so only the
        # deadline recovers an injected hang — without one the sweep
        # stalls for the full hang_s.
        print("error: --hang-prob > 0 requires --point-timeout "
              "(the deadline is what recovers a hung point)",
              file=sys.stderr)
        return 2
    spec = chaos_wrap(
        stock_sweep_spec(args.target, quick=args.quick, seed=args.seed), plan
    )

    def progress(done, total, pr):
        status = "ok" if pr.ok else f"FAIL ({pr.error.type})"
        print(f"[{done}/{total}] {pr.key}: {status}", file=sys.stderr,
              flush=True)

    sweep = run_sweep(
        spec,
        workers=args.workers,
        progress=None if args.no_progress else progress,
        supervise=config,
    )
    health = sweep.runner_health
    if health is not None:
        print(f"[chaos {args.target}] health: {health.summary()}",
              file=sys.stderr, flush=True)
    for failure in sweep.failures():
        print(f"error: point {failure.key!r} failed: {failure.error}",
              file=sys.stderr)
    if not sweep.ok:
        return 1
    merged = merge_metrics_documents(
        [(pr.key, pr.value["metrics"]) for pr in sweep.results],
        generated_by=f"repro sweep {args.target}",
    )
    if args.json:
        print(json.dumps(merged, indent=2))
    else:
        print(f"{len(sweep.results)} points survived chaos "
              f"({health.summary() if health else 'no health recorded'})")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised by CI chaos-smoke
    import sys

    sys.exit(main())
