"""Runner robustness telemetry as lazy ``repro.obs`` collectors.

Same shape as :mod:`repro.cache.obs`: a callback registered on a
:class:`~repro.obs.registry.MetricsRegistry` that emits samples at
snapshot time.  Retry counts, deadline kills, worker restarts and
quarantines are **host-side** facts — they vary with machine load and
fault history while the point values do not — so like ``cache_stats``
they are deliberately absent from merged ``repro.metrics/v1`` exports
and surface only through sidecar snapshots and the CLI's stderr health
summary lines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .supervisor import RunnerHealth

__all__ = ["register_runner_health"]


def register_runner_health(
    registry: Any, health: "RunnerHealth", labels: Any = None
) -> None:
    """Export a sweep's robustness counters as a lazy collector.

    Samples: ``sweep_runner_retries`` / ``_transient_errors`` /
    ``_timeouts`` / ``_crashes`` / ``_unresponsive`` /
    ``_worker_restarts`` / ``_quarantined`` / ``_drained`` (counters).
    """
    from ..obs.registry import Sample

    base = dict(labels or {})

    def collect():
        for name, value in (
            ("sweep_runner_retries", health.retries),
            ("sweep_runner_transient_errors", health.transient_errors),
            ("sweep_runner_timeouts", health.timeouts),
            ("sweep_runner_crashes", health.crashes),
            ("sweep_runner_unresponsive", health.unresponsive),
            ("sweep_runner_worker_restarts", health.worker_restarts),
            ("sweep_runner_quarantined", health.quarantined),
            ("sweep_runner_drained", health.drained),
        ):
            yield Sample(name, "counter", dict(base), float(value))

    registry.register_collector(collect)
