"""The job model of the parallel experiment runner.

A *sweep* is an ordered list of independent experiment points — one
(mix, load, seed) cell of a figure, one offered-load factor, one
(app, scenario) fault case.  Each point is fully described by a
:class:`SweepPoint`: a stable string ``key``, a picklable ``params``
mapping, and the exact ``seed`` its task runs with.  Because the seed is
fixed *in the spec*, before any execution, the result of a point is a
pure function of the spec — running the points serially, across worker
processes, or in any completion order produces bit-identical values.

Seed derivation
---------------
:func:`derive_seed` hashes ``(base_seed, key)`` with SHA-256 into a
48-bit child seed.  The derivation is stable across processes, platforms
and Python invocations (no dependence on ``PYTHONHASHSEED`` or
enumeration order), and independent points get independent seeds without
coordinating.  Sweeps that replicate the paper's protocol of running
every cell from one root seed (the figure runners) instead pin
``seed=base_seed`` on every point — both modes satisfy the determinism
contract because either way the seed is part of the spec.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.rng import DEFAULT_SEED

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..cache.store import CacheStats
    from .supervisor import RunnerHealth

__all__ = [
    "derive_seed",
    "SweepPoint",
    "SweepSpec",
    "PointError",
    "PointResult",
    "SweepResult",
    "SweepExecutionError",
]


def derive_seed(base_seed: int, key: str) -> int:
    """A stable 48-bit child seed for one sweep point.

    ``SHA-256(f"{base_seed}:{key}")`` truncated to 48 bits: process- and
    platform-independent, and changing the point set never perturbs the
    seeds of the points that stay (they are keyed, not ordered).
    """
    if base_seed < 0:
        raise ConfigurationError("base_seed must be non-negative")
    digest = hashlib.sha256(f"{int(base_seed)}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:6], "big")


@dataclass(frozen=True)
class SweepPoint:
    """One independent experiment point of a sweep."""

    #: Stable identity; used for seed derivation, merge labels and
    #: progress lines.  Unique within a spec.
    key: str
    #: Task parameters.  Must be picklable (they cross the process
    #: boundary under ``--workers > 1``).
    params: Mapping[str, Any] = field(default_factory=dict)
    #: The exact seed the task runs with (fixed before execution).
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not self.key:
            raise ConfigurationError("sweep point key must be non-empty")


@dataclass(frozen=True)
class SweepSpec:
    """A named, fully-determined set of sweep points plus their task.

    ``task`` is called as ``task(params, seed)`` for every point and must
    be a **module-level function** — worker processes are spawned (not
    forked), so the task is pickled by reference and re-imported on the
    other side.  Closures and lambdas are rejected up front rather than
    failing inside the pool.
    """

    name: str
    task: Callable[[Mapping[str, Any], int], Any]
    points: Tuple[SweepPoint, ...]
    base_seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("sweep name must be non-empty")
        if not self.points:
            raise ConfigurationError(f"sweep {self.name!r} has no points")
        qualname = getattr(self.task, "__qualname__", "")
        if not callable(self.task) or "<locals>" in qualname or "<lambda>" in qualname:
            raise ConfigurationError(
                f"sweep task must be a module-level function (got "
                f"{self.task!r}); spawn workers import tasks by reference"
            )
        seen = set()
        for point in self.points:
            if point.key in seen:
                raise ConfigurationError(
                    f"sweep {self.name!r} has duplicate point key {point.key!r}"
                )
            seen.add(point.key)

    @classmethod
    def from_grid(
        cls,
        name: str,
        task: Callable[[Mapping[str, Any], int], Any],
        grid: Mapping[str, Mapping[str, Any]],
        base_seed: int = DEFAULT_SEED,
        shared_seed: bool = False,
    ) -> "SweepSpec":
        """Build a spec from ``{key: params}`` in mapping order.

        ``shared_seed=True`` pins every point to ``base_seed`` (the
        paper-figure protocol: all cells of one figure share the root
        seed); the default derives an independent seed per key.
        """
        points = tuple(
            SweepPoint(
                key=key,
                params=dict(params),
                seed=base_seed if shared_seed else derive_seed(base_seed, key),
            )
            for key, params in grid.items()
        )
        return cls(name=name, task=task, points=points, base_seed=base_seed)


@dataclass(frozen=True)
class PointError:
    """A structured record of one failed point (the sweep continues).

    ``attempts`` is how many times the supervised runner executed the
    point before giving up (1 when the first failure was permanent), and
    ``retryable`` is the transient-vs-permanent verdict of
    :func:`repro.errors.is_retryable` on the last failure — a point that
    arrives here with ``retryable=True`` exhausted its retry budget and
    was *quarantined* rather than abandoned on first contact.
    """

    type: str
    message: str
    traceback: str
    attempts: int = 1
    retryable: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {"type": self.type, "message": self.message,
                "traceback": self.traceback, "attempts": self.attempts,
                "retryable": self.retryable}

    def __str__(self) -> str:
        suffix = f" (after {self.attempts} attempts)" if self.attempts > 1 else ""
        return f"{self.type}: {self.message}{suffix}"


@dataclass
class PointResult:
    """Outcome of one executed sweep point.

    ``elapsed_s`` is host wall-clock — metadata for progress lines and
    speedup measurements only.  It is deliberately excluded from every
    merged export, which must stay bit-identical across worker counts.
    ``cached`` marks a point served from the result cache without
    executing (its ``elapsed_s`` is 0.0); the *value* of a cached point
    is bit-identical to an executed one, so ``cached`` too stays out of
    merged exports.
    """

    key: str
    index: int
    seed: int
    params: Dict[str, Any]
    ok: bool
    value: Any = None
    error: Optional[PointError] = None
    elapsed_s: float = 0.0
    cached: bool = False

    def as_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready form (no timings, no worker ids)."""
        return {
            "key": self.key,
            "index": self.index,
            "seed": self.seed,
            "ok": self.ok,
            "error": self.error.as_dict() if self.error is not None else None,
        }


class SweepExecutionError(RuntimeError):
    """Raised by :meth:`SweepResult.raise_failures` when points crashed."""

    def __init__(self, failures: List[PointResult]) -> None:
        self.failures = failures
        lines = [f"{len(failures)} sweep point(s) failed:"]
        for pr in failures:
            lines.append(f"  [{pr.key}] {pr.error}")
        super().__init__("\n".join(lines))


@dataclass
class SweepResult:
    """Every point's outcome, always in spec (not completion) order."""

    name: str
    base_seed: int
    workers: int
    results: List[PointResult]
    elapsed_s: float = 0.0
    #: Cache counter deltas for this run (None when run without a cache).
    cache_stats: Optional["CacheStats"] = None
    #: Runner robustness telemetry — retries, timeouts, crashes, worker
    #: restarts.  Sidecar metadata like :attr:`cache_stats`: host-level
    #: incident counts, deliberately excluded from merged exports (a run
    #: that retried must export byte-identically to one that did not).
    runner_health: Optional["RunnerHealth"] = None

    @property
    def ok(self) -> bool:
        """True when every point completed."""
        return all(pr.ok for pr in self.results)

    def failures(self) -> List[PointResult]:
        """The crashed points (empty when :attr:`ok`)."""
        return [pr for pr in self.results if not pr.ok]

    def raise_failures(self) -> "SweepResult":
        """Raise :class:`SweepExecutionError` if any point crashed."""
        failures = self.failures()
        if failures:
            raise SweepExecutionError(failures)
        return self

    def values(self) -> List[Any]:
        """Point values in spec order (after :meth:`raise_failures`)."""
        self.raise_failures()
        return [pr.value for pr in self.results]

    def value(self, key: str) -> Any:
        """The value of one point by key."""
        for pr in self.results:
            if pr.key == key:
                if not pr.ok:
                    raise SweepExecutionError([pr])
                return pr.value
        raise KeyError(f"no sweep point with key {key!r}")

    def as_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready summary (excludes wall-clock)."""
        return {
            "name": self.name,
            "base_seed": self.base_seed,
            "points": [pr.as_dict() for pr in self.results],
        }
