"""Deterministic parallel experiment runner.

Every sweep in the reproduction — figure cells, offered-load factors,
fault-catalog cases — is embarrassingly parallel: each point is an
independent deterministic simulation keyed by (params, seed).  This
package fans those points out across worker processes while keeping the
results **bit-identical** to a serial run:

* :mod:`repro.parallel.jobs` — the :class:`SweepSpec`/:class:`SweepPoint`
  /:class:`PointResult` job model with per-point derived seeds;
* :mod:`repro.parallel.runner` — :func:`run_sweep`: ``workers=1``
  in-process execution (zero behavior change when nothing fails) or
  fan-out over the supervised worker pool, worker count from
  ``--workers`` or ``$REPRO_WORKERS``;
* :mod:`repro.parallel.supervisor` — the supervised execution layer:
  spawn workers with heartbeat liveness, crash detection and
  re-dispatch, per-point deadlines, bounded retry with exponential
  backoff, quarantine, and graceful SIGINT/SIGTERM drain
  (:class:`SupervisorConfig`, :class:`RunnerHealth`);
* :mod:`repro.parallel.chaos` — fault injection for the runner itself:
  real worker kills, hangs past the deadline, transient exceptions and
  at-rest cache corruption, with a byte-identity guarantee against
  clean runs;
* :mod:`repro.parallel.merge` — merging per-point ``repro.metrics/v1``
  snapshots into the existing exporters, in spec order;
* :mod:`repro.parallel.obs` — runner health as lazy sidecar collectors;
* :mod:`repro.parallel.tasks` — the stock spawn-importable tasks behind
  the figure benchmarks, ``repro overload sweep``, the fault catalog and
  ``repro sweep``.

See ``docs/architecture.md`` ("Parallel experiment runner" and "Runner
robustness") for the determinism contract and the failure model.
"""

# NB: .chaos is deliberately not imported here — it is `python -m
# repro.parallel.chaos`'s __main__, and an eager package-level import
# would make runpy re-execute it with a RuntimeWarning.
from . import supervisor, tasks
from .jobs import (
    PointError,
    PointResult,
    SweepExecutionError,
    SweepPoint,
    SweepResult,
    SweepSpec,
    derive_seed,
)
from .merge import (
    merge_metrics_documents,
    merged_metrics_json,
    register_point_samples,
)
from .obs import register_runner_health
from .runner import WORKERS_ENV, last_run_health, resolve_workers, run_sweep
from .supervisor import RunnerHealth, SupervisorConfig, current_attempt

__all__ = [
    "derive_seed",
    "SweepPoint",
    "SweepSpec",
    "PointError",
    "PointResult",
    "SweepResult",
    "SweepExecutionError",
    "SupervisorConfig",
    "RunnerHealth",
    "current_attempt",
    "merge_metrics_documents",
    "merged_metrics_json",
    "register_point_samples",
    "register_runner_health",
    "WORKERS_ENV",
    "last_run_health",
    "resolve_workers",
    "run_sweep",
    "supervisor",
    "tasks",
]
