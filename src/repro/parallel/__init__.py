"""Deterministic parallel experiment runner.

Every sweep in the reproduction — figure cells, offered-load factors,
fault-catalog cases — is embarrassingly parallel: each point is an
independent deterministic simulation keyed by (params, seed).  This
package fans those points out across worker processes while keeping the
results **bit-identical** to a serial run:

* :mod:`repro.parallel.jobs` — the :class:`SweepSpec`/:class:`SweepPoint`
  /:class:`PointResult` job model with per-point derived seeds;
* :mod:`repro.parallel.runner` — :func:`run_sweep`: spawn-safe
  ``multiprocessing`` fan-out with failure isolation, ``workers=1``
  falling back to in-process execution with zero behavior change,
  worker count from ``--workers`` or ``$REPRO_WORKERS``;
* :mod:`repro.parallel.merge` — merging per-point ``repro.metrics/v1``
  snapshots into the existing exporters, in spec order;
* :mod:`repro.parallel.tasks` — the stock spawn-importable tasks behind
  the figure benchmarks, ``repro overload sweep``, the fault catalog and
  ``repro sweep``.

See ``docs/architecture.md`` ("Parallel experiment runner") for the
determinism contract.
"""

from . import tasks
from .jobs import (
    PointError,
    PointResult,
    SweepExecutionError,
    SweepPoint,
    SweepResult,
    SweepSpec,
    derive_seed,
)
from .merge import (
    merge_metrics_documents,
    merged_metrics_json,
    register_point_samples,
)
from .runner import WORKERS_ENV, resolve_workers, run_sweep

__all__ = [
    "derive_seed",
    "SweepPoint",
    "SweepSpec",
    "PointError",
    "PointResult",
    "SweepResult",
    "SweepExecutionError",
    "merge_metrics_documents",
    "merged_metrics_json",
    "register_point_samples",
    "WORKERS_ENV",
    "resolve_workers",
    "run_sweep",
    "tasks",
]
