"""Merging per-point observability outputs into the existing exporters.

Each sweep point runs in its own process (or its own in-process scope)
and produces its own ``repro.metrics/v1`` snapshot dictionary.  The
merge layer combines them into one document of the same schema — every
sample gains a ``point=<key>`` label — in **spec order**, never
completion order, so the merged JSON is byte-identical whether the
sweep ran with 1 worker or 16.

Two consumption styles:

* :func:`merge_metrics_documents` / :func:`merged_metrics_json` — pure
  document merge, used by ``repro sweep --json`` and the bit-identity
  acceptance tests;
* :func:`register_point_samples` — replay one point's samples into a
  live :class:`~repro.obs.registry.MetricsRegistry` as a lazy collector,
  so merged sweeps flow through the registry's own ``to_json``/``to_csv``
  exporters alongside locally-registered metrics
  (``RecoveryTracker``/``OverloadMetrics`` outputs arrive here as the
  snapshot their worker already exported through ``register_into``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Mapping, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = [
    "METRICS_SCHEMA",
    "merge_metrics_documents",
    "merged_metrics_json",
    "register_point_samples",
]

METRICS_SCHEMA = "repro.metrics/v1"


def _check_document(key: str, doc: Mapping[str, Any]) -> Sequence[Mapping[str, Any]]:
    schema = doc.get("schema")
    if schema != METRICS_SCHEMA:
        raise ConfigurationError(
            f"point {key!r}: expected a {METRICS_SCHEMA} document, "
            f"got schema {schema!r}"
        )
    metrics = doc.get("metrics")
    if not isinstance(metrics, list):
        raise ConfigurationError(f"point {key!r}: document has no metrics list")
    return metrics


def merge_metrics_documents(
    point_documents: Sequence[Tuple[str, Mapping[str, Any]]],
    generated_by: str = "repro.parallel.merge",
) -> Dict[str, Any]:
    """Merge per-point ``repro.metrics/v1`` documents into one.

    ``point_documents`` is ``[(point_key, document), ...]`` in the
    order the merged samples should appear (pass spec order for
    worker-count-independent output).  Every sample is copied with a
    ``point`` label added; a point whose samples already carry a
    ``point`` label is rejected rather than silently overwritten.
    """
    merged: List[Dict[str, Any]] = []
    seen = set()
    for key, doc in point_documents:
        if key in seen:
            raise ConfigurationError(f"duplicate point key {key!r} in merge")
        seen.add(key)
        for sample in _check_document(key, doc):
            labels = dict(sample.get("labels", {}))
            if "point" in labels:
                raise ConfigurationError(
                    f"point {key!r}: sample {sample.get('name')!r} already "
                    f"has a 'point' label"
                )
            labels["point"] = key
            merged.append(
                {
                    "name": sample["name"],
                    "kind": sample.get("kind", "untyped"),
                    "labels": labels,
                    "value": sample.get("value"),
                }
            )
    return {
        "schema": METRICS_SCHEMA,
        "generated_by": generated_by,
        "metrics": merged,
    }


def merged_metrics_json(
    point_documents: Sequence[Tuple[str, Mapping[str, Any]]],
    generated_by: str = "repro.parallel.merge",
) -> str:
    """The merged document serialized exactly like the registry exporter."""
    return json.dumps(
        merge_metrics_documents(point_documents, generated_by=generated_by),
        indent=2,
    )


def register_point_samples(
    registry: Any, key: str, document: Mapping[str, Any]
) -> None:
    """Replay one point's snapshot into a live registry as a collector.

    The samples re-emerge from ``registry.samples()`` (and therefore
    ``to_json``/``to_csv``) with the ``point`` label added, after any
    locally-owned families — the same path every other accounting
    object's ``register_into`` uses.
    """
    from ..obs.registry import Sample

    samples = _check_document(key, document)

    def collect() -> Iterable[Any]:
        for sample in samples:
            labels = dict(sample.get("labels", {}))
            labels["point"] = key
            value = sample.get("value")
            yield Sample(
                sample["name"],
                sample.get("kind", "untyped"),
                labels,
                float("nan") if value is None else float(value),
            )

    registry.register_collector(collect)
