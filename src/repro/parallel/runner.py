"""Deterministic fan-out of sweep points across worker processes.

:func:`run_sweep` executes a :class:`~repro.parallel.jobs.SweepSpec`
either in-process (``workers=1``, byte-for-byte the historical serial
behavior) or across a spawn-context ``multiprocessing.Pool``.  The
determinism contract:

* every point's seed and params are fixed in the spec before execution,
  so a point's value never depends on which worker ran it or when;
* results are re-ordered into spec order regardless of completion order;
* host wall-clock never enters point values (it is carried separately as
  metadata), so merged exports are bit-identical across worker counts.

Failure isolation: a point that raises records a structured
:class:`~repro.parallel.jobs.PointError` — type, message, traceback —
and the sweep continues.  A worker returning an unpicklable value is
converted into a failed point rather than wedging the pool.

Worker count resolution (first match wins): the explicit ``workers``
argument, the ``REPRO_WORKERS`` environment variable, then 1.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from typing import Any, Callable, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from .jobs import PointError, PointResult, SweepResult, SweepSpec

__all__ = ["WORKERS_ENV", "resolve_workers", "run_sweep"]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: ``progress(done, total, result)`` callback signature.
ProgressFn = Callable[[int, int, PointResult], None]


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, then $REPRO_WORKERS, then 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be a positive integer, got {raw!r}"
            )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def _execute_point(
    task: Callable[[Mapping[str, Any], int], Any],
    key: str,
    index: int,
    params: Mapping[str, Any],
    seed: int,
) -> PointResult:
    """Run one point, converting any crash into a structured error."""
    started = time.perf_counter()
    try:
        value = task(dict(params), seed)
    except Exception as exc:
        return PointResult(
            key=key,
            index=index,
            seed=seed,
            params=dict(params),
            ok=False,
            error=PointError(
                type=type(exc).__name__,
                message=str(exc),
                traceback=traceback.format_exc(),
            ),
            elapsed_s=time.perf_counter() - started,
        )
    return PointResult(
        key=key,
        index=index,
        seed=seed,
        params=dict(params),
        ok=True,
        value=value,
        elapsed_s=time.perf_counter() - started,
    )


def _worker_run(
    payload: Tuple[Callable[[Mapping[str, Any], int], Any], str, int,
                   Mapping[str, Any], int],
) -> PointResult:
    """Pool entry point: execute one point inside a spawned worker.

    The result crosses the process boundary by pickle; an unpicklable
    value would otherwise raise in the *parent's* result iterator and
    abort the whole sweep, so picklability is checked here and demoted
    to a per-point failure.
    """
    task, key, index, params, seed = payload
    result = _execute_point(task, key, index, params, seed)
    if result.ok:
        try:
            pickle.dumps(result.value)
        except Exception as exc:
            result = PointResult(
                key=key,
                index=index,
                seed=seed,
                params=dict(params),
                ok=False,
                error=PointError(
                    type="UnpicklableResult",
                    message=f"task returned an unpicklable value: {exc}",
                    traceback="",
                ),
                elapsed_s=result.elapsed_s,
            )
    return result


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
) -> SweepResult:
    """Execute every point of ``spec``; results come back in spec order.

    ``workers=1`` (the default when ``REPRO_WORKERS`` is unset) runs the
    points in-process with zero behavioral difference from a plain loop.
    ``workers>1`` fans the points out over a spawn-context pool sized
    ``min(workers, len(points))``.  ``progress`` is invoked in the
    parent, in completion order, after each point lands.
    """
    n_workers = resolve_workers(workers)
    points = spec.points
    total = len(points)
    started = time.perf_counter()
    slots: List[Optional[PointResult]] = [None] * total

    if n_workers == 1 or total == 1:
        for index, point in enumerate(points):
            result = _execute_point(
                spec.task, point.key, index, point.params, point.seed
            )
            slots[index] = result
            if progress is not None:
                progress(index + 1, total, result)
        return SweepResult(
            name=spec.name,
            base_seed=spec.base_seed,
            workers=1,
            results=[pr for pr in slots if pr is not None],
            elapsed_s=time.perf_counter() - started,
        )

    import multiprocessing

    payloads = [
        (spec.task, point.key, index, dict(point.params), point.seed)
        for index, point in enumerate(points)
    ]
    ctx = multiprocessing.get_context("spawn")
    pool_size = min(n_workers, total)
    done = 0
    with ctx.Pool(processes=pool_size) as pool:
        for result in pool.imap_unordered(_worker_run, payloads):
            slots[result.index] = result
            done += 1
            if progress is not None:
                progress(done, total, result)
    return SweepResult(
        name=spec.name,
        base_seed=spec.base_seed,
        workers=pool_size,
        results=[pr for pr in slots if pr is not None],
        elapsed_s=time.perf_counter() - started,
    )
