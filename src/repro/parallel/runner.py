"""Deterministic fan-out of sweep points across worker processes.

:func:`run_sweep` executes a :class:`~repro.parallel.jobs.SweepSpec`
either in-process (``workers=1``, byte-for-byte the historical serial
behavior) or across a spawn-context ``multiprocessing.Pool``.  The
determinism contract:

* every point's seed and params are fixed in the spec before execution,
  so a point's value never depends on which worker ran it or when;
* results are re-ordered into spec order regardless of completion order;
* host wall-clock never enters point values (it is carried separately as
  metadata), so merged exports are bit-identical across worker counts.

Failure isolation: a point that raises records a structured
:class:`~repro.parallel.jobs.PointError` — type, message, traceback —
and the sweep continues.  A worker returning an unpicklable value is
converted into a failed point rather than wedging the pool.

Worker count resolution (first match wins): the explicit ``workers``
argument, the ``REPRO_WORKERS`` environment variable, then 1.

Result caching: pass ``cache`` (a :class:`~repro.cache.store.SweepCache`)
and every point is first looked up by its content fingerprint — hits are
served without executing (``PointResult.cached``), misses execute and
are persisted **immediately on completion**, before the progress
callback fires, so a sweep killed mid-run resumes from the last
completed point on the next invocation.  Cached values are the exact
objects a cold run produces, so merged exports stay byte-identical
between cold and warm runs.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from typing import TYPE_CHECKING, Any, Callable, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from .jobs import PointError, PointResult, SweepResult, SweepSpec

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..cache.store import SweepCache

__all__ = ["WORKERS_ENV", "resolve_workers", "run_sweep"]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: ``progress(done, total, result)`` callback signature.
ProgressFn = Callable[[int, int, PointResult], None]


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, then $REPRO_WORKERS, then 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be a positive integer, got {raw!r}"
            )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def _execute_point(
    task: Callable[[Mapping[str, Any], int], Any],
    key: str,
    index: int,
    params: Mapping[str, Any],
    seed: int,
) -> PointResult:
    """Run one point, converting any crash into a structured error."""
    started = time.perf_counter()
    try:
        value = task(dict(params), seed)
    except Exception as exc:
        return PointResult(
            key=key,
            index=index,
            seed=seed,
            params=dict(params),
            ok=False,
            error=PointError(
                type=type(exc).__name__,
                message=str(exc),
                traceback=traceback.format_exc(),
            ),
            elapsed_s=time.perf_counter() - started,
        )
    return PointResult(
        key=key,
        index=index,
        seed=seed,
        params=dict(params),
        ok=True,
        value=value,
        elapsed_s=time.perf_counter() - started,
    )


def _worker_run(
    payload: Tuple[Callable[[Mapping[str, Any], int], Any], str, int,
                   Mapping[str, Any], int],
) -> PointResult:
    """Pool entry point: execute one point inside a spawned worker.

    The result crosses the process boundary by pickle; an unpicklable
    value would otherwise raise in the *parent's* result iterator and
    abort the whole sweep, so picklability is checked here and demoted
    to a per-point failure.
    """
    task, key, index, params, seed = payload
    result = _execute_point(task, key, index, params, seed)
    if result.ok:
        try:
            pickle.dumps(result.value)
        except Exception as exc:
            result = PointResult(
                key=key,
                index=index,
                seed=seed,
                params=dict(params),
                ok=False,
                error=PointError(
                    type="UnpicklableResult",
                    message=f"task returned an unpicklable value: {exc}",
                    traceback="",
                ),
                elapsed_s=result.elapsed_s,
            )
    return result


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    cache: Optional["SweepCache"] = None,
) -> SweepResult:
    """Execute every point of ``spec``; results come back in spec order.

    ``workers=1`` (the default when ``REPRO_WORKERS`` is unset) runs the
    points in-process with zero behavioral difference from a plain loop.
    ``workers>1`` fans the points out over a spawn-context pool sized
    ``min(workers, misses)``.  ``progress`` is invoked in the parent, in
    completion order, after each point lands.

    With ``cache`` set, points whose fingerprints are already stored are
    served without executing (in spec order, before any execution
    starts) and every successfully executed point is persisted the
    moment its result lands in the parent — *before* ``progress`` fires
    — so interrupting the sweep never loses completed work.  Failed
    points are never cached.  The returned :attr:`SweepResult.cache_stats`
    carries this run's hit/miss/store/eviction deltas.
    """
    n_workers = resolve_workers(workers)
    points = spec.points
    total = len(points)
    started = time.perf_counter()
    slots: List[Optional[PointResult]] = [None] * total
    done = 0
    pending = list(range(total))
    fingerprints: List[str] = []
    stats_before = None
    tname = ""

    if cache is not None:
        from ..cache.fingerprint import task_name

        tname = task_name(spec.task)
        stats_before = cache.stats.snapshot()
        fingerprints = [
            cache.key_for(spec.task, point.params, point.seed)
            for point in points
        ]
        pending = []
        for index, point in enumerate(points):
            entry = cache.lookup(fingerprints[index])
            if entry is None:
                pending.append(index)
                continue
            result = PointResult(
                key=point.key,
                index=index,
                seed=point.seed,
                params=dict(point.params),
                ok=True,
                value=entry.value,
                elapsed_s=0.0,
                cached=True,
            )
            slots[index] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

    def _persist(result: PointResult) -> None:
        if cache is not None and result.ok:
            cache.put(
                fingerprints[result.index],
                result.value,
                key=result.key,
                task=tname,
                seed=result.seed,
                elapsed_s=result.elapsed_s,
            )

    def _finish(pool_size: int) -> SweepResult:
        cache_stats = None
        if cache is not None and stats_before is not None:
            cache_stats = cache.stats.delta(stats_before)
            executed = total - done_from_cache
            if cache_stats.hits and executed:
                # Served-from-cache points alongside fresh executions:
                # this run resumed (or extended) an earlier sweep.
                cache_stats.resumed = cache_stats.hits
                cache.stats.resumed += cache_stats.hits
        return SweepResult(
            name=spec.name,
            base_seed=spec.base_seed,
            workers=pool_size,
            results=[pr for pr in slots if pr is not None],
            elapsed_s=time.perf_counter() - started,
            cache_stats=cache_stats,
        )

    done_from_cache = done

    if n_workers == 1 or len(pending) <= 1:
        for index in pending:
            point = points[index]
            result = _execute_point(
                spec.task, point.key, index, point.params, point.seed
            )
            slots[index] = result
            _persist(result)
            done += 1
            if progress is not None:
                progress(done, total, result)
        return _finish(1)

    import multiprocessing

    payloads = [
        (spec.task, points[index].key, index, dict(points[index].params),
         points[index].seed)
        for index in pending
    ]
    ctx = multiprocessing.get_context("spawn")
    pool_size = min(n_workers, len(pending))
    with ctx.Pool(processes=pool_size) as pool:
        for result in pool.imap_unordered(_worker_run, payloads):
            slots[result.index] = result
            _persist(result)
            done += 1
            if progress is not None:
                progress(done, total, result)
    return _finish(pool_size)
