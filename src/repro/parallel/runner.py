"""Deterministic fan-out of sweep points across supervised workers.

:func:`run_sweep` executes a :class:`~repro.parallel.jobs.SweepSpec`
either in-process (``workers=1``, byte-for-byte the historical serial
behavior when nothing fails) or across supervised worker processes (see
:mod:`repro.parallel.supervisor`).  The determinism contract:

* every point's seed and params are fixed in the spec before execution,
  so a point's value never depends on which worker ran it, when, or on
  which attempt;
* results are re-ordered into spec order regardless of completion order;
* host wall-clock and robustness telemetry (retries, timeouts, worker
  restarts) never enter point values — they travel as sidecar metadata
  (``elapsed_s``, ``cache_stats``, ``runner_health``) — so merged
  exports are bit-identical across worker counts and failure histories.

Failure handling: a point that raises records a structured
:class:`~repro.parallel.jobs.PointError` — type, message, traceback,
attempts, retryable — and the sweep continues.  Retryable failures
(:func:`repro.errors.is_retryable`: crashes, deadline kills,
``TransientError``/``FaultError``, OS pressure) are re-dispatched with
exponential backoff up to ``SupervisorConfig.max_attempts``, then
quarantined.  A worker returning an unpicklable value — or a point
whose *params* won't pickle into a worker — is demoted to a per-point
failure rather than wedging or aborting the run.

Worker count resolution (first match wins): the explicit ``workers``
argument, the ``REPRO_WORKERS`` environment variable, then 1.

Result caching: pass ``cache`` (a :class:`~repro.cache.store.SweepCache`)
and every point is first looked up by its content fingerprint — hits are
served without executing (``PointResult.cached``), misses execute and
are persisted **immediately on completion**, before the progress
callback fires, so a sweep killed mid-run resumes from the last
completed point on the next invocation.  An interrupted run (SIGINT or
SIGTERM) additionally drains gracefully: workers are torn down, every
completed point is already in the cache, and a resume manifest is
written next to the store (see :mod:`repro.cache.manifest`) before the
``KeyboardInterrupt`` propagates.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from typing import TYPE_CHECKING, Any, Callable, List, Optional

from ..errors import ConfigurationError
from .jobs import PointResult, SweepResult, SweepSpec
from .supervisor import (
    RunnerHealth,
    SupervisorConfig,
    SweepDrained,
    _classified_execute,
    _set_context,
    run_supervised,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..cache.store import SweepCache

__all__ = [
    "WORKERS_ENV",
    "last_run_health",
    "resolve_workers",
    "run_sweep",
]

#: Environment variable consulted when no explicit worker count is given.
WORKERS_ENV = "REPRO_WORKERS"

#: ``progress(done, total, result)`` callback signature.
ProgressFn = Callable[[int, int, PointResult], None]

#: Health of the most recent :func:`run_sweep` in this process — a
#: sidecar channel for callers (the figure runners, the CLI) that
#: consume domain objects rather than the :class:`SweepResult` itself.
_LAST_HEALTH: Optional[RunnerHealth] = None


def last_run_health() -> Optional[RunnerHealth]:
    """Robustness telemetry of this process's most recent sweep."""
    return _LAST_HEALTH


def resolve_workers(workers: Optional[int] = None) -> int:
    """The effective worker count: argument, then $REPRO_WORKERS, then 1."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if not raw:
            return 1
        try:
            workers = int(raw)
        except ValueError:
            raise ConfigurationError(
                f"{WORKERS_ENV} must be a positive integer, got {raw!r}"
            )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def run_sweep(
    spec: SweepSpec,
    workers: Optional[int] = None,
    progress: Optional[ProgressFn] = None,
    cache: Optional["SweepCache"] = None,
    supervise: Optional[SupervisorConfig] = None,
    cancel: Optional[threading.Event] = None,
) -> SweepResult:
    """Execute every point of ``spec``; results come back in spec order.

    ``workers=1`` (the default when ``REPRO_WORKERS`` is unset) runs the
    points in-process — with zero behavioral difference from a plain
    loop when nothing fails, plus the same bounded retry of retryable
    errors the supervised path applies.  ``workers>1`` fans the points
    out over supervised spawn processes sized ``min(workers, misses)``
    with heartbeat liveness, crash re-dispatch, per-point deadlines and
    quarantine (see :class:`~repro.parallel.supervisor.SupervisorConfig`;
    ``supervise=None`` uses its defaults).  ``progress`` is invoked in
    the parent, in completion order, after each point lands.

    With ``cache`` set, points whose fingerprints are already stored are
    served without executing (in spec order, before any execution
    starts) and every successfully executed point is persisted the
    moment its result lands in the parent — *before* ``progress`` fires
    — so interrupting the sweep never loses completed work; a SIGINT/
    SIGTERM drain also writes a resume manifest beside the store.
    Failed points are never cached.  The returned
    :attr:`SweepResult.cache_stats` carries this run's hit/miss/store
    deltas and :attr:`SweepResult.runner_health` the retry/timeout/
    restart counts — both sidecar metadata, absent from merged exports.

    ``cancel`` is the programmatic drain hook: a ``threading.Event``
    that, once set, drains the sweep exactly like SIGTERM would —
    completed points stay persisted, a resume manifest (reason
    ``cancelled``) is written, and ``KeyboardInterrupt`` propagates.
    It exists for callers that run sweeps off the main thread (the
    ``repro serve`` job manager), where signal handlers cannot be
    installed.  Both the serial and the supervised path honor it at
    point boundaries.
    """
    global _LAST_HEALTH
    n_workers = resolve_workers(workers)
    config = supervise if supervise is not None else SupervisorConfig()
    points = spec.points
    total = len(points)
    started = time.perf_counter()
    slots: List[Optional[PointResult]] = [None] * total
    done = 0
    pending = list(range(total))
    fingerprints: List[str] = []
    stats_before = None
    tname = ""
    health = RunnerHealth()
    _LAST_HEALTH = health

    if cache is not None:
        from ..cache.fingerprint import task_name

        tname = task_name(spec.task)
        stats_before = cache.stats.snapshot()
        fingerprints = [
            cache.key_for(spec.task, point.params, point.seed)
            for point in points
        ]
        pending = []
        for index, point in enumerate(points):
            entry = cache.lookup(fingerprints[index])
            if entry is None:
                pending.append(index)
                continue
            result = PointResult(
                key=point.key,
                index=index,
                seed=point.seed,
                params=dict(point.params),
                ok=True,
                value=entry.value,
                elapsed_s=0.0,
                cached=True,
            )
            slots[index] = result
            done += 1
            if progress is not None:
                progress(done, total, result)

    def _persist(result: PointResult) -> None:
        if cache is not None and result.ok:
            cache.put(
                fingerprints[result.index],
                result.value,
                key=result.key,
                task=tname,
                seed=result.seed,
                elapsed_s=result.elapsed_s,
            )

    def _land(result: PointResult) -> None:
        nonlocal done
        slots[result.index] = result
        _persist(result)
        done += 1
        if progress is not None:
            progress(done, total, result)

    def _write_manifest(reason: str) -> None:
        if cache is None:
            return
        from ..cache.manifest import ResumeManifest, write_resume_manifest

        completed = tuple(
            pr.key for pr in slots if pr is not None and pr.ok
        )
        write_resume_manifest(cache, ResumeManifest(
            name=spec.name,
            base_seed=spec.base_seed,
            total=total,
            completed=completed,
            reason=reason,
            workers=n_workers,
        ))

    def _finish(pool_size: int) -> SweepResult:
        if cache is not None:
            from ..cache.manifest import clear_resume_manifest

            clear_resume_manifest(cache, spec.name)
        cache_stats = None
        if cache is not None and stats_before is not None:
            cache_stats = cache.stats.delta(stats_before)
            executed = total - done_from_cache
            if cache_stats.hits and executed:
                # Served-from-cache points alongside fresh executions:
                # this run resumed (or extended) an earlier sweep.
                cache_stats.resumed = cache_stats.hits
                cache.stats.resumed += cache_stats.hits
        return SweepResult(
            name=spec.name,
            base_seed=spec.base_seed,
            workers=pool_size,
            results=[pr for pr in slots if pr is not None],
            elapsed_s=time.perf_counter() - started,
            cache_stats=cache_stats,
            runner_health=health,
        )

    done_from_cache = done

    def _drain_to_interrupt(reason: str) -> "KeyboardInterrupt":
        health.drained = 1
        _write_manifest(reason)
        return KeyboardInterrupt(
            f"sweep {spec.name!r} drained on {reason}: "
            f"{done}/{total} points completed and persisted"
        )

    if n_workers == 1 or len(pending) <= 1:
        # The supervised path owns SIGINT/SIGTERM through
        # run_supervised; the serial path must install its own SIGTERM
        # hook (SIGINT already raises KeyboardInterrupt) or a drained
        # `--workers 1` run dies without a resume manifest.
        signal_reason: List[str] = []

        def _on_signal(signum: int, frame: Any) -> None:
            signal_reason.append(signal.Signals(signum).name)
            raise KeyboardInterrupt()

        in_main_thread = threading.current_thread() is threading.main_thread()
        previous_handler = None
        if in_main_thread:
            previous_handler = signal.signal(signal.SIGTERM, _on_signal)
        try:
            for index in pending:
                if cancel is not None and cancel.is_set():
                    raise SweepDrained("cancelled")
                point = points[index]
                result = None
                for attempt in range(1, config.max_attempts + 1):
                    _set_context(None, attempt)
                    try:
                        result = _classified_execute(
                            spec.task, point.key, index, point.params,
                            point.seed, attempt,
                        )
                    finally:
                        _set_context(None, 1)
                    if result.ok or result.error is None:
                        break
                    if not result.error.retryable:
                        break
                    health.transient_errors += 1
                    if attempt == config.max_attempts:
                        break
                    health.retries += 1
                    time.sleep(config.backoff_s(attempt, point.key))
                assert result is not None
                _land(result)
                if not result.ok:
                    if result.error is not None and result.error.retryable:
                        health.quarantined += 1
                    if config.fail_fast:
                        break
        except KeyboardInterrupt:
            health.drained = 1
            _write_manifest(signal_reason[0] if signal_reason else "interrupt")
            raise
        except SweepDrained as drained:
            raise _drain_to_interrupt(drained.reason) from None
        finally:
            if in_main_thread and previous_handler is not None:
                signal.signal(signal.SIGTERM, previous_handler)
        return _finish(1)

    try:
        pool_size = run_supervised(
            spec.task, points, pending, n_workers, config, _land, health,
            cancel=cancel,
        )
    except SweepDrained as drained:
        raise _drain_to_interrupt(drained.reason) from None
    return _finish(pool_size)
