"""Supervised execution of sweep points across worker processes.

The bare ``multiprocessing.Pool`` the runner used through PR 5 had the
failure profile "Dissecting CXL Memory Performance at Scale" reports
dominating fleet sweeps: one SIGKILL'd, OOM'd, or hung worker aborts or
wedges the whole run.  This module replaces it with a supervisor that
owns each worker process individually:

* **liveness** — every worker runs a daemon heartbeat thread; the parent
  detects a dead worker instantly (its pipe hits EOF) and a wedged one
  (SIGSTOP'd, swap-thrashed) when its heartbeat lapses;
* **crash re-dispatch** — a worker that dies mid-point (SIGKILL,
  segfault, OOM kill) is replaced and its in-flight point requeued;
* **deadlines** — ``point_timeout_s`` bounds each attempt's wall-clock;
  a hung worker is SIGKILLed and its point requeued;
* **bounded retry** — retryable failures (see
  :func:`repro.errors.is_retryable`) re-dispatch with exponential
  backoff + deterministic jitter, reusing
  :class:`repro.faults.retry.RetryPolicy`'s arithmetic so sim-level and
  harness-level budgets share one implementation;
* **quarantine** — a point that exhausts ``max_attempts`` lands as a
  structured :class:`~repro.parallel.jobs.PointError` carrying
  ``attempts``/``retryable`` and the sweep continues;
* **drain** — SIGINT/SIGTERM stops dispatch, kills in-flight attempts,
  and hands control back to the runner, which has already persisted
  every completed point to the sweep cache and now writes a resume
  manifest.

The determinism contract survives every recovery path: a retried point
re-runs with its identical ``(task, params, seed)``, so the value that
finally lands is byte-identical to an unperturbed run, and all health
telemetry travels in the :class:`RunnerHealth` sidecar — never in the
merged ``repro.metrics/v1`` exports.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import pickle
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..faults.retry import RetryPolicy
from .jobs import PointError, PointResult, SweepPoint

__all__ = [
    "SupervisorConfig",
    "RunnerHealth",
    "SweepDrained",
    "current_attempt",
    "current_worker_id",
    "run_supervised",
]

#: Parent event-loop tick: the granularity of deadline/heartbeat checks.
_TICK_S = 0.05

#: Error types the parent manufactures for infrastructure failures (the
#: worker never got to report anything itself).
CRASH_ERROR = "WorkerCrashed"
TIMEOUT_ERROR = "PointTimeout"
UNRESPONSIVE_ERROR = "WorkerUnresponsive"
UNPICKLABLE_PARAMS_ERROR = "UnpicklableParams"

#: Default backoff between re-dispatches.  Reuses the sim-level
#: :class:`RetryPolicy` arithmetic with harness-scale constants:
#: 250 ms base doubling to an 8 s cap (values are ns; the supervisor
#: sleeps ``backoff_ns / 1e9`` host seconds).
DEFAULT_BACKOFF = RetryPolicy(
    max_attempts=3, base_backoff_ns=0.25e9, multiplier=2.0, max_backoff_ns=8e9
)


@dataclass(frozen=True)
class SupervisorConfig:
    """Robustness policy of one supervised sweep."""

    #: Wall-clock budget of a single attempt, measured from the worker's
    #: ``started`` ack (dispatch latency and process spawn/import time
    #: never count against it); ``None`` disables deadlines.  A worker
    #: wedged *before* the ack is caught by the heartbeat timeout.
    point_timeout_s: Optional[float] = None
    #: Total attempts per point (1 = never retry).  Only *retryable*
    #: failures consume extra attempts; a permanent error fails its
    #: point immediately regardless of the budget.
    max_attempts: int = 3
    #: Backoff arithmetic between attempts (shared with the sim layer).
    backoff: RetryPolicy = field(default_factory=lambda: DEFAULT_BACKOFF)
    #: Stop dispatching after the first *permanent* point failure.
    fail_fast: bool = False
    #: Worker heartbeat period.
    heartbeat_s: float = 0.5
    #: Declare a worker wedged after this long without a heartbeat;
    #: ``None`` derives ``20 x heartbeat_s``.
    heartbeat_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.point_timeout_s is not None and self.point_timeout_s <= 0:
            raise ConfigurationError("point_timeout_s must be positive")
        if self.heartbeat_s <= 0:
            raise ConfigurationError("heartbeat_s must be positive")
        if self.heartbeat_timeout_s is not None and self.heartbeat_timeout_s <= 0:
            raise ConfigurationError("heartbeat_timeout_s must be positive")

    @property
    def effective_heartbeat_timeout_s(self) -> float:
        if self.heartbeat_timeout_s is not None:
            return self.heartbeat_timeout_s
        return 20.0 * self.heartbeat_s

    def backoff_s(self, attempt: int, key: str) -> float:
        """Host-seconds to wait before re-dispatching ``attempt + 1``.

        Exponential base from the shared :class:`RetryPolicy` plus up to
        25% deterministic jitter hashed from ``(key, attempt)`` — two
        quarantine-bound points back off on decorrelated schedules, yet
        a rerun of the sweep reproduces the exact same schedule.
        """
        base = self.backoff.backoff_ns(max(1, attempt)) / 1e9
        digest = hashlib.sha256(f"backoff:{key}:{attempt}".encode()).digest()
        jitter = int.from_bytes(digest[:8], "big") / 2**64
        return base * (1.0 + 0.25 * jitter)


@dataclass
class RunnerHealth:
    """Sidecar telemetry of one sweep's infrastructure incidents.

    Everything here is host-level metadata in the same class as
    ``cache_stats`` and ``elapsed_s``: surfaced on stderr summaries and
    lazy ``repro.obs`` collectors, excluded from merged
    ``repro.metrics/v1`` exports by construction.
    """

    retries: int = 0          #: re-dispatches after retryable failures
    transient_errors: int = 0  #: retryable exceptions raised inside tasks
    timeouts: int = 0         #: attempts killed at the point deadline
    crashes: int = 0          #: workers that died mid-point
    unresponsive: int = 0     #: workers killed for lapsed heartbeats
    worker_restarts: int = 0  #: replacement workers spawned
    quarantined: int = 0      #: points failed after exhausting retries
    drained: int = 0          #: 1 when SIGINT/SIGTERM cut the run short

    @property
    def any(self) -> bool:
        """True when any incident happened (worth a summary line)."""
        return any(
            (self.retries, self.transient_errors, self.timeouts, self.crashes,
             self.unresponsive, self.worker_restarts, self.quarantined,
             self.drained)
        )

    def as_dict(self) -> Dict[str, int]:
        """JSON-ready form."""
        return {
            "retries": self.retries,
            "transient_errors": self.transient_errors,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "unresponsive": self.unresponsive,
            "worker_restarts": self.worker_restarts,
            "quarantined": self.quarantined,
            "drained": self.drained,
        }

    def summary(self) -> str:
        """The one-line stderr form printed next to the cache summary."""
        return (
            f"{self.retries} retries, {self.timeouts} timeouts, "
            f"{self.crashes} crashes, {self.worker_restarts} worker "
            f"restarts, {self.quarantined} quarantined"
        )


class SweepDrained(Exception):
    """Internal: a signal asked the supervised run to stop.

    Raised out of :func:`run_supervised` after workers are torn down;
    the runner writes the resume manifest and converts it into the
    ``KeyboardInterrupt`` callers of interrupted sweeps already expect.
    """

    def __init__(self, reason: str) -> None:
        self.reason = reason
        super().__init__(f"sweep drained on {reason}")


# -- worker-side context ------------------------------------------------------
#
# The chaos harness (and any attempt-aware task) needs to know which
# attempt of which worker is executing *without* changing the
# ``task(params, seed)`` signature that every stock task and the cache
# fingerprint depend on.  The worker loop (and the serial runner's retry
# loop) publish it here instead.


class _ExecutionContext(threading.local):
    worker_id: Optional[int] = None
    attempt: int = 1


_CONTEXT = _ExecutionContext()


def current_attempt() -> int:
    """The 1-based attempt number of the point currently executing."""
    return getattr(_CONTEXT, "attempt", 1)


def current_worker_id() -> Optional[int]:
    """The supervised worker id, or ``None`` when running in-process."""
    return getattr(_CONTEXT, "worker_id", None)


def _set_context(worker_id: Optional[int], attempt: int) -> None:
    _CONTEXT.worker_id = worker_id
    _CONTEXT.attempt = attempt


# -- worker process -----------------------------------------------------------


def _classified_execute(
    task: Callable[[Mapping[str, Any], int], Any],
    key: str,
    index: int,
    params: Mapping[str, Any],
    seed: int,
    attempt: int,
) -> PointResult:
    """Run one attempt, converting any raise into a classified error."""
    import traceback as tb

    from ..errors import is_retryable

    started = time.perf_counter()
    try:
        value = task(dict(params), seed)
    except Exception as exc:
        return PointResult(
            key=key,
            index=index,
            seed=seed,
            params=dict(params),
            ok=False,
            error=PointError(
                type=type(exc).__name__,
                message=str(exc),
                traceback=tb.format_exc(),
                attempts=attempt,
                retryable=is_retryable(exc),
            ),
            elapsed_s=time.perf_counter() - started,
        )
    return PointResult(
        key=key,
        index=index,
        seed=seed,
        params=dict(params),
        ok=True,
        value=value,
        elapsed_s=time.perf_counter() - started,
    )


def _demote_unpicklable(result: PointResult, attempt: int) -> PointResult:
    """A successful result whose value won't pickle becomes a failure."""
    if not result.ok:
        return result
    try:
        pickle.dumps(result.value)
    except Exception as exc:
        return PointResult(
            key=result.key,
            index=result.index,
            seed=result.seed,
            params=result.params,
            ok=False,
            error=PointError(
                type="UnpicklableResult",
                message=f"task returned an unpicklable value: {exc}",
                traceback="",
                attempts=attempt,
                retryable=False,
            ),
            elapsed_s=result.elapsed_s,
        )
    return result


def _worker_main(worker_id: int, conn: Any, heartbeat_s: float) -> None:
    """Entry point of one supervised worker process.

    Receives ``("run", key, index, attempt, task, params, seed)``
    payloads on ``conn`` and answers with ``("started", ...)`` then
    ``("result", PointResult)``.  A daemon thread emits
    ``("hb", monotonic)`` every ``heartbeat_s`` so the parent can tell a
    busy worker from a wedged one.  Exits on ``("exit",)`` or EOF.
    """
    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(message: Tuple[Any, ...]) -> bool:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                return False
        return True

    def _beat() -> None:
        while not stop.wait(heartbeat_s):
            if not _send(("hb", time.monotonic())):
                return

    threading.Thread(target=_beat, daemon=True, name="repro-heartbeat").start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "exit":
                break
            _, key, index, attempt, task, params, seed = message
            _set_context(worker_id, attempt)
            _send(("started", index, attempt))
            result = _demote_unpicklable(
                _classified_execute(task, key, index, params, seed, attempt),
                attempt,
            )
            _set_context(worker_id, 1)
            if not _send(("result", result)):
                break
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass


# -- parent-side supervision --------------------------------------------------


@dataclass
class _Inflight:
    index: int
    attempt: int
    dispatched_at: float
    #: Set when the worker acks ``("started", ...)``; the point deadline
    #: runs from here, so spawn/import time never counts against it.
    started_at: Optional[float] = None


@dataclass
class _Handle:
    worker_id: int
    proc: Any
    conn: Any
    inflight: Optional[_Inflight] = None
    last_heartbeat: float = 0.0


def run_supervised(
    task: Callable[[Mapping[str, Any], int], Any],
    points: Sequence[SweepPoint],
    pending: Sequence[int],
    workers: int,
    config: SupervisorConfig,
    emit: Callable[[PointResult], None],
    health: RunnerHealth,
    cancel: Optional[threading.Event] = None,
) -> int:
    """Execute ``pending`` point indices under supervision.

    ``emit`` receives exactly one *final* :class:`PointResult` per
    pending index (in completion order; the caller slots them back into
    spec order).  Returns the pool size used.  Raises
    :class:`SweepDrained` after teardown when SIGINT/SIGTERM arrives, or
    when ``cancel`` (the programmatic drain hook used by ``repro
    serve``'s job manager, which runs sweeps off the main thread where
    signal handlers cannot be installed) is set.
    """
    import multiprocessing
    from multiprocessing import connection as mp_connection

    ctx = multiprocessing.get_context("spawn")
    pool_size = min(workers, len(pending))
    ready: deque = deque((index, 1) for index in pending)
    delayed: List[Tuple[float, int, int]] = []  # (due, index, attempt)
    outstanding = len(pending)
    handles: Dict[int, _Handle] = {}
    spawned = 0
    stop_dispatch = False
    drain_reason: List[str] = []

    def _spawn() -> None:
        nonlocal spawned
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(spawned, child_conn, config.heartbeat_s),
            daemon=True,
            name=f"repro-sweep-worker-{spawned}",
        )
        proc.start()
        child_conn.close()  # parent must drop its copy or EOF never fires
        handles[spawned] = _Handle(
            worker_id=spawned, proc=proc, conn=parent_conn,
            last_heartbeat=time.monotonic(),
        )
        spawned += 1

    def _discard(handle: _Handle, kill: bool) -> None:
        handles.pop(handle.worker_id, None)
        if kill and handle.proc.is_alive():
            handle.proc.kill()
        handle.proc.join(timeout=5.0)
        try:
            handle.conn.close()
        except OSError:
            pass

    def _finalize(result: PointResult) -> None:
        nonlocal outstanding, stop_dispatch
        emit(result)
        outstanding -= 1
        if not result.ok:
            if result.error is not None and result.error.retryable:
                health.quarantined += 1
            if config.fail_fast:
                stop_dispatch = True

    def _point_failed(index: int, attempt: int, result: PointResult) -> None:
        """Retry a retryable failure if budget remains, else finalize."""
        error = result.error
        if error is not None and error.retryable and attempt < config.max_attempts:
            health.retries += 1
            due = time.monotonic() + config.backoff_s(attempt, points[index].key)
            heapq.heappush(delayed, (due, index, attempt + 1))
            return
        _finalize(result)

    def _infrastructure_failure(
        handle: _Handle, error_type: str, message: str
    ) -> None:
        """A worker died or was killed while owning an in-flight point."""
        inflight = handle.inflight
        handle.inflight = None
        if inflight is None:
            return
        point = points[inflight.index]
        result = PointResult(
            key=point.key,
            index=inflight.index,
            seed=point.seed,
            params=dict(point.params),
            ok=False,
            error=PointError(
                type=error_type,
                message=message,
                traceback="",
                attempts=inflight.attempt,
                retryable=True,
            ),
            elapsed_s=time.monotonic() - inflight.dispatched_at,
        )
        _point_failed(inflight.index, inflight.attempt, result)

    def _handle_dead(handle: _Handle) -> None:
        exitcode = handle.proc.exitcode
        _discard(handle, kill=True)
        if handle.inflight is not None:
            health.crashes += 1
            _infrastructure_failure(
                handle, CRASH_ERROR,
                f"worker {handle.worker_id} died (exitcode {exitcode}) "
                f"while running attempt {handle.inflight.attempt}",
            )

    def _kill_wedged(handle: _Handle, error_type: str, message: str) -> None:
        _discard(handle, kill=True)
        _infrastructure_failure(handle, error_type, message)

    def _handle_message(handle: _Handle, message: Tuple[Any, ...]) -> None:
        kind = message[0]
        if kind == "hb":
            handle.last_heartbeat = time.monotonic()
        elif kind == "started":
            handle.last_heartbeat = time.monotonic()
            inflight = handle.inflight
            if (
                inflight is not None
                and (message[1], message[2]) == (inflight.index, inflight.attempt)
            ):
                inflight.started_at = time.monotonic()
        elif kind == "result":
            handle.last_heartbeat = time.monotonic()
            inflight = handle.inflight
            handle.inflight = None
            result: PointResult = message[1]
            attempt = inflight.attempt if inflight is not None else 1
            if result.ok:
                _finalize(result)
            else:
                if result.error is not None and result.error.retryable:
                    health.transient_errors += 1
                _point_failed(result.index, attempt, result)

    def _dispatch(handle: _Handle, index: int, attempt: int) -> None:
        nonlocal outstanding
        point = points[index]
        payload = ("run", point.key, index, attempt, task,
                   dict(point.params), point.seed)
        try:
            handle.conn.send(payload)
        except (BrokenPipeError, OSError):
            # Worker died between polls; put the work back and let the
            # liveness pass below recycle the worker.
            ready.appendleft((index, attempt))
            return
        except Exception as exc:
            # The payload itself would not pickle (unpicklable *params*).
            # Pre-supervisor this raised in the parent and aborted the
            # whole sweep; demote it to a per-point failure instead,
            # mirroring the unpicklable-*result* demotion.
            _finalize(PointResult(
                key=point.key,
                index=index,
                seed=point.seed,
                params={},
                ok=False,
                error=PointError(
                    type=UNPICKLABLE_PARAMS_ERROR,
                    message=f"point params do not pickle: {exc}",
                    traceback="",
                    attempts=attempt,
                    retryable=False,
                ),
                elapsed_s=0.0,
            ))
            return
        handle.inflight = _Inflight(
            index=index, attempt=attempt, dispatched_at=time.monotonic()
        )

    def _on_signal(signum: int, frame: Any) -> None:
        drain_reason.append(signal.Signals(signum).name)

    in_main_thread = threading.current_thread() is threading.main_thread()
    previous_handlers = []
    if in_main_thread:
        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers.append((signum, signal.signal(signum, _on_signal)))

    hb_timeout = config.effective_heartbeat_timeout_s
    try:
        for _ in range(pool_size):
            _spawn()
        while outstanding > 0:
            if drain_reason:
                raise SweepDrained(drain_reason[0])
            if cancel is not None and cancel.is_set():
                raise SweepDrained("cancelled")
            now = time.monotonic()
            while delayed and delayed[0][0] <= now:
                _, index, attempt = heapq.heappop(delayed)
                ready.append((index, attempt))
            if stop_dispatch and not any(
                h.inflight is not None for h in handles.values()
            ):
                break  # fail-fast: nothing in flight, stop here
            if not stop_dispatch:
                # Replace crashed/killed workers while work remains.
                in_flight = sum(
                    1 for h in handles.values() if h.inflight is not None
                )
                needed = min(pool_size, in_flight + len(ready) + len(delayed))
                while len(handles) < needed:
                    _spawn()
                    health.worker_restarts += 1
                for handle in list(handles.values()):
                    if not ready:
                        break
                    if handle.inflight is None:
                        index, attempt = ready.popleft()
                        _dispatch(handle, index, attempt)
            conns = [h.conn for h in handles.values()]
            by_conn = {h.conn: h for h in handles.values()}
            if conns:
                readable = mp_connection.wait(conns, timeout=_TICK_S)
            else:
                time.sleep(_TICK_S)
                readable = []
            for conn in readable:
                handle = by_conn[conn]
                if handle.worker_id not in handles:
                    continue  # torn down by an earlier message this tick
                try:
                    while conn.poll():
                        _handle_message(handle, conn.recv())
                except (EOFError, OSError):
                    _handle_dead(handle)
            now = time.monotonic()
            for handle in list(handles.values()):
                if not handle.proc.is_alive():
                    _handle_dead(handle)
                    continue
                inflight = handle.inflight
                if (
                    inflight is not None
                    and config.point_timeout_s is not None
                    and inflight.started_at is not None
                    and now - inflight.started_at > config.point_timeout_s
                ):
                    health.timeouts += 1
                    _kill_wedged(
                        handle, TIMEOUT_ERROR,
                        f"attempt {inflight.attempt} exceeded the "
                        f"{config.point_timeout_s:g}s point deadline",
                    )
                elif now - handle.last_heartbeat > hb_timeout:
                    health.unresponsive += 1
                    _kill_wedged(
                        handle, UNRESPONSIVE_ERROR,
                        f"worker {handle.worker_id} sent no heartbeat for "
                        f"{hb_timeout:g}s",
                    )
    finally:
        for handle in list(handles.values()):
            try:
                handle.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for handle in list(handles.values()):
            handle.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if handle.proc.is_alive():
                handle.proc.kill()
                handle.proc.join(timeout=5.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        handles.clear()
        if in_main_thread:
            for signum, previous in previous_handlers:
                signal.signal(signum, previous)
    if drain_reason:
        raise SweepDrained(drain_reason[0])
    return pool_size
