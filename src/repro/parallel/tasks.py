"""Spawn-importable task functions for the stock sweeps.

Every task here is a module-level function ``task(params, seed)`` so a
spawned worker can import it by reference.  Tasks import the application
stacks lazily inside their bodies — the analysis/apps layers import
:mod:`repro.parallel` for the runner, and eager imports here would close
that cycle.

Two shapes per family where needed:

* the *plain* task returns the same object the historical serial loop
  produced (``KeyDbResult``, ``OverloadRunSummary``, ...) — this is what
  the figure/overload/fault runners fan out over;
* the ``*_observed`` variant additionally snapshots a per-point
  :class:`~repro.obs.registry.MetricsRegistry` and returns its
  ``repro.metrics/v1`` document, which ``repro sweep`` merges into one
  export (see :mod:`repro.parallel.merge`).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

__all__ = [
    "demo_point",
    "fig3_panel",
    "fig4_pattern_mix",
    "fig5_cell",
    "fig5_cell_observed",
    "fig7_config",
    "fig8_cell",
    "fig10_config",
    "overload_point",
    "overload_point_observed",
    "fault_case",
    "fault_case_observed",
]


def demo_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A tiny deterministic task for smoke tests and examples.

    Draws a few values from the seeded RNG stream and returns summary
    statistics.  ``params["poison"]`` truthy makes the point crash —
    used to exercise the runner's failure isolation.
    """
    from ..sim.rng import RngFactory

    if params.get("poison"):
        raise RuntimeError(f"poisoned point (seed {seed})")
    rng = RngFactory(seed).stream("parallel-demo")
    draws = rng.random(int(params.get("draws", 64)))
    return {
        "seed": seed,
        "n": int(draws.size),
        "mean": float(draws.mean()),
        "min": float(draws.min()),
        "max": float(draws.max()),
    }


# -- Fig. 3 / Fig. 4 (loaded latency) ---------------------------------------


def fig3_panel(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One Fig. 3 panel: ``{mix: MlcCurve}`` for one distance."""
    from ..analysis.figures import _panel_path
    from ..hw.presets import paper_cxl_platform
    from ..workloads.mlc import MlcProbe

    platform = paper_cxl_platform(snc_enabled=True)
    probe = MlcProbe(platform, threads=int(params.get("threads", 16)))
    path = _panel_path(platform, params["panel"])
    return {
        f"{r}:{w}": probe.loaded_latency_curve(
            path, r, w, load_points=list(params["fractions"])
        )
        for r, w in params["mixes"]
    }


def fig4_pattern_mix(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One Fig. 4 cell: ``{panel: MlcCurve}`` for one (pattern, mix)."""
    from ..analysis.figures import FIG3_PANELS, _panel_path
    from ..hw.presets import paper_cxl_platform
    from ..workloads.mlc import MlcProbe

    platform = paper_cxl_platform(snc_enabled=True)
    probe = MlcProbe(platform, threads=16, pattern=params["pattern"])
    r, w = params["mix"]
    return {
        panel: probe.loaded_latency_curve(
            _panel_path(platform, panel), r, w,
            load_points=list(params["fractions"]),
        )
        for panel in FIG3_PANELS
    }


# -- Fig. 5 / Fig. 8 (KeyDB YCSB) -------------------------------------------


def fig5_cell(params: Mapping[str, Any], seed: int):
    """One Fig. 5 cell: a (workload, configuration) YCSB run."""
    from ..apps.kvstore import run_keydb_config

    return run_keydb_config(
        params["config"],
        workload=params["workload"],
        record_count=int(params["record_count"]),
        total_ops=int(params["total_ops"]),
        seed=seed,
    )


def fig5_cell_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A Fig. 5 cell plus its ``repro.metrics/v1`` snapshot."""
    from ..obs.registry import MetricsRegistry, histogram_samples

    result = fig5_cell(params, seed)
    config, workload = params["config"], params["workload"]
    registry = MetricsRegistry()
    labels = {"config": config, "workload": workload}
    result.counters.register_into(registry, "keydb_ops", labels=dict(labels))
    run_info = registry.gauge(
        "keydb_run", "headline run numbers", ("config", "workload", "quantity")
    )
    run_info.set(float(result.ops), quantity="ops", **labels)
    run_info.set(result.elapsed_ns, quantity="elapsed_ns", **labels)
    run_info.set(result.throughput_ops_per_s,
                 quantity="throughput_ops_per_s", **labels)
    registry.register_collector(
        lambda: histogram_samples(
            "keydb_read_latency_ns", {**labels, "op": "read"},
            result.read_latency,
        )
    )
    registry.register_collector(
        lambda: histogram_samples(
            "keydb_write_latency_ns", {**labels, "op": "write"},
            result.write_latency,
        )
    )
    return {
        "config": config,
        "workload": workload,
        "throughput_ops_per_s": result.throughput_ops_per_s,
        "metrics": registry.as_dict(),
    }


def fig8_cell(params: Mapping[str, Any], seed: int):
    """One Fig. 8 half: YCSB-C bound entirely to MMEM or to CXL."""
    from ..apps.kvstore import run_keydb_cxl_only

    return run_keydb_cxl_only(
        bool(params["on_cxl"]),
        int(params["record_count"]),
        int(params["total_ops"]),
        seed,
    )


# -- Fig. 7 (Spark) ----------------------------------------------------------


def fig7_config(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One Fig. 7 column: all TPC-H queries under one configuration."""
    from ..apps.spark.experiment import run_spark_config

    return run_spark_config(params["config"])


# -- Fig. 10 (LLM serving) ---------------------------------------------------


def fig10_config(params: Mapping[str, Any], seed: int):
    """One Fig. 10(a) series: the backend-count sweep for one config."""
    from ..apps.llm import LlmServingExperiment

    return LlmServingExperiment(params["config"]).sweep(
        tuple(params["backend_counts"])
    )


# -- overload sweeps ---------------------------------------------------------


def overload_point(params: Mapping[str, Any], seed: int):
    """One offered-load factor of the goodput sweep."""
    from ..overload.runner import run_offered_load

    return run_offered_load(
        params["rate_ops_per_s"],
        params["policy"],
        duration_ns=params["duration_ns"],
        config=params["config"],
        record_count=int(params["record_count"]),
        seed=seed,
        threads=int(params["threads"]),
        label=params["label"],
        load_factor=params["load_factor"],
    )


def overload_point_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """An offered-load point plus its ``repro.metrics/v1`` snapshot."""
    from ..obs.registry import MetricsRegistry
    from ..overload.runner import run_offered_load

    registry = MetricsRegistry()
    summary = run_offered_load(
        params["rate_ops_per_s"],
        params["policy"],
        duration_ns=params["duration_ns"],
        config=params["config"],
        record_count=int(params["record_count"]),
        seed=seed,
        threads=int(params["threads"]),
        label=params["label"],
        load_factor=params["load_factor"],
        registry=registry,
    )
    return {"summary": summary, "metrics": registry.as_dict()}


# -- fault catalog -----------------------------------------------------------


def fault_case(params: Mapping[str, Any], seed: int):
    """One (app, scenario) cell of the fault catalog."""
    from ..faults.runner import run_faulted_app

    return run_faulted_app(
        params["app"],
        params["scenario"],
        seed=seed,
        quick=bool(params.get("quick", False)),
    )


def fault_case_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A fault-catalog cell plus its ``repro.metrics/v1`` snapshot."""
    from ..faults.runner import run_faulted_app
    from ..obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    summary = run_faulted_app(
        params["app"],
        params["scenario"],
        seed=seed,
        quick=bool(params.get("quick", False)),
        registry=registry,
    )
    return {"summary": summary, "metrics": registry.as_dict()}
