"""Spawn-importable task functions for the stock sweeps.

Every task here is a module-level function ``task(params, seed)`` so a
spawned worker can import it by reference.  Tasks import the application
stacks lazily inside their bodies — the analysis/apps layers import
:mod:`repro.parallel` for the runner, and eager imports here would close
that cycle.

Two shapes per family where needed:

* the *plain* task returns the same object the historical serial loop
  produced (``KeyDbResult``, ``OverloadRunSummary``, ...) — this is what
  the figure/overload/fault runners fan out over;
* the ``*_observed`` variant additionally snapshots a per-point
  :class:`~repro.obs.registry.MetricsRegistry` and returns its
  ``repro.metrics/v1`` document, which ``repro sweep`` merges into one
  export (see :mod:`repro.parallel.merge`).

Steady-state families additionally have ``*_analytic`` twins backed by
:mod:`repro.analytic` (same signature, same return shape, no event
loop) and — for fig5, whose grid mixes steady cells with the
hot-promotion transient — an ``*_auto`` router that picks per point via
:func:`repro.analytic.select.select_backend`.  Emission is shared:
whichever backend produced a result, the observed document carries the
same metric families, so merged exports are backend-agnostic.  Each
non-DES task advertises its backend through a ``__repro_backend__``
attribute, which the sweep cache folds into the point fingerprint so
analytic and DES results never alias (see
:func:`repro.cache.fingerprint.backend_identity`).
"""

from __future__ import annotations

from typing import Any, Dict, Mapping

__all__ = [
    "demo_point",
    "demo_point_observed",
    "fig3_panel",
    "fig3_panel_observed",
    "fig3_panel_analytic",
    "fig3_panel_analytic_observed",
    "fig4_pattern_mix",
    "fig4_pattern_mix_observed",
    "fig4_pattern_mix_analytic",
    "fig4_pattern_mix_analytic_observed",
    "fig5_cell",
    "fig5_cell_observed",
    "fig5_cell_analytic",
    "fig5_cell_analytic_observed",
    "fig5_cell_auto",
    "fig5_cell_auto_observed",
    "fig7_config",
    "fig7_config_observed",
    "fig8_cell",
    "fig8_cell_observed",
    "fig8_cell_analytic",
    "fig8_cell_analytic_observed",
    "fig10_config",
    "fig10_config_observed",
    "overload_point",
    "overload_point_observed",
    "fault_case",
    "fault_case_observed",
]


def _analytic_backend(params: Mapping[str, Any]):
    """``__repro_backend__`` of every pure-analytic task (lazy import)."""
    from ..analytic.model import ANALYTIC_MODEL_VERSION

    return ("analytic", ANALYTIC_MODEL_VERSION)


def _fig5_auto_backend(params: Mapping[str, Any]):
    """``__repro_backend__`` of the fig5 router: resolved per point."""
    from ..analytic.model import ANALYTIC_MODEL_VERSION
    from ..analytic.select import select_backend

    if select_backend("fig5", params) == "analytic":
        return ("analytic", ANALYTIC_MODEL_VERSION)
    return ("des", 0)


def demo_point(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A tiny deterministic task for smoke tests and examples.

    Draws a few values from the seeded RNG stream and returns summary
    statistics.  ``params["poison"]`` truthy makes the point crash —
    used to exercise the runner's failure isolation.  ``params["sleep_s"]``
    pads the point's wall-clock without touching its value, so timing
    tests (mid-job kills, deadline shedding) get points slow enough to
    interrupt but still value-deterministic.
    """
    import time

    from ..sim.rng import RngFactory

    if params.get("poison"):
        raise RuntimeError(f"poisoned point (seed {seed})")
    if params.get("sleep_s"):
        time.sleep(float(params["sleep_s"]))
    rng = RngFactory(seed).stream("parallel-demo")
    draws = rng.random(int(params.get("draws", 64)))
    return {
        "seed": seed,
        "n": int(draws.size),
        "mean": float(draws.mean()),
        "min": float(draws.min()),
        "max": float(draws.max()),
    }


def demo_point_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A demo point plus its ``repro.metrics/v1`` snapshot.

    The ``demo`` target of ``repro serve``: a sweep point cheap enough
    that service-level tests (admission, kill/resume, drain) measure the
    server, not the workload.
    """
    from ..obs.registry import MetricsRegistry

    stats = demo_point(params, seed)
    registry = MetricsRegistry()
    gauge = registry.gauge(
        "demo_draws", "summary statistics of one demo point", ("quantity",)
    )
    rows = []
    for quantity in ("n", "mean", "min", "max"):
        gauge.set(float(stats[quantity]), quantity=quantity)
        rows.append((quantity, f"{stats[quantity]:.6g}"))
    return {"rows": rows, "metrics": registry.as_dict()}


# -- Fig. 3 / Fig. 4 (loaded latency) ---------------------------------------


def fig3_panel(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One Fig. 3 panel: ``{mix: MlcCurve}`` for one distance."""
    from ..analysis.figures import _panel_path
    from ..hw.presets import paper_cxl_platform
    from ..workloads.mlc import MlcProbe

    platform = paper_cxl_platform(snc_enabled=True)
    probe = MlcProbe(platform, threads=int(params.get("threads", 16)))
    path = _panel_path(platform, params["panel"])
    return {
        f"{r}:{w}": probe.loaded_latency_curve(
            path, r, w, load_points=list(params["fractions"])
        )
        for r, w in params["mixes"]
    }


def _fig3_document(curves: Dict[str, Any], panel: str) -> Dict[str, Any]:
    """The observed document of one fig3 panel (backend-agnostic)."""
    from ..obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    gauge = registry.gauge(
        "mlc_curve", "loaded-latency curve endpoints",
        ("panel", "mix", "quantity"),
    )
    rows = []
    for mix, curve in curves.items():
        gauge.set(curve.idle_latency_ns, panel=panel, mix=mix,
                  quantity="idle_latency_ns")
        gauge.set(curve.peak_bandwidth_gbps, panel=panel, mix=mix,
                  quantity="peak_bandwidth_gbps")
        rows.append((f"{mix} idle ns", f"{curve.idle_latency_ns:.1f}"))
        rows.append((f"{mix} peak GB/s", f"{curve.peak_bandwidth_gbps:.1f}"))
    return {"rows": rows, "metrics": registry.as_dict()}


def fig3_panel_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A Fig. 3 panel plus its ``repro.metrics/v1`` snapshot."""
    return _fig3_document(fig3_panel(params, seed), params["panel"])


def fig3_panel_analytic(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """The closed-form Fig. 3 panel: bit-identical curves, no DES."""
    from ..analysis.figures import _panel_path
    from ..analytic.mlc import AnalyticMlcProbe
    from ..hw.presets import paper_cxl_platform

    platform = paper_cxl_platform(snc_enabled=True)
    probe = AnalyticMlcProbe(platform, threads=int(params.get("threads", 16)))
    path = _panel_path(platform, params["panel"])
    return {
        f"{r}:{w}": probe.loaded_latency_curve(
            path, r, w, load_points=list(params["fractions"])
        )
        for r, w in params["mixes"]
    }


fig3_panel_analytic.__repro_backend__ = _analytic_backend


def fig3_panel_analytic_observed(
    params: Mapping[str, Any], seed: int
) -> Dict[str, Any]:
    """An analytic Fig. 3 panel plus its ``repro.metrics/v1`` snapshot."""
    return _fig3_document(fig3_panel_analytic(params, seed), params["panel"])


fig3_panel_analytic_observed.__repro_backend__ = _analytic_backend


def fig4_pattern_mix(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One Fig. 4 cell: ``{panel: MlcCurve}`` for one (pattern, mix)."""
    from ..analysis.figures import FIG3_PANELS, _panel_path
    from ..hw.presets import paper_cxl_platform
    from ..workloads.mlc import MlcProbe

    platform = paper_cxl_platform(snc_enabled=True)
    probe = MlcProbe(platform, threads=16, pattern=params["pattern"])
    r, w = params["mix"]
    return {
        panel: probe.loaded_latency_curve(
            _panel_path(platform, panel), r, w,
            load_points=list(params["fractions"]),
        )
        for panel in FIG3_PANELS
    }


def _fig4_document(
    per_panel: Dict[str, Any], pattern: str, mix: str
) -> Dict[str, Any]:
    """The observed document of one fig4 cell (backend-agnostic)."""
    from ..obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    gauge = registry.gauge(
        "mlc_curve", "loaded-latency curve endpoints",
        ("pattern", "mix", "panel", "quantity"),
    )
    rows = []
    for panel, curve in per_panel.items():
        gauge.set(curve.idle_latency_ns, pattern=pattern, mix=mix,
                  panel=panel, quantity="idle_latency_ns")
        gauge.set(curve.peak_bandwidth_gbps, pattern=pattern, mix=mix,
                  panel=panel, quantity="peak_bandwidth_gbps")
        rows.append((f"{panel} idle ns", f"{curve.idle_latency_ns:.1f}"))
        rows.append((f"{panel} peak GB/s", f"{curve.peak_bandwidth_gbps:.1f}"))
    return {"rows": rows, "metrics": registry.as_dict()}


def fig4_pattern_mix_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A Fig. 4 cell plus its ``repro.metrics/v1`` snapshot."""
    r, w = params["mix"]
    return _fig4_document(
        fig4_pattern_mix(params, seed), params["pattern"], f"{r}:{w}"
    )


def fig4_pattern_mix_analytic(
    params: Mapping[str, Any], seed: int
) -> Dict[str, Any]:
    """The closed-form Fig. 4 cell: bit-identical curves, no DES."""
    from ..analysis.figures import FIG3_PANELS, _panel_path
    from ..analytic.mlc import AnalyticMlcProbe
    from ..hw.presets import paper_cxl_platform

    platform = paper_cxl_platform(snc_enabled=True)
    probe = AnalyticMlcProbe(platform, threads=16, pattern=params["pattern"])
    r, w = params["mix"]
    return {
        panel: probe.loaded_latency_curve(
            _panel_path(platform, panel), r, w,
            load_points=list(params["fractions"]),
        )
        for panel in FIG3_PANELS
    }


fig4_pattern_mix_analytic.__repro_backend__ = _analytic_backend


def fig4_pattern_mix_analytic_observed(
    params: Mapping[str, Any], seed: int
) -> Dict[str, Any]:
    """An analytic Fig. 4 cell plus its ``repro.metrics/v1`` snapshot."""
    r, w = params["mix"]
    return _fig4_document(
        fig4_pattern_mix_analytic(params, seed), params["pattern"], f"{r}:{w}"
    )


fig4_pattern_mix_analytic_observed.__repro_backend__ = _analytic_backend


# -- Fig. 5 / Fig. 8 (KeyDB YCSB) -------------------------------------------


def fig5_cell(params: Mapping[str, Any], seed: int):
    """One Fig. 5 cell: a (workload, configuration) YCSB run."""
    from ..apps.kvstore import run_keydb_config

    return run_keydb_config(
        params["config"],
        workload=params["workload"],
        record_count=int(params["record_count"]),
        total_ops=int(params["total_ops"]),
        seed=seed,
    )


def _fig5_document(result, config: str, workload: str) -> Dict[str, Any]:
    """The observed document of one fig5 cell (backend-agnostic)."""
    from ..obs.registry import MetricsRegistry, histogram_samples

    registry = MetricsRegistry()
    labels = {"config": config, "workload": workload}
    result.counters.register_into(registry, "keydb_ops", labels=dict(labels))
    run_info = registry.gauge(
        "keydb_run", "headline run numbers", ("config", "workload", "quantity")
    )
    run_info.set(float(result.ops), quantity="ops", **labels)
    run_info.set(result.elapsed_ns, quantity="elapsed_ns", **labels)
    run_info.set(result.throughput_ops_per_s,
                 quantity="throughput_ops_per_s", **labels)
    registry.register_collector(
        lambda: histogram_samples(
            "keydb_read_latency_ns", {**labels, "op": "read"},
            result.read_latency,
        )
    )
    registry.register_collector(
        lambda: histogram_samples(
            "keydb_write_latency_ns", {**labels, "op": "write"},
            result.write_latency,
        )
    )
    return {
        "config": config,
        "workload": workload,
        "throughput_ops_per_s": result.throughput_ops_per_s,
        "metrics": registry.as_dict(),
    }


def fig5_cell_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A Fig. 5 cell plus its ``repro.metrics/v1`` snapshot."""
    return _fig5_document(
        fig5_cell(params, seed), params["config"], params["workload"]
    )


def fig5_cell_analytic(params: Mapping[str, Any], seed: int):
    """One Fig. 5 cell on the analytical steady-state backend."""
    from ..analytic.keydb import analytic_keydb_config

    return analytic_keydb_config(
        params["config"],
        workload=params["workload"],
        record_count=int(params["record_count"]),
        total_ops=int(params["total_ops"]),
        seed=seed,
    )


fig5_cell_analytic.__repro_backend__ = _analytic_backend


def fig5_cell_analytic_observed(
    params: Mapping[str, Any], seed: int
) -> Dict[str, Any]:
    """An analytic Fig. 5 cell plus its ``repro.metrics/v1`` snapshot."""
    return _fig5_document(
        fig5_cell_analytic(params, seed), params["config"], params["workload"]
    )


fig5_cell_analytic_observed.__repro_backend__ = _analytic_backend


def fig5_cell_auto(params: Mapping[str, Any], seed: int):
    """One Fig. 5 cell, backend picked per point (``--backend auto``)."""
    from ..analytic.select import select_backend

    if select_backend("fig5", params) == "analytic":
        return fig5_cell_analytic(params, seed)
    return fig5_cell(params, seed)


fig5_cell_auto.__repro_backend__ = _fig5_auto_backend


def fig5_cell_auto_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """An auto-routed Fig. 5 cell plus its ``repro.metrics/v1`` snapshot."""
    return _fig5_document(
        fig5_cell_auto(params, seed), params["config"], params["workload"]
    )


fig5_cell_auto_observed.__repro_backend__ = _fig5_auto_backend


def fig8_cell(params: Mapping[str, Any], seed: int):
    """One Fig. 8 half: YCSB-C bound entirely to MMEM or to CXL."""
    from ..apps.kvstore import run_keydb_cxl_only

    return run_keydb_cxl_only(
        bool(params["on_cxl"]),
        int(params["record_count"]),
        int(params["total_ops"]),
        seed,
    )


def _fig8_document(result, side: str) -> Dict[str, Any]:
    """The observed document of one fig8 half (backend-agnostic)."""
    from ..obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    gauge = registry.gauge(
        "keydb_cxl_only", "numactl-bound YCSB-C run", ("side", "quantity")
    )
    p50 = result.read_latency.percentile(50)
    p99 = result.read_latency.percentile(99)
    gauge.set(result.throughput_ops_per_s, side=side,
              quantity="throughput_ops_per_s")
    gauge.set(p50, side=side, quantity="read_p50_ns")
    gauge.set(p99, side=side, quantity="read_p99_ns")
    rows = [
        ("throughput kops/s", f"{result.throughput_ops_per_s / 1e3:.0f}"),
        ("read p50 us", f"{p50 / 1e3:.1f}"),
        ("read p99 us", f"{p99 / 1e3:.1f}"),
    ]
    return {"rows": rows, "metrics": registry.as_dict()}


def fig8_cell_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A Fig. 8 half plus its ``repro.metrics/v1`` snapshot."""
    result = fig8_cell(params, seed)
    return _fig8_document(result, "cxl" if params["on_cxl"] else "mmem")


def fig8_cell_analytic(params: Mapping[str, Any], seed: int):
    """One Fig. 8 half on the analytical steady-state backend."""
    from ..analytic.keydb import analytic_keydb_cxl_only

    return analytic_keydb_cxl_only(
        bool(params["on_cxl"]),
        int(params["record_count"]),
        int(params["total_ops"]),
        seed,
    )


fig8_cell_analytic.__repro_backend__ = _analytic_backend


def fig8_cell_analytic_observed(
    params: Mapping[str, Any], seed: int
) -> Dict[str, Any]:
    """An analytic Fig. 8 half plus its ``repro.metrics/v1`` snapshot."""
    result = fig8_cell_analytic(params, seed)
    return _fig8_document(result, "cxl" if params["on_cxl"] else "mmem")


fig8_cell_analytic_observed.__repro_backend__ = _analytic_backend


# -- Fig. 7 (Spark) ----------------------------------------------------------


def fig7_config(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """One Fig. 7 column: all TPC-H queries under one configuration."""
    from ..apps.spark.experiment import run_spark_config

    return run_spark_config(params["config"])


def fig7_config_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A Fig. 7 column plus its ``repro.metrics/v1`` snapshot."""
    from ..obs.registry import MetricsRegistry

    per_query = fig7_config(params, seed)
    config = params["config"]
    registry = MetricsRegistry()
    gauge = registry.gauge(
        "spark_query", "per-query TPC-H results",
        ("config", "query", "quantity"),
    )
    rows = []
    for query in sorted(per_query):
        result = per_query[query]
        gauge.set(result.total_ns, config=config, query=query,
                  quantity="total_ns")
        gauge.set(result.shuffle_fraction, config=config, query=query,
                  quantity="shuffle_fraction")
        rows.append((f"{query} total ms", f"{result.total_ns / 1e6:.2f}"))
    return {"rows": rows, "metrics": registry.as_dict()}


# -- Fig. 10 (LLM serving) ---------------------------------------------------


def fig10_config(params: Mapping[str, Any], seed: int):
    """One Fig. 10(a) series: the backend-count sweep for one config."""
    from ..apps.llm import LlmServingExperiment

    return LlmServingExperiment(params["config"]).sweep(
        tuple(params["backend_counts"])
    )


def fig10_config_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A Fig. 10(a) series plus its ``repro.metrics/v1`` snapshot."""
    from ..obs.registry import MetricsRegistry

    points = fig10_config(params, seed)
    config = params["config"]
    registry = MetricsRegistry()
    gauge = registry.gauge(
        "llm_serving", "serving-rate sweep samples",
        ("config", "backends", "quantity"),
    )
    rows = []
    for point in points:
        gauge.set(point.tokens_per_second, config=config,
                  backends=point.backends, quantity="tokens_per_s")
        gauge.set(point.dram_utilization, config=config,
                  backends=point.backends, quantity="dram_utilization")
        gauge.set(point.cxl_utilization, config=config,
                  backends=point.backends, quantity="cxl_utilization")
        rows.append(
            (f"{point.backends} backends tokens/s",
             f"{point.tokens_per_second:.0f}")
        )
    return {"rows": rows, "metrics": registry.as_dict()}


# -- overload sweeps ---------------------------------------------------------


def overload_point(params: Mapping[str, Any], seed: int):
    """One offered-load factor of the goodput sweep."""
    from ..overload.runner import run_offered_load

    return run_offered_load(
        params["rate_ops_per_s"],
        params["policy"],
        duration_ns=params["duration_ns"],
        config=params["config"],
        record_count=int(params["record_count"]),
        seed=seed,
        threads=int(params["threads"]),
        label=params["label"],
        load_factor=params["load_factor"],
    )


def overload_point_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """An offered-load point plus its ``repro.metrics/v1`` snapshot."""
    from ..obs.registry import MetricsRegistry
    from ..overload.runner import run_offered_load

    registry = MetricsRegistry()
    summary = run_offered_load(
        params["rate_ops_per_s"],
        params["policy"],
        duration_ns=params["duration_ns"],
        config=params["config"],
        record_count=int(params["record_count"]),
        seed=seed,
        threads=int(params["threads"]),
        label=params["label"],
        load_factor=params["load_factor"],
        registry=registry,
    )
    return {"summary": summary, "metrics": registry.as_dict()}


# -- fault catalog -----------------------------------------------------------


def fault_case(params: Mapping[str, Any], seed: int):
    """One (app, scenario) cell of the fault catalog."""
    from ..faults.runner import run_faulted_app

    return run_faulted_app(
        params["app"],
        params["scenario"],
        seed=seed,
        quick=bool(params.get("quick", False)),
    )


def fault_case_observed(params: Mapping[str, Any], seed: int) -> Dict[str, Any]:
    """A fault-catalog cell plus its ``repro.metrics/v1`` snapshot."""
    from ..faults.runner import run_faulted_app
    from ..obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    summary = run_faulted_app(
        params["app"],
        params["scenario"],
        seed=seed,
        quick=bool(params.get("quick", False)),
        registry=registry,
    )
    return {"summary": summary, "metrics": registry.as_dict()}
