"""Offered-load experiments: the goodput curve and the fault comparison.

Two drivers, shared by the ``repro overload`` CLI and the benchmark:

* :func:`sweep_offered_load` — open-loop KeyDB (Poisson arrivals on the
  DES) swept across offered-load factors of the calibrated closed-loop
  capacity.  Uncontrolled, throughput past the knee turns into an
  unbounded backlog: p99 diverges and goodput (in-deadline completions)
  collapses.  With admission control the excess is refused at arrival
  and goodput plateaus near the knee — the load-shedding analogue of
  the paper's §3.2 observation that running a CXL device past its
  bandwidth knee buys no throughput, only latency.

* :func:`run_fault_comparison` — the same server under the catalog's
  ``link-degrade`` scenario, controlled vs uncontrolled: SLO-aware
  shedding trades a slice of offered load for a bounded deadline-miss
  rate while the uncontrolled run drags every request through the
  degraded window.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..parallel.jobs import SweepSpec

from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from ..faults.scenarios import build_scenario
from ..sim.rng import DEFAULT_SEED
from .policy import OverloadController, OverloadPolicy
from .queue import QueueDiscipline

__all__ = [
    "OverloadRunSummary",
    "calibrate_capacity_ops_per_s",
    "control_policy",
    "baseline_policy",
    "run_offered_load",
    "sweep_offered_load",
    "offered_load_sweep_spec",
    "run_fault_comparison",
]


@dataclass
class OverloadRunSummary:
    """One open-loop run distilled for tables/JSON."""

    label: str
    offered_ops_per_s: float
    load_factor: float
    duration_ns: float
    offered: int
    admitted: int
    completed: int
    good: int
    deadline_misses: int
    rejected: int
    shed: int
    goodput_ops_per_s: float
    throughput_ops_per_s: float
    shed_rate: float
    deadline_miss_rate: float
    p50_ns: float
    p99_ns: float
    counters: Dict[str, float] = field(default_factory=dict)

    def rows(self) -> List[Tuple[str, str]]:
        """(quantity, value) pairs for ascii_table rendering."""

        def _us(value: float) -> str:
            return "n/a (no samples)" if math.isnan(value) else f"{value / 1e3:.1f} us"

        return [
            ("offered load", f"{self.offered_ops_per_s:.0f} ops/s"
             f" ({self.load_factor:.2f}x capacity)"),
            ("offered ops", f"{self.offered}"),
            ("admitted ops", f"{self.admitted}"),
            ("completed ops", f"{self.completed}"),
            ("in-deadline (good) ops", f"{self.good}"),
            ("rejected ops", f"{self.rejected}"),
            ("shed ops", f"{self.shed}"),
            ("deadline misses", f"{self.deadline_misses}"),
            ("goodput", f"{self.goodput_ops_per_s:.0f} ops/s"),
            ("throughput", f"{self.throughput_ops_per_s:.0f} ops/s"),
            ("shed rate", f"{self.shed_rate * 100:.1f}%"),
            ("deadline-miss rate", f"{self.deadline_miss_rate * 100:.1f}%"),
            ("p50 latency", _us(self.p50_ns)),
            ("p99 latency", _us(self.p99_ns)),
        ]

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready snapshot (NaN becomes None)."""

        def _num(value: float) -> Optional[float]:
            return None if math.isnan(value) or math.isinf(value) else value

        return {
            "label": self.label,
            "offered_ops_per_s": self.offered_ops_per_s,
            "load_factor": self.load_factor,
            "duration_ns": self.duration_ns,
            "offered": self.offered,
            "admitted": self.admitted,
            "completed": self.completed,
            "good": self.good,
            "deadline_misses": self.deadline_misses,
            "rejected": self.rejected,
            "shed": self.shed,
            "goodput_ops_per_s": self.goodput_ops_per_s,
            "throughput_ops_per_s": self.throughput_ops_per_s,
            "shed_rate": self.shed_rate,
            "deadline_miss_rate": self.deadline_miss_rate,
            "p50_ns": _num(self.p50_ns),
            "p99_ns": _num(self.p99_ns),
            "counters": dict(self.counters),
        }


#: Scaled-down defaults: small store + short windows keep a full sweep
#: interactive while preserving the knee/backlog dynamics.
DEFAULT_CONFIG = "1:1"
DEFAULT_RECORDS = 16_384
DEFAULT_DURATION_NS = 40e6


def _fresh_server(
    config: str,
    record_count: int,
    seed: int,
    threads: int,
    controller: Optional[OverloadController],
    tracer=None,
    engine_profile=None,
):
    """A brand-new DES server + generator (state is never reused)."""
    # Imported here, not at module top: the apps import repro.overload,
    # so a top-level import would be circular.
    from ..apps.kvstore.des_server import DesKeyDbServer
    from ..apps.kvstore.experiment import build_keydb_experiment
    from ..obs.tracing import NULL_TRACER

    experiment = build_keydb_experiment(
        config, record_count=record_count, seed=seed, threads=threads
    )
    server = DesKeyDbServer(
        experiment.platform,
        experiment.server.store,
        threads=threads,
        overload=controller,
        tracer=tracer if tracer is not None else NULL_TRACER,
        engine_profile=engine_profile,
    )
    return server, experiment.generator, experiment.platform


def calibrate_capacity_ops_per_s(
    config: str = DEFAULT_CONFIG,
    record_count: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    threads: int = 7,
    calibrate_ops: int = 20_000,
) -> float:
    """Closed-loop capacity of the DES server (ops/s).

    The closed loop self-clocks at the service rate, so its throughput
    *is* the capacity the offered-load factors scale against — the
    serving-stack analogue of the §3.2 loaded-latency knee.
    """
    server, generator, _ = _fresh_server(config, record_count, seed, threads, None)
    result = server.run(generator, calibrate_ops)
    if result.elapsed_ns <= 0:
        raise ConfigurationError("calibration run produced no elapsed time")
    return result.ops / (result.elapsed_ns / 1e9)


def control_policy(
    capacity_ops_per_s: float,
    budget_ns: float,
    threads: int = 7,
    discipline: QueueDiscipline = QueueDiscipline.FIFO,
    admit_fraction: float = 0.95,
) -> OverloadPolicy:
    """The controlled configuration of the goodput experiments.

    A token bucket pinned just under the calibrated capacity keeps the
    admitted rate on the stable side of the knee; a short bounded queue
    converts bursts into cheap rejections; doomed work is shed; capacity
    loss raises the admitted-priority floor.
    """
    return OverloadPolicy(
        queue_capacity=max(4 * threads, 16),
        discipline=discipline,
        rate_ops_per_s=admit_fraction * capacity_ops_per_s,
        burst_ops=max(2.0 * threads, 8.0),
        default_budget_ns=budget_ns,
        shed_doomed=True,
        shed_on_capacity_loss=True,
        priority_levels=4,
    )


def baseline_policy(budget_ns: float) -> OverloadPolicy:
    """The uncontrolled baseline: admit everything, only measure."""
    return OverloadPolicy.monitor_only(default_budget_ns=budget_ns)


def default_budget_ns(capacity_ops_per_s: float, threads: int = 7) -> float:
    """A deadline generous at healthy load, hopeless under backlog.

    Sized at ~8x the queue-drain time of a full control queue, so a
    controlled run completes essentially everything it admits while an
    uncontrolled run's linearly-growing backlog blows through it.
    """
    queue_depth = max(4 * threads, 16)
    return 8.0 * queue_depth / capacity_ops_per_s * 1e9


def run_offered_load(
    rate_ops_per_s: float,
    policy: OverloadPolicy,
    duration_ns: float = DEFAULT_DURATION_NS,
    config: str = DEFAULT_CONFIG,
    record_count: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    threads: int = 7,
    label: str = "run",
    load_factor: float = float("nan"),
    injector: Optional[FaultInjector] = None,
    registry=None,
    tracer=None,
    engine_profile=None,
) -> OverloadRunSummary:
    """One open-loop run at a fixed offered rate, summarized.

    ``registry``/``tracer``/``engine_profile`` hook the run into the
    observability layer: the overload funnel and per-op counters bind
    into the registry, spans and engine accounting flow into the given
    tracer/profile.
    """
    controller = OverloadController(policy)
    server, generator, platform = _fresh_server(
        config, record_count, seed, threads, controller,
        tracer=tracer, engine_profile=engine_profile,
    )
    if injector is not None:
        controller.bind_faults(injector)
    result = server.run_open_loop(
        generator,
        rate_ops_per_s,
        duration_ns,
        seed=seed,
        injector=injector,
    )
    metrics = controller.metrics
    if registry is not None:
        metrics.register_into(registry, labels={"run": label})
        result.counters.register_into(registry, "keydb_ops",
                                      labels={"run": label})
        if engine_profile is not None:
            engine_profile.register_into(registry)
    elapsed = max(result.elapsed_ns, 1.0)
    del platform
    return OverloadRunSummary(
        label=label,
        offered_ops_per_s=rate_ops_per_s,
        load_factor=load_factor,
        duration_ns=duration_ns,
        offered=metrics.offered,
        admitted=metrics.admitted,
        completed=metrics.completed,
        good=metrics.good,
        deadline_misses=metrics.deadline_misses,
        rejected=metrics.total_rejected,
        shed=metrics.total_shed,
        goodput_ops_per_s=metrics.goodput_ops_per_s(elapsed),
        throughput_ops_per_s=result.ops / (elapsed / 1e9),
        shed_rate=metrics.shed_rate(),
        deadline_miss_rate=metrics.deadline_miss_rate(),
        p50_ns=result.read_latency.percentile(50),
        p99_ns=result.read_latency.percentile(99),
        counters=result.counters.as_dict(),
    )


def sweep_offered_load(
    factors: Optional[List[float]] = None,
    controlled: bool = True,
    duration_ns: float = DEFAULT_DURATION_NS,
    config: str = DEFAULT_CONFIG,
    record_count: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    threads: int = 7,
    discipline: QueueDiscipline = QueueDiscipline.FIFO,
    workers: Optional[int] = None,
    cache=None,
    supervise=None,
) -> List[OverloadRunSummary]:
    """Offered load vs goodput: sweep factors of the calibrated capacity.

    Capacity is calibrated once in the parent; the per-factor runs are
    independent and fan out across ``workers`` processes (the policy is
    pure declarative config, so it pickles into spawned workers).
    ``cache`` (a :class:`~repro.cache.store.SweepCache`) memoizes
    completed factors — the policy and calibrated rate are part of each
    point's params, so a recalibration that changes them re-executes.
    """
    spec = offered_load_sweep_spec(
        factors=factors,
        controlled=controlled,
        duration_ns=duration_ns,
        config=config,
        record_count=record_count,
        seed=seed,
        threads=threads,
        discipline=discipline,
    )
    from ..parallel import run_sweep

    sweep = run_sweep(spec, workers=workers, cache=cache,
                      supervise=supervise).raise_failures()
    return list(sweep.values())


def offered_load_sweep_spec(
    factors: Optional[List[float]] = None,
    controlled: bool = True,
    duration_ns: float = DEFAULT_DURATION_NS,
    config: str = DEFAULT_CONFIG,
    record_count: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    threads: int = 7,
    discipline: QueueDiscipline = QueueDiscipline.FIFO,
    observed: bool = False,
) -> "SweepSpec":
    """The goodput sweep as a :class:`~repro.parallel.jobs.SweepSpec`.

    Runs the (serial) capacity calibration up front so every point
    carries a fully-resolved rate and policy; ``observed=True`` selects
    the task variant that also snapshots per-point metrics for
    ``repro sweep overload``.
    """
    from ..parallel import SweepPoint, SweepSpec, tasks

    if factors is None:
        factors = [0.5, 0.75, 1.0, 1.25, 1.5]
    capacity = calibrate_capacity_ops_per_s(config, record_count, seed, threads)
    budget = default_budget_ns(capacity, threads)
    if controlled:
        policy = control_policy(capacity, budget, threads, discipline)
    else:
        policy = baseline_policy(budget)
    mode = "controlled" if controlled else "uncontrolled"
    return SweepSpec(
        name="overload",
        task=tasks.overload_point_observed if observed else tasks.overload_point,
        points=tuple(
            SweepPoint(
                key=f"{mode}@{factor:.2f}x",
                params={
                    "rate_ops_per_s": factor * capacity,
                    "policy": policy,
                    "duration_ns": duration_ns,
                    "config": config,
                    "record_count": record_count,
                    "threads": threads,
                    "label": f"{mode} @ {factor:.2f}x",
                    "load_factor": factor,
                },
                seed=seed,
            )
            for factor in factors
        ),
        base_seed=seed,
    )


def run_fault_comparison(
    scenario: str = "link-degrade",
    load_factor: float = 1.0,
    duration_ns: float = DEFAULT_DURATION_NS,
    config: str = DEFAULT_CONFIG,
    record_count: int = DEFAULT_RECORDS,
    seed: int = DEFAULT_SEED,
    threads: int = 7,
) -> Dict[str, OverloadRunSummary]:
    """Capacity-loss shedding vs riding out the fault uncontrolled.

    The catalog scenario occupies the middle of the run.  The controlled
    policy senses lost capacity through the bound injector, raises the
    admitted-priority floor, and sheds doomed work; the uncontrolled
    baseline serves everything late.  Returns per-label summaries whose
    deadline-miss rates are the headline comparison.
    """
    from ..apps.kvstore.des_server import DesKeyDbServer
    from ..apps.kvstore.experiment import build_keydb_experiment

    capacity = calibrate_capacity_ops_per_s(config, record_count, seed, threads)
    budget = default_budget_ns(capacity, threads)
    window = (0.30 * duration_ns, 0.40 * duration_ns)
    out: Dict[str, OverloadRunSummary] = {}
    for label, policy in (
        ("controlled", control_policy(capacity, budget, threads)),
        ("uncontrolled", baseline_policy(budget)),
    ):
        # Fresh platform/injector per run: the injector mutates platform
        # state as it advances.
        experiment = build_keydb_experiment(
            config, record_count=record_count, seed=seed, threads=threads
        )
        plan = build_scenario(scenario, experiment.platform, seed, window)
        injector = FaultInjector(experiment.platform, plan)
        controller = OverloadController(policy)
        controller.bind_faults(injector)
        server = DesKeyDbServer(
            experiment.platform,
            experiment.server.store,
            threads=threads,
            overload=controller,
        )
        result = server.run_open_loop(
            experiment.generator,
            load_factor * capacity,
            duration_ns,
            seed=seed,
            injector=injector,
        )
        metrics = controller.metrics
        elapsed = max(result.elapsed_ns, 1.0)
        out[label] = OverloadRunSummary(
            label=f"{label} + {scenario}",
            offered_ops_per_s=load_factor * capacity,
            load_factor=load_factor,
            duration_ns=duration_ns,
            offered=metrics.offered,
            admitted=metrics.admitted,
            completed=metrics.completed,
            good=metrics.good,
            deadline_misses=metrics.deadline_misses,
            rejected=metrics.total_rejected,
            shed=metrics.total_shed,
            goodput_ops_per_s=metrics.goodput_ops_per_s(elapsed),
            throughput_ops_per_s=result.ops / (elapsed / 1e9),
            shed_rate=metrics.shed_rate(),
            deadline_miss_rate=metrics.deadline_miss_rate(),
            p50_ns=result.read_latency.percentile(50),
            p99_ns=result.read_latency.percentile(99),
        )
    return out
