"""Admission controllers: token bucket, concurrency limit, adaptive.

Three complementary throttles:

* :class:`TokenBucketLimiter` — caps the *rate* of admitted work.
  Unlike :class:`repro.sim.resources.TokenBucket` it is not bound to a
  :class:`~repro.sim.engine.Simulator`; callers pass their own clock,
  so the epoch-model apps (which keep a scalar ``now_ns``) can use it
  too.
* :class:`ConcurrencyLimiter` — caps work *in flight* (Little's law:
  at fixed service time, bounding concurrency bounds queueing delay).
* :class:`AdaptiveLimiter` — an AIMD controller that discovers the
  sustainable concurrency by probing: additively raise the limit while
  latency stays below target and the bottleneck utilization stays
  below the loaded-latency knee (§3.2), multiplicatively back off when
  either signal crosses.  This is the same shape as TCP congestion
  control / Netflix concurrency-limits, driven here by the simulator's
  own utilization and latency telemetry.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError

__all__ = ["TokenBucketLimiter", "ConcurrencyLimiter", "AdaptiveLimiter"]


class TokenBucketLimiter:
    """A clock-agnostic token bucket (tokens = admitted operations)."""

    def __init__(self, rate_per_s: float, burst: float) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        if burst <= 0:
            raise ConfigurationError("burst must be positive")
        self.rate_per_ns = rate_per_s / 1e9
        self.burst = burst
        self._tokens = burst
        self._last_ns = 0.0

    def _refill(self, now_ns: float) -> None:
        if now_ns > self._last_ns:
            self._tokens = min(
                self.burst, self._tokens + (now_ns - self._last_ns) * self.rate_per_ns
            )
            self._last_ns = now_ns

    def tokens(self, now_ns: float) -> float:
        """Tokens available at ``now_ns``."""
        self._refill(now_ns)
        return self._tokens

    def try_acquire(self, now_ns: float, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; returns success."""
        if amount < 0:
            raise ConfigurationError("cannot take a negative amount")
        self._refill(now_ns)
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def set_rate(self, rate_per_s: float) -> None:
        """Adjust the refill rate (used by adaptive control)."""
        if rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        self.rate_per_ns = rate_per_s / 1e9


class ConcurrencyLimiter:
    """Bounds work in flight; non-blocking acquire with explicit failure."""

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ConfigurationError("concurrency limit must be positive")
        self.limit = limit
        self.in_flight = 0

    @property
    def available(self) -> int:
        """Slots free right now (0 when at or above the limit)."""
        return max(0, self.limit - self.in_flight)

    def try_acquire(self) -> bool:
        """Take one slot if the limit allows; returns success."""
        if self.in_flight >= self.limit:
            return False
        self.in_flight += 1
        return True

    def release(self) -> None:
        """Return one slot."""
        if self.in_flight <= 0:
            raise ConfigurationError("release without matching acquire")
        self.in_flight -= 1

    def set_limit(self, limit: int) -> None:
        """Adjust the limit (in-flight work above it drains naturally)."""
        if limit <= 0:
            raise ConfigurationError("concurrency limit must be positive")
        self.limit = limit


class AdaptiveLimiter:
    """AIMD concurrency controller tracking latency and the bandwidth knee.

    Feed it completion latencies (:meth:`observe_latency`) and the
    bottleneck utilization of the memory system
    (:meth:`observe_utilization`, e.g. the max of
    :meth:`repro.sim.traffic.AllocationResult.utilization` values or a
    path's bottleneck).  Once per ``adjust_interval_ns`` it compares the
    interval's mean latency against ``latency_target_ns`` and the last
    utilization sample against ``knee_utilization`` (from
    :meth:`repro.hw.latency.QueueingModel.knee_utilization`):

    * both below → additive increase (``limit += increase``);
    * either above → multiplicative decrease (``limit *= decrease``).

    The limit is a float internally (so small multiplicative steps
    accumulate); :attr:`limit` rounds it for use as a concurrency cap.
    """

    def __init__(
        self,
        initial_limit: int,
        min_limit: int = 1,
        max_limit: int = 4096,
        latency_target_ns: Optional[float] = None,
        knee_utilization: Optional[float] = None,
        increase: float = 1.0,
        decrease: float = 0.7,
        adjust_interval_ns: float = 1e6,
    ) -> None:
        if not 1 <= min_limit <= initial_limit <= max_limit:
            raise ConfigurationError(
                "limits must satisfy 1 <= min <= initial <= max"
            )
        if latency_target_ns is None and knee_utilization is None:
            raise ConfigurationError(
                "adaptive limiter needs a latency target or a knee utilization"
            )
        if latency_target_ns is not None and latency_target_ns <= 0:
            raise ConfigurationError("latency_target_ns must be positive")
        if knee_utilization is not None and not 0.0 < knee_utilization <= 1.0:
            raise ConfigurationError("knee_utilization must be in (0, 1]")
        if increase <= 0 or not 0.0 < decrease < 1.0:
            raise ConfigurationError("increase > 0 and 0 < decrease < 1 required")
        if adjust_interval_ns <= 0:
            raise ConfigurationError("adjust_interval_ns must be positive")
        self._limit = float(initial_limit)
        self.min_limit = min_limit
        self.max_limit = max_limit
        self.latency_target_ns = latency_target_ns
        self.knee_utilization = knee_utilization
        self.increase = increase
        self.decrease = decrease
        self.adjust_interval_ns = adjust_interval_ns
        self._interval_start_ns = 0.0
        self._latency_sum = 0.0
        self._latency_count = 0
        self._utilization = 0.0
        self.adjustments_up = 0
        self.adjustments_down = 0

    @property
    def limit(self) -> int:
        """The current concurrency limit, as an integer >= min_limit."""
        return max(self.min_limit, int(self._limit))

    def observe_latency(self, latency_ns: float, now_ns: float) -> None:
        """Record one completion latency and maybe adjust."""
        if latency_ns < 0:
            raise ConfigurationError("latency must be >= 0")
        self._latency_sum += latency_ns
        self._latency_count += 1
        self._maybe_adjust(now_ns)

    def observe_utilization(self, utilization: float, now_ns: float) -> None:
        """Record the current bottleneck utilization and maybe adjust."""
        if utilization < 0:
            raise ConfigurationError("utilization must be >= 0")
        self._utilization = utilization
        self._maybe_adjust(now_ns)

    def _overloaded(self) -> bool:
        if (
            self.latency_target_ns is not None
            and self._latency_count > 0
            and self._latency_sum / self._latency_count > self.latency_target_ns
        ):
            return True
        return (
            self.knee_utilization is not None
            and self._utilization > self.knee_utilization
        )

    def _maybe_adjust(self, now_ns: float) -> None:
        if now_ns - self._interval_start_ns < self.adjust_interval_ns:
            return
        if self._latency_count == 0 and self._utilization == 0.0:
            self._interval_start_ns = now_ns
            return
        if self._overloaded():
            self._limit = max(float(self.min_limit), self._limit * self.decrease)
            self.adjustments_down += 1
        else:
            self._limit = min(float(self.max_limit), self._limit + self.increase)
            self.adjustments_up += 1
        self._latency_sum = 0.0
        self._latency_count = 0
        self._interval_start_ns = now_ns
