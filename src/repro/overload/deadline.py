"""Deadline propagation primitives.

Every admitted unit of work carries an absolute :class:`Deadline` in
simulated time.  Each stage of the serving stack (KeyDB page ops, LLM
prefill/decode steps, Spark stages) checks the *remaining* budget
before spending effort, so work that can no longer finish in time is
shed early instead of completing a useless response — the standard
deadline-propagation discipline of RPC stacks, carried into the
simulator.

The deadline is a plain value object; the clock it is compared against
is whatever the caller's notion of "now" is (DES ``sim.now``, the epoch
server's ``now_ns``, the Spark runner's analytic timeline).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass, field

from ..errors import ConfigurationError

__all__ = ["Deadline", "Request"]


@dataclass(frozen=True)
class Deadline:
    """An absolute point in simulated time by which work must finish.

    ``math.inf`` means "no deadline"; all checks then trivially pass,
    so unconfigured apps behave exactly as before.
    """

    at_ns: float = math.inf

    def __post_init__(self) -> None:
        if math.isnan(self.at_ns):
            raise ConfigurationError("deadline must be a time, not NaN")

    @classmethod
    def after(cls, now_ns: float, budget_ns: float) -> "Deadline":
        """Deadline ``budget_ns`` from ``now_ns`` (inf budget = none)."""
        if budget_ns <= 0:
            raise ConfigurationError("deadline budget must be positive")
        return cls(now_ns + budget_ns)

    @property
    def unbounded(self) -> bool:
        """True when no deadline was set."""
        return math.isinf(self.at_ns)

    def remaining_ns(self, now_ns: float) -> float:
        """Budget left at ``now_ns`` (negative once expired)."""
        return self.at_ns - now_ns

    def expired(self, now_ns: float) -> bool:
        """True once ``now_ns`` has passed the deadline."""
        return now_ns > self.at_ns

    def can_finish(self, now_ns: float, estimate_ns: float) -> bool:
        """Would work estimated at ``estimate_ns`` still make the deadline?

        This is the *doomed-work* check: a stage that cannot finish in
        the remaining budget should shed now rather than burn capacity
        on a response nobody will wait for.
        """
        if self.unbounded:
            return True
        return now_ns + estimate_ns <= self.at_ns

    def tightened(self, other: "Deadline") -> "Deadline":
        """The stricter of two deadlines (propagation across stages)."""
        return self if self.at_ns <= other.at_ns else other


_REQUEST_IDS = itertools.count()


@dataclass
class Request:
    """One admitted (or candidate) unit of work moving through the stack.

    ``priority`` is ordinal: *higher* values are more important and are
    shed last.  ``cost_hint_ns`` is an optional service-time estimate
    used for doomed-work checks before the work is actually priced.
    """

    arrival_ns: float
    deadline: Deadline = field(default_factory=Deadline)
    priority: int = 0
    cost_hint_ns: float = 0.0
    request_id: int = field(default_factory=lambda: next(_REQUEST_IDS))
    #: Opaque application payload (e.g. the YCSB operation being queued).
    payload: object = None

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ConfigurationError("priority must be >= 0")
        if self.cost_hint_ns < 0:
            raise ConfigurationError("cost_hint_ns must be >= 0")

    def remaining_ns(self, now_ns: float) -> float:
        """Deadline budget left at ``now_ns``."""
        return self.deadline.remaining_ns(now_ns)

    def expired(self, now_ns: float) -> bool:
        """True once the request's deadline has passed."""
        return self.deadline.expired(now_ns)

    def doomed(self, now_ns: float, estimate_ns: float) -> bool:
        """True when ``estimate_ns`` more work cannot meet the deadline."""
        return not self.deadline.can_finish(now_ns, estimate_ns)
