"""The overload policy and its runtime controller.

:class:`OverloadPolicy` is the declarative bundle an application
accepts — queue bound and discipline, rate/concurrency/adaptive
limiters, default deadline budget, and shedding switches.  It is inert
configuration; :class:`OverloadController` is the per-run state machine
built from it that the apps actually consult:

* ``make_request`` stamps arrival time, priority, and an absolute
  deadline onto a unit of work;
* ``try_admit`` runs the admission pipeline (capacity-loss priority
  shedding → token bucket → concurrency limit → doomed-work check) and
  accounts every rejection by reason;
* ``complete``/``shed``/``release`` close the loop and feed the
  adaptive limiter;
* ``bind_faults`` connects the controller to a
  :class:`~repro.faults.injector.FaultInjector` so capacity lost to
  link degrade or device loss translates into *graceful* goodput
  reduction: the admitted-priority floor rises with the lost capacity
  fraction, shedding the lowest-priority work first instead of letting
  every request's latency collapse together.

When an app is constructed without a policy its behaviour is bit-for-
bit identical to before — the controller is simply absent.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..faults.injector import FaultInjector
from .deadline import Deadline, Request
from .limiter import AdaptiveLimiter, ConcurrencyLimiter, TokenBucketLimiter
from .metrics import OverloadMetrics
from .queue import AdmissionQueue, QueueDiscipline

__all__ = ["OverloadPolicy", "OverloadController"]

#: Admission-rejection reason strings (shared with metrics/tests).
REASON_CAPACITY = "capacity-loss"
REASON_RATE = "rate"
REASON_CONCURRENCY = "concurrency"
REASON_QUEUE_FULL = "queue-full"
REASON_DOOMED = "doomed"
REASON_EXPIRED = "expired"


@dataclass(frozen=True)
class OverloadPolicy:
    """Declarative overload-protection configuration for one app."""

    #: Bound on waiting work (used where the app has a real queue).
    queue_capacity: int = 64
    discipline: QueueDiscipline = QueueDiscipline.FIFO
    #: Token-bucket admission rate (ops/s); None disables the bucket.
    rate_ops_per_s: Optional[float] = None
    burst_ops: float = 32.0
    #: Hard cap on in-flight work; None disables the cap.
    max_concurrency: Optional[int] = None
    #: Enable the AIMD limiter (requires a target or knee below).
    adaptive: bool = False
    adaptive_latency_target_ns: Optional[float] = None
    #: Loaded-latency knee utilization (§3.2); the adaptive limiter
    #: backs off when the bottleneck crosses it.
    knee_utilization: Optional[float] = None
    adaptive_interval_ns: float = 1e6
    #: Default absolute deadline budget stamped on requests (inf = none).
    default_budget_ns: float = math.inf
    #: Shed work that can no longer meet its deadline, early.
    shed_doomed: bool = True
    #: Raise the admitted-priority floor as fault capacity is lost.
    shed_on_capacity_loss: bool = True
    #: Number of priority classes (0 .. levels-1; higher = keep longest).
    priority_levels: int = 2

    def __post_init__(self) -> None:
        if self.queue_capacity <= 0:
            raise ConfigurationError("queue_capacity must be positive")
        if self.rate_ops_per_s is not None and self.rate_ops_per_s <= 0:
            raise ConfigurationError("rate_ops_per_s must be positive")
        if self.burst_ops <= 0:
            raise ConfigurationError("burst_ops must be positive")
        if self.max_concurrency is not None and self.max_concurrency <= 0:
            raise ConfigurationError("max_concurrency must be positive")
        if self.default_budget_ns <= 0:
            raise ConfigurationError("default_budget_ns must be positive")
        if self.priority_levels < 1:
            raise ConfigurationError("priority_levels must be >= 1")
        if self.adaptive and (
            self.adaptive_latency_target_ns is None and self.knee_utilization is None
        ):
            raise ConfigurationError(
                "adaptive control needs a latency target or knee utilization"
            )

    @classmethod
    def monitor_only(cls, default_budget_ns: float = math.inf) -> "OverloadPolicy":
        """A policy that admits everything and only *measures*.

        This is the uncontrolled baseline: deadlines are stamped (so
        misses and goodput are measured) but nothing is ever rejected
        or shed — exactly today's behaviour, plus bookkeeping.
        """
        return cls(
            queue_capacity=2**31,
            rate_ops_per_s=None,
            max_concurrency=None,
            adaptive=False,
            default_budget_ns=default_budget_ns,
            shed_doomed=False,
            shed_on_capacity_loss=False,
        )


class OverloadController:
    """Per-run admission state machine built from an :class:`OverloadPolicy`."""

    def __init__(self, policy: OverloadPolicy) -> None:
        self.policy = policy
        self.metrics = OverloadMetrics()
        self.bucket: Optional[TokenBucketLimiter] = None
        if policy.rate_ops_per_s is not None:
            self.bucket = TokenBucketLimiter(policy.rate_ops_per_s, policy.burst_ops)
        self.concurrency: Optional[ConcurrencyLimiter] = None
        if policy.max_concurrency is not None:
            self.concurrency = ConcurrencyLimiter(policy.max_concurrency)
        self.adaptive: Optional[AdaptiveLimiter] = None
        if policy.adaptive:
            initial = policy.max_concurrency or 64
            self.adaptive = AdaptiveLimiter(
                initial_limit=initial,
                min_limit=1,
                max_limit=max(initial * 16, 64),
                latency_target_ns=policy.adaptive_latency_target_ns,
                knee_utilization=policy.knee_utilization,
                adjust_interval_ns=policy.adaptive_interval_ns,
            )
            if self.concurrency is None:
                self.concurrency = ConcurrencyLimiter(initial)
        self._injector: Optional[FaultInjector] = None
        self._fault_nodes: List[int] = []

    @property
    def has_fault_signal(self) -> bool:
        """True once a fault injector is bound for capacity sensing."""
        return self._injector is not None

    # -- construction helpers ---------------------------------------------

    def new_queue(self) -> AdmissionQueue:
        """A bounded queue configured per the policy (for DES servers).

        Requests shed while queued (expired waiting) release their
        concurrency slot and are accounted automatically.
        """

        def _on_shed(request: Request) -> None:
            del request
            self.metrics.shed_one(REASON_EXPIRED)
            if self.concurrency is not None:
                self.concurrency.release()

        return AdmissionQueue(
            self.policy.queue_capacity,
            self.policy.discipline,
            on_shed=_on_shed,
            shed_expired_waiters=self.policy.shed_doomed,
        )

    def bind_faults(
        self, injector: FaultInjector, node_ids: Optional[List[int]] = None
    ) -> None:
        """Connect the capacity signal for SLO-aware shedding.

        ``node_ids`` are the memory nodes whose health backs this app's
        serving capacity (default: the platform's CXL nodes, the
        devices the fault catalog targets).
        """
        self._injector = injector
        if node_ids is None:
            node_ids = [n.node_id for n in injector.platform.cxl_nodes()]
        self._fault_nodes = list(node_ids)

    # -- capacity signal ---------------------------------------------------

    def capacity_fraction(self, now_ns: float) -> float:
        """Serving capacity still available, in [0, 1].

        The mean over the bound nodes of each node's deliverable
        bandwidth fraction: 0 when offline, its fault bandwidth
        multiplier otherwise.  1.0 when no fault signal is bound.
        """
        if self._injector is None or not self._fault_nodes:
            return 1.0
        total = 0.0
        for node in self._fault_nodes:
            if not self._injector.node_online(node, now_ns):
                continue
            total += self._injector.bandwidth_multiplier(node, now_ns)
        return total / len(self._fault_nodes)

    def priority_floor(self, now_ns: float) -> int:
        """Lowest priority still admitted given current capacity.

        With full capacity the floor is 0 (everything admitted).  As
        capacity is lost the floor rises proportionally through the
        priority classes, shedding the least important work first —
        graceful goodput reduction instead of uniform latency collapse.
        """
        if not self.policy.shed_on_capacity_loss:
            return 0
        lost = 1.0 - self.capacity_fraction(now_ns)
        if lost <= 0.05:  # ignore noise-level deratings
            return 0
        levels = self.policy.priority_levels
        return min(levels - 1, int(math.ceil(lost * levels)))

    # -- the admission pipeline -------------------------------------------

    def make_request(
        self,
        now_ns: float,
        priority: int = 0,
        budget_ns: Optional[float] = None,
        cost_hint_ns: float = 0.0,
    ) -> Request:
        """Stamp one unit of offered work (counts it as offered)."""
        self.metrics.offer(now_ns)
        budget = self.policy.default_budget_ns if budget_ns is None else budget_ns
        deadline = Deadline() if math.isinf(budget) else Deadline.after(now_ns, budget)
        return Request(
            arrival_ns=now_ns,
            deadline=deadline,
            priority=priority,
            cost_hint_ns=cost_hint_ns,
        )

    def try_admit(
        self,
        request: Request,
        now_ns: float,
        est_service_ns: Optional[float] = None,
    ) -> Tuple[bool, str]:
        """Run the admission pipeline; returns ``(admitted, reason)``.

        On success the request holds a concurrency slot (if the policy
        caps concurrency) — the caller must pair every admitted request
        with exactly one ``complete``/``shed`` call, which releases it.
        """
        if request.priority < self.priority_floor(now_ns):
            self.metrics.reject(REASON_CAPACITY)
            return False, REASON_CAPACITY
        if self.bucket is not None and not self.bucket.try_acquire(now_ns):
            self.metrics.reject(REASON_RATE)
            return False, REASON_RATE
        if self.concurrency is not None:
            if self.adaptive is not None:
                self.concurrency.set_limit(self.adaptive.limit)
            if not self.concurrency.try_acquire():
                self.metrics.reject(REASON_CONCURRENCY)
                return False, REASON_CONCURRENCY
        estimate = est_service_ns if est_service_ns is not None else request.cost_hint_ns
        if self.policy.shed_doomed and estimate > 0 and request.doomed(now_ns, estimate):
            if self.concurrency is not None:
                self.concurrency.release()
            self.metrics.reject(REASON_DOOMED)
            return False, REASON_DOOMED
        self.metrics.admit()
        return True, "admitted"

    # -- closing the loop --------------------------------------------------

    def complete(self, request: Request, now_ns: float, latency_ns: float) -> bool:
        """Admitted work finished; returns True when it made its deadline."""
        missed = request.expired(now_ns)
        self.metrics.complete(now_ns, latency_ns, deadline_missed=missed)
        if self.concurrency is not None:
            self.concurrency.release()
        if self.adaptive is not None:
            self.adaptive.observe_latency(latency_ns, now_ns)
        return not missed

    def shed(self, request: Request, now_ns: float, reason: str = REASON_DOOMED) -> None:
        """Admitted work abandoned before completion."""
        del request
        self.metrics.shed_one(reason)
        if self.concurrency is not None:
            self.concurrency.release()

    def note_utilization(self, utilization: float, now_ns: float) -> None:
        """Feed the memory-system bottleneck utilization to the limiter."""
        if self.adaptive is not None:
            self.adaptive.observe_utilization(utilization, now_ns)

    @property
    def concurrency_limit(self) -> Optional[int]:
        """The current in-flight cap (None when unlimited)."""
        if self.concurrency is None:
            return None
        if self.adaptive is not None:
            return self.adaptive.limit
        return self.concurrency.limit
