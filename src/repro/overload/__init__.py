"""Overload protection for the serving stack.

Admission control (bounded queues, token-bucket and concurrency
limiters, an adaptive AIMD limiter tracking the loaded-latency knee),
absolute-deadline propagation with doomed-work shedding, and SLO-aware
load shedding driven by the fault layer's capacity signal.  The apps
(KeyDB, the LLM router, Spark) accept an :class:`OverloadController`
and behave exactly as before when none is attached.
"""

from .deadline import Deadline, Request
from .limiter import AdaptiveLimiter, ConcurrencyLimiter, TokenBucketLimiter
from .metrics import OverloadMetrics
from .policy import OverloadController, OverloadPolicy
from .queue import AdmissionQueue, QueueDiscipline
from .wallclock import AdmissionDecision, WallClock, WallClockAdmission
from .runner import (
    OverloadRunSummary,
    calibrate_capacity_ops_per_s,
    run_fault_comparison,
    run_offered_load,
    sweep_offered_load,
)

__all__ = [
    "AdmissionDecision",
    "WallClock",
    "WallClockAdmission",
    "Deadline",
    "Request",
    "AdmissionQueue",
    "QueueDiscipline",
    "TokenBucketLimiter",
    "ConcurrencyLimiter",
    "AdaptiveLimiter",
    "OverloadMetrics",
    "OverloadPolicy",
    "OverloadController",
    "OverloadRunSummary",
    "calibrate_capacity_ops_per_s",
    "run_offered_load",
    "sweep_offered_load",
    "run_fault_comparison",
]
