"""Wall-clock adapter for the sim-time overload primitives.

Everything in :mod:`repro.overload` prices time in nanoseconds against
*whatever clock the caller passes* — the DES's ``sim.now``, the epoch
apps' scalar ``now_ns``.  The serving stack (``repro serve``) needs the
same machinery against the host's real clock: a flash crowd of what-if
queries must meet a bounded queue, a token bucket, and deadline-aware
shedding measured in wall seconds, not simulated ones.

:class:`WallClock` rebases ``time.monotonic_ns()`` to the familiar
``now_ns`` contract, and :class:`WallClockAdmission` composes the three
existing throttles into the one decision the server needs per request:

* :class:`~repro.overload.limiter.TokenBucketLimiter` — caps the
  submission *rate* (a burst beyond it is shed with a precise
  Retry-After computed from the bucket's refill deficit);
* :class:`~repro.overload.queue.AdmissionQueue` — bounds work
  *waiting*; a full queue sheds with a Retry-After estimated from the
  observed service time (EWMA) and the backlog depth;
* :class:`~repro.overload.limiter.ConcurrencyLimiter` — bounds work
  *running*; slots are acquired when a queued request is promoted and
  released when it terminates.

Deadlines ride the existing :class:`~repro.overload.deadline.Deadline`
value object with wall-clock nanoseconds: a request that expires while
queued is shed by :meth:`AdmissionQueue.take`'s deadline check exactly
as simulated requests are, so none of the shedding logic is duplicated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple

from ..errors import ConfigurationError
from .deadline import Deadline, Request
from .limiter import ConcurrencyLimiter, TokenBucketLimiter
from .queue import AdmissionQueue, QueueDiscipline

__all__ = ["WallClock", "AdmissionDecision", "WallClockAdmission"]


class WallClock:
    """The host's monotonic clock under the overload layer's ``now_ns``
    contract.  A class (not a bare function) so tests can substitute a
    manually-advanced fake without monkeypatching ``time``."""

    def now_ns(self) -> float:
        """Monotonic host nanoseconds (never goes backwards)."""
        return float(time.monotonic_ns())

    def now_s(self) -> float:
        """Monotonic host seconds (same epoch as :meth:`now_ns`)."""
        return self.now_ns() / 1e9


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict of one admission attempt.

    ``retry_after_s`` is the shed path's backpressure signal: how long
    the client should wait before retrying (the server turns it into an
    HTTP ``Retry-After`` header).  It is a *hint*, computed from the
    rate deficit or the backlog estimate, never a reservation.
    """

    admitted: bool
    reason: str = ""
    retry_after_s: float = 0.0

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready form."""
        return {
            "admitted": self.admitted,
            "reason": self.reason,
            "retry_after_s": self.retry_after_s,
        }


#: Smoothing factor of the service-time EWMA feeding queue-full
#: Retry-After estimates.
_EWMA_ALPHA = 0.3


class WallClockAdmission:
    """Bounded queue + token bucket + concurrency cap on the host clock.

    The flow mirrors an RPC server's admission path:

    1. :meth:`offer` — rate check, then bounded enqueue.  Rejections
       come back as an :class:`AdmissionDecision` with a computed
       Retry-After; acceptances enqueue a
       :class:`~repro.overload.deadline.Request` whose deadline is
       ``deadline_s`` of wall time from now.
    2. :meth:`next_runnable` — promotes the next serviceable request
       when a concurrency slot is free, shedding queued requests whose
       deadline already passed (their payloads surface via ``on_shed``).
    3. :meth:`release` — returns the slot when the work terminates.
    """

    def __init__(
        self,
        queue_depth: int,
        max_running: int,
        rate_per_s: Optional[float] = None,
        burst: Optional[float] = None,
        clock: Optional[WallClock] = None,
        on_shed: Optional[Callable[[Request], None]] = None,
        discipline: QueueDiscipline = QueueDiscipline.FIFO,
    ) -> None:
        if rate_per_s is not None and rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        if burst is not None and rate_per_s is None:
            raise ConfigurationError("burst needs rate_per_s")
        self.clock = clock if clock is not None else WallClock()
        self.queue = AdmissionQueue(queue_depth, discipline=discipline,
                                    on_shed=on_shed)
        self.running = ConcurrencyLimiter(max_running)
        self.bucket: Optional[TokenBucketLimiter] = None
        self._rate_per_s = rate_per_s
        if rate_per_s is not None:
            self.bucket = TokenBucketLimiter(
                rate_per_s, burst if burst is not None else max(1.0, rate_per_s)
            )
        #: EWMA of observed service seconds; seeds the queue-full
        #: Retry-After estimate before any job has completed.
        self.mean_service_s = 1.0
        self.rejected_rate = 0

    # -- admission ----------------------------------------------------------

    @property
    def saturated(self) -> bool:
        """True when the next :meth:`offer` is certain to shed."""
        return self.queue.full

    def backlog(self) -> int:
        """Requests waiting (excludes running work)."""
        return len(self.queue)

    def deadline_after(self, budget_s: Optional[float]) -> Deadline:
        """A wall-clock deadline ``budget_s`` from now (None = none)."""
        if budget_s is None:
            return Deadline()
        return Deadline.after(self.clock.now_ns(), budget_s * 1e9)

    def _queue_full_retry_s(self) -> float:
        # The backlog must drain through max_running slots before a new
        # request can even wait; estimate with the service-time EWMA.
        slots = self.running.limit
        waves = (len(self.queue) + 1 + slots - 1) // slots
        return max(0.5, waves * self.mean_service_s)

    def offer(
        self,
        payload: Any,
        deadline_s: Optional[float] = None,
        priority: int = 0,
    ) -> Tuple[AdmissionDecision, Optional[Request]]:
        """Admit ``payload`` or shed it with a Retry-After hint."""
        now_ns = self.clock.now_ns()
        if self.bucket is not None and not self.bucket.try_acquire(now_ns):
            self.rejected_rate += 1
            deficit = max(0.0, 1.0 - self.bucket.tokens(now_ns))
            assert self._rate_per_s is not None
            retry = max(0.1, deficit / self._rate_per_s)
            return AdmissionDecision(False, "rate", retry), None
        request = Request(
            arrival_ns=now_ns,
            deadline=self.deadline_after(deadline_s),
            priority=priority,
            payload=payload,
        )
        if not self.queue.offer(request):
            return (
                AdmissionDecision(False, "queue-full",
                                  self._queue_full_retry_s()),
                None,
            )
        return AdmissionDecision(True), request

    # -- promotion ----------------------------------------------------------

    def next_runnable(self) -> Optional[Request]:
        """The next request to run, holding one concurrency slot.

        Returns ``None`` when no slot is free or nothing serviceable is
        queued (expired waiters are shed on the way, via ``on_shed``).
        The caller owns the slot until it calls :meth:`release`.
        """
        if not self.running.try_acquire():
            return None
        request = self.queue.take(self.clock.now_ns())
        if request is None:
            self.running.release()
            return None
        return request

    def release(self, service_s: Optional[float] = None) -> None:
        """Return a slot; ``service_s`` feeds the Retry-After EWMA."""
        self.running.release()
        if service_s is not None and service_s >= 0:
            self.mean_service_s += _EWMA_ALPHA * (
                service_s - self.mean_service_s
            )

    def shed_expired(self) -> int:
        """Purge queued requests whose wall-clock deadline passed."""
        return self.queue.drain_expired(self.clock.now_ns())

    # -- telemetry ----------------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot of the admission state."""
        return {
            "queued": len(self.queue),
            "queue_depth": self.queue.capacity,
            "running": self.running.in_flight,
            "max_running": self.running.limit,
            "rejected_full": self.queue.rejected_full,
            "rejected_rate": self.rejected_rate,
            "shed_expired": self.queue.shed_expired,
            "mean_service_s": self.mean_service_s,
        }
