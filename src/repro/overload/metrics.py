"""Overload accounting: offered vs admitted vs *useful* work.

Throughput alone hides overload damage — a collapsing system can still
complete plenty of operations, just too late to matter.  The metric
that matters is **goodput**: completions that made their deadline.
:class:`OverloadMetrics` tracks the full funnel

    offered → admitted → completed → completed-in-deadline (goodput)

with every loss accounted to a named reason (queue-full, rate,
concurrency, capacity-loss shedding, doomed-work shedding, expiry),
so a run can show *where* its overload defense spent the excess load.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..sim.stats import LatencyHistogram

__all__ = ["OverloadMetrics"]


class OverloadMetrics:
    """The offered → goodput funnel of one run."""

    def __init__(self) -> None:
        self.offered = 0
        self.admitted = 0
        self.completed = 0
        self.deadline_misses = 0
        #: Completions that made their deadline (the goodput numerator).
        self.good = 0
        #: Rejections at admission, by reason.
        self.rejected: Dict[str, int] = {}
        #: Work abandoned after admission, by reason.
        self.shed: Dict[str, int] = {}
        #: Latency of completed work (admission wait + service).
        self.latency = LatencyHistogram(min_value=50.0)
        self.first_ns = math.inf
        self.last_ns = 0.0

    # -- the funnel --------------------------------------------------------

    def offer(self, now_ns: float) -> None:
        """One unit of work arrived."""
        self.offered += 1
        self.first_ns = min(self.first_ns, now_ns)
        self.last_ns = max(self.last_ns, now_ns)

    def reject(self, reason: str) -> None:
        """Admission refused one unit of work."""
        self.rejected[reason] = self.rejected.get(reason, 0) + 1

    def admit(self) -> None:
        """One unit of work passed admission."""
        self.admitted += 1

    def shed_one(self, reason: str) -> None:
        """Admitted work abandoned before completing (doomed, expired...)."""
        self.shed[reason] = self.shed.get(reason, 0) + 1

    def complete(
        self, now_ns: float, latency_ns: float, deadline_missed: bool = False
    ) -> None:
        """One unit of admitted work finished."""
        self.completed += 1
        self.last_ns = max(self.last_ns, now_ns)
        self.latency.record(max(latency_ns, 1.0))
        if deadline_missed:
            self.deadline_misses += 1
        else:
            self.good += 1

    # -- derived -----------------------------------------------------------

    @property
    def total_rejected(self) -> int:
        """All admission rejections."""
        return sum(self.rejected.values())

    @property
    def total_shed(self) -> int:
        """All post-admission sheds."""
        return sum(self.shed.values())

    def shed_rate(self) -> float:
        """(rejected + shed) / offered — the fraction of load refused."""
        if self.offered == 0:
            return 0.0
        return (self.total_rejected + self.total_shed) / self.offered

    def deadline_miss_rate(self) -> float:
        """Deadline-missing completions / offered work.

        Measured against *offered* load so controlled and uncontrolled
        runs are comparable: shedding a request is not a miss, it is a
        cheap early refusal.
        """
        if self.offered == 0:
            return 0.0
        return self.deadline_misses / self.offered

    def goodput_ops_per_s(self, elapsed_ns: float) -> float:
        """In-deadline completions per second over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return self.good / (elapsed_ns / 1e9)

    def as_dict(self) -> Dict[str, float]:
        """A flat snapshot for counters/JSON."""
        out: Dict[str, float] = {
            "offered": float(self.offered),
            "admitted": float(self.admitted),
            "completed": float(self.completed),
            "good": float(self.good),
            "deadline_misses": float(self.deadline_misses),
            "rejected": float(self.total_rejected),
            "shed": float(self.total_shed),
        }
        for reason, count in sorted(self.rejected.items()):
            out[f"rejected_{reason}"] = float(count)
        for reason, count in sorted(self.shed.items()):
            out[f"shed_{reason}"] = float(count)
        return out

    def register_into(
        self,
        registry,
        prefix: str = "overload",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Export the funnel and the latency histogram through a registry.

        Funnel counts become ``<prefix>_<stage>_total`` counters (loss
        reasons labelled ``reason=``); the completed-work latency
        flattens through the registry's histogram convention.  Sampling
        is lazy — nothing is touched until snapshot time.
        """
        # Imported here: repro.obs.registry imports repro.sim.stats,
        # which sits below this module; runtime import avoids a cycle.
        from ..obs.registry import Sample, histogram_samples

        base = dict(labels or {})

        def collect():
            for stage in ("offered", "admitted", "completed", "good",
                          "deadline_misses"):
                yield Sample(
                    f"{prefix}_{stage}_total", "counter", dict(base),
                    float(getattr(self, stage)),
                )
            for reason, count in sorted(self.rejected.items()):
                yield Sample(
                    f"{prefix}_rejected_total", "counter",
                    {**base, "reason": reason}, float(count),
                )
            for reason, count in sorted(self.shed.items()):
                yield Sample(
                    f"{prefix}_shed_total", "counter",
                    {**base, "reason": reason}, float(count),
                )
            yield from histogram_samples(
                f"{prefix}_latency_ns", dict(base), self.latency
            )

        registry.register_collector(collect)

    def rows(self) -> List[Tuple[str, str]]:
        """(quantity, value) pairs for ascii_table rendering."""
        rows = [
            ("offered", f"{self.offered}"),
            ("admitted", f"{self.admitted}"),
            ("completed", f"{self.completed}"),
            ("in-deadline (good)", f"{self.good}"),
            ("deadline misses", f"{self.deadline_misses}"),
            ("shed rate", f"{self.shed_rate() * 100:.1f}%"),
        ]
        for reason, count in sorted(self.rejected.items()):
            rows.append((f"rejected ({reason})", f"{count}"))
        for reason, count in sorted(self.shed.items()):
            rows.append((f"shed ({reason})", f"{count}"))
        return rows
