"""Bounded admission queues with pluggable discipline.

The first line of overload defense is a *bounded* queue with an
explicit rejection path: an unbounded queue converts excess offered
load into unbounded latency (the tail blowup past the bandwidth knee),
while a bounded queue converts it into cheap, early rejections.

Three disciplines:

* **FIFO** — classic fairness; oldest request served first.
* **LIFO** — tail-freshness under overload: the newest request is the
  one most likely to still meet its deadline, so serving it first
  maximizes goodput while the queue's stale tail is shed by the
  deadline check at pop time (the "adaptive LIFO" trick from the SRE
  literature).
* **PRIORITY** — highest priority first, FIFO within a priority class.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from enum import Enum
from typing import Callable, Deque, List, Optional, Tuple

from ..errors import ConfigurationError
from .deadline import Request

__all__ = ["QueueDiscipline", "AdmissionQueue"]


class QueueDiscipline(str, Enum):
    """How a bounded admission queue orders its waiters."""

    FIFO = "fifo"
    LIFO = "lifo"
    PRIORITY = "priority"


class AdmissionQueue:
    """A bounded queue of :class:`Request` with explicit rejection.

    ``offer`` returns ``False`` (and counts the rejection) when the
    queue is full — the caller turns that into load shedding.  ``take``
    drops requests whose deadline already passed while they waited
    (counted as ``shed_expired``), so a burst that aged out in the
    queue never reaches service.
    """

    def __init__(
        self,
        capacity: int,
        discipline: QueueDiscipline = QueueDiscipline.FIFO,
        on_shed: Optional[Callable[[Request], None]] = None,
        shed_expired_waiters: bool = True,
    ) -> None:
        if capacity <= 0:
            raise ConfigurationError("queue capacity must be positive")
        self.capacity = capacity
        self.discipline = QueueDiscipline(discipline)
        #: When False, ``take`` returns expired requests instead of
        #: shedding them — the monitor-only baseline serves late work.
        self.shed_expired_waiters = shed_expired_waiters
        #: Invoked for every request shed while queued (expired waiting),
        #: so owners holding per-request state (concurrency slots,
        #: metrics) can release it.
        self.on_shed = on_shed
        self.rejected_full = 0
        self.shed_expired = 0
        self._fifo: Deque[Request] = deque()
        self._heap: List[Tuple[int, int, Request]] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        if self.discipline is QueueDiscipline.PRIORITY:
            return len(self._heap)
        return len(self._fifo)

    @property
    def full(self) -> bool:
        """True when another ``offer`` would be rejected."""
        return len(self) >= self.capacity

    def offer(self, request: Request) -> bool:
        """Enqueue ``request``; ``False`` (counted) when the queue is full."""
        if self.full:
            self.rejected_full += 1
            return False
        if self.discipline is QueueDiscipline.PRIORITY:
            # Max-heap on priority, FIFO within a class via the sequence.
            heapq.heappush(self._heap, (-request.priority, next(self._seq), request))
        else:
            self._fifo.append(request)
        return True

    def _pop(self) -> Request:
        if self.discipline is QueueDiscipline.PRIORITY:
            return heapq.heappop(self._heap)[2]
        if self.discipline is QueueDiscipline.LIFO:
            return self._fifo.pop()
        return self._fifo.popleft()

    def take(self, now_ns: float) -> Optional[Request]:
        """Dequeue the next serviceable request.

        Requests that expired while queued are shed (counted) rather
        than returned; ``None`` means nothing serviceable remains.
        """
        while len(self):
            request = self._pop()
            if self.shed_expired_waiters and request.expired(now_ns):
                self.shed_expired += 1
                if self.on_shed is not None:
                    self.on_shed(request)
                continue
            return request
        return None

    def drain_expired(self, now_ns: float) -> int:
        """Shed every queued request whose deadline has passed.

        Returns how many were shed.  Useful at capacity-loss events:
        the queue is purged of doomed work in one sweep instead of
        lazily at pop time.
        """
        dropped: List[Request] = []
        if self.discipline is QueueDiscipline.PRIORITY:
            keep = [e for e in self._heap if not e[2].expired(now_ns)]
            dropped = [e[2] for e in self._heap if e[2].expired(now_ns)]
            if dropped:
                self._heap = keep
                heapq.heapify(self._heap)
        else:
            keep_fifo: Deque[Request] = deque()
            for request in self._fifo:
                (dropped if request.expired(now_ns) else keep_fifo).append(request)
            self._fifo = keep_fifo
        self.shed_expired += len(dropped)
        if self.on_shed is not None:
            for request in dropped:
                self.on_shed(request)
        return len(dropped)
