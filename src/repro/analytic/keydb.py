"""Closed-form steady-state KeyDB model (the Fig. 5 / Fig. 8 fast path).

The DES (:mod:`repro.apps.kvstore.server`) prices hundreds of thousands
of individual YCSB operations; its epoch loop is a fixed-point solver
in disguise (see the module docstring there).  This model computes the
same steady state directly:

1. **Exact key popularity.**  The YCSB Zipfian chooser is the Gray
   et al. analytic inverse of a uniform draw, so its induced pmf has a
   closed form: the rank boundaries ``u_k = ((k/n)^(1-theta) - 1 +
   eta) / eta`` partition [0, 1] and the rank pmf is their difference
   (with the two explicit low-rank branches added back).  The FNV-style
   scramble is applied to the rank vector wholesale (vectorized uint64,
   wrap-around multiply), giving the *exact* per-key access mass —
   including hash collisions, which merge mass exactly as in the DES.
2. **Exact placement.**  Policies are deterministic, so the page→node
   map is the policy's own placement pattern tiled over the page array
   (smooth-WRR patterns repeat every ``sum(weights)`` placements).
3. **Fixed point.**  Per-node loaded latencies price the four operation
   classes; the implied byte rates go through the *same* platform
   allocator to refresh utilizations; iterate to convergence.  This is
   the DES's epoch loop with expectation values instead of samples.
4. **FLASH tier.**  Residency is an LRU over values; its steady state
   under a skewed key pmf is "the resident set is whatever was touched
   recently" — modeled as a first-touch transient (initially-resident
   tail ids keep their head start) plus the stationary cold-tail miss
   mass, plus the DES's churn residual.
5. **Hot-promote.**  The tiering daemon's scans are replayed
   analytically: scan times from the epoch timeline, candidates =
   CXL pages whose expected scan-window accesses clear the threshold,
   promotions rate-limited by the same byte budget, threshold doubling
   /halving as in the kernel patch.  Tiering is a *transient* process,
   so this is the model's weakest approximation — `auto` backend
   selection routes hot-promote cells to the DES (see
   :mod:`repro.analytic.select`); the analytic variant remains useful
   for capacity-planning scans and is validated with a looser pinned
   tolerance.

The output is a real :class:`~repro.apps.kvstore.server.KeyDbResult` —
histograms populated from the latency-class mixture with
largest-remainder integer rounding, counters matching the DES keys —
so every downstream consumer (figure tables, metrics registries, merged
exports) is backend-agnostic.

``seed`` is accepted for interface parity and ignored: the model is the
infinite-sample limit, which is what makes it a *backend* rather than a
different experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps.kvstore.server import MIGRATION_BANDWIDTH, KeyDbResult
from ..apps.kvstore.store import ServiceProfile
from ..errors import ConfigurationError
from ..hw.presets import paper_cxl_platform
from ..hw.topology import Platform
from ..mem.page import Page
from ..mem.policy import InterleavePolicy, WeightedInterleavePolicy
from ..sim.rng import DEFAULT_SEED
from ..sim.stats import LatencyHistogram
from ..units import KIB, PAGE_SIZE, gb_per_s
from ..workloads.distributions import ScrambledZipfianChooser, ZipfianChooser
from ..workloads.ycsb import WORKLOADS, YcsbSpec

__all__ = [
    "zipf_rank_pmf",
    "scrambled_key_pmf",
    "analytic_keydb_config",
    "analytic_keydb_cxl_only",
]

#: Epoch size of the DES server loop; used to reconstruct the tiering
#: daemon's tick timeline.
EPOCH_OPS = 2000


# -- exact workload distributions -------------------------------------------


@lru_cache(maxsize=16)
def _rank_pmf_cached(item_count: int, theta: float) -> np.ndarray:
    chooser = ZipfianChooser(item_count, theta)
    n = item_count
    s = 1.0 - theta
    t0 = 1.0 / chooser.zetan
    t1 = (1.0 + 0.5**theta) / chooser.zetan
    k = np.arange(0, n + 1, dtype=np.float64)
    boundaries = ((k / n) ** s - 1.0) / chooser.eta + 1.0
    boundaries = np.clip(boundaries, t1, 1.0)
    boundaries[-1] = 1.0
    pmf = np.diff(boundaries)
    pmf[0] += t0
    pmf[1] += t1 - t0
    pmf.setflags(write=False)
    return pmf


def zipf_rank_pmf(item_count: int, theta: float = 0.99) -> np.ndarray:
    """The exact pmf the YCSB Zipfian chooser induces over *ranks*.

    Inverts :meth:`repro.workloads.distributions.ZipfianChooser.next_key`
    interval by interval: rank ``k`` is drawn iff the uniform variate
    lands in ``[u_k, u_{k+1})``, with the two explicit branches for
    ranks 0 and 1 added back.  Sums to 1.0 to machine precision.
    Cached (read-only view) — the chooser's ``zeta`` constants are the
    expensive part and every cell of a figure shares one key space.
    """
    return _rank_pmf_cached(item_count, theta)


_FNV_PRIME = np.uint64(ScrambledZipfianChooser._FNV_PRIME)
_FNV_OFFSET = np.uint64(ScrambledZipfianChooser._FNV_OFFSET)


def _fnv_hash_vector(values: np.ndarray) -> np.ndarray:
    """Vectorized FNV-style scramble, identical to the chooser's."""
    v = values.astype(np.uint64)
    h = np.full(v.shape, _FNV_OFFSET, dtype=np.uint64)
    mask = np.uint64(0xFF)
    shift = np.uint64(8)
    with np.errstate(over="ignore"):
        for _ in range(8):
            h = (h ^ (v & mask)) * _FNV_PRIME
            v = v >> shift
    return h


@lru_cache(maxsize=16)
def _scrambled_key_pmf_cached(item_count: int, theta: float) -> np.ndarray:
    rank_pmf = zipf_rank_pmf(item_count, theta)
    ranks = np.arange(item_count, dtype=np.uint64)
    keys = (_fnv_hash_vector(ranks) % np.uint64(item_count)).astype(np.int64)
    mass = np.bincount(keys, weights=rank_pmf, minlength=item_count)
    mass.setflags(write=False)
    return mass


def scrambled_key_pmf(item_count: int, theta: float = 0.99) -> np.ndarray:
    """Exact per-key access mass of the scrambled Zipfian chooser.

    Rank mass lands on ``fnv(rank) % n``; colliding ranks merge, exactly
    as in the DES.  Cached, read-only.
    """
    return _scrambled_key_pmf_cached(item_count, theta)


@lru_cache(maxsize=4)
def _shared_platform(snc_enabled: bool) -> Platform:
    """One read-only platform per topology flavour.

    The analytic backend never mutates platform state (no deratings, no
    device byte counters, no RAS transitions), so cells can share the
    construction cost.
    """
    return paper_cxl_platform(snc_enabled=snc_enabled)


def _page_mass(key_mass: np.ndarray, values_per_page: int) -> np.ndarray:
    """Aggregate per-key mass to per-page mass."""
    n = key_mass.size
    pad = (-n) % values_per_page
    if pad:
        key_mass = np.concatenate([key_mass, np.zeros(pad)])
    return key_mass.reshape(-1, values_per_page).sum(axis=1)


# -- placement ---------------------------------------------------------------


def _wrr_pattern(weights: Dict[int, int]) -> List[int]:
    """The repeating placement cycle of a smooth-WRR policy.

    Smooth weighted round-robin returns to its initial state after
    ``sum(weights)`` placements, so running a fresh policy that many
    steps (with ample capacity) yields the exact tile the DES lays down.
    """
    policy = WeightedInterleavePolicy(weights)
    free = {node: 1 << 62 for node in weights}
    return [policy.place(free, PAGE_SIZE) for _ in range(sum(weights.values()))]


def _placement_pattern(config: str, platform: Platform) -> List[int]:
    """Node cycle the DES policy tiles over the page array."""
    dram0 = [n.node_id for n in platform.dram_nodes(0)]
    dram_all = [n.node_id for n in platform.dram_nodes(None)]
    cxl_all = [n.node_id for n in platform.cxl_nodes()]
    if config == "mmem" or config.startswith("mmem-ssd-"):
        return [dram0[0]]
    if config == "hot-promote":
        policy = InterleavePolicy(list(dram_all) + list(cxl_all))
        free = {node: 1 << 62 for node in policy.nodes()}
        return [policy.place(free, PAGE_SIZE) for _ in policy.nodes()]
    if ":" in config:
        n, m = (int(x) for x in config.split(":"))
        if n <= 0 or m <= 0:
            raise ConfigurationError(f"bad interleave ratio {config!r}")
        weights = {d: n * len(cxl_all) for d in dram_all}
        weights.update({c: m * len(dram_all) for c in cxl_all})
        return _wrr_pattern(weights)
    raise ConfigurationError(f"unknown KeyDB config {config!r}")


# -- FLASH tier --------------------------------------------------------------


@dataclass(frozen=True)
class _FlashModel:
    """Expectation-level view of the FLASH tier for one run."""

    read_miss: float
    write_miss: float
    value_size: int
    read_latency_ns: float
    write_latency_ns: float
    read_bw: float
    write_bw: float
    os_hit: float = 0.45
    page_cache_ns: float = 5_000.0
    write_amortization: float = 0.10

    def fault_read_classes(self, ssd_utilization: float) -> List[Tuple[float, float]]:
        """(probability, latency) branches of one fault read."""
        scale = 1.0 / (1.0 - min(ssd_utilization, 0.99))
        device = (
            self.read_latency_ns + self.value_size / self.read_bw * 1e9
        ) * scale
        return [(self.os_hit, self.page_cache_ns), (1.0 - self.os_hit, device)]

    def persist_write_ns(self, ssd_utilization: float) -> float:
        """Amortized persistence write every SET pays."""
        scale = 1.0 / (1.0 - min(ssd_utilization, 0.99))
        raw = (
            self.write_latency_ns + self.value_size / self.write_bw * 1e9
        ) * scale
        return raw * self.write_amortization

    def ssd_bytes_per_op(self, read_fraction: float, write_fraction: float) -> float:
        reads = read_fraction * self.read_miss * self.value_size
        writes = write_fraction * (self.write_miss + 1.0) * self.value_size
        return reads + writes


def _first_touch_miss(
    nonresident_mass: np.ndarray, warmup_ops: int, total_ops: int
) -> float:
    """Per-op probability that a measured access misses the LRU.

    For an initially non-resident key with access probability ``p`` the
    expected number of measured-window misses is its *first touch*
    landing in the window: ``(1-p)^W - (1-p)^T``.  Hot keys fault in
    during warmup and contribute ~0; cold-tail keys reduce to the
    stationary miss mass ``p`` per op.  One formula covers the
    transient and the steady state.
    """
    window = max(total_ops - warmup_ops, 1)
    p = np.clip(nonresident_mass, 0.0, 1.0)
    misses = np.power(1.0 - p, warmup_ops) - np.power(1.0 - p, total_ops)
    return float(misses.sum()) / window


def _flash_model(
    config: str,
    spec: YcsbSpec,
    key_mass: np.ndarray,
    rank_pmf: np.ndarray,
    record_count: int,
    value_size: int,
    warmup_ops: int,
    total_ops: int,
    platform: Platform,
) -> Optional[_FlashModel]:
    if not config.startswith("mmem-ssd-"):
        return None
    spilled = float(config.rsplit("-", 1)[1])
    if not 0.0 < spilled < 1.0:
        raise ConfigurationError(f"bad spill fraction in {config!r}")
    resident = max(1, int(record_count * (1.0 - spilled)))
    spilled_fraction = max(0.0, 1.0 - resident / record_count)
    churn = 0.10 * spilled_fraction  # FlashTier.cache_inefficiency
    if spec.distribution == "latest":
        # Latest-distribution residency *is* recency: reads only miss on
        # ranks beyond the LRU capacity; inserts always land resident.
        # Inserts also *grow* the key space while the LRU capacity stays
        # fixed, which fattens the rank tail and raises the DES's live
        # spilled fraction (hence churn) as the run progresses; the
        # midpoint count captures the run-averaged effect.
        grown = record_count + spec.insert_fraction * total_ops / 2.0
        mid_pmf = zipf_rank_pmf(int(grown))
        churn = 0.10 * max(0.0, 1.0 - resident / grown)
        tail = float(mid_pmf[resident:].sum()) if resident < mid_pmf.size else 0.0
        read_miss = tail + churn * (1.0 - tail)
        write_miss = churn
    else:
        # Initial LRU contents: the *last* ``resident`` registered ids.
        # Every genuine fault-in evicts the LRU-oldest value — the
        # lowest still-untouched initially-resident ids, in id order —
        # so those ids join the non-resident population for first-touch
        # purposes.  One correction pass suffices: evictions are a small
        # fraction of the resident set.
        spill_count = max(record_count - resident, 0)
        nonres = np.clip(key_mass[:spill_count], 0.0, 1.0)
        evictions = int((1.0 - np.power(1.0 - nonres, total_ops)).sum())
        evicted_tail = key_mass[spill_count : spill_count + evictions]
        first_touch = _first_touch_miss(
            np.concatenate([nonres, evicted_tail]), warmup_ops, total_ops
        )
        read_miss = first_touch + churn * (1.0 - first_touch)
        write_miss = read_miss
    ssd_spec = platform.ssds[0].spec
    return _FlashModel(
        read_miss=read_miss,
        write_miss=write_miss,
        value_size=value_size,
        read_latency_ns=ssd_spec.read_latency_ns,
        write_latency_ns=ssd_spec.write_latency_ns,
        read_bw=ssd_spec.read_bandwidth_bytes_per_s,
        write_bw=ssd_spec.write_bandwidth_bytes_per_s,
    )


# -- the fixed-point solver --------------------------------------------------


@dataclass
class _SteadyState:
    """Converged operating point of one configuration."""

    mean_service_ns: float
    read_classes: List[Tuple[float, float]]  # (probability, latency_ns)
    write_classes: List[Tuple[float, float]]
    ops_per_s: float
    ssd_utilization: float
    ssd_bytes_per_op: float
    utilization: Dict[str, float] = field(default_factory=dict)
    iterations: int = 0


def _solve_steady_state(
    platform: Platform,
    spec: YcsbSpec,
    profile: ServiceProfile,
    node_read_mass: Dict[int, float],
    node_write_mass: Dict[int, float],
    flash: Optional[_FlashModel],
    threads: int,
    value_size: int,
    socket: int = 0,
    max_iterations: int = 50,
    tolerance: float = 1e-9,
) -> _SteadyState:
    """Iterate latencies -> service times -> traffic -> latencies."""
    rf, wf = spec.read_fraction, spec.write_fraction
    nodes = sorted(set(node_read_mass) | set(node_write_mass))
    paths = {n: platform.path(socket, n) for n in nodes}
    touched = value_size + 64 * (profile.struct_accesses + profile.value_accesses)
    # Combined access-weighted mix: the DES's struct walk follows the
    # previous epoch's touched-bytes distribution, and touched bytes per
    # op are constant, so at steady state the mix is the access mass.
    mix = {
        n: rf * node_read_mass.get(n, 0.0) + wf * node_write_mass.get(n, 0.0)
        for n in nodes
    }
    total_mix = sum(mix.values())
    if total_mix > 0:
        mix = {n: m / total_mix for n, m in mix.items()}

    utilization: Dict[str, float] = {}
    ssd_utilization = 0.0
    mean_ns = float("inf")
    state = _SteadyState(0.0, [], [], 0.0, 0.0, 0.0)
    for iteration in range(1, max_iterations + 1):
        read_lat = {
            n: paths[n].loaded_latency_ns(
                paths[n].bottleneck_utilization(utilization), 0.0
            )
            for n in nodes
        }
        write_lat = {
            n: paths[n].loaded_latency_ns(
                paths[n].bottleneck_utilization(utilization), 1.0
            )
            for n in nodes
        }
        struct_read = sum(mix[n] * read_lat[n] for n in nodes)
        struct_write = sum(mix[n] * write_lat[n] for n in nodes)

        read_classes: List[Tuple[float, float]] = []
        write_classes: List[Tuple[float, float]] = []
        for n in nodes:
            base_r = (
                profile.cpu_ns
                + profile.struct_accesses * struct_read
                + profile.value_accesses * read_lat[n]
            )
            base_w = (
                profile.cpu_ns
                + profile.struct_accesses * struct_write
                + profile.value_accesses * write_lat[n]
            )
            p_r = node_read_mass.get(n, 0.0)
            p_w = node_write_mass.get(n, 0.0)
            if flash is None:
                if p_r > 0:
                    read_classes.append((p_r, base_r))
                if p_w > 0:
                    write_classes.append((p_w, base_w))
                continue
            fault = flash.fault_read_classes(ssd_utilization)
            persist = flash.persist_write_ns(ssd_utilization)
            if p_r > 0:
                read_classes.append((p_r * (1.0 - flash.read_miss), base_r))
                for q, extra in fault:
                    read_classes.append((p_r * flash.read_miss * q, base_r + extra))
            if p_w > 0:
                write_classes.append(
                    (p_w * (1.0 - flash.write_miss), base_w + persist)
                )
                for q, extra in fault:
                    write_classes.append(
                        (p_w * flash.write_miss * q, base_w + extra + persist)
                    )

        mean_read = sum(p * t for p, t in read_classes)
        mean_write = sum(p * t for p, t in write_classes)
        proposed = rf * mean_read + wf * mean_write
        ops_per_s = threads * 1e9 / proposed

        demands = []
        for n in nodes:
            reads = rf * node_read_mass.get(n, 0.0) * touched * ops_per_s
            writes = wf * node_write_mass.get(n, 0.0) * touched * ops_per_s
            rate = reads + writes
            if rate <= 0:
                continue
            demands.append(
                platform.demand(f"keydb/{n}", paths[n], rate, writes / rate)
            )
        utilization = (
            platform.allocate(demands).utilization if demands else {}
        )
        ssd_bytes = flash.ssd_bytes_per_op(rf, wf) if flash is not None else 0.0
        if flash is not None:
            ssd_utilization = min(0.9, ops_per_s * ssd_bytes / flash.read_bw)

        state = _SteadyState(
            mean_service_ns=proposed,
            read_classes=read_classes,
            write_classes=write_classes,
            ops_per_s=ops_per_s,
            ssd_utilization=ssd_utilization,
            ssd_bytes_per_op=ssd_bytes,
            utilization=dict(utilization),
            iterations=iteration,
        )
        if math.isfinite(mean_ns) and abs(proposed - mean_ns) <= tolerance * proposed:
            break
        mean_ns = proposed
    return state


# -- hot-promote replay ------------------------------------------------------


@dataclass
class _PromotionOutcome:
    migrated_bytes: int = 0
    stall_ns: float = 0.0
    stall_measured_ns: float = 0.0


def _replay_hot_promote(
    page_node: np.ndarray,
    page_mass: np.ndarray,
    mean_service_ns: float,
    threads: int,
    total_ops: int,
    warmup_ops: int,
    dram_target: int,
    cxl_nodes: Sequence[int],
    dataset_bytes: int,
    page_size: int = PAGE_SIZE,
    scan_period_ns: float = 20e6,
    rate_limit_bytes_per_s: float = gb_per_s(0.1),
    initial_threshold: float = 4.0,
) -> _PromotionOutcome:
    """Replay the HotPageSelectionDaemon's scans in expectation.

    Mutates ``page_node``: promoted pages move to ``dram_target``.
    Thresholds auto-adjust exactly as the daemon's (doubling/halving in
    [0.5, 64]); candidate heat is each page's expected accesses in the
    scan window with the 100 ms-half-life decay applied at its midpoint.
    """
    outcome = _PromotionOutcome()
    op_wall_ns = mean_service_ns / threads
    total_ns = total_ops * op_wall_ns
    epoch_ns = EPOCH_OPS * op_wall_ns
    cap_pages = (dataset_bytes // 2) // page_size
    budget_pages = int(rate_limit_bytes_per_s * scan_period_ns / 1e9 // page_size)
    threshold = initial_threshold
    cxl_set = set(int(c) for c in cxl_nodes)

    is_cxl = np.isin(page_node, list(cxl_set))
    d0_pages = int((page_node == dram_target).sum())

    # Scan timeline: the daemon's first tick (end of epoch 1) always
    # scans; later ticks fire at the first epoch boundary past the
    # period.  The first scan sees one epoch of history; later scans a
    # full period's worth.
    scans: List[Tuple[float, float]] = []  # (now_ns, window_ops)
    now = epoch_ns
    if now <= total_ns + 1e-9:
        scans.append((now, float(EPOCH_OPS)))
    while True:
        nxt = now + scan_period_ns
        nxt = math.ceil(nxt / epoch_ns - 1e-9) * epoch_ns
        if nxt > total_ns + 1e-9:
            break
        scans.append((nxt, scan_period_ns / op_wall_ns))
        now = nxt

    for now_ns, window_ops in scans:
        decay = 0.5 ** ((min(now_ns, scan_period_ns) / 2.0) / Page.HEAT_HALF_LIFE)
        heat = page_mass * window_ops * decay
        candidate_idx = np.flatnonzero(is_cxl & (heat >= threshold))
        if candidate_idx.size:
            order = candidate_idx[np.argsort(-heat[candidate_idx], kind="stable")]
            room = max(0, cap_pages - d0_pages)
            take = min(order.size, budget_pages, room)
            if take > 0:
                chosen = order[:take]
                page_node[chosen] = dram_target
                is_cxl[chosen] = False
                d0_pages += take
                moved = take * page_size
                stall = moved / MIGRATION_BANDWIDTH * 1e9
                outcome.migrated_bytes += moved
                outcome.stall_ns += stall
                if now_ns >= warmup_ops * op_wall_ns:
                    outcome.stall_measured_ns += stall
        # Daemon's auto threshold adjustment.
        candidate_bytes = candidate_idx.size * page_size
        budget_bytes = budget_pages * page_size
        if candidate_bytes > budget_bytes:
            threshold = min(64.0, threshold * 2.0)
        elif candidate_bytes < budget_bytes / 2:
            threshold = max(0.5, threshold / 2.0)
    return outcome


# -- result assembly ---------------------------------------------------------


def _largest_remainder_counts(
    classes: Sequence[Tuple[float, float]], total: int
) -> List[Tuple[float, int]]:
    """Integer counts per class summing exactly to ``total``."""
    if total <= 0 or not classes:
        return []
    weights = np.array([max(p, 0.0) for p, _ in classes])
    if weights.sum() <= 0:
        return []
    weights = weights / weights.sum()
    raw = weights * total
    counts = np.floor(raw).astype(int)
    short = total - int(counts.sum())
    if short > 0:
        order = np.argsort(-(raw - counts), kind="stable")
        counts[order[:short]] += 1
    return [(classes[i][1], int(counts[i])) for i in range(len(classes))]


def _fill_histogram(
    histogram: LatencyHistogram, classes: Sequence[Tuple[float, float]], total: int
) -> None:
    for latency, count in _largest_remainder_counts(classes, total):
        if count > 0:
            histogram.record(latency, count)


def _assemble_result(
    state: _SteadyState,
    spec: YcsbSpec,
    threads: int,
    total_ops: int,
    warmup_ops: int,
    promotion: Optional[_PromotionOutcome] = None,
) -> KeyDbResult:
    measured = max(total_ops - warmup_ops, 0)
    reads = int(round(measured * spec.read_fraction))
    writes = measured - reads
    result = KeyDbResult()
    result.ops = measured
    result.elapsed_ns = measured * state.mean_service_ns / threads
    if promotion is not None:
        result.elapsed_ns += promotion.stall_measured_ns
    _fill_histogram(result.read_latency, state.read_classes, reads)
    _fill_histogram(result.write_latency, state.write_classes, writes)
    result.counters.add(
        "ssd_bytes", int(round(total_ops * state.ssd_bytes_per_op))
    )
    if promotion is not None and promotion.migrated_bytes:
        result.counters.add("migrated_bytes", promotion.migrated_bytes)
        result.counters.add("migration_stall_ns", promotion.stall_ns)
    return result


# -- entry points ------------------------------------------------------------


def _node_masses(
    page_node: np.ndarray, page_mass: np.ndarray
) -> Dict[int, float]:
    out: Dict[int, float] = {}
    for node in np.unique(page_node):
        out[int(node)] = float(page_mass[page_node == node].sum())
    return out


def _pattern_fractions(pattern: Sequence[int]) -> Dict[int, float]:
    out: Dict[int, float] = {}
    for node in pattern:
        out[node] = out.get(node, 0.0) + 1.0 / len(pattern)
    return out


def analytic_keydb_config(
    config: str,
    workload: str = "A",
    record_count: int = 131_072,
    total_ops: int = 200_000,
    warmup_ops: Optional[int] = None,
    seed: int = DEFAULT_SEED,
) -> KeyDbResult:
    """Closed-form counterpart of :func:`repro.apps.kvstore.run_keydb_config`."""
    del seed  # the model is the infinite-sample limit
    if workload not in WORKLOADS:
        raise ConfigurationError(f"unknown YCSB workload {workload!r}")
    spec = WORKLOADS[workload]
    if warmup_ops is None:
        warmup_ops = total_ops // 2 if config == "hot-promote" else total_ops // 10
    platform = _shared_platform(False)
    profile = ServiceProfile.capacity()
    value_size = KIB
    values_per_page = PAGE_SIZE // value_size
    threads = 7
    dataset_bytes = record_count * value_size

    pattern = _placement_pattern(config, platform)
    n_pages = -(-record_count // values_per_page)
    page_node = np.asarray(pattern, dtype=np.int64)[
        np.arange(n_pages, dtype=np.int64) % len(pattern)
    ].copy()
    rank_pmf = zipf_rank_pmf(record_count)

    if spec.distribution == "latest":
        # Reads chase recency: rank r -> key (n-1-r).  Inserts keep
        # appending new pages, so over a run the recency hotspot *walks*
        # across the placement pattern (any fixed rank's key slides over
        # hundreds of pages — far more than the pattern length).  Both
        # read and write traffic therefore average out to the policy's
        # long-run node fractions.
        key_mass = rank_pmf[::-1].copy()
        read_page_mass = _page_mass(key_mass, values_per_page)
        write_mass = _pattern_fractions(pattern)
        read_mass = dict(write_mass)
    else:
        key_mass = scrambled_key_pmf(record_count)
        read_page_mass = _page_mass(key_mass, values_per_page)
        write_mass = None
        read_mass = None

    flash = _flash_model(
        config, spec, key_mass, rank_pmf, record_count, value_size,
        warmup_ops, total_ops, platform,
    )

    node_read_mass = (
        dict(read_mass)
        if read_mass is not None
        else _node_masses(page_node, read_page_mass)
    )
    node_write_mass = (
        dict(write_mass) if write_mass is not None else dict(node_read_mass)
    )

    promotion: Optional[_PromotionOutcome] = None
    if config == "hot-promote":
        # Two-phase solve: pre-promotion operating point fixes the scan
        # timeline, then the promoted placement fixes the steady state.
        pre = _solve_steady_state(
            platform, spec, profile, node_read_mass, node_write_mass,
            flash, threads, value_size,
        )
        dram0 = platform.dram_nodes(0)[0].node_id
        cxl_ids = [n.node_id for n in platform.cxl_nodes()]
        promotion = _replay_hot_promote(
            page_node, read_page_mass, pre.mean_service_ns, threads,
            total_ops, warmup_ops, dram0, cxl_ids, dataset_bytes,
        )
        node_read_mass = _node_masses(page_node, read_page_mass)
        node_write_mass = dict(node_read_mass)

    state = _solve_steady_state(
        platform, spec, profile, node_read_mass, node_write_mass,
        flash, threads, value_size,
    )
    return _assemble_result(state, spec, threads, total_ops, warmup_ops, promotion)


def analytic_keydb_cxl_only(
    on_cxl: bool,
    record_count: int = 102_400,
    total_ops: int = 150_000,
    seed: int = DEFAULT_SEED,
) -> KeyDbResult:
    """Closed-form counterpart of :func:`repro.apps.kvstore.run_keydb_cxl_only`."""
    del seed
    platform = _shared_platform(False)
    profile = ServiceProfile.vm()
    spec = WORKLOADS["C"]
    value_size = KIB
    values_per_page = PAGE_SIZE // value_size
    if on_cxl:
        node = platform.cxl_nodes(0)[0].node_id
    else:
        node = platform.dram_nodes(0)[0].node_id
    n_pages = -(-record_count // values_per_page)
    page_node = np.full(n_pages, node, dtype=np.int64)
    key_mass = scrambled_key_pmf(record_count)
    read_page_mass = _page_mass(key_mass, values_per_page)
    node_read_mass = _node_masses(page_node, read_page_mass)
    state = _solve_steady_state(
        platform, spec, profile, node_read_mass, dict(node_read_mass),
        None, 7, value_size,
    )
    return _assemble_result(state, spec, 7, total_ops, total_ops // 10)
