"""Per-point backend selection: which sweeps the fast path may serve.

The analytical backend is a *steady-state* model.  It is exact (fig3 /
fig4: same knots, same closed form) or calibrated to within pinned
tolerances (fig5 / fig8: see :mod:`repro.analytic.validate`) wherever
the DES itself converges to a fixed point — but it has nothing to say
about genuinely history-dependent runs: overload admission transients,
fault-injection timelines, the Spark/LLM app models, or the
hot-promotion migration ramp, whose figure-of-merit *is* the transient.

:func:`select_backend` encodes exactly that boundary, per sweep point:

========  =====================================================
target    routing under ``--backend auto``
========  =====================================================
fig3      analytic (closed form is bit-identical to the DES)
fig4      analytic (same; pattern is API fidelity, not physics)
fig5      analytic, except ``hot-promote`` cells -> DES (the
          migration ramp is a transient)
fig8      analytic (single-node steady state)
fig7      DES (Spark stage model has no analytic counterpart)
fig10     DES (serving-rate search)
overload  DES (admission-control transients)
========  =====================================================

``--backend analytic`` *forces* the fast path and is rejected with a
:class:`~repro.errors.ConfigurationError` on targets that have none —
a forced backend silently falling back would defeat the point of
forcing it.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Tuple

from ..errors import ConfigurationError

__all__ = [
    "BACKENDS",
    "ANALYTIC_TARGETS",
    "select_backend",
    "require_analytic",
    "estimated_events_avoided",
    "routing_summary",
]

#: Legal values of every ``--backend`` flag / job-spec field.
BACKENDS = ("des", "analytic", "auto")

#: Targets with an analytical counterpart for at least some points.
ANALYTIC_TARGETS = frozenset({"fig3", "fig4", "fig5", "fig8"})


def select_backend(target: str, params: Mapping[str, Any]) -> str:
    """The backend ``auto`` routes one sweep point to.

    Returns ``"analytic"`` for steady-state points with a calibrated
    closed form and ``"des"`` for everything else (transients, faults,
    app models without an analytic counterpart).
    """
    if target not in ANALYTIC_TARGETS:
        return "des"
    if target == "fig5" and params.get("config") == "hot-promote":
        # The hot-promotion cell's figure of merit is the migration
        # transient; keep it on the event-driven path.
        return "des"
    return "analytic"


def require_analytic(target: str) -> None:
    """Reject ``--backend analytic`` on a target with no fast path."""
    if target not in ANALYTIC_TARGETS:
        raise ConfigurationError(
            f"target {target!r} has no analytical backend (transient or "
            f"app-model sweep); use --backend des or auto"
        )


def estimated_events_avoided(target: str, params: Mapping[str, Any]) -> int:
    """Roughly how many DES events one analytic-routed point skips.

    KeyDB points price one event per operation; MLC points run one
    allocator solve per (mix, load fraction).  The estimate feeds the
    ``--backend auto`` routing summary line — an order-of-magnitude
    narration, not an accounting identity.
    """
    if target in ("fig5", "fig8"):
        return int(params.get("total_ops", 0))
    if target == "fig3":
        return len(params.get("mixes", ())) * len(params.get("fractions", ()))
    if target == "fig4":
        # One curve per distance panel at this (pattern, mix).
        return 4 * len(params.get("fractions", ()))
    return 0


def routing_summary(decisions: Iterable[Tuple[str, int]]) -> str:
    """One-line account of an ``auto`` sweep's routing.

    ``decisions`` yields ``(backend, events_avoided)`` per point; the
    line mirrors the runner's cache summary format, e.g.
    ``backend: 24 analytic, 4 des (~480000 est. DES events avoided)``.
    """
    analytic = des = avoided = 0
    for backend, events in decisions:
        if backend == "analytic":
            analytic += 1
            avoided += events
        else:
            des += 1
    return (f"backend: {analytic} analytic, {des} des "
            f"(~{avoided} est. DES events avoided)")
