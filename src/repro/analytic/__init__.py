"""The analytical fast path: closed-form steady states next to the DES.

The paper's steady-state sweeps (figs 3-5, 8) converge to fixed points
of one self-consistency map over the ``repro.hw`` bandwidth/latency
knots; this package solves that map directly instead of simulating
every event, at a >=100x per-point speedup with calibrated, pinned
error bounds:

* :mod:`~repro.analytic.model` — the shared fixed-point solver and the
  single-flow closed form over :class:`~repro.hw.bandwidth.
  PeakBandwidthCurve` knots;
* :mod:`~repro.analytic.mlc` — bit-exact loaded-latency curves
  (fig3/fig4);
* :mod:`~repro.analytic.keydb` — the KeyDB steady-state model
  (fig5/fig8);
* :mod:`~repro.analytic.select` — the ``--backend auto`` routing
  policy (steady states -> analytic, transients -> DES);
* :mod:`~repro.analytic.validate` — the DES-vs-analytic calibration
  grid and the pinned per-metric tolerances.
"""

from .model import (
    ANALYTIC_MODEL_VERSION,
    FixedPoint,
    chain_capacity,
    single_flow_operating_point,
    solve_fixed_point,
)
from .mlc import AnalyticMlcProbe
from .keydb import (
    analytic_keydb_config,
    analytic_keydb_cxl_only,
    scrambled_key_pmf,
    zipf_rank_pmf,
)
from .select import (
    ANALYTIC_TARGETS,
    BACKENDS,
    estimated_events_avoided,
    require_analytic,
    routing_summary,
    select_backend,
)
from .validate import (
    DEFAULT_FIG5_CELLS,
    PINNED_TOLERANCES,
    CalibrationReport,
    MetricError,
    run_calibration,
)

__all__ = [
    "ANALYTIC_MODEL_VERSION",
    "ANALYTIC_TARGETS",
    "AnalyticMlcProbe",
    "BACKENDS",
    "CalibrationReport",
    "DEFAULT_FIG5_CELLS",
    "FixedPoint",
    "MetricError",
    "PINNED_TOLERANCES",
    "analytic_keydb_config",
    "analytic_keydb_cxl_only",
    "chain_capacity",
    "estimated_events_avoided",
    "require_analytic",
    "routing_summary",
    "run_calibration",
    "scrambled_key_pmf",
    "select_backend",
    "single_flow_operating_point",
    "solve_fixed_point",
    "zipf_rank_pmf",
]
