"""Shared machinery of the analytical backend: fixed points over knots.

The DES reaches steady state by *iterating epochs*: price a batch of
operations at the current loaded latencies, push the implied traffic
through the bandwidth allocator, refresh the latencies, repeat.  For
the paper's steady-state sweeps that loop converges to a fixed point of
one self-consistency map

    latency = L(utilization)            (the M/G/k-style loaded-latency
    utilization = U(throughput(latency))  model over the PeakBandwidthCurve
                                          knots in repro.hw)

so the analytical backend solves that map directly with damped
fixed-point iteration instead of simulating every event.  The helpers
here are deliberately tiny: the per-application physics (which traffic
crosses which resources) lives in :mod:`repro.analytic.mlc` and
:mod:`repro.analytic.keydb`; this module owns only the solver and the
closed-form single-flow operating point every model shares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Tuple

from ..errors import ConfigurationError
from ..hw.paths import MemoryPath
from ..hw.topology import Platform

__all__ = [
    "ANALYTIC_MODEL_VERSION",
    "FixedPoint",
    "solve_fixed_point",
    "chain_capacity",
    "single_flow_operating_point",
]

#: Version of the analytical model family.  Part of every analytic
#: point's cache fingerprint (see :mod:`repro.cache.fingerprint`), so
#: refining the equations can never serve stale cached results.
ANALYTIC_MODEL_VERSION = 1


@dataclass(frozen=True)
class FixedPoint:
    """Outcome of one fixed-point solve."""

    value: float
    iterations: int
    converged: bool
    residual: float


def solve_fixed_point(
    step: Callable[[float], float],
    initial: float,
    tolerance: float = 1e-10,
    max_iterations: int = 64,
    damping: float = 1.0,
) -> FixedPoint:
    """Iterate ``x <- x + damping * (step(x) - x)`` to convergence.

    ``step`` must map a scalar state (throughput, utilization, a mean
    service time) to its self-consistent update.  The relative residual
    ``|step(x) - x| / max(|x|, 1)`` below ``tolerance`` stops the loop.
    """
    if max_iterations <= 0:
        raise ConfigurationError("max_iterations must be positive")
    if not 0.0 < damping <= 1.0:
        raise ConfigurationError("damping must be in (0, 1]")
    x = float(initial)
    residual = float("inf")
    for iteration in range(1, max_iterations + 1):
        proposed = step(x)
        residual = abs(proposed - x) / max(abs(proposed), 1.0)
        x = x + damping * (proposed - x)
        if residual <= tolerance:
            return FixedPoint(x, iteration, True, residual)
    return FixedPoint(x, max_iterations, False, residual)


def chain_capacity(
    platform: Platform, path: MemoryPath, write_fraction: float
) -> Tuple[float, str]:
    """Capacity (bytes/s) of a path's weakest shared resource.

    Evaluates every resource's :class:`~repro.hw.bandwidth.
    PeakBandwidthCurve` at the flow's own write fraction — exactly the
    mix the allocator converges to when this flow is alone on the chain
    — including any RAS derating.  Returns ``(capacity, resource_name)``.
    """
    best_name = path.resources[0]
    best = float("inf")
    for name in path.resources:
        cap = platform.resources[name].capacity(write_fraction)
        cap *= platform.derating(name)
        if cap < best:
            best, best_name = cap, name
    return best, best_name


def single_flow_operating_point(
    platform: Platform,
    path: MemoryPath,
    offered_bytes_per_s: float,
    write_fraction: float,
) -> Tuple[float, float]:
    """Closed-form ``(achieved, bottleneck_utilization)`` for one flow.

    For a single demand the allocator's mix-aware max-min reduces
    exactly to clipping at the weakest resource: every resource sees the
    flow's own write fraction, the achieved rate is ``min(offered,
    chain_capacity)`` and the bottleneck utilization is the achieved
    rate over that weakest capacity.  This is machine-precision
    equivalent to :meth:`repro.hw.topology.Platform.allocate` with one
    demand (property-tested in ``tests/analytic``).
    """
    capacity, _ = chain_capacity(platform, path, write_fraction)
    achieved = min(offered_bytes_per_s, capacity)
    utilization = achieved / capacity if capacity > 0 else 0.0
    return achieved, utilization
