"""Calibration of the analytical backend against the DES.

The fast path earns its routing table (:mod:`repro.analytic.select`)
empirically: :func:`run_calibration` executes the same grid of sweep
points on *both* backends, records the per-metric relative error and
the per-backend wall clock, and :data:`PINNED_TOLERANCES` pins the
error every metric is allowed — with margin over the observed worst
case, so a model regression fails the golden-grid test rather than
silently shifting published curves.

Observed errors at the quick calibration scale (record_count 16 384,
total_ops 20 000, seed ``0xC0FFEE``):

* fig3 / fig4 loaded-latency curves: **bit-identical** (same knots,
  same closed form — the tolerance is a float-noise guard);
* fig5 throughput: worst cell +1.7 % (``mmem-ssd-0.2/D``); most cells
  within 0.5 %;
* fig5 read p50/p99: within one latency-histogram bucket (the
  histogram's growth factor is 1.02, so one bucket is 2 %);
* fig8 throughput and tails: exact to float noise.

The latency-percentile tolerances are therefore *bucket-quantized*:
two buckets (≈4 %) covers a boundary-straddling fill on either side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "PINNED_TOLERANCES",
    "DEFAULT_FIG5_CELLS",
    "MetricError",
    "CalibrationReport",
    "run_calibration",
]

#: Per-metric relative-error ceilings, keyed ``<figure>:<metric>``.
#: Pinned with margin over the observed worst case (module docstring);
#: the golden-grid test and ``bench_analytic --check`` both gate on
#: these exact numbers.
PINNED_TOLERANCES: Dict[str, float] = {
    "fig3:achieved_bytes_per_s": 1e-9,
    "fig3:latency_ns": 1e-9,
    "fig5:throughput_ops_per_s": 0.03,
    "fig5:read_p50_us": 0.045,
    "fig5:read_p99_us": 0.045,
    "fig8:throughput_ops_per_s": 0.01,
    "fig8:read_p50_us": 0.045,
    "fig8:read_p99_us": 0.045,
}

#: The fig5 calibration cells: one per configuration family (flat,
#: interleaved, tiered-promotion, flash-backed) crossed with the
#: workload shapes that stress each model term (RMW-heavy A, scan-free
#: C, recency-driven D).
DEFAULT_FIG5_CELLS: Tuple[Tuple[str, str], ...] = (
    ("mmem", "A"),
    ("1:1", "A"),
    ("1:3", "C"),
    ("hot-promote", "A"),
    ("mmem-ssd-0.2", "A"),
    ("mmem-ssd-0.4", "C"),
    ("1:1", "D"),
    ("mmem-ssd-0.2", "D"),
)


@dataclass(frozen=True)
class MetricError:
    """One (point, metric) comparison between the two backends."""

    figure: str
    point: str
    metric: str
    des: float
    analytic: float

    @property
    def rel_error(self) -> float:
        """``|analytic - des| / |des|`` (0 when both are 0)."""
        if self.des == 0.0:
            return 0.0 if self.analytic == 0.0 else float("inf")
        return abs(self.analytic - self.des) / abs(self.des)

    @property
    def key(self) -> str:
        """The tolerance-table key of this comparison."""
        return f"{self.figure}:{self.metric}"


@dataclass
class CalibrationReport:
    """Both backends' answers on the calibration grid, plus timing."""

    errors: List[MetricError] = field(default_factory=list)
    #: Wall clock per backend, summed over the grid (seconds).
    des_elapsed_s: float = 0.0
    analytic_elapsed_s: float = 0.0

    @property
    def speedup(self) -> float:
        """Aggregate DES-seconds per analytic-second on the grid."""
        if self.analytic_elapsed_s <= 0:
            return float("inf")
        return self.des_elapsed_s / self.analytic_elapsed_s

    def worst(self) -> Dict[str, MetricError]:
        """The largest-error comparison per tolerance key."""
        out: Dict[str, MetricError] = {}
        for err in self.errors:
            cur = out.get(err.key)
            if cur is None or err.rel_error > cur.rel_error:
                out[err.key] = err
        return out

    def violations(
        self, tolerances: Optional[Mapping[str, float]] = None
    ) -> List[MetricError]:
        """Comparisons exceeding their pinned tolerance."""
        tol = PINNED_TOLERANCES if tolerances is None else tolerances
        return [
            err for err in self.errors
            if err.rel_error > tol.get(err.key, 0.0)
        ]

    @property
    def ok(self) -> bool:
        """True when every comparison is within its pinned tolerance."""
        return not self.violations()


def _keydb_metrics(result) -> Dict[str, float]:
    tails = result.tail_latencies_us()
    return {
        "throughput_ops_per_s": result.throughput_ops_per_s,
        "read_p50_us": tails["p50"],
        "read_p99_us": tails["p99"],
    }


def _calibrate_fig3(report: CalibrationReport, load_points: int) -> None:
    from ..analysis.figures import FIG3_MIXES, FIG3_PANELS, _load_fractions
    from ..parallel import tasks

    fractions = _load_fractions(load_points)
    for panel in FIG3_PANELS:
        params = {"panel": panel, "mixes": [list(m) for m in FIG3_MIXES],
                  "fractions": fractions}
        t0 = time.perf_counter()
        des = tasks.fig3_panel(params, 0)
        t1 = time.perf_counter()
        ana = tasks.fig3_panel_analytic(params, 0)
        t2 = time.perf_counter()
        report.des_elapsed_s += t1 - t0
        report.analytic_elapsed_s += t2 - t1
        for mix, curve in des.items():
            for i, (dp, ap) in enumerate(zip(curve.points, ana[mix].points)):
                report.errors.append(MetricError(
                    "fig3", f"{panel}/{mix}[{i}]", "achieved_bytes_per_s",
                    dp.achieved_bytes_per_s, ap.achieved_bytes_per_s,
                ))
                report.errors.append(MetricError(
                    "fig3", f"{panel}/{mix}[{i}]", "latency_ns",
                    dp.latency_ns, ap.latency_ns,
                ))


def _calibrate_fig5(
    report: CalibrationReport,
    cells: Sequence[Tuple[str, str]],
    record_count: int,
    total_ops: int,
    seed: int,
) -> None:
    from ..parallel import tasks

    for config, workload in cells:
        params = {"config": config, "workload": workload,
                  "record_count": record_count, "total_ops": total_ops}
        t0 = time.perf_counter()
        des = tasks.fig5_cell(params, seed)
        t1 = time.perf_counter()
        ana = tasks.fig5_cell_analytic(params, seed)
        t2 = time.perf_counter()
        report.des_elapsed_s += t1 - t0
        report.analytic_elapsed_s += t2 - t1
        dm, am = _keydb_metrics(des), _keydb_metrics(ana)
        for metric in dm:
            report.errors.append(MetricError(
                "fig5", f"{workload}/{config}", metric, dm[metric], am[metric]
            ))


def _calibrate_fig8(
    report: CalibrationReport, record_count: int, total_ops: int, seed: int
) -> None:
    from ..parallel import tasks

    for on_cxl in (False, True):
        params = {"on_cxl": on_cxl, "record_count": record_count,
                  "total_ops": total_ops}
        t0 = time.perf_counter()
        des = tasks.fig8_cell(params, seed)
        t1 = time.perf_counter()
        ana = tasks.fig8_cell_analytic(params, seed)
        t2 = time.perf_counter()
        report.des_elapsed_s += t1 - t0
        report.analytic_elapsed_s += t2 - t1
        dm, am = _keydb_metrics(des), _keydb_metrics(ana)
        for metric in dm:
            report.errors.append(MetricError(
                "fig8", "cxl" if on_cxl else "mmem", metric,
                dm[metric], am[metric],
            ))


def run_calibration(
    fig5_cells: Sequence[Tuple[str, str]] = DEFAULT_FIG5_CELLS,
    record_count: int = 16_384,
    total_ops: int = 20_000,
    seed: int = 0xC0FFEE,
    load_points: int = 8,
    figures: Sequence[str] = ("fig3", "fig5", "fig8"),
) -> CalibrationReport:
    """Run the calibration grid on both backends; collect the errors.

    The defaults are the quick CI scale; the full-scale sweep uses the
    same code with fig5's full ``(65_536, 100_000)`` grid.  Warm the
    analytic caches first (one throwaway call) when timing matters —
    the report's ``speedup`` otherwise charges one-time pmf/platform
    construction to the first point.
    """
    report = CalibrationReport()
    if "fig3" in figures:
        _calibrate_fig3(report, load_points)
    if "fig5" in figures:
        _calibrate_fig5(report, fig5_cells, record_count, total_ops, seed)
    if "fig8" in figures:
        _calibrate_fig8(report, record_count, total_ops, seed)
    return report
