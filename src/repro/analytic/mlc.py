"""Closed-form loaded-latency curves (the Fig. 3 / Fig. 4 fast path).

The DES probe (:class:`repro.workloads.mlc.MlcProbe`) prices every load
point by running the platform's mix-aware max-min allocator.  With a
single probe flow the allocator has a closed form (see
:func:`repro.analytic.model.single_flow_operating_point`), so the
analytical probe evaluates each sweep point directly:

    achieved = min(offered, min_r  curve_r(wf) * derating_r)
    u        = achieved / chain capacity
    latency  = idle(wf) + amplitude * u**sharpness * min(1/(1-u), qmax)

plus the same write-share overload droop on remote paths past
saturation.  The result is *exact* — bit-identical ``MlcCurve`` points
— because both backends interpolate the same ``PeakBandwidthCurve``
knots and share the same :class:`~repro.hw.latency.LoadedLatencyModel`;
what the fast path skips is the allocator's per-point iteration.

Background flows (the bandwidth-contention ablations) genuinely couple
demands, so :class:`AnalyticMlcProbe` falls back to the allocator for
those points; none of the stock fig3/fig4 sweeps pass background flows.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import WorkloadError
from ..hw.paths import MemoryPath
from ..workloads.mlc import MlcCurve, MlcPoint, MlcProbe
from .model import single_flow_operating_point

__all__ = ["AnalyticMlcProbe"]


class AnalyticMlcProbe(MlcProbe):
    """Drop-in :class:`~repro.workloads.mlc.MlcProbe` without the DES.

    Same constructor, same ``loaded_latency_curve`` signature, same
    ``MlcCurve`` output; the matrix modes are inherited unchanged.
    """

    def loaded_latency_curve(
        self,
        path: MemoryPath,
        reads: int,
        writes: int,
        load_points: Optional[Sequence[float]] = None,
        background: Sequence[Tuple[MemoryPath, float, float]] = (),
    ) -> MlcCurve:
        if background:
            # Coupled demands have no single-flow closed form; use the
            # allocator-backed probe for exactness.
            return super().loaded_latency_curve(
                path, reads, writes, load_points=load_points,
                background=background,
            )
        if reads < 0 or writes < 0 or reads + writes == 0:
            raise WorkloadError("invalid read:write mix")
        write_fraction = writes / (reads + writes)
        if load_points is None:
            import numpy as np

            load_points = list(np.linspace(0.02, 1.15, 24))

        peak = path.peak_bandwidth(write_fraction)
        points: List[MlcPoint] = []
        for fraction in load_points:
            if fraction <= 0:
                raise WorkloadError("load fractions must be positive")
            offered = fraction * peak
            achieved, utilization = single_flow_operating_point(
                self.platform, path, offered, write_fraction
            )
            latency = path.loaded_latency_ns(utilization, write_fraction)
            achieved = self._overload_droop(path, write_fraction, offered, achieved)
            points.append(MlcPoint(offered, achieved, latency))
        return MlcCurve(path.kind.value, write_fraction, points)
