"""``python -m repro`` — the CLI without an installed entry point.

The serve chaos harness and CI smoke jobs boot server subprocesses this
way, so they work from a plain ``PYTHONPATH=src`` checkout.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
