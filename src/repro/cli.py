"""Command-line interface: regenerate any paper artifact from the shell.

``repro <artifact>`` runs the corresponding experiment and prints the
paper-style rows/series::

    repro fig3            # loaded-latency curves (all four distances)
    repro fig5 --quick    # KeyDB YCSB table (scaled)
    repro fig7            # Spark TPC-H normalized times
    repro fig8            # CXL-only KeyDB pair
    repro fig10           # LLM serving sweep
    repro tables          # Tables 1, 2, 3, 4
    repro cost --r-d 10 --r-c 8 --c 2 --r-t 1.1
    repro advise --demand-gbps 55 --write-fraction 0.2
    repro faults list                     # RAS scenario catalog
    repro faults run device-loss --app keydb --quick --json
    repro overload sweep --quick          # offered load vs goodput
    repro overload faults --quick         # shedding vs uncontrolled
    repro metrics --quick --json          # metrics-registry snapshot
    repro trace --quick                   # per-layer latency breakdown
    repro sweep fig5 --quick --workers 4  # parallel sweep, merged metrics
    repro sweep fig10 --quick             # any stock figure target
    repro cache stats                     # result-cache shape
    repro cache verify                    # integrity-scan every entry
    repro serve --port 8023               # HTTP what-if job service

Sweep-shaped commands (figures, ``overload sweep``, ``faults run``,
``sweep``) take ``--workers N`` to fan independent points across
supervised processes; ``$REPRO_WORKERS`` sets the default.  Parallel
results are bit-identical to serial ones.  The same commands take
``--point-timeout S`` (kill and retry a point past its deadline),
``--retries N`` (bounded retry of crashes, deadline kills and
transient errors, with exponential backoff) and ``--fail-fast``; when
anything was retried, killed or quarantined, a one-line health summary
lands on stderr.  Ctrl-C drains gracefully: completed points persist
to the cache, a resume manifest records the cut, and exit is 130.

The same commands memoize completed points in a content-addressed
on-disk cache (``$REPRO_CACHE_DIR``, default ``~/.cache/repro/sweeps``):
warm re-runs skip execution entirely, interrupted sweeps resume from
the last persisted point, and editing any ``repro`` source invalidates
every stale entry via the code fingerprint.  ``--no-cache`` opts a run
out; ``repro cache {stats,clear,verify}`` maintains the store.

The same runners back ``pytest benchmarks/``; the CLI is the
no-test-harness path for interactive exploration.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import __version__
from .errors import ConfigurationError
from .analysis import (
    TABLE1,
    TABLE2_HEADERS,
    TABLE3,
    TABLE4,
    ascii_table,
    fig3_loaded_latency,
    fig4_path_comparison,
    fig5_keydb,
    fig7_spark,
    fig8_cxl_only,
    fig10_llm,
    table2_rows,
)
from .core import AbstractCostModel, ConfigAdvisor, WorkloadProfile
from .hw.presets import paper_cxl_platform
from .units import gb_per_s

__all__ = ["main"]


def _open_cache(args: argparse.Namespace):
    """The result cache for one command (None under ``--no-cache``)."""
    if getattr(args, "no_cache", False):
        return None
    from .cache import SweepCache

    return SweepCache()


def _supervise(args: argparse.Namespace):
    """The supervisor policy for one sweep-shaped command's flags."""
    from .parallel.supervisor import SupervisorConfig

    return SupervisorConfig(
        point_timeout_s=getattr(args, "point_timeout", None),
        max_attempts=max(1, getattr(args, "retries", 2) + 1),
        fail_fast=getattr(args, "fail_fast", False),
    )


def _health_note(tag: str) -> None:
    """One stderr line of robustness telemetry, only when eventful.

    Health is sidecar metadata (like cache stats): it never touches the
    command's stdout artifact, and a clean run prints nothing.
    """
    from .parallel import last_run_health

    health = last_run_health()
    if health is not None and health.any:
        print(f"[{tag}] health: {health.summary()}",
              file=sys.stderr, flush=True)


def _guard_backend(args: argparse.Namespace, target: str) -> None:
    """Reject ``--backend analytic`` on targets without a fast path.

    ``auto`` is always legal: the router keeps transient-shaped targets
    on the DES (see :mod:`repro.analytic.select`), so the command runs
    identically to ``des``.
    """
    if getattr(args, "backend", "des") == "analytic":
        from .analytic.select import require_analytic

        require_analytic(target)


def _cmd_fig3(args: argparse.Namespace) -> int:
    panels = fig3_loaded_latency(load_points=8 if args.quick else 24,
                                 backend=args.backend,
                                 workers=args.workers,
                                 cache=_open_cache(args),
                                 supervise=_supervise(args))
    _health_note("fig3")
    for panel, curves in panels.items():
        rows = [
            (mix, f"{c.idle_latency_ns:.1f}", f"{c.peak_bandwidth_gbps:.1f}")
            for mix, c in curves.items()
        ]
        print(ascii_table(["mix", "idle ns", "peak GB/s"], rows, title=f"\nFig. 3 [{panel}]"))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    data = fig4_path_comparison(load_points=8 if args.quick else 24,
                                backend=args.backend,
                                workers=args.workers,
                                cache=_open_cache(args),
                                supervise=_supervise(args))
    _health_note("fig4")
    for pattern, per_mix in data.items():
        rows = []
        for mix, panels in per_mix.items():
            for panel, curve in panels.items():
                rows.append(
                    (mix, panel, f"{curve.idle_latency_ns:.1f}",
                     f"{curve.peak_bandwidth_gbps:.1f}")
                )
        print(ascii_table(
            ["mix", "path", "idle ns", "peak GB/s"], rows,
            title=f"\nFig. 4 [{pattern}]",
        ))
    return 0


def _cmd_fig5(args: argparse.Namespace) -> int:
    scale = (16_384, 20_000) if args.quick else (65_536, 100_000)
    result = fig5_keydb(record_count=scale[0], total_ops=scale[1],
                        backend=args.backend,
                        workers=args.workers, cache=_open_cache(args),
                        supervise=_supervise(args))
    _health_note("fig5")
    rows = []
    for config, per_wl in result.throughput_table():
        rows.append([config] + [f"{per_wl[w]:.0f}" for w in ("A", "B", "C", "D")])
    print(ascii_table(["config", "A kops", "B kops", "C kops", "D kops"], rows,
                      title="Fig. 5(a): KeyDB YCSB throughput"))
    return 0


def _cmd_fig7(args: argparse.Namespace) -> int:
    _guard_backend(args, "fig7")
    results = fig7_spark(workers=args.workers, cache=_open_cache(args),
                         supervise=_supervise(args))
    _health_note("fig7")
    base = {q: r.total_ns for q, r in results["mmem"].items()}
    rows = []
    for name, per_query in results.items():
        rows.append(
            [name]
            + [f"{per_query[q].total_ns / base[q]:.2f}" for q in sorted(base)]
            + [f"{per_query['Q9'].shuffle_fraction * 100:.0f}%"]
        )
    print(ascii_table(["config"] + sorted(base) + ["Q9 shuffle"], rows,
                      title="Fig. 7: Spark TPC-H (normalized to mmem)"))
    return 0


def _cmd_fig8(args: argparse.Namespace) -> int:
    scale = (20_480, 20_000) if args.quick else (102_400, 150_000)
    pair = fig8_cxl_only(record_count=scale[0], total_ops=scale[1],
                         backend=args.backend,
                         workers=args.workers, cache=_open_cache(args),
                         supervise=_supervise(args))
    _health_note("fig8")
    print(
        ascii_table(
            ["quantity", "value"],
            [
                ("mmem throughput", f"{pair.mmem.throughput_ops_per_s / 1e3:.0f} kops/s"),
                ("cxl throughput", f"{pair.cxl.throughput_ops_per_s / 1e3:.0f} kops/s"),
                ("throughput drop", f"{pair.throughput_drop * 100:.1f}%"),
                ("p50 latency penalty", f"{pair.latency_penalty(50) * 100:.1f}%"),
                ("p99 latency penalty", f"{pair.latency_penalty(99) * 100:.1f}%"),
            ],
            title="Fig. 8: KeyDB bound to CXL vs MMEM (§4.3)",
        )
    )
    return 0


def _cmd_fig10(args: argparse.Namespace) -> int:
    _guard_backend(args, "fig10")
    result = fig10_llm(workers=args.workers, cache=_open_cache(args),
                       supervise=_supervise(args))
    _health_note("fig10")
    configs = list(result.serving)
    rows = []
    for point in result.serving["mmem"]:
        rows.append(
            [point.threads]
            + [f"{result.rate(c, point.threads):.0f}" for c in configs]
        )
    print(ascii_table(["threads"] + configs, rows,
                      title="Fig. 10(a): LLM serving rate (tokens/s)"))
    print("\nFig. 10(b) (threads, GB/s):", result.fig10b)
    print("Fig. 10(c) (KV GiB, GB/s):", result.fig10c)
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    print(ascii_table(["configuration", "description"], TABLE1, title="Table 1"))
    print()
    print(ascii_table(TABLE2_HEADERS, table2_rows(), title="Table 2"))
    print()
    print(ascii_table(["parameter", "description", "example"], TABLE3, title="Table 3"))
    print()
    print(ascii_table(["GH200 tier", "CXL analogue"], TABLE4, title="Table 4"))
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    model = AbstractCostModel(r_d=args.r_d, r_c=args.r_c, c=args.c, r_t=args.r_t)
    est = model.estimate()
    print(
        ascii_table(
            ["quantity", "value"],
            [
                ("N_cxl / N_baseline", f"{est.server_ratio * 100:.2f}%"),
                ("servers saved", f"{est.servers_saved_fraction * 100:.2f}%"),
                ("TCO saving", f"{est.tco_saving * 100:.2f}%"),
                ("breakeven R_t", f"{model.breakeven_r_t():.3f}"),
            ],
            title="Abstract Cost Model (§6)",
        )
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .analysis import validate_anchors

    checks = validate_anchors()
    failures = 0
    for check in checks:
        mark = "ok " if check.ok else "FAIL"
        print(f"[{mark}] {check.name}: measured {check.measured}, "
              f"expected {check.expected}")
        failures += 0 if check.ok else 1
    print(f"\n{len(checks) - failures}/{len(checks)} anchors hold")
    return 1 if failures else 0


def _cmd_advise(args: argparse.Namespace) -> int:
    advisor = ConfigAdvisor(paper_cxl_platform(snc_enabled=True))
    profile = WorkloadProfile(
        demand_bytes_per_s=gb_per_s(args.demand_gbps),
        write_fraction=args.write_fraction,
        working_set_bytes=int(args.working_set_gib * 2**30),
        locality=args.locality,
        spans_sockets=args.spans_sockets,
    )
    for advice in advisor.advise(profile):
        print(f"[{advice.severity.value:9s}] {advice.code}: {advice.message}")
    return 0


def _cmd_faults_list(args: argparse.Namespace) -> int:
    from .faults import SCENARIOS

    rows = [
        (s.name, "transient" if s.transient else "permanent", s.description)
        for s in SCENARIOS.values()
    ]
    print(ascii_table(["scenario", "kind", "description"], rows,
                      title="Fault scenarios (RAS layer)"))
    return 0


def _cmd_faults_run(args: argparse.Namespace) -> int:
    import json

    from .errors import ConfigurationError
    from .faults import FAULT_APPS, SCENARIOS, fault_sweep_spec
    from .parallel import run_sweep

    _guard_backend(args, "faults")

    if args.scenario not in SCENARIOS:
        print(f"error: unknown fault scenario {args.scenario!r}; expected one "
              f"of {sorted(SCENARIOS)}", file=sys.stderr)
        return 2
    apps = sorted(FAULT_APPS) if args.app == "all" else [args.app]
    try:
        spec = fault_sweep_spec(
            args.scenario, apps=apps, seed=args.seed, quick=args.quick
        )
        sweep = run_sweep(spec, workers=args.workers, cache=_open_cache(args),
                          supervise=_supervise(args))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _health_note(f"faults {args.scenario}")
    for failure in sweep.failures():
        print(f"error: point {failure.key!r} failed: "
              f"{failure.error.type}: {failure.error.message}", file=sys.stderr)
    if not sweep.ok:
        return 1
    payload = []
    for pr in sweep.results:
        summary = pr.value
        if args.json:
            payload.append(summary.as_dict())
            continue
        print(ascii_table(
            ["quantity", "value"], summary.rows(),
            title=f"\n{pr.key} under {args.scenario} (seed {args.seed})",
        ))
        if summary.trace:
            print("fault trace:")
            for line in summary.trace:
                print(f"  {line}")
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0


def _cmd_overload_sweep(args: argparse.Namespace) -> int:
    import json

    from .errors import ConfigurationError
    from .overload import sweep_offered_load

    _guard_backend(args, "overload")

    try:
        factors = [float(f) for f in args.factors.split(",") if f.strip()]
    except ValueError:
        print(f"error: --factors must be comma-separated numbers, got {args.factors!r}",
              file=sys.stderr)
        return 2
    if not factors or any(f <= 0 for f in factors):
        print("error: --factors needs at least one positive load factor",
              file=sys.stderr)
        return 2
    record_count = 4096 if args.quick else 16_384
    duration_ns = 20e6 if args.quick else 40e6
    modes = [True, False] if args.mode == "both" else [args.mode == "controlled"]
    payload = []
    for controlled in modes:
        try:
            summaries = sweep_offered_load(
                factors=factors,
                controlled=controlled,
                duration_ns=duration_ns,
                record_count=record_count,
                seed=args.seed,
                workers=args.workers,
                cache=_open_cache(args),
                supervise=_supervise(args),
            )
        except ConfigurationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        _health_note("overload sweep")
        if args.json:
            payload.extend(s.as_dict() for s in summaries)
            continue
        mode = "controlled" if controlled else "uncontrolled"
        rows = [
            (
                f"{s.load_factor:.2f}x",
                f"{s.offered}",
                f"{s.goodput_ops_per_s / 1e3:.0f}",
                f"{s.throughput_ops_per_s / 1e3:.0f}",
                f"{s.shed_rate * 100:.1f}%",
                f"{s.deadline_miss_rate * 100:.1f}%",
                "n/a" if s.p99_ns != s.p99_ns else f"{s.p99_ns / 1e3:.1f}",
            )
            for s in summaries
        ]
        print(ascii_table(
            ["load", "offered", "goodput k/s", "tput k/s",
             "shed", "miss", "p99 us"],
            rows,
            title=f"\nOffered load vs goodput ({mode}, open-loop KeyDB)",
        ))
    if args.json:
        print(json.dumps(payload, indent=2))
    return 0


def _cmd_overload_faults(args: argparse.Namespace) -> int:
    import json

    from .errors import ConfigurationError
    from .overload import run_fault_comparison

    _guard_backend(args, "overload")

    record_count = 4096 if args.quick else 16_384
    duration_ns = 20e6 if args.quick else 40e6
    try:
        out = run_fault_comparison(
            scenario=args.scenario,
            duration_ns=duration_ns,
            record_count=record_count,
            seed=args.seed,
        )
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({k: s.as_dict() for k, s in out.items()}, indent=2))
        return 0
    for label, summary in out.items():
        print(ascii_table(
            ["quantity", "value"], summary.rows(),
            title=f"\n{label} under {args.scenario}",
        ))
    return 0


def _observed_run(args: argparse.Namespace, tracing: bool):
    from .obs import run_observed_keydb

    record_count, total_ops = (1_024, 1_500) if args.quick else (4_096, 6_000)
    return run_observed_keydb(
        config=args.config,
        workload=args.workload,
        record_count=record_count,
        total_ops=total_ops,
        seed=args.seed,
        tracing=tracing,
    )


def _cmd_metrics(args: argparse.Namespace) -> int:
    from .errors import ConfigurationError

    try:
        observed = _observed_run(args, tracing=False)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    registry = observed.registry
    if args.json:
        print(registry.to_json())
        return 0
    if args.csv:
        print(registry.to_csv(), end="")
        return 0
    rows = []
    for sample in registry.samples():
        labels = ";".join(f"{k}={v}" for k, v in sorted(sample.labels.items()))
        value = sample.value
        rows.append(
            (sample.name, sample.kind, labels,
             "nan" if value != value else f"{value:,.6g}")
        )
    print(ascii_table(
        ["name", "kind", "labels", "value"], rows,
        title=f"Metrics snapshot ({args.config} YCSB-{args.workload}, "
              f"{observed.result.ops} ops)",
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import json

    from .errors import ConfigurationError

    if args.limit < 0:
        print("error: --limit must be >= 0", file=sys.stderr)
        return 2
    try:
        observed = _observed_run(args, tracing=True)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = observed.tracer
    if args.json:
        print(json.dumps(tracer.as_dict(limit=args.limit), indent=2))
        return 0
    duration_total = sum(op.duration_ns for op in tracer.ops)
    rows = [
        (layer, f"{count}", f"{ns / 1e6:.3f}",
         f"{100.0 * ns / duration_total:.1f}%" if duration_total else "n/a")
        for layer, (count, ns) in sorted(tracer.layer_totals().items())
    ]
    print(ascii_table(
        ["layer", "spans", "total ms", "share"], rows,
        title=f"Per-layer latency breakdown ({args.config} "
              f"YCSB-{args.workload}, {len(tracer.ops)} traced ops)",
    ))
    check = tracer.validate()
    mark = "ok" if check["within_tolerance"] else "FAIL"
    print(f"\n[{mark}] span sums vs end-to-end latency: "
          f"max relative error {check['max_rel_error']:.2e} "
          f"over {check['ops_checked']} ops")
    print(f"engine: {observed.profile.steps} events dispatched; "
          f"dominant process: {observed.profile.dominant_process()}")
    return 1 if not check["within_tolerance"] else 0


def _sweep_progress(done: int, total: int, result) -> None:
    if result.ok:
        status = "cached" if result.cached else f"ok ({result.elapsed_s:.2f}s)"
    else:
        status = f"FAIL ({result.error.type})"
    print(f"[{done}/{total}] {result.key}: {status}",
          file=sys.stderr, flush=True)


#: Stock targets of ``repro sweep`` (all spawn-importable observed tasks).
SWEEP_TARGETS = ("fig3", "fig4", "fig5", "fig7", "fig8", "fig10", "overload")


def stock_sweep_spec(
    target: str,
    quick: bool = False,
    seed: int = 0xC0FFEE,
    mode: str = "controlled",
    backend: str = "des",
):
    """The observed sweep spec for one stock target, at a scale.

    Shared by ``repro sweep``, ``repro serve`` job specs and the chaos
    harness (``python -m repro.parallel.chaos``) so all execute the
    exact same points — which is what makes their exports
    byte-comparable.  ``backend`` picks the execution model on targets
    with an analytical fast path (fig3/fig4/fig5/fig8); forcing
    ``analytic`` on any other target is a configuration error, while
    ``auto`` quietly keeps transient-shaped targets on the DES.
    """
    if backend not in ("des", "analytic", "auto"):
        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of "
            f"('des', 'analytic', 'auto')"
        )
    if backend == "analytic":
        from .analytic.select import require_analytic

        require_analytic(target)
    if target == "fig3":
        from .analysis.figures import fig3_sweep_spec

        return fig3_sweep_spec(load_points=8 if quick else 24,
                               seed=seed, observed=True, backend=backend)
    if target == "fig4":
        from .analysis.figures import fig4_sweep_spec

        return fig4_sweep_spec(load_points=8 if quick else 24,
                               seed=seed, observed=True, backend=backend)
    if target == "fig5":
        from .analysis.figures import fig5_sweep_spec

        scale = (16_384, 20_000) if quick else (65_536, 100_000)
        return fig5_sweep_spec(record_count=scale[0], total_ops=scale[1],
                               seed=seed, observed=True, backend=backend)
    if target == "fig7":
        from .analysis.figures import fig7_sweep_spec

        return fig7_sweep_spec(seed=seed, observed=True)
    if target == "fig8":
        from .analysis.figures import fig8_sweep_spec

        scale = (20_480, 20_000) if quick else (102_400, 150_000)
        return fig8_sweep_spec(record_count=scale[0], total_ops=scale[1],
                               seed=seed, observed=True, backend=backend)
    if target == "fig10":
        from .analysis.figures import fig10_sweep_spec

        return fig10_sweep_spec(
            backend_counts=(1, 2, 3) if quick else (1, 2, 3, 4, 5, 6),
            seed=seed, observed=True,
        )
    if target == "overload":
        from .overload.runner import offered_load_sweep_spec

        return offered_load_sweep_spec(
            controlled=mode == "controlled",
            duration_ns=20e6 if quick else 40e6,
            record_count=4096 if quick else 16_384,
            seed=seed,
            observed=True,
        )
    raise ConfigurationError(
        f"unknown sweep target {target!r}; expected one of {SWEEP_TARGETS}"
    )


def _sweep_spec(args: argparse.Namespace):
    """The observed sweep spec for one CLI invocation's flags."""
    return stock_sweep_spec(
        args.target, quick=args.quick, seed=args.seed, mode=args.mode,
        backend=getattr(args, "backend", "des"),
    )


def _backend_note(args: argparse.Namespace, spec) -> None:
    """The ``--backend auto`` routing summary stderr line.

    Mirrors the cache summary line's shape: per-sweep point counts per
    backend plus the estimated DES events the analytic routing skipped.
    """
    if getattr(args, "backend", "des") != "auto":
        return
    from .analytic.select import (
        estimated_events_avoided,
        routing_summary,
        select_backend,
    )

    decisions = [
        (
            select_backend(args.target, point.params),
            estimated_events_avoided(args.target, point.params),
        )
        for point in spec.points
    ]
    print(f"[sweep {spec.name}] {routing_summary(decisions)}",
          file=sys.stderr, flush=True)


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json

    from .errors import ConfigurationError
    from .parallel import merge_metrics_documents, run_sweep

    try:
        spec = _sweep_spec(args)
        progress = None if args.no_progress else _sweep_progress
        sweep = run_sweep(spec, workers=args.workers, progress=progress,
                          cache=_open_cache(args),
                          supervise=_supervise(args))
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for failure in sweep.failures():
        print(f"error: point {failure.key!r} failed: "
              f"{failure.error.type}: {failure.error.message}", file=sys.stderr)
    print(f"[sweep {spec.name}] {len(sweep.results)} points, "
          f"{sweep.workers} worker(s), {sweep.elapsed_s:.1f}s",
          file=sys.stderr, flush=True)
    health = sweep.runner_health
    if health is not None:
        print(f"[sweep {spec.name}] health: {health.summary()}",
              file=sys.stderr, flush=True)
    if not sweep.ok:
        return 1
    cs = sweep.cache_stats
    if cs is not None:
        print(f"[sweep {spec.name}] cache: {cs.hits} hits, "
              f"{cs.misses} misses, {cs.evictions} evictions, "
              f"{cs.resumed} resumed", file=sys.stderr, flush=True)
    _backend_note(args, spec)
    merged = merge_metrics_documents(
        [(pr.key, pr.value["metrics"]) for pr in sweep.results],
        generated_by=f"repro sweep {args.target}",
    )
    if args.json:
        print(json.dumps(merged, indent=2))
        return 0
    if args.target == "fig5":
        rows = [
            (pr.key, f"{pr.value['throughput_ops_per_s'] / 1e3:.0f}")
            for pr in sweep.results
        ]
        headers = ["workload/config", "kops/s"]
        title = "Sweep fig5: KeyDB YCSB throughput"
    elif args.target == "overload":
        rows = [
            (
                pr.key,
                f"{pr.value['summary'].goodput_ops_per_s / 1e3:.0f}",
                f"{pr.value['summary'].shed_rate * 100:.1f}%",
                f"{pr.value['summary'].deadline_miss_rate * 100:.1f}%",
            )
            for pr in sweep.results
        ]
        headers = ["point", "goodput k/s", "shed", "miss"]
        title = f"Sweep overload ({args.mode})"
    else:
        rows = [
            (pr.key, quantity, value)
            for pr in sweep.results
            for quantity, value in pr.value["rows"]
        ]
        headers = ["point", "quantity", "value"]
        title = f"Sweep {args.target}"
    print(ascii_table(headers, rows, title=title))
    print(f"\n{len(merged['metrics'])} merged samples across "
          f"{len(sweep.results)} points (use --json for the "
          f"repro.metrics/v1 document)")
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    from .cache import SweepCache, code_fingerprint, register_store_snapshot

    cache = SweepCache()
    if args.json:
        from .obs import MetricsRegistry

        registry = MetricsRegistry()
        register_store_snapshot(registry, cache)
        print(registry.to_json())
        return 0
    snap = cache.stats_snapshot()
    print(ascii_table(
        ["quantity", "value"],
        [
            ("root", snap["root"]),
            ("entries", f"{snap['entries']}"),
            ("total bytes", f"{snap['total_bytes']:,}"),
            ("size cap", f"{snap['max_bytes']:,}"),
            ("code fingerprint", code_fingerprint()[:16]),
        ],
        title="Sweep result cache",
    ))
    return 0


def _cmd_cache_clear(args: argparse.Namespace) -> int:
    from .cache import SweepCache

    cache = SweepCache()
    removed = cache.clear()
    print(f"removed {removed} entr{'y' if removed == 1 else 'ies'} "
          f"from {cache.root}")
    return 0


def _cmd_cache_verify(args: argparse.Namespace) -> int:
    from .cache import SweepCache, verify_resume_manifests

    cache = SweepCache()
    report = cache.verify(purge=args.purge)
    bad = list(report.bad) + verify_resume_manifests(cache, purge=args.purge)
    for fingerprint, reason in bad:
        print(f"BAD {fingerprint}: {reason}"
              + (" (removed)" if args.purge else ""), file=sys.stderr)
    print(f"{report.checked - len(report.bad)}/{report.checked} entries ok "
          f"in {cache.root}")
    # Nonzero exit on *any* corruption — entries or resume manifests —
    # so CI can gate on an integrity scan.
    return 1 if bad else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, serve_forever

    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers if args.workers is not None else 1,
        max_running=args.max_running,
        queue_depth=args.queue_depth,
        rate_per_s=args.rate,
        burst=args.burst,
        table_limit=args.table_limit,
        default_deadline_s=args.deadline,
        drain_budget_s=args.drain_budget,
        request_timeout_s=args.request_timeout,
    )
    return serve_forever(config)


def _nonnegative_seed(text: str) -> int:
    value = int(text, 0)  # accepts decimal and 0x-hex
    if value < 0:
        raise argparse.ArgumentTypeError("seed must be non-negative")
    return value


def _positive_workers(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("workers must be >= 1")
    return value


def _nonnegative_retries(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("retries must be >= 0")
    return value


def _positive_timeout(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("point timeout must be > 0 seconds")
    return value


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=_positive_workers, default=None, metavar="N",
        help="worker processes for independent sweep points "
             "(default: $REPRO_WORKERS, else 1; parallel results are "
             "bit-identical to serial)",
    )
    parser.add_argument(
        "--backend", choices=("des", "analytic", "auto"), default="des",
        help="execution model: the discrete-event simulator, the "
             "calibrated analytical fast path (steady-state targets "
             "only), or per-point auto-routing (steady states -> "
             "analytic, transients -> des)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the content-addressed result cache "
             "($REPRO_CACHE_DIR, default ~/.cache/repro/sweeps)",
    )
    parser.add_argument(
        "--point-timeout", type=_positive_timeout, default=None, metavar="S",
        help="per-attempt wall-clock deadline in seconds; a point past "
             "it is killed and retried (default: none)",
    )
    parser.add_argument(
        "--retries", type=_nonnegative_retries, default=2, metavar="N",
        help="extra attempts for a point after a retryable failure — "
             "crash, deadline kill, transient error (default: 2)",
    )
    parser.add_argument(
        "--fail-fast", action="store_true",
        help="stop dispatching new points after the first point "
             "exhausts its attempts (in-flight points still land)",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce the EuroSys'24 ASIC CXL paper's artifacts.",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    for name, func, doc in (
        ("fig3", _cmd_fig3, "loaded-latency curves (§3)"),
        ("fig4", _cmd_fig4, "distance/mix/pattern comparison (§3.3)"),
        ("fig5", _cmd_fig5, "KeyDB YCSB (§4.1)"),
        ("fig7", _cmd_fig7, "Spark TPC-H (§4.2)"),
        ("fig8", _cmd_fig8, "KeyDB on CXL only (§4.3)"),
        ("fig10", _cmd_fig10, "LLM serving (§5)"),
        ("tables", _cmd_tables, "Tables 1/2/3/4"),
    ):
        p = sub.add_parser(name, help=doc)
        p.add_argument("--quick", action="store_true", help="small, fast run")
        if name != "tables":
            _add_workers(p)
        p.set_defaults(func=func)

    p = sub.add_parser("cost", help="Abstract Cost Model (§6)")
    p.add_argument("--r-d", type=float, default=10.0)
    p.add_argument("--r-c", type=float, default=8.0)
    p.add_argument("--c", type=float, default=2.0)
    p.add_argument("--r-t", type=float, default=1.1)
    p.set_defaults(func=_cmd_cost)

    p = sub.add_parser("validate", help="check every fast calibration anchor")
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser("faults", help="fault injection & RAS scenarios")
    fsub = p.add_subparsers(dest="faults_command", required=True)
    fp = fsub.add_parser("list", help="show the scenario catalog")
    fp.set_defaults(func=_cmd_faults_list)
    fp = fsub.add_parser("run", help="run one scenario against an app")
    fp.add_argument("scenario", help="scenario name (see 'faults list')")
    fp.add_argument(
        "--app", choices=("keydb", "llm", "spark", "all"), default="all",
        help="which application to fault (default: all)",
    )
    fp.add_argument(
        "--seed", type=_nonnegative_seed, default=0xC0FFEE,
        help="RNG seed (decimal or 0x-hex; same seed, same fault trace)",
    )
    fp.add_argument("--quick", action="store_true", help="small, fast run")
    fp.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON instead of tables")
    _add_workers(fp)
    fp.set_defaults(func=_cmd_faults_run)

    p = sub.add_parser("overload", help="admission control & goodput (overload layer)")
    osub = p.add_subparsers(dest="overload_command", required=True)
    op = osub.add_parser("sweep", help="offered load vs goodput curve")
    op.add_argument(
        "--factors", default="0.5,0.75,1.0,1.25,1.5",
        help="comma-separated offered-load factors of calibrated capacity",
    )
    op.add_argument(
        "--mode", choices=("controlled", "uncontrolled", "both"), default="both",
        help="admission control on, off, or both (default: both)",
    )
    op.add_argument("--seed", type=_nonnegative_seed, default=0xC0FFEE)
    op.add_argument("--quick", action="store_true", help="small, fast run")
    op.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON instead of tables")
    _add_workers(op)
    op.set_defaults(func=_cmd_overload_sweep)
    op = osub.add_parser("faults", help="SLO-aware shedding vs uncontrolled under a fault")
    op.add_argument(
        "--scenario", default="link-degrade",
        help="fault scenario name (see 'faults list')",
    )
    op.add_argument("--seed", type=_nonnegative_seed, default=0xC0FFEE)
    op.add_argument("--quick", action="store_true", help="small, fast run")
    op.add_argument("--json", action="store_true",
                    help="emit machine-readable JSON instead of tables")
    op.set_defaults(func=_cmd_overload_faults)

    for name, func, doc in (
        ("metrics", _cmd_metrics, "metrics-registry snapshot of a YCSB run"),
        ("trace", _cmd_trace, "per-layer latency trace of a YCSB run"),
    ):
        p = sub.add_parser(name, help=doc)
        p.add_argument("--config", default="1:1",
                       help="Table 1 configuration (default: 1:1)")
        p.add_argument("--workload", default="A", choices=("A", "B", "C", "D"),
                       help="YCSB workload (default: A)")
        p.add_argument("--seed", type=_nonnegative_seed, default=0xC0FFEE)
        p.add_argument("--quick", action="store_true", help="small, fast run")
        p.add_argument("--json", action="store_true",
                       help="emit machine-readable JSON instead of tables")
        if name == "metrics":
            p.add_argument("--csv", action="store_true",
                           help="emit the snapshot as CSV")
        else:
            p.add_argument("--limit", type=int, default=16,
                           help="ops to include in --json output (default: 16)")
        p.set_defaults(func=func)

    p = sub.add_parser(
        "sweep", help="parallel sweep with a merged repro.metrics/v1 export"
    )
    p.add_argument(
        "target", choices=SWEEP_TARGETS,
        help="which stock sweep to run",
    )
    p.add_argument(
        "--mode", choices=("controlled", "uncontrolled"), default="controlled",
        help="admission control on or off (overload target only)",
    )
    p.add_argument("--seed", type=_nonnegative_seed, default=0xC0FFEE)
    p.add_argument("--quick", action="store_true", help="small, fast run")
    p.add_argument("--json", action="store_true",
                   help="print the merged repro.metrics/v1 document")
    p.add_argument("--no-progress", action="store_true",
                   help="suppress per-point progress lines on stderr")
    _add_workers(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("cache", help="sweep result cache maintenance")
    csub = p.add_subparsers(dest="cache_command", required=True)
    cp = csub.add_parser("stats", help="entry count, bytes, cap, location")
    cp.add_argument("--json", action="store_true",
                    help="emit a repro.metrics/v1 snapshot")
    cp.set_defaults(func=_cmd_cache_stats)
    cp = csub.add_parser("clear", help="remove every cached result")
    cp.set_defaults(func=_cmd_cache_clear)
    cp = csub.add_parser("verify", help="integrity-scan every entry")
    cp.add_argument("--purge", action="store_true",
                    help="delete entries that fail verification")
    cp.set_defaults(func=_cmd_cache_verify)

    p = sub.add_parser(
        "serve",
        help="crash-tolerant HTTP service for sweep-shaped what-if jobs",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8023,
                   help="listen port; 0 binds an ephemeral one (default: 8023)")
    p.add_argument("--workers", type=_positive_workers, default=None,
                   metavar="N",
                   help="sweep worker processes per job (default: 1)")
    p.add_argument("--max-running", type=int, default=2, metavar="N",
                   help="jobs executing concurrently (default: 2)")
    p.add_argument("--queue-depth", type=int, default=8, metavar="N",
                   help="bounded admission queue; beyond it submissions "
                        "are shed with 503 + Retry-After (default: 8)")
    p.add_argument("--rate", type=float, default=None, metavar="R",
                   help="token-bucket submissions/s; beyond it 429 + "
                        "Retry-After (default: unlimited)")
    p.add_argument("--burst", type=float, default=None, metavar="B",
                   help="token-bucket burst (default: derived from --rate)")
    p.add_argument("--table-limit", type=int, default=64, metavar="N",
                   help="job-table bound; oldest finished records are "
                        "evicted past it (default: 64)")
    p.add_argument("--deadline", type=float, default=600.0, metavar="S",
                   help="default per-job wall-clock deadline in seconds; "
                        "0 disables (default: 600)")
    p.add_argument("--drain-budget", type=float, default=10.0, metavar="S",
                   help="SIGTERM drain budget: checkpoint in-flight jobs "
                        "and exit 0 within this (default: 10)")
    p.add_argument("--request-timeout", type=float, default=30.0, metavar="S",
                   help="per-request read timeout in seconds (default: 30)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("advise", help="configuration advisor (§3.4/§5.3)")
    p.add_argument("--demand-gbps", type=float, default=50.0)
    p.add_argument("--write-fraction", type=float, default=0.0)
    p.add_argument("--working-set-gib", type=float, default=0.0)
    p.add_argument("--locality", type=float, default=1.0)
    p.add_argument("--spans-sockets", action="store_true")
    p.set_defaults(func=_cmd_advise)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        # Bad user input (flag values, $REPRO_WORKERS, unknown names)
        # surfaces as a one-line error, never a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt as exc:
        # A drained sweep: completed points are already persisted and a
        # resume manifest written; rerunning the command picks up there.
        note = f": {exc}" if str(exc) else ""
        print(f"interrupted{note}", file=sys.stderr)
        return 130


if __name__ == "__main__":
    sys.exit(main())
