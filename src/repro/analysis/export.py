"""Export figure data to CSV/JSON for external plotting.

The ASCII rendering in :mod:`repro.analysis.report` is for terminals;
these writers produce machine-readable artifacts (the shape the paper's
own artifact repository publishes) so results can be plotted or diffed
outside this package.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Sequence

from ..workloads.mlc import MlcCurve

__all__ = [
    "curve_to_rows",
    "rows_to_csv",
    "fig3_to_csv",
    "fig10_to_json",
    "write_text",
]


def curve_to_rows(curve: MlcCurve) -> List[Dict[str, float]]:
    """Flatten one loaded-latency curve to dict rows."""
    return [
        {
            "write_fraction": curve.write_fraction,
            "offered_bytes_per_s": p.offered_bytes_per_s,
            "achieved_gbps": p.achieved_gbps,
            "latency_ns": p.latency_ns,
        }
        for p in curve.points
    ]


def rows_to_csv(rows: Sequence[Dict[str, Any]]) -> str:
    """Render dict rows as CSV text (keys of the first row are header)."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buffer.getvalue()


def fig3_to_csv(panels: Dict[str, Dict[str, MlcCurve]]) -> str:
    """One CSV covering every Fig. 3 panel and mix."""
    rows: List[Dict[str, Any]] = []
    for panel, curves in panels.items():
        for mix, curve in curves.items():
            for row in curve_to_rows(curve):
                rows.append({"panel": panel, "mix": mix, **row})
    return rows_to_csv(rows)


def fig10_to_json(result: Any) -> str:
    """Serialize a Fig. 10 result (serving sweeps + probes) to JSON."""
    payload = {
        "serving": {
            config: [
                {
                    "threads": p.threads,
                    "backends": p.backends,
                    "tokens_per_second": p.tokens_per_second,
                    "dram_utilization": p.dram_utilization,
                    "cxl_utilization": p.cxl_utilization,
                    "loaded_latency_ns": p.loaded_latency_ns,
                }
                for p in points
            ]
            for config, points in result.serving.items()
        },
        "fig10b_threads_gbps": list(result.fig10b),
        "fig10c_kv_gib_gbps": list(result.fig10c),
    }
    return json.dumps(payload, indent=2)


def write_text(path: str, text: str) -> None:
    """Write an artifact to disk (tiny wrapper for symmetry/tests)."""
    with open(path, "w") as f:
        f.write(text)
