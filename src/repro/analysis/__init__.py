"""Figure/table runners, calibration anchors, and terminal rendering."""

from ..hw.calibration import ANCHORS, PaperAnchors
from .figures import (
    Fig5Result,
    Fig8Result,
    Fig10Result,
    fig3_loaded_latency,
    fig3_sweep_spec,
    fig4_path_comparison,
    fig4_sweep_spec,
    fig5_keydb,
    fig5_sweep_spec,
    fig7_spark,
    fig7_sweep_spec,
    fig8_cxl_only,
    fig8_sweep_spec,
    fig10_llm,
    fig10_sweep_spec,
)
from .repeat import RepeatedMetric, repeat_metric
from .report import ascii_bars, ascii_series, ascii_table
from .topology_report import describe_platform, path_surface_table
from .validate import AnchorCheck, validate_anchors
from .tables import TABLE1, TABLE2_HEADERS, TABLE3, TABLE4, table2_rows

__all__ = [
    "ANCHORS",
    "PaperAnchors",
    "Fig5Result",
    "Fig8Result",
    "Fig10Result",
    "fig3_loaded_latency",
    "fig3_sweep_spec",
    "fig4_path_comparison",
    "fig4_sweep_spec",
    "fig5_keydb",
    "fig5_sweep_spec",
    "fig7_spark",
    "fig7_sweep_spec",
    "fig8_cxl_only",
    "fig8_sweep_spec",
    "fig10_llm",
    "fig10_sweep_spec",
    "RepeatedMetric",
    "repeat_metric",
    "ascii_bars",
    "ascii_series",
    "ascii_table",
    "describe_platform",
    "path_surface_table",
    "AnchorCheck",
    "validate_anchors",
    "TABLE1",
    "TABLE2_HEADERS",
    "TABLE3",
    "TABLE4",
    "table2_rows",
]
