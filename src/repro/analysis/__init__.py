"""Figure/table runners, calibration anchors, and terminal rendering."""

from ..hw.calibration import ANCHORS, PaperAnchors
from .figures import (
    Fig5Result,
    Fig8Result,
    Fig10Result,
    fig3_loaded_latency,
    fig4_path_comparison,
    fig5_keydb,
    fig7_spark,
    fig8_cxl_only,
    fig10_llm,
)
from .repeat import RepeatedMetric, repeat_metric
from .report import ascii_bars, ascii_series, ascii_table
from .topology_report import describe_platform, path_surface_table
from .validate import AnchorCheck, validate_anchors
from .tables import TABLE1, TABLE2_HEADERS, TABLE3, TABLE4, table2_rows

__all__ = [
    "ANCHORS",
    "PaperAnchors",
    "Fig5Result",
    "Fig8Result",
    "Fig10Result",
    "fig3_loaded_latency",
    "fig4_path_comparison",
    "fig5_keydb",
    "fig7_spark",
    "fig8_cxl_only",
    "fig10_llm",
    "RepeatedMetric",
    "repeat_metric",
    "ascii_bars",
    "ascii_series",
    "ascii_table",
    "describe_platform",
    "path_surface_table",
    "AnchorCheck",
    "validate_anchors",
    "TABLE1",
    "TABLE2_HEADERS",
    "TABLE3",
    "TABLE4",
    "table2_rows",
]
