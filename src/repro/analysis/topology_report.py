"""Render a platform's topology as text — the Fig. 2 view of a server.

``describe_platform`` prints the socket/SNC-domain/CXL layout, per-node
capacities, and the calibrated path surface from a chosen initiator —
useful in examples and for sanity-checking hand-built ServerSpecs.
"""

from __future__ import annotations

from typing import List

from ..hw.topology import Platform
from ..units import format_bandwidth, format_bytes

__all__ = ["describe_platform", "path_surface_table"]


def describe_platform(platform: Platform) -> str:
    """A tree view of the platform (Fig. 2(a)-style)."""
    spec = platform.spec
    lines: List[str] = [
        f"{spec.name}: {spec.sockets} x {spec.cpu.name} "
        f"({spec.cpu.cores} cores each), SNC "
        f"{'on (' + str(spec.cpu.snc_domains) + ' domains)' if spec.snc_enabled else 'off'}"
    ]
    for socket in range(spec.sockets):
        lines.append(f"  socket {socket}:")
        for node in platform.dram_nodes(socket):
            domain = f" (SNC domain {node.domain})" if node.domain is not None else ""
            lines.append(
                f"    dram node {node.node_id}{domain}: "
                f"{format_bytes(node.capacity_bytes)}, "
                f"{format_bandwidth(node.resource.capacity(0.0))} read peak"
            )
        for node in platform.cxl_nodes(socket):
            lines.append(
                f"    cxl node {node.node_id}: "
                f"{format_bytes(node.capacity_bytes)}, "
                f"{format_bandwidth(node.resource.capacity(1 / 3))} peak (2:1)"
            )
    for index, ssd in enumerate(platform.ssds):
        lines.append(
            f"  ssd {index}: {format_bytes(ssd.spec.capacity_bytes)}, "
            f"{format_bandwidth(ssd.spec.read_bandwidth_bytes_per_s)} read"
        )
    lines.append(
        f"  nic: {format_bandwidth(spec.nic.bandwidth_bytes_per_s)}"
    )
    return "\n".join(lines)


def path_surface_table(platform: Platform, initiator_socket: int = 0) -> str:
    """The §3 surface from one socket: idle latency and peak per node."""
    lines = [f"paths from socket {initiator_socket}:"]
    for node_id, node in sorted(platform.nodes.items()):
        path = platform.path(initiator_socket, node_id)
        lines.append(
            f"  -> node {node_id} ({node.kind.value}, socket {node.socket}): "
            f"{path.kind.value:7s} idle {path.idle_latency_ns():6.1f} ns, "
            f"peak {format_bandwidth(path.peak_bandwidth(0.0))}"
        )
    return "\n".join(lines)
