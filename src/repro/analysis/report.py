"""Terminal rendering: ASCII tables and bar/series plots.

The benchmark harness prints the same rows and series the paper's
figures report; these helpers keep that output readable without any
plotting dependency.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

__all__ = ["ascii_table", "ascii_bars", "ascii_series"]


def ascii_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as a fixed-width table."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
    title: Optional[str] = None,
) -> str:
    """Render one bar per label, scaled to the maximum value."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    peak = max(values) if values else 1.0
    peak = peak if peak > 0 else 1.0
    label_w = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        bar = "#" * max(1, int(round(value / peak * width))) if value > 0 else ""
        lines.append(f"{label.ljust(label_w)} |{bar.ljust(width)}| {value:.2f}{unit}")
    return "\n".join(lines)


def ascii_series(
    points: Sequence[Tuple[float, float]],
    x_label: str = "x",
    y_label: str = "y",
    width: int = 50,
    title: Optional[str] = None,
) -> str:
    """Render (x, y) samples as one scaled row per sample."""
    lines = [title] if title else []
    peak = max((y for _, y in points), default=1.0)
    peak = peak if peak > 0 else 1.0
    lines.append(f"{x_label:>12}  {y_label}")
    for x, y in points:
        bar = "*" * max(1, int(round(y / peak * width))) if y > 0 else ""
        lines.append(f"{x:12.2f}  {bar} {y:.2f}")
    return "\n".join(lines)
