"""The paper's static tables as data.

* Table 1 — configurations used in the capacity experiments (§4.1);
* Table 2 — Intel processor series and the vCPU:memory gap (§4.3);
* Table 3 — the Abstract Cost Model's parameters (§6);
* Table 4 — GH200 memory tiers vs their CXL analogues (§7.1).
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.vcpu import PROCESSOR_SERIES

__all__ = ["TABLE1", "TABLE2_HEADERS", "TABLE3", "TABLE4", "table2_rows"]

#: Table 1: configuration name -> description.
TABLE1: Tuple[Tuple[str, str], ...] = (
    ("mmem", "Entire working set in main memory."),
    ("mmem-ssd-0.2", "20% of the working set is spilled to SSD."),
    ("mmem-ssd-0.4", "40% of the working set is spilled to SSD."),
    ("3:1", "Entire working set in memory (75% MMEM + 25% CXL, 3:1 interleaved)."),
    ("1:1", "Entire working set in memory (50% MMEM + 50% CXL, 1:1 interleaved)."),
    ("1:3", "Entire working set in memory (25% MMEM + 75% CXL, 1:3 interleaved)."),
    (
        "hot-promote",
        "Entire working set in memory (50% MMEM + 50% CXL), with hot page "
        "promotion kernel patches (§2).",
    ),
)

#: Table 2 headers; rows come from :data:`repro.core.vcpu.PROCESSOR_SERIES`.
TABLE2_HEADERS: Tuple[str, ...] = (
    "Year",
    "CPU",
    "Max vCPU/server",
    "Memory channels/socket",
    "Max memory (TB)",
    "Required memory 1:4 (TB)",
)

#: Table 3: Abstract Cost Model parameters with the §6 example values.
TABLE3: Tuple[Tuple[str, str, str], ...] = (
    ("P_s", "Throughput with (almost) the entire working set on SSD; normalized to 1.", "1"),
    ("R_d", "Relative throughput with the working set in main memory.", "10"),
    ("R_c", "Relative throughput with the working set in CXL memory.", "8"),
    ("D", "MMEM capacity per server (completeness only; unused).", "-"),
    ("C", "Ratio of MMEM to CXL capacity on a CXL server.", "2"),
    ("N_baseline", "Servers in the baseline cluster.", "-"),
    ("N_cxl", "Servers in the CXL cluster at equal performance.", "-"),
    ("R_t", "Relative TCO of a CXL server vs baseline.", "1.1"),
)

#: Table 4: GH200 memory tier -> CXL analogue (§7.1).
TABLE4: Tuple[Tuple[str, str], ...] = (
    ("Local GPU HBM", "Local DDR"),
    ("Local CPU DDR", "CXL memory expansion"),
    ("Remote GPU HBM", "CXL memory pooling"),
    ("Remote CPU DDR", "CXL memory pooling"),
)


def table2_rows() -> List[Tuple]:
    """Table 2's rows (from the processor-series dataset)."""
    return [tuple(row) for row in PROCESSOR_SERIES]
