"""Per-figure experiment runners.

One function per paper artifact; each returns plain data structures the
benchmarks print and the tests assert on.  All runners accept scale
parameters so the same code serves quick CI checks and the full
benchmark harness.

Every runner also accepts ``workers``: its independent cells fan out
through :func:`repro.parallel.run_sweep` (``None`` defers to
``$REPRO_WORKERS``, defaulting to serial in-process execution), and
``cache`` (a :class:`~repro.cache.store.SweepCache`): completed cells
are memoized by content fingerprint so warm re-runs and interrupted
sweeps skip finished work.  Cells keep the paper protocol of sharing
the root seed, and results are re-assembled in the historical order, so
a parallel or cache-served figure is bit-identical to a serial cold one.

Each figure also exposes its grid as a ``*_sweep_spec`` builder — the
shared catalog behind the runners here and the ``repro sweep`` CLI
(``observed=True`` selects the task variant that additionally snapshots
a per-cell ``repro.metrics/v1`` document for the merged export).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..apps.kvstore.server import KeyDbResult
from ..apps.llm import LLM_CONFIGS, LlmServingExperiment, ServingPoint
from ..apps.spark import SPARK_CONFIGS
from ..apps.spark.job import QueryResult
from ..hw.topology import Platform
from ..parallel import SweepPoint, SweepSpec, run_sweep, tasks
from ..sim.rng import DEFAULT_SEED
from ..workloads.mlc import MlcCurve
from ..units import GIB

__all__ = [
    "fig3_sweep_spec",
    "fig3_loaded_latency",
    "fig4_sweep_spec",
    "fig4_path_comparison",
    "Fig5Result",
    "fig5_sweep_spec",
    "fig5_keydb",
    "fig7_sweep_spec",
    "fig7_spark",
    "Fig8Result",
    "fig8_sweep_spec",
    "fig8_cxl_only",
    "Fig10Result",
    "fig10_sweep_spec",
    "fig10_llm",
]

#: Fig. 3's read:write mix legend.
FIG3_MIXES: Tuple[Tuple[int, int], ...] = ((1, 0), (2, 1), (1, 1), (0, 1))

#: The four distances of Fig. 3's panels.
FIG3_PANELS: Tuple[str, ...] = ("mmem", "mmem-r", "cxl", "cxl-r")


def _panel_path(platform: Platform, panel: str):
    dram0 = platform.dram_nodes(0)[0]
    dram1 = platform.dram_nodes(1)[0]
    cxl = platform.cxl_nodes()[0]
    if panel == "mmem":
        return platform.path(0, dram0.node_id, initiator_domain=dram0.domain)
    if panel == "mmem-r":
        return platform.path(0, dram1.node_id)
    if panel == "cxl":
        return platform.path(0, cxl.node_id)
    if panel == "cxl-r":
        return platform.path(1, cxl.node_id)
    raise KeyError(f"unknown panel {panel!r}")


def _load_fractions(load_points: int) -> List[float]:
    return [0.02 + i * (1.13 / (load_points - 1)) for i in range(load_points)]


def _backend_task(backend: str, des, analytic, auto=None):
    """Resolve a spec builder's ``backend`` flag to a task function.

    ``auto`` defaults to the analytic task: for the MLC and fig8 grids
    every point is steady-state, so the router would route all of them
    to the fast path anyway.  fig5 passes its true per-point router.
    """
    from ..analytic.select import BACKENDS

    if backend not in BACKENDS:
        from ..errors import ConfigurationError

        raise ConfigurationError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    if backend == "des":
        return des
    if backend == "analytic":
        return analytic
    return auto if auto is not None else analytic


def fig3_sweep_spec(
    panels: Sequence[str] = FIG3_PANELS,
    mixes: Sequence[Tuple[int, int]] = FIG3_MIXES,
    load_points: int = 24,
    seed: int = DEFAULT_SEED,
    observed: bool = False,
    backend: str = "des",
) -> SweepSpec:
    """The Fig. 3 panel grid as a sweep spec (one point per distance)."""
    fractions = _load_fractions(load_points)
    return SweepSpec(
        name="fig3",
        task=_backend_task(
            backend,
            tasks.fig3_panel_observed if observed else tasks.fig3_panel,
            (tasks.fig3_panel_analytic_observed if observed
             else tasks.fig3_panel_analytic),
        ),
        points=tuple(
            SweepPoint(
                key=panel,
                params={"panel": panel, "mixes": [list(m) for m in mixes],
                        "fractions": fractions},
                seed=seed,
            )
            for panel in panels
        ),
        base_seed=seed,
    )


def fig3_loaded_latency(
    panels: Sequence[str] = FIG3_PANELS,
    mixes: Sequence[Tuple[int, int]] = FIG3_MIXES,
    load_points: int = 24,
    backend: str = "des",
    workers: Optional[int] = None,
    cache=None,
    supervise=None,
) -> Dict[str, Dict[str, MlcCurve]]:
    """Fig. 3: loaded-latency curves for the four distances.

    Returns ``{panel: {"r:w": MlcCurve}}`` with 16 MLC threads on the
    SNC-enabled platform, as in §3.1.  Panels are independent and fan
    out across ``workers`` processes.
    """
    spec = fig3_sweep_spec(panels=panels, mixes=mixes, load_points=load_points,
                           backend=backend)
    sweep = run_sweep(spec, workers=workers, cache=cache,
                      supervise=supervise).raise_failures()
    return {pr.key: pr.value for pr in sweep.results}


def fig4_sweep_spec(
    write_fractions_mixes: Sequence[Tuple[int, int]] = (
        (1, 0), (3, 1), (2, 1), (1, 1), (1, 2), (0, 1),
    ),
    patterns: Sequence[str] = ("sequential", "random"),
    load_points: int = 24,
    seed: int = DEFAULT_SEED,
    observed: bool = False,
    backend: str = "des",
) -> SweepSpec:
    """The Fig. 4 (pattern, mix) grid as a sweep spec."""
    fractions = _load_fractions(load_points)
    return SweepSpec(
        name="fig4",
        task=_backend_task(
            backend,
            (tasks.fig4_pattern_mix_observed if observed
             else tasks.fig4_pattern_mix),
            (tasks.fig4_pattern_mix_analytic_observed if observed
             else tasks.fig4_pattern_mix_analytic),
        ),
        points=tuple(
            SweepPoint(
                key=f"{pattern}/{r}:{w}",
                params={"pattern": pattern, "mix": [r, w],
                        "fractions": fractions},
                seed=seed,
            )
            for pattern in patterns
            for r, w in write_fractions_mixes
        ),
        base_seed=seed,
    )


def fig4_path_comparison(
    write_fractions_mixes: Sequence[Tuple[int, int]] = (
        (1, 0), (3, 1), (2, 1), (1, 1), (1, 2), (0, 1),
    ),
    patterns: Sequence[str] = ("sequential", "random"),
    load_points: int = 24,
    backend: str = "des",
    workers: Optional[int] = None,
    cache=None,
    supervise=None,
) -> Dict[str, Dict[str, Dict[str, MlcCurve]]]:
    """Fig. 4: per-mix comparison of all distances, both patterns.

    Returns ``{pattern: {"r:w": {panel: MlcCurve}}}`` — panels (a)-(f)
    are the sequential mixes; (g)/(h) are the random read/write-only.
    Each (pattern, mix) cell fans out across ``workers`` processes.
    """
    spec = fig4_sweep_spec(
        write_fractions_mixes=write_fractions_mixes,
        patterns=patterns,
        load_points=load_points,
        backend=backend,
    )
    sweep = run_sweep(spec, workers=workers, cache=cache,
                      supervise=supervise).raise_failures()
    out: Dict[str, Dict[str, Dict[str, MlcCurve]]] = {}
    for point, pr in zip(spec.points, sweep.results):
        pattern = point.params["pattern"]
        r, w = point.params["mix"]
        out.setdefault(pattern, {})[f"{r}:{w}"] = pr.value
    return out


@dataclass
class Fig5Result:
    """Fig. 5: YCSB throughput and tails per configuration."""

    results: Dict[str, Dict[str, KeyDbResult]] = field(default_factory=dict)

    def throughput_table(self) -> List[Tuple[str, Dict[str, float]]]:
        """Rows of (config, {workload: kops/s}) in Table 1 order."""
        out = []
        configs = list(next(iter(self.results.values())).keys())
        for config in configs:
            out.append(
                (
                    config,
                    {
                        wl: per_cfg[config].throughput_ops_per_s / 1e3
                        for wl, per_cfg in self.results.items()
                    },
                )
            )
        return out

    def slowdown(self, workload: str, config: str) -> float:
        """Throughput slowdown vs the MMEM configuration."""
        base = self.results[workload]["mmem"].throughput_ops_per_s
        return base / self.results[workload][config].throughput_ops_per_s


def fig5_sweep_spec(
    workloads: Sequence[str] = ("A", "B", "C", "D"),
    configs: Sequence[str] = (
        "mmem", "mmem-ssd-0.2", "mmem-ssd-0.4", "3:1", "1:1", "1:3", "hot-promote",
    ),
    record_count: int = 65_536,
    total_ops: int = 100_000,
    seed: int = 0xC0FFEE,
    observed: bool = False,
    backend: str = "des",
) -> SweepSpec:
    """The Fig. 5 grid as a sweep spec (one point per cell).

    Cells share the root seed — the paper's protocol runs every
    configuration against the same workload draw.  ``observed=True``
    swaps in the task variant that also snapshots a per-cell
    ``repro.metrics/v1`` document (used by ``repro sweep fig5``).
    ``backend="auto"`` routes steady-state cells to the analytical
    model and the hot-promotion transient to the DES, per point.
    """
    return SweepSpec(
        name="fig5",
        task=_backend_task(
            backend,
            tasks.fig5_cell_observed if observed else tasks.fig5_cell,
            (tasks.fig5_cell_analytic_observed if observed
             else tasks.fig5_cell_analytic),
            tasks.fig5_cell_auto_observed if observed else tasks.fig5_cell_auto,
        ),
        points=tuple(
            SweepPoint(
                key=f"{workload}/{config}",
                params={
                    "workload": workload,
                    "config": config,
                    "record_count": record_count,
                    "total_ops": total_ops,
                },
                seed=seed,
            )
            for workload in workloads
            for config in configs
        ),
        base_seed=seed,
    )


def fig5_keydb(
    workloads: Sequence[str] = ("A", "B", "C", "D"),
    configs: Sequence[str] = (
        "mmem", "mmem-ssd-0.2", "mmem-ssd-0.4", "3:1", "1:1", "1:3", "hot-promote",
    ),
    record_count: int = 65_536,
    total_ops: int = 100_000,
    seed: int = 0xC0FFEE,
    backend: str = "des",
    workers: Optional[int] = None,
    cache=None,
    supervise=None,
) -> Fig5Result:
    """Fig. 5: run every (workload, configuration) cell."""
    spec = fig5_sweep_spec(
        workloads=workloads,
        configs=configs,
        record_count=record_count,
        total_ops=total_ops,
        seed=seed,
        backend=backend,
    )
    sweep = run_sweep(spec, workers=workers, cache=cache,
                      supervise=supervise).raise_failures()
    result = Fig5Result()
    for point, pr in zip(spec.points, sweep.results):
        workload = point.params["workload"]
        result.results.setdefault(workload, {})[point.params["config"]] = pr.value
    return result


def fig7_sweep_spec(
    configs: Sequence[str] = tuple(SPARK_CONFIGS),
    seed: int = DEFAULT_SEED,
    observed: bool = False,
) -> SweepSpec:
    """The Fig. 7 configuration columns as a sweep spec."""
    return SweepSpec(
        name="fig7",
        task=tasks.fig7_config_observed if observed else tasks.fig7_config,
        points=tuple(
            SweepPoint(key=config, params={"config": config}, seed=seed)
            for config in configs
        ),
        base_seed=seed,
    )


def fig7_spark(
    workers: Optional[int] = None, cache=None, supervise=None
) -> Dict[str, Dict[str, QueryResult]]:
    """Fig. 7: every Spark configuration x every TPC-H query."""
    spec = fig7_sweep_spec()
    sweep = run_sweep(spec, workers=workers, cache=cache,
                      supervise=supervise).raise_failures()
    return {pr.key: pr.value for pr in sweep.results}


@dataclass
class Fig8Result:
    """Fig. 8: KeyDB bound entirely to MMEM vs entirely to CXL."""

    mmem: KeyDbResult
    cxl: KeyDbResult

    @property
    def throughput_drop(self) -> float:
        """Fractional throughput loss on CXL (paper: ~12.5 %)."""
        return 1.0 - self.cxl.throughput_ops_per_s / self.mmem.throughput_ops_per_s

    def latency_penalty(self, percentile: float = 50.0) -> float:
        """Read-latency penalty at a percentile (paper: 9-27 %)."""
        return (
            self.cxl.read_latency.percentile(percentile)
            / self.mmem.read_latency.percentile(percentile)
            - 1.0
        )


def fig8_sweep_spec(
    record_count: int = 102_400,
    total_ops: int = 150_000,
    seed: int = 0xC0FFEE,
    observed: bool = False,
    backend: str = "des",
) -> SweepSpec:
    """The Fig. 8 MMEM/CXL pair as a sweep spec."""
    return SweepSpec(
        name="fig8",
        task=_backend_task(
            backend,
            tasks.fig8_cell_observed if observed else tasks.fig8_cell,
            (tasks.fig8_cell_analytic_observed if observed
             else tasks.fig8_cell_analytic),
        ),
        points=tuple(
            SweepPoint(
                key=key,
                params={
                    "on_cxl": on_cxl,
                    "record_count": record_count,
                    "total_ops": total_ops,
                },
                seed=seed,
            )
            for key, on_cxl in (("mmem", False), ("cxl", True))
        ),
        base_seed=seed,
    )


def fig8_cxl_only(
    record_count: int = 102_400,
    total_ops: int = 150_000,
    seed: int = 0xC0FFEE,
    backend: str = "des",
    workers: Optional[int] = None,
    cache=None,
    supervise=None,
) -> Fig8Result:
    """Fig. 8: the §4.3 numactl-bound YCSB-C pair."""
    spec = fig8_sweep_spec(
        record_count=record_count, total_ops=total_ops, seed=seed,
        backend=backend,
    )
    sweep = run_sweep(spec, workers=workers, cache=cache,
                      supervise=supervise).raise_failures()
    return Fig8Result(mmem=sweep.value("mmem"), cxl=sweep.value("cxl"))


@dataclass
class Fig10Result:
    """Fig. 10: the LLM serving sweeps and bandwidth probes."""

    serving: Dict[str, List[ServingPoint]]
    fig10b: List[Tuple[int, float]]
    fig10c: List[Tuple[int, float]]

    def rate(self, config: str, threads: int) -> float:
        """Serving rate of a configuration at a thread count."""
        for point in self.serving[config]:
            if point.threads == threads:
                return point.tokens_per_second
        raise KeyError(f"no sample at {threads} threads for {config}")


def fig10_sweep_spec(
    backend_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    configs: Sequence[str] = tuple(LLM_CONFIGS),
    seed: int = DEFAULT_SEED,
    observed: bool = False,
) -> SweepSpec:
    """The Fig. 10(a) configuration series as a sweep spec."""
    return SweepSpec(
        name="fig10",
        task=tasks.fig10_config_observed if observed else tasks.fig10_config,
        points=tuple(
            SweepPoint(
                key=config,
                params={"config": config,
                        "backend_counts": [int(n) for n in backend_counts]},
                seed=seed,
            )
            for config in configs
        ),
        base_seed=seed,
    )


def fig10_llm(
    backend_counts: Sequence[int] = (1, 2, 3, 4, 5, 6),
    fig10b_threads: Sequence[int] = (4, 8, 12, 16, 20, 24, 28, 32),
    fig10c_kv_gib: Sequence[int] = (0, 1, 2, 4, 8, 16, 32),
    workers: Optional[int] = None,
    cache=None,
    supervise=None,
) -> Fig10Result:
    """Fig. 10(a)-(c): serving-rate sweep plus both bandwidth probes."""
    spec = fig10_sweep_spec(backend_counts=backend_counts)
    sweep = run_sweep(spec, workers=workers, cache=cache,
                      supervise=supervise).raise_failures()
    serving = {pr.key: pr.value for pr in sweep.results}
    probe = LlmServingExperiment("mmem")
    fig10b = [(t, probe.fig10b_bandwidth_gbps(t)) for t in fig10b_threads]
    fig10c = [
        (kv, probe.fig10c_bandwidth_gbps(kv * GIB)) for kv in fig10c_kv_gib
    ]
    return Fig10Result(serving=serving, fig10b=fig10b, fig10c=fig10c)
