"""Self-check: verify the calibrated model against every quick anchor.

``validate_anchors()`` runs the fast subset of the paper's §3 anchors
(idle latencies, peak bandwidths, latency ratios, knee positions, the
cost-model example and the protocol bounds) and reports each as a
structured check.  ``repro validate`` exposes it on the CLI — the first
thing to run after touching the calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..core.cost_model import AbstractCostModel
from ..hw.calibration import ANCHORS, path_bandwidth_curve, path_latency_model
from ..hw.protocol import CxlLinkBudget
from ..units import to_gb_per_s

__all__ = ["AnchorCheck", "validate_anchors"]


@dataclass(frozen=True)
class AnchorCheck:
    """One verified anchor."""

    name: str
    expected: str
    measured: str
    ok: bool


def _check(
    name: str,
    measured: float,
    lo: float,
    hi: float,
    fmt: Callable[[float], str] = lambda v: f"{v:.2f}",
) -> AnchorCheck:
    return AnchorCheck(
        name=name,
        expected=f"[{fmt(lo)}, {fmt(hi)}]",
        measured=fmt(measured),
        ok=lo <= measured <= hi,
    )


def validate_anchors() -> List[AnchorCheck]:
    """Run every fast anchor check; returns the full list."""
    checks: List[AnchorCheck] = []
    ns = lambda v: f"{v:.2f} ns"
    gbps = lambda v: f"{v:.2f} GB/s"
    pct = lambda v: f"{v * 100:.2f}%"

    # Idle latencies (§3.2).
    for kind, expected in (
        ("mmem_local", ANCHORS.mmem_idle_read_ns),
        ("mmem_remote", ANCHORS.mmem_remote_read_ns),
        ("cxl_local", ANCHORS.cxl_idle_read_ns),
        ("cxl_remote", ANCHORS.cxl_remote_idle_read_ns),
    ):
        measured = path_latency_model(kind).idle_ns(0.0)
        checks.append(
            _check(f"idle latency {kind}", measured, expected - 0.01, expected + 0.01, ns)
        )

    # Peak bandwidths (§3.2).
    checks.append(
        _check(
            "mmem peak read",
            to_gb_per_s(path_bandwidth_curve("mmem_local")(0.0)),
            ANCHORS.mmem_read_peak_gbps - 0.1,
            ANCHORS.mmem_read_peak_gbps + 0.1,
            gbps,
        )
    )
    checks.append(
        _check(
            "cxl peak at 2:1",
            to_gb_per_s(path_bandwidth_curve("cxl_local")(1 / 3)),
            ANCHORS.cxl_peak_gbps - 0.1,
            ANCHORS.cxl_peak_gbps + 0.1,
            gbps,
        )
    )
    checks.append(
        _check(
            "cxl remote peak at 2:1",
            to_gb_per_s(path_bandwidth_curve("cxl_remote")(1 / 3)),
            ANCHORS.cxl_remote_peak_gbps - 0.2,
            ANCHORS.cxl_remote_peak_gbps + 0.2,
            gbps,
        )
    )

    # Latency ratios (§3.3).
    ratio_local = path_latency_model("cxl_local").idle_ns(0.0) / path_latency_model(
        "mmem_local"
    ).idle_ns(0.0)
    lo, hi = ANCHORS.cxl_vs_mmem_latency_ratio
    checks.append(_check("cxl/mmem latency ratio", ratio_local, lo, hi))

    # Knee band (§3.2).
    knee = path_latency_model("mmem_local").queueing.knee_utilization(50.0)
    lo, hi = ANCHORS.mmem_knee_utilization
    checks.append(_check("mmem latency knee", knee, lo, hi, pct))

    # Protocol consistency: curves within the flit budget.
    budget = CxlLinkBudget()
    for wf in (0.0, 1 / 3, 1.0):
        measured = path_bandwidth_curve("cxl_local")(wf)
        bound = budget.data_bandwidth(wf)
        checks.append(
            AnchorCheck(
                name=f"cxl curve within link budget (wf={wf:.2f})",
                expected=f"<= {to_gb_per_s(bound):.1f} GB/s",
                measured=f"{to_gb_per_s(measured):.1f} GB/s",
                ok=measured <= bound * 1.001,
            )
        )

    # The §6 worked example, exact.
    model = AbstractCostModel.paper_example()
    checks.append(
        _check("cost model server ratio", model.server_ratio(), 0.6727, 0.6731, pct)
    )
    checks.append(
        _check("cost model TCO saving", model.tco_saving(), 0.2596, 0.2600, pct)
    )
    return checks
