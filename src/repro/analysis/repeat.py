"""Repetition utilities: mean / spread / confidence across seeds.

The paper reports single-testbed measurements; a simulation can do
better by repeating every stochastic experiment across seeds and
reporting dispersion.  ``repeat_metric`` runs any ``seed -> float``
experiment and returns a :class:`RepeatedMetric` with mean, standard
deviation and a normal-approximation confidence interval — used by the
tests to show the headline ratios are stable across seeds, and available
to users for their own studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["RepeatedMetric", "repeat_metric"]

#: Two-sided z values for common confidence levels.
_Z = {0.90: 1.645, 0.95: 1.960, 0.99: 2.576}


@dataclass(frozen=True)
class RepeatedMetric:
    """Summary of one metric across repetitions."""

    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.values) < 2:
            raise ConfigurationError("need at least two repetitions")

    @property
    def n(self) -> int:
        """Number of repetitions."""
        return len(self.values)

    @property
    def mean(self) -> float:
        """Sample mean."""
        return sum(self.values) / self.n

    @property
    def stddev(self) -> float:
        """Sample standard deviation (Bessel-corrected)."""
        mu = self.mean
        return math.sqrt(sum((v - mu) ** 2 for v in self.values) / (self.n - 1))

    @property
    def relative_spread(self) -> float:
        """Coefficient of variation (stddev / |mean|)."""
        mu = self.mean
        return self.stddev / abs(mu) if mu else float("inf")

    def confidence_interval(self, level: float = 0.95) -> Tuple[float, float]:
        """Normal-approximation CI for the mean."""
        if level not in _Z:
            raise ConfigurationError(f"supported levels: {sorted(_Z)}")
        half = _Z[level] * self.stddev / math.sqrt(self.n)
        return (self.mean - half, self.mean + half)

    def within(self, lo: float, hi: float, level: float = 0.95) -> bool:
        """Whether the CI lies entirely inside ``[lo, hi]``."""
        ci_lo, ci_hi = self.confidence_interval(level)
        return lo <= ci_lo and ci_hi <= hi

    def __str__(self) -> str:
        lo, hi = self.confidence_interval()
        return f"{self.mean:.4g} ± {hi - self.mean:.2g} (95% CI, n={self.n})"


def repeat_metric(
    experiment: Callable[[int], float],
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
) -> RepeatedMetric:
    """Run ``experiment(seed)`` for every seed and summarize."""
    if len(seeds) < 2:
        raise ConfigurationError("need at least two seeds")
    return RepeatedMetric(tuple(float(experiment(seed)) for seed in seeds))
