"""Key-choosing distributions for the YCSB-style workloads.

The paper's KeyDB experiments (§4.1.1) use the YCSB defaults: a
*Zipfian* chooser for workloads A-C (a small set of keys receives most
of the traffic — this is what lets Hot-Promote shine) and the *latest*
chooser for workload D (recently inserted keys are hottest).  A uniform
chooser is included because §4.1.2 explicitly reasons about it ("if the
keys were distributed uniformly, we anticipate worse performance").

The Zipfian implementation follows the YCSB/Gray et al. rejection-free
algorithm with key scrambling, so hot keys are spread across the key
space rather than clustered at low ids — exactly the property that
matters for page-granular placement studies.
"""

from __future__ import annotations

import abc

import numpy as np

from ..errors import WorkloadError

__all__ = [
    "KeyChooser",
    "UniformChooser",
    "ZipfianChooser",
    "ScrambledZipfianChooser",
    "LatestChooser",
]


class KeyChooser(abc.ABC):
    """Chooses keys in ``[0, item_count)`` with some popularity skew."""

    def __init__(self, item_count: int) -> None:
        if item_count <= 0:
            raise WorkloadError("item_count must be positive")
        self.item_count = item_count

    @abc.abstractmethod
    def next_key(self, rng: np.random.Generator) -> int:
        """Draw one key."""

    def grow(self, new_count: int) -> None:
        """Extend the key space (after inserts).  Default: just widen."""
        if new_count < self.item_count:
            raise WorkloadError("key space cannot shrink")
        self.item_count = new_count


class UniformChooser(KeyChooser):
    """Every key equally likely."""

    def next_key(self, rng: np.random.Generator) -> int:
        return int(rng.integers(0, self.item_count))


class ZipfianChooser(KeyChooser):
    """Zipfian distribution over keys, YCSB's default skew (theta=0.99).

    Uses the Gray et al. analytic inverse method; ``zeta`` constants are
    computed once per key-space size.
    """

    def __init__(self, item_count: int, theta: float = 0.99) -> None:
        super().__init__(item_count)
        if not 0.0 < theta < 1.0:
            raise WorkloadError("theta must be in (0, 1)")
        self.theta = theta
        self._recompute()

    def _zeta(self, n: int) -> float:
        # Exact for small n; Euler-Maclaurin approximation for large n so
        # construction stays O(1)-ish for multi-million key spaces.
        if n <= 10_000:
            return float(sum(1.0 / (i**self.theta) for i in range(1, n + 1)))
        head = float(sum(1.0 / (i**self.theta) for i in range(1, 10_001)))
        s = 1.0 - self.theta
        tail = (n**s - 10_000**s) / s
        return head + tail

    def _recompute(self) -> None:
        n = self.item_count
        self.zetan = self._zeta(n)
        self.zeta2 = self._zeta(2)
        self.alpha = 1.0 / (1.0 - self.theta)
        self.eta = (1.0 - (2.0 / n) ** (1.0 - self.theta)) / (
            1.0 - self.zeta2 / self.zetan
        )

    def grow(self, new_count: int) -> None:
        super().grow(new_count)
        self._recompute()

    def next_key(self, rng: np.random.Generator) -> int:
        u = rng.random()
        uz = u * self.zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + 0.5**self.theta:
            return 1
        key = int(self.item_count * (self.eta * u - self.eta + 1.0) ** self.alpha)
        return min(key, self.item_count - 1)


class ScrambledZipfianChooser(ZipfianChooser):
    """Zipfian popularity with hot keys scattered over the key space.

    YCSB scrambles the Zipfian rank with a hash so that popular keys are
    not adjacent — without this, the "hot set" would be one contiguous
    page run and the tiering results would be unrealistically easy.
    """

    _FNV_PRIME = 0x100000001B3
    _FNV_OFFSET = 0xCBF29CE484222325

    def next_key(self, rng: np.random.Generator) -> int:
        rank = super().next_key(rng)
        return self._fnv_hash(rank) % self.item_count

    @classmethod
    def _fnv_hash(cls, value: int) -> int:
        h = cls._FNV_OFFSET
        for _ in range(8):
            h = ((h ^ (value & 0xFF)) * cls._FNV_PRIME) & 0xFFFFFFFFFFFFFFFF
            value >>= 8
        return h


class LatestChooser(KeyChooser):
    """YCSB's 'latest' distribution: recently inserted keys are hottest.

    Used by workload D (§4.1.1).  A Zipfian draw is taken over recency
    rank: rank 0 is the newest key.
    """

    def __init__(self, item_count: int, theta: float = 0.99) -> None:
        super().__init__(item_count)
        self._zipf = ZipfianChooser(item_count, theta)

    def grow(self, new_count: int) -> None:
        super().grow(new_count)
        self._zipf.grow(new_count)

    def next_key(self, rng: np.random.Generator) -> int:
        recency_rank = self._zipf.next_key(rng)
        return self.item_count - 1 - recency_rank
