"""Page-granular access traces: generate, combine, inspect.

The application models in :mod:`repro.apps` are purpose-built for the
paper's three studies; a :class:`PageTrace` is the generic alternative
for §7.2's "wide array of data-center tasks" (graph analytics,
genomics, ...): any access pattern expressed as a sequence of
``(page, is_write)`` events, replayable against the platform by
:mod:`repro.apps.replay`.

Generators cover the standard shapes: sequential scans, strided walks,
uniform random, Zipfian, and graph-walk-like traversals (random
neighborhoods with power-law reuse — the §7.2 GNN motif).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import WorkloadError
from .distributions import ScrambledZipfianChooser

__all__ = ["PageTrace", "sequential_trace", "strided_trace", "uniform_trace",
           "zipfian_trace", "graph_walk_trace"]


@dataclass(frozen=True)
class PageTrace:
    """A replayable access trace over ``page_count`` pages."""

    pages: np.ndarray  # int64 page indices
    writes: np.ndarray  # bool per access
    page_count: int

    def __post_init__(self) -> None:
        if self.page_count <= 0:
            raise WorkloadError("page_count must be positive")
        if self.pages.shape != self.writes.shape:
            raise WorkloadError("pages and writes must align")
        if len(self.pages) == 0:
            raise WorkloadError("a trace needs at least one access")
        if self.pages.min() < 0 or self.pages.max() >= self.page_count:
            raise WorkloadError("page indices out of range")

    def __len__(self) -> int:
        return len(self.pages)

    @property
    def write_fraction(self) -> float:
        """Share of accesses that write."""
        return float(self.writes.mean())

    @property
    def footprint_pages(self) -> int:
        """Distinct pages touched."""
        return int(np.unique(self.pages).size)

    def reuse_factor(self) -> float:
        """Accesses per distinct page — a crude locality measure."""
        return len(self) / self.footprint_pages

    def concat(self, other: "PageTrace") -> "PageTrace":
        """Append another trace over the same page space."""
        if other.page_count != self.page_count:
            raise WorkloadError("traces cover different page spaces")
        return PageTrace(
            np.concatenate([self.pages, other.pages]),
            np.concatenate([self.writes, other.writes]),
            self.page_count,
        )

    def interleave(self, other: "PageTrace") -> "PageTrace":
        """Round-robin merge with another trace (two concurrent actors)."""
        if other.page_count != self.page_count:
            raise WorkloadError("traces cover different page spaces")
        n = min(len(self), len(other))
        pages = np.empty(2 * n, dtype=np.int64)
        writes = np.empty(2 * n, dtype=bool)
        pages[0::2], pages[1::2] = self.pages[:n], other.pages[:n]
        writes[0::2], writes[1::2] = self.writes[:n], other.writes[:n]
        return PageTrace(pages, writes, self.page_count)


def _writes(rng: np.random.Generator, n: int, write_fraction: float) -> np.ndarray:
    if not 0.0 <= write_fraction <= 1.0:
        raise WorkloadError("write_fraction must be in [0, 1]")
    return rng.random(n) < write_fraction


def sequential_trace(
    page_count: int, accesses: int, write_fraction: float = 0.0,
    rng: np.random.Generator = None,
) -> PageTrace:
    """A streaming scan wrapping around the page space."""
    if accesses <= 0:
        raise WorkloadError("accesses must be positive")
    rng = rng or np.random.default_rng(0)
    pages = np.arange(accesses, dtype=np.int64) % page_count
    return PageTrace(pages, _writes(rng, accesses, write_fraction), page_count)


def strided_trace(
    page_count: int, accesses: int, stride: int, write_fraction: float = 0.0,
    rng: np.random.Generator = None,
) -> PageTrace:
    """A constant-stride walk (column scans, tensor slices)."""
    if stride <= 0:
        raise WorkloadError("stride must be positive")
    rng = rng or np.random.default_rng(0)
    pages = (np.arange(accesses, dtype=np.int64) * stride) % page_count
    return PageTrace(pages, _writes(rng, accesses, write_fraction), page_count)


def uniform_trace(
    page_count: int, accesses: int, write_fraction: float = 0.0,
    rng: np.random.Generator = None,
) -> PageTrace:
    """Uniform random accesses (hash tables with no skew)."""
    rng = rng or np.random.default_rng(0)
    pages = rng.integers(0, page_count, size=accesses, dtype=np.int64)
    return PageTrace(pages, _writes(rng, accesses, write_fraction), page_count)


def zipfian_trace(
    page_count: int, accesses: int, write_fraction: float = 0.0,
    rng: np.random.Generator = None, theta: float = 0.99,
) -> PageTrace:
    """Zipfian-popular pages, scattered over the space (KV-store-like)."""
    rng = rng or np.random.default_rng(0)
    chooser = ScrambledZipfianChooser(page_count, theta=theta)
    pages = np.fromiter(
        (chooser.next_key(rng) for _ in range(accesses)),
        dtype=np.int64, count=accesses,
    )
    return PageTrace(pages, _writes(rng, accesses, write_fraction), page_count)


def graph_walk_trace(
    page_count: int, accesses: int, write_fraction: float = 0.0,
    rng: np.random.Generator = None, neighborhood: int = 64,
    jump_probability: float = 0.15,
) -> PageTrace:
    """Random-walk-with-restart over pages (§7.2's GNN/graph motif).

    Walks locally within a ``neighborhood`` of the current page and
    teleports uniformly with ``jump_probability`` — producing the mix of
    short-range reuse and irregular long jumps that makes graph
    processing capacity- *and* latency-hungry.
    """
    if not 0.0 <= jump_probability <= 1.0:
        raise WorkloadError("jump_probability must be in [0, 1]")
    if neighborhood <= 0:
        raise WorkloadError("neighborhood must be positive")
    rng = rng or np.random.default_rng(0)
    pages = np.empty(accesses, dtype=np.int64)
    current = int(rng.integers(0, page_count))
    jumps = rng.random(accesses) < jump_probability
    offsets = rng.integers(-neighborhood, neighborhood + 1, size=accesses)
    teleports = rng.integers(0, page_count, size=accesses)
    for i in range(accesses):
        if jumps[i]:
            current = int(teleports[i])
        else:
            current = int((current + offsets[i]) % page_count)
        pages[i] = current
    return PageTrace(pages, _writes(rng, accesses, write_fraction), page_count)
