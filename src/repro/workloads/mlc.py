"""An Intel MLC-style loaded-latency probe over the simulated platform.

Reproduces the methodology of §3.1: ``N`` probe threads (16 in the
paper) each issue 64-byte accesses at a controlled injection rate; the
harness sweeps the aggregate offered load from near-idle to beyond
saturation and records ``(achieved bandwidth, loaded latency)`` pairs —
the loaded-latency curves of Fig. 3 and Fig. 4.

Access *pattern* (sequential vs random) is accepted for API fidelity
but does not change the result: §3.3 reports "we do not observe any
significant performance disparities under these conditions", and the
model encodes that finding directly.

Beyond saturation, write-heavy flows on remote paths show the paper's
Fig. 3(b) anomaly — "bandwidth decreases and latency increases with
heavier loads" — modeled as a small overload droop proportional to the
write share on remote paths (head-of-line blocking on the one busy UPI
direction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import WorkloadError
from ..hw.paths import MemoryPath
from ..hw.topology import Platform
from ..units import to_gb_per_s

__all__ = ["MlcPoint", "MlcCurve", "MlcProbe", "PAPER_MIXES"]

#: The read:write mixes the paper sweeps (Fig. 3 legends / Fig. 4 panels).
PAPER_MIXES: Tuple[Tuple[int, int], ...] = ((1, 0), (3, 1), (2, 1), (1, 1), (1, 2), (0, 1))


@dataclass(frozen=True)
class MlcPoint:
    """One sample of the loaded-latency curve."""

    offered_bytes_per_s: float
    achieved_bytes_per_s: float
    latency_ns: float

    @property
    def achieved_gbps(self) -> float:
        """Achieved bandwidth in the paper's GB/s convention."""
        return to_gb_per_s(self.achieved_bytes_per_s)


@dataclass
class MlcCurve:
    """A full loaded-latency sweep for one path and mix."""

    path_kind: str
    write_fraction: float
    points: List[MlcPoint]

    @property
    def idle_latency_ns(self) -> float:
        """Latency of the lightest-load sample."""
        return self.points[0].latency_ns

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Maximum achieved bandwidth across the sweep."""
        return max(p.achieved_gbps for p in self.points)

    def knee_bandwidth_fraction(self, threshold_ns: float = 50.0) -> float:
        """Fraction of peak bandwidth where latency exceeds idle+threshold."""
        idle = self.idle_latency_ns
        peak = max(p.achieved_bytes_per_s for p in self.points)
        for p in self.points:
            if p.latency_ns > idle + threshold_ns:
                return p.achieved_bytes_per_s / peak
        return 1.0


class MlcProbe:
    """Sweeps offered load against one memory path."""

    def __init__(
        self,
        platform: Platform,
        threads: int = 16,
        pattern: str = "sequential",
    ) -> None:
        if threads <= 0:
            raise WorkloadError("threads must be positive")
        if pattern not in ("sequential", "random"):
            raise WorkloadError(f"unknown access pattern {pattern!r}")
        self.platform = platform
        self.threads = threads
        self.pattern = pattern

    def loaded_latency_curve(
        self,
        path: MemoryPath,
        reads: int,
        writes: int,
        load_points: Optional[Sequence[float]] = None,
        background: Sequence[Tuple[MemoryPath, float, float]] = (),
    ) -> MlcCurve:
        """Sweep the path at the given read:write mix.

        ``load_points`` are offered loads as fractions of the path's peak
        bandwidth (defaults to a 24-point sweep up to 115 % of peak, like
        MLC's automatic ramp).  ``background`` adds steady interfering
        flows as ``(path, bytes_per_s, write_fraction)`` tuples — used by
        the bandwidth-contention ablations.
        """
        if reads < 0 or writes < 0 or reads + writes == 0:
            raise WorkloadError("invalid read:write mix")
        write_fraction = writes / (reads + writes)
        if load_points is None:
            load_points = list(np.linspace(0.02, 1.15, 24))

        peak = path.peak_bandwidth(write_fraction)
        points: List[MlcPoint] = []
        for fraction in load_points:
            if fraction <= 0:
                raise WorkloadError("load fractions must be positive")
            offered = fraction * peak
            demands = [
                self.platform.demand("probe", path, offered, write_fraction)
            ]
            for i, (bg_path, bg_rate, bg_wf) in enumerate(background):
                demands.append(
                    self.platform.demand(f"bg{i}", bg_path, bg_rate, bg_wf)
                )
            result = self.platform.allocate(demands)
            achieved = result.achieved["probe"]
            utilization = path.bottleneck_utilization(result.utilization)
            latency = path.loaded_latency_ns(utilization, write_fraction)
            achieved = self._overload_droop(path, write_fraction, offered, achieved)
            points.append(MlcPoint(offered, achieved, latency))
        return MlcCurve(path.kind.value, write_fraction, points)

    def _overload_droop(
        self,
        path: MemoryPath,
        write_fraction: float,
        offered: float,
        achieved: float,
    ) -> float:
        """Fig. 3(b)'s past-saturation droop for write-heavy remote flows."""
        if not path.kind.is_remote or write_fraction == 0.0:
            return achieved
        overload = max(0.0, offered / max(achieved, 1.0) - 1.0)
        droop = 0.20 * write_fraction * min(1.0, overload)
        return achieved * (1.0 - droop)

    def sweep_mixes(
        self,
        path: MemoryPath,
        mixes: Sequence[Tuple[int, int]] = PAPER_MIXES,
    ) -> List[MlcCurve]:
        """Loaded-latency curves for several mixes (one Fig. 3 panel)."""
        return [self.loaded_latency_curve(path, r, w) for r, w in mixes]

    # -- MLC's matrix modes -------------------------------------------------

    def latency_matrix(self) -> "Dict[Tuple[int, int], float]":
        """``mlc --latency_matrix``: idle latency from every socket to
        every node, in ns.  Keys are ``(initiator_socket, node_id)``."""
        out: "Dict[Tuple[int, int], float]" = {}
        for socket in range(self.platform.spec.sockets):
            for node_id in self.platform.nodes:
                path = self.platform.path(socket, node_id)
                out[(socket, node_id)] = path.idle_latency_ns(0.0)
        return out

    def bandwidth_matrix(self, reads: int = 1, writes: int = 0) -> "Dict[Tuple[int, int], float]":
        """``mlc --bandwidth_matrix``: single-initiator peak bandwidth
        (bytes/s) from every socket to every node at the given mix."""
        if reads < 0 or writes < 0 or reads + writes == 0:
            raise WorkloadError("invalid read:write mix")
        wf = writes / (reads + writes)
        out: "Dict[Tuple[int, int], float]" = {}
        for socket in range(self.platform.spec.sockets):
            for node_id in self.platform.nodes:
                path = self.platform.path(socket, node_id)
                demand = self.platform.demand("probe", path, float("inf"), wf)
                result = self.platform.allocate([demand])
                out[(socket, node_id)] = result.achieved["probe"]
        return out
