"""YCSB workload generator: workloads A-D as the paper runs them (§4.1.1).

* **A** — 50 % read / 50 % update, Zipfian;
* **B** — 95 % read / 5 % update, Zipfian;
* **C** — 100 % read, Zipfian;
* **D** — 95 % read / 5 % insert, latest distribution.

Record size defaults to the YCSB default the paper uses: 1 KB values.
The generator is an iterator of :class:`Operation` objects so the KV
store client can drive it closed-loop.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator

import numpy as np

from ..errors import WorkloadError
from ..units import KIB
from .distributions import KeyChooser, LatestChooser, ScrambledZipfianChooser, UniformChooser

__all__ = ["OpType", "Operation", "YcsbSpec", "YcsbGenerator", "WORKLOADS"]


class OpType(enum.Enum):
    """YCSB operation kinds used by the paper's workloads."""

    READ = "read"
    UPDATE = "update"
    INSERT = "insert"


@dataclass(frozen=True)
class Operation:
    """One request: an op type and the key it targets."""

    op: OpType
    key: int

    @property
    def is_write(self) -> bool:
        """Updates and inserts write the value; reads do not."""
        return self.op is not OpType.READ


@dataclass(frozen=True)
class YcsbSpec:
    """A YCSB workload definition."""

    name: str
    read_fraction: float
    update_fraction: float = 0.0
    insert_fraction: float = 0.0
    distribution: str = "zipfian"  # zipfian | latest | uniform
    value_size: int = KIB  # 1 KB, the YCSB default used in §4.1.1

    def __post_init__(self) -> None:
        total = self.read_fraction + self.update_fraction + self.insert_fraction
        if abs(total - 1.0) > 1e-9:
            raise WorkloadError(f"operation mix must sum to 1, got {total}")
        if self.distribution not in ("zipfian", "latest", "uniform"):
            raise WorkloadError(f"unknown distribution {self.distribution!r}")
        if self.value_size <= 0:
            raise WorkloadError("value_size must be positive")

    @property
    def write_fraction(self) -> float:
        """Fraction of ops that write (updates + inserts)."""
        return self.update_fraction + self.insert_fraction


#: The four workloads of Fig. 5, by YCSB letter.
WORKLOADS: Dict[str, YcsbSpec] = {
    "A": YcsbSpec("YCSB-A", read_fraction=0.5, update_fraction=0.5),
    "B": YcsbSpec("YCSB-B", read_fraction=0.95, update_fraction=0.05),
    "C": YcsbSpec("YCSB-C", read_fraction=1.0),
    "D": YcsbSpec(
        "YCSB-D", read_fraction=0.95, insert_fraction=0.05, distribution="latest"
    ),
}


class YcsbGenerator:
    """Draws a stream of operations for a spec over ``record_count`` keys."""

    def __init__(
        self,
        spec: YcsbSpec,
        record_count: int,
        rng: np.random.Generator,
    ) -> None:
        if record_count <= 0:
            raise WorkloadError("record_count must be positive")
        self.spec = spec
        self.record_count = record_count
        self._rng = rng
        self._chooser = self._make_chooser()

    def _make_chooser(self) -> KeyChooser:
        if self.spec.distribution == "zipfian":
            return ScrambledZipfianChooser(self.record_count)
        if self.spec.distribution == "latest":
            return LatestChooser(self.record_count)
        return UniformChooser(self.record_count)

    def next_operation(self) -> Operation:
        """Draw the next operation."""
        r = self._rng.random()
        if r < self.spec.read_fraction:
            return Operation(OpType.READ, self._chooser.next_key(self._rng))
        if r < self.spec.read_fraction + self.spec.update_fraction:
            return Operation(OpType.UPDATE, self._chooser.next_key(self._rng))
        # Insert: append a fresh key at the end of the space.
        new_key = self.record_count
        self.record_count += 1
        self._chooser.grow(self.record_count)
        return Operation(OpType.INSERT, new_key)

    def operations(self, count: int) -> Iterator[Operation]:
        """Yield ``count`` operations."""
        for _ in range(count):
            yield self.next_operation()
