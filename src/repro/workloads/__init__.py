"""Workload generators: MLC probe, YCSB, TPC-H profiles, LLM traces."""

from .distributions import (
    KeyChooser,
    LatestChooser,
    ScrambledZipfianChooser,
    UniformChooser,
    ZipfianChooser,
)
from .llm_trace import ChatRequest, chat_trace
from .mlc import PAPER_MIXES, MlcCurve, MlcPoint, MlcProbe
from .tpch import PAPER_QUERY_NAMES, QueryProfile, QueryStage, paper_queries
from .trace import (
    PageTrace,
    graph_walk_trace,
    sequential_trace,
    strided_trace,
    uniform_trace,
    zipfian_trace,
)
from .ycsb import WORKLOADS, Operation, OpType, YcsbGenerator, YcsbSpec

__all__ = [
    "KeyChooser",
    "LatestChooser",
    "ScrambledZipfianChooser",
    "UniformChooser",
    "ZipfianChooser",
    "ChatRequest",
    "chat_trace",
    "PAPER_MIXES",
    "MlcCurve",
    "MlcPoint",
    "MlcProbe",
    "PAPER_QUERY_NAMES",
    "QueryProfile",
    "QueryStage",
    "paper_queries",
    "PageTrace",
    "graph_walk_trace",
    "sequential_trace",
    "strided_trace",
    "uniform_trace",
    "zipfian_trace",
    "WORKLOADS",
    "Operation",
    "OpType",
    "YcsbGenerator",
    "YcsbSpec",
]
