"""TPC-H query profiles for the Spark SQL experiments (§4.2).

The paper runs Q5, Q7, Q8 and Q9 — "recognized for their intensive data
shuffling demands from prior studies" — over a 7 TB dataset.  A profile
describes a query as a DAG of stages; each stage reads its input,
computes, and shuffles its output to the next stage.  The absolute byte
counts are parameterized by the dataset size so the simulation can run
scaled down while preserving every ratio that drives the results:

* shuffle volume relative to input (how spill-prone the query is),
* compute per byte (how memory-latency-sensitive the stage is).

Profile ratios are drawn from the public TPC-H query characteristics:
Q9 joins lineitem against part/supplier/partsupp/orders/nation and
shuffles over half its input (the paper's 9.8x worst case); Q5 is the
mildest of the four.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import WorkloadError
from ..units import tb

__all__ = ["QueryStage", "QueryProfile", "paper_queries", "PAPER_QUERY_NAMES"]

PAPER_QUERY_NAMES = ("Q5", "Q7", "Q8", "Q9")


@dataclass(frozen=True)
class QueryStage:
    """One Spark stage: scan/compute then shuffle-write its output."""

    name: str
    input_bytes: int
    shuffle_bytes: int
    #: CPU nanoseconds spent per input byte (scan, filter, projection).
    cpu_ns_per_byte: float
    #: Dependent (random) loads per input byte — hash-join probe density.
    #: Q9's many-way join makes it far more latency-sensitive than Q5's
    #: filtered join tree; this is what spreads the interleave slowdowns
    #: across the 1.4x-9.8x range of Fig. 7(a).
    rand_per_byte: float = 0.002

    def __post_init__(self) -> None:
        if self.input_bytes < 0 or self.shuffle_bytes < 0:
            raise WorkloadError("stage byte counts must be >= 0")
        if self.cpu_ns_per_byte < 0:
            raise WorkloadError("cpu_ns_per_byte must be >= 0")
        if self.rand_per_byte < 0:
            raise WorkloadError("rand_per_byte must be >= 0")


@dataclass(frozen=True)
class QueryProfile:
    """A whole query: ordered stages over a dataset."""

    name: str
    stages: Tuple[QueryStage, ...]

    def __post_init__(self) -> None:
        if not self.stages:
            raise WorkloadError("a query needs at least one stage")

    @property
    def total_input_bytes(self) -> int:
        """Bytes scanned across all stages."""
        return sum(s.input_bytes for s in self.stages)

    @property
    def total_shuffle_bytes(self) -> int:
        """Bytes shuffled across all stages."""
        return sum(s.shuffle_bytes for s in self.stages)

    @property
    def shuffle_intensity(self) -> float:
        """Shuffle bytes per input byte — the spill-sensitivity knob."""
        return self.total_shuffle_bytes / max(1, self.total_input_bytes)


def _stages(
    name: str,
    dataset: int,
    rand_per_byte: float,
    spec: Tuple[Tuple[float, float, float], ...],
) -> QueryProfile:
    stages = tuple(
        QueryStage(
            name=f"{name}-s{i}",
            input_bytes=int(frac_in * dataset),
            shuffle_bytes=int(frac_shuffle * dataset),
            cpu_ns_per_byte=cpu,
            rand_per_byte=rand_per_byte,
        )
        for i, (frac_in, frac_shuffle, cpu) in enumerate(spec)
    )
    return QueryProfile(name, stages)


def paper_queries(dataset_bytes: int = tb(7)) -> Dict[str, QueryProfile]:
    """The four shuffle-heavy queries at a given dataset size.

    Stage tuples are ``(input_fraction, shuffle_fraction, cpu_ns/byte)``
    of the dataset.  Orderings preserved from TPC-H query structure:
    Q5 (5-way join, regional filter) < Q7 (volume shipping) ≈
    Q8 (market share) < Q9 (product profit, no selective filter).
    """
    if dataset_bytes <= 0:
        raise WorkloadError("dataset size must be positive")
    d = dataset_bytes
    # Stage shuffle working sets are sized so that, at the paper's 7 TB
    # scale, every query's largest shuffle fits the unrestricted cluster
    # (150 executors x 4 GB shuffle capacity = 600 GB -> no spill on the
    # MMEM configuration) but exceeds the 80 %/60 % restricted capacity
    # (480 GB / 360 GB), reproducing §4.2.1's spill volumes.
    return {
        # Q5: local-supplier volume. Selective region filter early.
        "Q5": _stages(
            "Q5", d, 0.0012,
            (
                (0.22, 0.074, 0.45),
                (0.070, 0.026, 0.55),
                (0.026, 0.006, 0.60),
            ),
        ),
        # Q7: supplier/customer nation volume; two large shuffled joins.
        "Q7": _stages(
            "Q7", d, 0.0025,
            (
                (0.26, 0.078, 0.42),
                (0.075, 0.030, 0.55),
                (0.030, 0.008, 0.60),
            ),
        ),
        # Q8: national market share; lineitem x part x orders x customer.
        "Q8": _stages(
            "Q8", d, 0.0035,
            (
                (0.30, 0.082, 0.40),
                (0.080, 0.040, 0.52),
                (0.040, 0.010, 0.60),
            ),
        ),
        # Q9: product-type profit; joins nearly everything, no date
        # filter; two heavyweight shuffles — the paper's worst case.
        "Q9": _stages(
            "Q9", d, 0.0140,
            (
                (0.42, 0.085, 0.35),
                (0.084, 0.065, 0.48),
                (0.065, 0.030, 0.55),
                (0.030, 0.008, 0.60),
            ),
        ),
    }
