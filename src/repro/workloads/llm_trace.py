"""Chat request traces for the LLM inference experiments (§5.1).

The paper drives its CPU inference backends with "a wide range of
chat-oriented questions" derived from the LightLLM framework, a 2048-
byte prompt context, and a single-threaded closed-loop client per
backend.  :func:`chat_trace` generates an equivalent stream of
:class:`ChatRequest` objects: prompt lengths log-normally distributed
around the configured context, output lengths geometric-ish as chat
responses are (many short answers, a long tail).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from ..errors import WorkloadError

__all__ = ["ChatRequest", "chat_trace"]

#: Average bytes per token for LLaMA-family tokenizers on English chat.
BYTES_PER_TOKEN = 4.0


@dataclass(frozen=True)
class ChatRequest:
    """One inference request."""

    prompt_tokens: int
    max_new_tokens: int

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0 or self.max_new_tokens <= 0:
            raise WorkloadError("token counts must be positive")

    @property
    def total_tokens(self) -> int:
        """Sequence length at completion (prompt + generated)."""
        return self.prompt_tokens + self.max_new_tokens


def chat_trace(
    rng: np.random.Generator,
    count: int,
    prompt_context_bytes: int = 2048,
    mean_new_tokens: int = 256,
) -> Iterator[ChatRequest]:
    """Yield ``count`` chat requests.

    ``prompt_context_bytes`` matches the paper's fixed 2048-byte prompt
    context ("to guarantee a minimum inference response size"); actual
    prompts vary log-normally around it.
    """
    if count <= 0:
        raise WorkloadError("count must be positive")
    if prompt_context_bytes <= 0 or mean_new_tokens <= 0:
        raise WorkloadError("sizes must be positive")
    mean_prompt_tokens = max(1.0, prompt_context_bytes / BYTES_PER_TOKEN)
    for _ in range(count):
        prompt = int(max(1, rng.lognormal(np.log(mean_prompt_tokens), 0.3)))
        new = int(max(8, rng.exponential(mean_new_tokens)))
        yield ChatRequest(prompt_tokens=prompt, max_new_tokens=new)
