"""Peak-bandwidth curves as a function of the read/write mix.

The paper's §3 measurements show that every memory path's *peak*
(saturation) bandwidth depends on the workload's write share, and not
always monotonically:

* local DDR5 peaks read-only (67 GB/s) and declines toward write-only
  (54.6 GB/s) — Fig. 3(a);
* remote-socket DDR5 degrades sharply with writes because of UPI
  coherence traffic, and is worst write-only (one UPI direction idle) —
  Fig. 3(b);
* CXL peaks at the 2:1 read:write mix (56.7 GB/s) because a mixed stream
  uses both PCIe directions, while read-only cannot — Fig. 3(c);
* remote-socket CXL shows the same shape at roughly a third of the level
  (20.4 GB/s peak), the Remote Snoop Filter limitation — Fig. 3(d).

:class:`PeakBandwidthCurve` captures all four shapes as piecewise-linear
interpolation over write-fraction control points, which is exactly how we
calibrate to the paper: each measured mix is a control point.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..errors import ConfigurationError

__all__ = ["PeakBandwidthCurve", "write_fraction_of_mix"]


def write_fraction_of_mix(reads: float, writes: float) -> float:
    """Write share of a read:write mix, e.g. ``(2, 1) -> 1/3``.

    The paper labels workloads by read:write ratio (``1:0`` read-only,
    ``0:1`` write-only); this converts that label into the [0, 1] write
    fraction used throughout the simulator.
    """
    if reads < 0 or writes < 0:
        raise ConfigurationError("read/write parts must be non-negative")
    total = reads + writes
    if total == 0:
        raise ConfigurationError("mix must have at least one part")
    return writes / total


@dataclass(frozen=True)
class PeakBandwidthCurve:
    """Piecewise-linear peak bandwidth (bytes/s) vs write fraction.

    ``points`` are ``(write_fraction, bytes_per_second)`` control points;
    they must cover write fractions 0 and 1 and be strictly increasing in
    write fraction.  Between control points the curve interpolates
    linearly, which matches how the paper samples a handful of mixes and
    reads trends off the plots.
    """

    points: Tuple[Tuple[float, float], ...]
    #: Interpolation knots (the write fractions of ``points``), computed
    #: once at construction: ``__call__`` sits under every loaded-latency
    #: evaluation, and rebuilding this list per lookup dominated its cost.
    _fracs: Tuple[float, ...] = field(
        init=False, repr=False, compare=False, default=()
    )

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ConfigurationError("curve needs at least two control points")
        fracs = [p[0] for p in self.points]
        if fracs != sorted(set(fracs)):
            raise ConfigurationError("control points must be strictly increasing")
        if fracs[0] != 0.0 or fracs[-1] != 1.0:
            raise ConfigurationError("curve must cover write fractions 0 and 1")
        for _, bw in self.points:
            if bw <= 0:
                raise ConfigurationError("peak bandwidth must be positive")
        # Frozen dataclass: bypass the immutability guard for the cache.
        object.__setattr__(self, "_fracs", tuple(fracs))

    @classmethod
    def from_points(
        cls, points: Sequence[Tuple[float, float]]
    ) -> "PeakBandwidthCurve":
        """Build a curve from any iterable of (write_fraction, bytes/s)."""
        return cls(tuple((float(f), float(b)) for f, b in points))

    @classmethod
    def flat(cls, bytes_per_second: float) -> "PeakBandwidthCurve":
        """A mix-independent capacity (links that don't care about mix)."""
        return cls(((0.0, float(bytes_per_second)), (1.0, float(bytes_per_second))))

    def __call__(self, write_fraction: float) -> float:
        """Peak bandwidth in bytes/s at the given write fraction."""
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError(
                f"write_fraction must be in [0, 1], got {write_fraction}"
            )
        i = bisect_right(self._fracs, write_fraction)
        if i == 0:
            return self.points[0][1]
        if i == len(self.points):
            return self.points[-1][1]
        (f0, b0), (f1, b1) = self.points[i - 1], self.points[i]
        if f1 == f0:  # pragma: no cover - excluded by validation
            return b1
        t = (write_fraction - f0) / (f1 - f0)
        return b0 + t * (b1 - b0)

    def peak(self) -> Tuple[float, float]:
        """The (write_fraction, bytes/s) control point with maximum bandwidth."""
        return max(self.points, key=lambda p: p[1])

    def scaled(self, factor: float) -> "PeakBandwidthCurve":
        """A copy with every control point's bandwidth multiplied by ``factor``."""
        if factor <= 0:
            raise ConfigurationError("scale factor must be positive")
        return PeakBandwidthCurve(tuple((f, b * factor) for f, b in self.points))
