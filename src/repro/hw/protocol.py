"""CXL.mem protocol accounting: where the bandwidth efficiency goes.

§3.2 attributes the CXL bandwidth ceiling to "PCIe overhead, such as
extra headers", and §3.4 quotes the A1000's 73.6 % bandwidth efficiency
against Intel's 60 % FPGA result.  This module derives those numbers
from the protocol itself instead of hand-waving them:

* PCIe 5.0 x16 moves 32 GT/s x 16 lanes with 1b/1b-equivalent FLIT
  encoding → 64 GB/s raw per direction;
* CXL transfers 68-byte flits (64 bytes of slots + 2B CRC + 2B header);
* a 64-byte read needs a request message (M2S Req) one way and the
  data + completion the other; a write needs request-with-data one way
  and a completion (NDR) back — so reads and writes load the two
  directions asymmetrically, which is exactly why the measured peak
  lands at a mixed 2:1 ratio rather than read-only.

The model is used by tests to check that the calibrated bandwidth curve
in :mod:`repro.hw.calibration` is *physically consistent* — the curve's
control points must not exceed what the protocol can carry.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["CxlLinkBudget"]

#: CXL 68-byte flit: 64 bytes of payload slots + 4 bytes framing/CRC.
FLIT_BYTES = 68
FLIT_PAYLOAD_BYTES = 64

#: Slot accounting per 64-byte cacheline transaction (CXL 1.1/2.0 spec
#: terms, simplified to byte counts on the wire).  Header slots are
#: shared across transactions packed into one flit, so the per-
#: transaction header cost is the amortized ~8 bytes, not a full slot.
READ_REQUEST_BYTES = 16  # M2S Req slot
READ_RESPONSE_BYTES = 64 + 8  # S2M DRS: 4 data slots + amortized header
WRITE_REQUEST_BYTES = 64 + 8  # M2S RwD: data + amortized header
WRITE_RESPONSE_BYTES = 8  # S2M NDR completion (packed)


@dataclass(frozen=True)
class CxlLinkBudget:
    """Effective CXL.mem bandwidth from link parameters and mix."""

    lanes: int = 16
    gts_per_lane: float = 32.0
    #: Link-layer efficiency: flit framing, DLLP/credit traffic, sync.
    link_efficiency: float = FLIT_PAYLOAD_BYTES / FLIT_BYTES

    def __post_init__(self) -> None:
        if self.lanes <= 0 or self.gts_per_lane <= 0:
            raise ConfigurationError("lanes and rate must be positive")
        if not 0.0 < self.link_efficiency <= 1.0:
            raise ConfigurationError("link_efficiency must be in (0, 1]")

    @property
    def raw_bytes_per_s_per_direction(self) -> float:
        """Raw line rate per direction (32 GT/s x lanes / 8)."""
        return self.lanes * self.gts_per_lane / 8.0 * 1e9

    @property
    def payload_bytes_per_s_per_direction(self) -> float:
        """Line rate after flit framing."""
        return self.raw_bytes_per_s_per_direction * self.link_efficiency

    def data_bandwidth(self, write_fraction: float) -> float:
        """Deliverable 64-byte-data bandwidth (bytes/s) at a mix.

        Per transaction, each direction carries a mix-dependent byte
        load; the link is limited by its busier direction.  The maximum
        over mixes lands near 2:1 read:write because that mix balances
        the two directions — the Fig. 3(c) shape, derived.
        """
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        r = 1.0 - write_fraction
        w = write_fraction
        # Bytes on each direction per 64 bytes of application data.
        m2s = r * READ_REQUEST_BYTES + w * WRITE_REQUEST_BYTES
        s2m = r * READ_RESPONSE_BYTES + w * WRITE_RESPONSE_BYTES
        busiest = max(m2s, s2m)
        per_direction = self.payload_bytes_per_s_per_direction
        return per_direction * 64.0 / busiest

    def efficiency(self, write_fraction: float) -> float:
        """Data bandwidth as a fraction of the raw one-direction rate."""
        return self.data_bandwidth(write_fraction) / self.raw_bytes_per_s_per_direction

    def best_mix(self, steps: int = 100) -> float:
        """The write fraction maximizing deliverable bandwidth."""
        return max(
            (i / steps for i in range(steps + 1)),
            key=self.data_bandwidth,
        )
