"""Platform topology: sockets, SNC domains, NUMA nodes, and path resolution.

:class:`Platform` is the runtime model of one server.  It owns:

* the NUMA **nodes** (DRAM nodes — one per socket, or one per SNC domain
  when Sub-NUMA Clustering is enabled — and one CPU-less node per CXL
  card);
* the shared bandwidth **resources** (DDR channel groups, PCIe links,
  RSF limits, UPI links, SSD channels, the NIC);
* **path resolution**: given an initiator socket and a target node, the
  :class:`~repro.hw.paths.MemoryPath` with the right latency surface and
  resource chain;
* **allocation**: a mix-aware wrapper around
  :func:`repro.sim.traffic.max_min_allocate` that derives each
  resource's capacity from the write mix of the traffic crossing it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..errors import TopologyError
from ..sim.traffic import AllocationResult, TrafficDemand, max_min_allocate
from .calibration import ANCHORS, PaperAnchors, path_bandwidth_curve, path_latency_model
from .device import MemoryNode, NodeKind, SharedResource, SsdDevice
from .interconnect import nic_link, pcie_link, rsf_limit, ssd_channel, upi_link
from .paths import MemoryPath, PathKind
from .spec import ServerSpec

__all__ = ["Platform", "build_platform"]


class Platform:
    """One server's memory system at runtime."""

    def __init__(self, spec: ServerSpec, anchors: PaperAnchors = ANCHORS) -> None:
        self.spec = spec
        self.anchors = anchors
        self.nodes: Dict[int, MemoryNode] = {}
        self.resources: Dict[str, SharedResource] = {}
        self.ssds: List[SsdDevice] = []
        self._cxl_rsf: Dict[int, str] = {}  # node_id -> rsf resource name
        #: RAS deratings: resource name -> capacity multiplier in (0, 1).
        #: Set by the fault injector while a link is degraded/retraining.
        self._derating: Dict[str, float] = {}
        self._build()

    # -- construction -------------------------------------------------------

    def _add_resource(self, resource: SharedResource) -> str:
        if resource.name in self.resources:
            raise TopologyError(f"duplicate resource {resource.name!r}")
        self.resources[resource.name] = resource
        return resource.name

    def _build(self) -> None:
        spec, anchors = self.spec, self.anchors
        node_id = 0
        dram_curve = path_bandwidth_curve("mmem_local", anchors)
        channels_per_domain = anchors.channels_per_snc_domain

        for socket in range(spec.sockets):
            if spec.snc_enabled:
                domains = spec.cpu.snc_domains
                channels_each = spec.cpu.channels_per_domain
            else:
                domains = 1
                channels_each = spec.cpu.memory_channels
            for domain in range(domains):
                scale = channels_each / channels_per_domain
                res = SharedResource(
                    name=f"skt{socket}/dram{domain}",
                    curve=dram_curve.scaled(scale),
                )
                self._add_resource(res)
                self.nodes[node_id] = MemoryNode(
                    node_id=node_id,
                    kind=NodeKind.DRAM,
                    socket=socket,
                    domain=domain if spec.snc_enabled else None,
                    capacity_bytes=channels_each * spec.cpu.dimm.capacity_bytes,
                    resource=res,
                )
                node_id += 1

        for index, cxl in enumerate(spec.cxl_devices):
            socket = spec.cxl_socket
            dev_res = SharedResource(
                name=f"skt{socket}/cxl{index}/dev",
                curve=path_bandwidth_curve("cxl_local", anchors),
            )
            link = pcie_link(socket, index, cxl)
            rsf = rsf_limit(socket, index, anchors)
            self._add_resource(dev_res)
            self._add_resource(link)
            self._add_resource(rsf)
            self.nodes[node_id] = MemoryNode(
                node_id=node_id,
                kind=NodeKind.CXL,
                socket=socket,
                capacity_bytes=cxl.capacity_bytes,
                resource=dev_res,
                local_extra_resources=(link.name,),
            )
            self._cxl_rsf[node_id] = rsf.name
            node_id += 1

        for a in range(spec.sockets):
            for b in range(a + 1, spec.sockets):
                self._add_resource(upi_link(a, b, anchors))

        for index, ssd in enumerate(spec.ssds):
            self.ssds.append(SsdDevice(ssd, name=f"{spec.name}/ssd{index}"))
            self._add_resource(
                ssd_channel(spec.name, index, ssd.read_bandwidth_bytes_per_s)
            )
        self._add_resource(nic_link(spec.name, spec.nic.bandwidth_bytes_per_s))

    # -- lookups -------------------------------------------------------------

    def node(self, node_id: int) -> MemoryNode:
        """The node with this id; raises :class:`TopologyError` if unknown."""
        try:
            return self.nodes[node_id]
        except KeyError:
            raise TopologyError(f"unknown node {node_id}") from None

    def dram_nodes(
        self, socket: Optional[int] = None, online_only: bool = False
    ) -> List[MemoryNode]:
        """All DRAM nodes, optionally restricted to one socket."""
        return [
            n
            for n in self.nodes.values()
            if n.kind is NodeKind.DRAM
            and (socket is None or n.socket == socket)
            and (not online_only or n.online)
        ]

    def cxl_nodes(
        self, socket: Optional[int] = None, online_only: bool = False
    ) -> List[MemoryNode]:
        """All CXL nodes, optionally restricted to one socket."""
        return [
            n
            for n in self.nodes.values()
            if n.kind is NodeKind.CXL
            and (socket is None or n.socket == socket)
            and (not online_only or n.online)
        ]

    # -- RAS state (driven by repro.faults) ----------------------------------

    def set_derating(self, resource: str, multiplier: float) -> None:
        """Derate a shared resource's capacity (degraded/retraining link).

        ``multiplier`` scales the resource's mix-dependent capacity in the
        allocator; 1.0 (or above) clears the derating.
        """
        if resource not in self.resources:
            raise TopologyError(f"unknown resource {resource!r}")
        if multiplier <= 0.0:
            raise TopologyError(f"derating multiplier must be positive, got {multiplier}")
        if multiplier >= 1.0:
            self._derating.pop(resource, None)
        else:
            self._derating[resource] = multiplier

    def clear_derating(self, resource: Optional[str] = None) -> None:
        """Remove one resource's derating (or all, when None)."""
        if resource is None:
            self._derating.clear()
        else:
            self._derating.pop(resource, None)

    def derating(self, resource: str) -> float:
        """Current capacity multiplier of a resource (1.0 = healthy)."""
        return self._derating.get(resource, 1.0)

    def mark_offline(self, node_id: int) -> None:
        """Hard-fail a node: its memory becomes unreachable."""
        self.node(node_id).online = False

    def mark_online(self, node_id: int) -> None:
        """Bring a failed node back (device replaced / link retrained)."""
        self.node(node_id).online = True

    def is_online(self, node_id: int) -> bool:
        """RAS state of a node (True = reachable)."""
        return self.node(node_id).online

    def _upi_name(self, socket_a: int, socket_b: int) -> str:
        lo, hi = sorted((socket_a, socket_b))
        return f"upi/{lo}-{hi}"

    # -- path resolution --------------------------------------------------

    def path(
        self,
        initiator_socket: int,
        target_node: int,
        initiator_domain: Optional[int] = None,
    ) -> MemoryPath:
        """Resolve the access path from a socket (and SNC domain) to a node."""
        if not 0 <= initiator_socket < self.spec.sockets:
            raise TopologyError(f"unknown socket {initiator_socket}")
        node = self.node(target_node)
        same_socket = node.socket == initiator_socket

        if node.kind is NodeKind.DRAM:
            if same_socket:
                same_domain = (
                    node.domain is None
                    or initiator_domain is None
                    or node.domain == initiator_domain
                )
                kind = PathKind.MMEM_LOCAL if same_domain else PathKind.MMEM_SNC
                resources = (node.resource.name,)
                curve = node.resource.curve
            else:
                kind = PathKind.MMEM_REMOTE
                resources = (
                    self._upi_name(initiator_socket, node.socket),
                    node.resource.name,
                )
                curve = path_bandwidth_curve("mmem_remote", self.anchors)
        else:
            if same_socket:
                kind = PathKind.CXL_LOCAL
                resources = node.local_extra_resources + (node.resource.name,)
                curve = node.resource.curve
            else:
                kind = PathKind.CXL_REMOTE
                resources = (
                    self._upi_name(initiator_socket, node.socket),
                    self._cxl_rsf[node.node_id],
                ) + node.local_extra_resources + (node.resource.name,)
                curve = path_bandwidth_curve("cxl_remote", self.anchors)

        model_key = {
            PathKind.MMEM_LOCAL: "mmem_local",
            PathKind.MMEM_SNC: "mmem_snc",
            PathKind.MMEM_REMOTE: "mmem_remote",
            PathKind.CXL_LOCAL: "cxl_local",
            PathKind.CXL_REMOTE: "cxl_remote",
        }[kind]
        return MemoryPath(
            kind=kind,
            initiator_socket=initiator_socket,
            target_node=target_node,
            resources=resources,
            latency_model=path_latency_model(model_key, self.anchors),
            bandwidth_curve=curve,
        )

    # -- allocation ----------------------------------------------------------

    def allocate(
        self, demands: Sequence[TrafficDemand], iterations: int = 2
    ) -> AllocationResult:
        """Run a mix-aware max-min allocation round.

        Resource capacities depend on the write mix of the traffic that
        crosses them, and the mix depends on how much of each demand is
        satisfied — so capacity estimation and allocation alternate for
        ``iterations`` rounds (two suffice in practice: the curves are
        piecewise linear and demands change slowly between rounds).
        """
        if not demands:
            return AllocationResult()
        # Initial mix estimate: request-weighted, capping unbounded rates
        # at the resource's read-only capacity so inf demands don't NaN.
        weights = {}
        for d in demands:
            cap_guess = min(
                self.resources[r].capacity(0.0) * self.derating(r)
                for r in d.resources
            )
            weights[d.source] = min(d.rate, cap_guess)
        mix: Dict[str, float] = {}
        for name in self.resources:
            num = den = 0.0
            for d in demands:
                if name in d.resources:
                    num += weights[d.source] * d.write_fraction
                    den += weights[d.source]
            mix[name] = num / den if den > 0 else 0.0

        result = AllocationResult()
        for _ in range(max(1, iterations)):
            capacities = {
                name: res.capacity(mix.get(name, 0.0)) * self.derating(name)
                for name, res in self.resources.items()
            }
            result = max_min_allocate(list(demands), capacities)
            mix = {
                name: result.write_fraction.get(name, mix.get(name, 0.0))
                for name in self.resources
            }
        return result

    def demand(
        self,
        source: object,
        path: MemoryPath,
        rate: float,
        write_fraction: float = 0.0,
    ) -> TrafficDemand:
        """Convenience constructor tying a demand to a resolved path."""
        return TrafficDemand(
            source=source,
            resources=path.resources,
            rate=rate,
            write_fraction=write_fraction,
        )


def build_platform(spec: ServerSpec, anchors: PaperAnchors = ANCHORS) -> Platform:
    """Build a runtime platform from a declarative server spec."""
    return Platform(spec, anchors)
