"""CPU cache hierarchy: where the memory system's latency starts.

The paper's 97 ns / 250 ns figures are *memory* latencies — what a load
pays after missing the whole cache hierarchy.  Application models in
:mod:`repro.apps` fold cache behaviour into their calibrated per-op
constants; this module makes the hierarchy explicit for studies that
need it (working-set sweeps, AMAT analysis, MLC-style buffer-size
ramps):

* :class:`CacheLevel` — capacity + access latency;
* :class:`CacheHierarchy` — LRU simulation of a
  :class:`~repro.workloads.trace.PageTrace` through the levels, and the
  resulting average memory access time (AMAT) against any backing
  memory path.

The Sapphire Rapids preset mirrors the testbed CPU: 48 KiB L1D / 2 MiB
L2 per core, 105 MiB shared L3.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..errors import ConfigurationError
from ..units import KIB, MIB
from ..workloads.trace import PageTrace

__all__ = ["CacheLevel", "CacheHierarchy", "sapphire_rapids_caches"]


@dataclass(frozen=True)
class CacheLevel:
    """One cache level."""

    name: str
    capacity_bytes: int
    latency_ns: float

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("cache capacity must be positive")
        if self.latency_ns <= 0:
            raise ConfigurationError("cache latency must be positive")


def sapphire_rapids_caches() -> Tuple[CacheLevel, ...]:
    """The testbed CPU's per-core L1/L2 and shared L3."""
    return (
        CacheLevel("L1D", 48 * KIB, 1.1),
        CacheLevel("L2", 2 * MIB, 4.4),
        CacheLevel("L3", 105 * MIB, 21.0),
    )


class CacheHierarchy:
    """LRU inclusion-agnostic hierarchy simulation over page traces.

    Accesses are tracked at ``granule_bytes`` granularity (default one
    page, matching :class:`~repro.workloads.trace.PageTrace`; pass 64
    for cacheline-granular traces).  Levels are probed outside-in; a
    miss everywhere costs the backing memory latency.
    """

    def __init__(
        self,
        levels: Sequence[CacheLevel] = None,
        granule_bytes: int = 4096,
    ) -> None:
        self.levels = tuple(levels if levels is not None else sapphire_rapids_caches())
        if not self.levels:
            raise ConfigurationError("hierarchy needs at least one level")
        caps = [l.capacity_bytes for l in self.levels]
        if caps != sorted(caps):
            raise ConfigurationError("levels must grow outward (L1 smallest)")
        if granule_bytes <= 0:
            raise ConfigurationError("granule must be positive")
        self.granule_bytes = granule_bytes

    def simulate(
        self, trace: PageTrace, memory_latency_ns: float
    ) -> "CacheSimResult":
        """Run the trace; returns hit counts per level and the AMAT."""
        if memory_latency_ns <= 0:
            raise ConfigurationError("memory latency must be positive")
        lines_per_level = [
            max(1, level.capacity_bytes // self.granule_bytes)
            for level in self.levels
        ]
        lru: List[OrderedDict] = [OrderedDict() for _ in self.levels]
        hits = [0 for _ in self.levels]
        misses = 0
        total_ns = 0.0
        for page in trace.pages:
            key = int(page)
            hit_level = None
            for i, cache in enumerate(lru):
                if key in cache:
                    hit_level = i
                    break
            if hit_level is None:
                misses += 1
                total_ns += memory_latency_ns
            else:
                hits[hit_level] += 1
                total_ns += self.levels[hit_level].latency_ns
            # Fill/refresh the line in every level (simple inclusive LRU).
            for i, cache in enumerate(lru):
                if key in cache:
                    cache.move_to_end(key)
                else:
                    if len(cache) >= lines_per_level[i]:
                        cache.popitem(last=False)
                    cache[key] = None
        return CacheSimResult(
            level_names=tuple(l.name for l in self.levels),
            hits=tuple(hits),
            misses=misses,
            accesses=len(trace),
            amat_ns=total_ns / len(trace),
        )


@dataclass(frozen=True)
class CacheSimResult:
    """Outcome of one hierarchy simulation."""

    level_names: Tuple[str, ...]
    hits: Tuple[int, ...]
    misses: int
    accesses: int
    amat_ns: float

    def hit_rate(self, level: str) -> float:
        """Hit rate of one named level (of all accesses)."""
        try:
            index = self.level_names.index(level)
        except ValueError:
            raise ConfigurationError(f"unknown cache level {level!r}") from None
        return self.hits[index] / self.accesses

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that reached memory."""
        return self.misses / self.accesses

    def as_dict(self) -> Dict[str, float]:
        """Summary dict (for rendering)."""
        out = {f"hit_{n}": self.hits[i] / self.accesses
               for i, n in enumerate(self.level_names)}
        out["miss"] = self.miss_rate
        out["amat_ns"] = self.amat_ns
        return out
