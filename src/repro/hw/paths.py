"""Memory paths: what a load/store from socket S to node N traverses.

A :class:`MemoryPath` bundles the path *kind* (the paper's four
distances: MMEM, MMEM-r, CXL, CXL-r, plus same-socket-other-SNC-domain),
the loaded-latency model for that kind, and the ordered chain of shared
resources the traffic crosses.  Applications hold paths; each allocation
round tells them their bottleneck utilization, from which they read
their current loaded latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Mapping, Tuple

from .bandwidth import PeakBandwidthCurve
from .latency import LoadedLatencyModel

__all__ = ["PathKind", "MemoryPath"]


class PathKind(enum.Enum):
    """The paper's memory-access distance classes (§3.2, Fig. 4)."""

    MMEM_LOCAL = "mmem"
    MMEM_SNC = "mmem-snc"  # same socket, different SNC domain
    MMEM_REMOTE = "mmem-r"
    CXL_LOCAL = "cxl"
    CXL_REMOTE = "cxl-r"

    @property
    def is_cxl(self) -> bool:
        """True if the target is a CXL expander."""
        return self in (PathKind.CXL_LOCAL, PathKind.CXL_REMOTE)

    @property
    def is_remote(self) -> bool:
        """True if the path crosses the socket interconnect."""
        return self in (PathKind.MMEM_REMOTE, PathKind.CXL_REMOTE)


@dataclass(frozen=True)
class MemoryPath:
    """One (initiator socket → target node) access path."""

    kind: PathKind
    initiator_socket: int
    target_node: int
    #: Ordered names of the shared resources this path's traffic crosses.
    resources: Tuple[str, ...]
    latency_model: LoadedLatencyModel
    #: End-to-end peak bandwidth of the path (min over its chain at the
    #: pure mixes is already encoded by the chain; this curve is the
    #: *path-level* calibration used for single-flow saturation).
    bandwidth_curve: PeakBandwidthCurve

    def idle_latency_ns(self, write_fraction: float = 0.0) -> float:
        """Unloaded access latency for the given mix."""
        return self.latency_model.idle_ns(write_fraction)

    def loaded_latency_ns(
        self, utilization: float, write_fraction: float = 0.0
    ) -> float:
        """Access latency at the given bottleneck utilization and mix."""
        return self.latency_model.latency_ns(utilization, write_fraction)

    def peak_bandwidth(self, write_fraction: float = 0.0) -> float:
        """Saturation bandwidth of this path alone (bytes/s)."""
        return self.bandwidth_curve(write_fraction)

    def bottleneck_utilization(self, utilization: Mapping[str, float]) -> float:
        """Max utilization among this path's resources (0 if unknown)."""
        return max((utilization.get(r, 0.0) for r in self.resources), default=0.0)
