"""Interconnect models: UPI links and PCIe/CXL links.

The paper attributes three distinct bandwidth cliffs to interconnects:

* cross-socket DRAM traffic loses bandwidth as the write share grows
  (UPI coherence traffic), and write-only is worst because it exercises
  only one direction of the bidirectional UPI (§3.2, Fig. 3(b));
* local CXL tops out below DRAM because of PCIe framing overhead, and
  read-only tops out below the mixed peak because a one-direction stream
  cannot use both PCIe directions (§3.2, Fig. 3(c));
* remote-socket CXL is halved again by the CPU's Remote Snoop Filter
  (§3.2, Fig. 3(d)) — a platform erratum, not a protocol property.

Each cliff is expressed as a :class:`~repro.hw.device.SharedResource`
with the corresponding capacity curve, so the max-min allocator and the
loaded-latency model see them like any other bottleneck.
"""

from __future__ import annotations

from .bandwidth import PeakBandwidthCurve
from .calibration import ANCHORS, PaperAnchors, path_bandwidth_curve
from .device import SharedResource
from .spec import CxlDeviceSpec

__all__ = [
    "upi_link",
    "pcie_link",
    "rsf_limit",
    "nic_link",
    "ssd_channel",
    "UPI_PEAK_GBPS",
]

#: Aggregate UPI bandwidth between two SPR sockets (3 links x ~16 GB/s
#: usable per direction, rounded to what the remote-DRAM read curve needs).
UPI_PEAK_GBPS = 64.0


def upi_link(
    socket_a: int, socket_b: int, anchors: PaperAnchors = ANCHORS
) -> SharedResource:
    """The coherent cross-socket link between two sockets.

    Its capacity curve *is* the remote-DRAM curve from the paper: reads
    cross at nearly full speed; the write share erodes capacity through
    coherence traffic, bottoming out write-only at ~23 GB/s.
    """
    lo, hi = sorted((socket_a, socket_b))
    return SharedResource(
        name=f"upi/{lo}-{hi}",
        curve=path_bandwidth_curve("mmem_remote", anchors),
    )


def pcie_link(
    socket: int, device_index: int, spec: CxlDeviceSpec
) -> SharedResource:
    """The PCIe Gen5 link carrying a CXL card's CXL.mem traffic.

    Capacity is the raw link rate derated by protocol efficiency; the
    mix-shaped ceiling measured for the A1000 lives on the device
    resource itself (see :func:`repro.hw.topology.build_platform`), so
    the link is modeled mix-flat.  73.6 % efficiency is the figure the
    paper quotes for the A1000 versus Intel's 60 % FPGA result.
    """
    efficiency = 0.736
    return SharedResource(
        name=f"skt{socket}/cxl{device_index}/pcie",
        curve=PeakBandwidthCurve.flat(spec.pcie_raw_bytes_per_s * 2 * efficiency),
    )


def rsf_limit(
    socket: int, device_index: int, anchors: PaperAnchors = ANCHORS
) -> SharedResource:
    """The Remote Snoop Filter ceiling on cross-socket CXL accesses.

    Only remote-socket flows to a CXL device cross this virtual resource;
    its curve is the paper's measured remote-CXL ceiling (20.4 GB/s at
    2:1).  Next-generation CPUs are expected to remove it — modeling it
    as a separate resource lets experiments simply drop it to ask
    "what if RSF were fixed?" (§3.4).
    """
    return SharedResource(
        name=f"skt{socket}/cxl{device_index}/rsf",
        curve=path_bandwidth_curve("cxl_remote", anchors),
    )


def nic_link(server: str, bandwidth_bytes_per_s: float) -> SharedResource:
    """A server's network link as a flat shared resource."""
    return SharedResource(
        name=f"{server}/nic",
        curve=PeakBandwidthCurve.flat(bandwidth_bytes_per_s),
    )


def ssd_channel(server: str, index: int, bandwidth_bytes_per_s: float) -> SharedResource:
    """An SSD's sequential-bandwidth budget as a flat shared resource."""
    return SharedResource(
        name=f"{server}/ssd{index}",
        curve=PeakBandwidthCurve.flat(bandwidth_bytes_per_s),
    )
