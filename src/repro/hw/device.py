"""Runtime device objects: shared bandwidth resources, NUMA memory nodes, SSDs.

A :class:`SharedResource` is anything several traffic streams can saturate:
a DDR channel group, a CXL controller + its DRAM, a PCIe link, a UPI link,
or the virtual Remote-Snoop-Filter limit.  Its capacity is a
:class:`~repro.hw.bandwidth.PeakBandwidthCurve` because the saturation
point depends on the read/write mix (§3).

A :class:`MemoryNode` is what the OS sees: a NUMA node with a kind (DRAM
or CXL), a capacity, and the shared resources its accesses cross.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import CapacityError, ConfigurationError
from .bandwidth import PeakBandwidthCurve
from .spec import SsdSpec

__all__ = ["SharedResource", "NodeKind", "MemoryNode", "SsdDevice"]


@dataclass(frozen=True)
class SharedResource:
    """A named, mix-sensitive bandwidth capacity."""

    name: str
    curve: PeakBandwidthCurve

    def capacity(self, write_fraction: float = 0.0) -> float:
        """Capacity in bytes/s at the given aggregate write mix."""
        return self.curve(write_fraction)


class NodeKind(enum.Enum):
    """What backs a NUMA node."""

    DRAM = "dram"
    CXL = "cxl"


@dataclass
class MemoryNode:
    """A NUMA memory node as exposed to the OS layer.

    ``domain`` is the SNC sub-NUMA domain index for DRAM nodes (None when
    SNC is off or for CXL nodes, which are CPU-less).
    """

    node_id: int
    kind: NodeKind
    socket: int
    capacity_bytes: int
    resource: SharedResource
    domain: Optional[int] = None
    #: Extra resources local accesses cross (e.g. the PCIe link of a CXL
    #: card).  Remote-socket extras are added by path resolution.
    local_extra_resources: Tuple[str, ...] = ()
    #: RAS state: False while the device is hard-failed (fault injection
    #: or a real outage model); flipped by ``Platform.mark_offline``.
    online: bool = True

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("node capacity must be positive")
        if self.kind is NodeKind.CXL and self.domain is not None:
            raise ConfigurationError("CXL nodes are CPU-less; no SNC domain")

    @property
    def is_cxl(self) -> bool:
        """True for CXL expander nodes."""
        return self.kind is NodeKind.CXL


class SsdDevice:
    """A simple NVMe SSD service model.

    Used by the KV store's flash tier and by Spark's shuffle spill.  A
    transfer's service time is the device latency plus the transfer time
    at the device's (possibly contended) bandwidth; a crude
    utilization-driven queueing multiplier models the long tail the paper
    sees for SSD-spill configurations (Fig. 5(b), Fig. 7).
    """

    def __init__(self, spec: SsdSpec, name: str = "ssd0") -> None:
        self.spec = spec
        self.name = name
        self.bytes_read = 0
        self.bytes_written = 0

    def access_time_ns(
        self, size_bytes: int, is_write: bool, utilization: float = 0.0
    ) -> float:
        """Service time for one transfer of ``size_bytes``.

        ``utilization`` in [0, 1) inflates the time with a 1/(1-u) queueing
        factor, as for the memory paths.
        """
        if size_bytes < 0:
            raise CapacityError("transfer size must be >= 0")
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError("utilization must be in [0, 1]")
        u = min(utilization, 0.99)
        if is_write:
            latency = self.spec.write_latency_ns
            bandwidth = self.spec.write_bandwidth_bytes_per_s
            self.bytes_written += size_bytes
        else:
            latency = self.spec.read_latency_ns
            bandwidth = self.spec.read_bandwidth_bytes_per_s
            self.bytes_read += size_bytes
        transfer_ns = size_bytes / bandwidth * 1e9
        return (latency + transfer_ns) / (1.0 - u)

    def reset_counters(self) -> None:
        """Zero the byte counters (between experiment phases)."""
        self.bytes_read = 0
        self.bytes_written = 0
