"""CXL 2.0/3.0 memory pooling: the §7.1 forward-looking architecture.

The paper's experiments stop at CXL 1.1 (one host per device), but §7.1
anticipates "a disaggregated heterogeneous memory architecture with a
unified address space" built on CXL 2.0 switching: devices partitioned
into Multiple Logical Devices (MLDs), up to 16 hosts drawing slices
from a shared pool.

This module extends the hardware model accordingly:

* a :class:`CxlSwitch` adds a per-hop latency (switch silicon is the
  main reason pooled CXL is slower than direct-attached CXL) and has a
  finite aggregate bandwidth;
* a :class:`MemoryPool` owns devices behind the switch, hands out
  byte-granular slices to hosts, and resolves per-host access paths
  whose latency composes the direct-attach CXL surface with the switch
  hops.

The cost side (why pooling pays: stranded-memory reduction across
hosts) lives in :mod:`repro.core.pooling`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..errors import CapacityError, ConfigurationError
from .bandwidth import PeakBandwidthCurve
from .calibration import ANCHORS, PaperAnchors, path_bandwidth_curve, path_latency_model
from .device import SharedResource
from .latency import IdleLatency, LoadedLatencyModel
from .spec import CxlDeviceSpec

__all__ = ["CxlSwitch", "PoolSlice", "MemoryPool"]

#: CXL 2.0 switch port-to-port latency adder (ns); industry figures put
#: one switch hop at roughly 70-100 ns over direct attach.
SWITCH_HOP_NS = 85.0


@dataclass(frozen=True)
class CxlSwitch:
    """A CXL 2.0 switch: hop latency plus an aggregate bandwidth cap."""

    ports: int = 16
    hop_latency_ns: float = SWITCH_HOP_NS
    #: Aggregate switching capacity (bytes/s); a 16-port Gen5 switch
    #: moves on the order of 512 GB/s.
    aggregate_bandwidth: float = 512e9

    def __post_init__(self) -> None:
        if self.ports < 2:
            raise ConfigurationError("a switch needs at least two ports")
        if self.hop_latency_ns < 0 or self.aggregate_bandwidth <= 0:
            raise ConfigurationError("switch parameters must be positive")


@dataclass(frozen=True)
class PoolSlice:
    """One host's allocation out of the pool."""

    host: str
    device_index: int
    bytes_allocated: int


class MemoryPool:
    """Devices behind a switch, sliced across up to ``switch.ports - 1`` hosts."""

    def __init__(
        self,
        devices: Tuple[CxlDeviceSpec, ...],
        switch: CxlSwitch = CxlSwitch(),
        anchors: PaperAnchors = ANCHORS,
    ) -> None:
        if not devices:
            raise ConfigurationError("a pool needs at least one device")
        self.devices = devices
        self.switch = switch
        self.anchors = anchors
        self._free: List[int] = [d.capacity_bytes for d in devices]
        self._slices: List[PoolSlice] = []
        self._hosts: Dict[str, int] = {}
        self._device_resource = [
            SharedResource(
                name=f"pool/dev{i}",
                curve=path_bandwidth_curve("cxl_local", anchors),
            )
            for i in range(len(devices))
        ]
        self._switch_resource = SharedResource(
            name="pool/switch",
            curve=PeakBandwidthCurve.flat(switch.aggregate_bandwidth),
        )

    # -- capacity -----------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Raw pool capacity."""
        return sum(d.capacity_bytes for d in self.devices)

    @property
    def free_bytes(self) -> int:
        """Unallocated pool capacity."""
        return sum(self._free)

    @property
    def hosts(self) -> Tuple[str, ...]:
        """Hosts currently holding slices."""
        return tuple(self._hosts)

    def slices_of(self, host: str) -> List[PoolSlice]:
        """All slices held by one host."""
        return [s for s in self._slices if s.host == host]

    def bytes_of(self, host: str) -> int:
        """Total pool bytes held by one host."""
        return sum(s.bytes_allocated for s in self.slices_of(host))

    # -- allocation ------------------------------------------------------------

    def allocate(self, host: str, nbytes: int) -> List[PoolSlice]:
        """Give ``host`` ``nbytes`` from the pool (first-fit over devices).

        A CXL 2.0 MLD partitions a device among hosts, so one request
        may span devices.  Raises :class:`~repro.errors.CapacityError`
        when the pool cannot satisfy the request, and
        :class:`~repro.errors.ConfigurationError` when the switch has no
        port left for a new host.
        """
        if nbytes <= 0:
            raise CapacityError("allocation must be positive")
        if host not in self._hosts and len(self._hosts) >= self.switch.ports - 1:
            raise ConfigurationError(
                f"switch has only {self.switch.ports} ports; no port for {host!r}"
            )
        if nbytes > self.free_bytes:
            raise CapacityError(
                f"pool exhausted: need {nbytes}, free {self.free_bytes}"
            )
        remaining = nbytes
        granted: List[PoolSlice] = []
        for index, free in enumerate(self._free):
            if remaining == 0:
                break
            take = min(free, remaining)
            if take > 0:
                self._free[index] -= take
                piece = PoolSlice(host, index, take)
                granted.append(piece)
                self._slices.append(piece)
                remaining -= take
        self._hosts[host] = self._hosts.get(host, 0) + nbytes
        return granted

    def release(self, host: str) -> int:
        """Return all of a host's slices to the pool; returns bytes freed."""
        freed = 0
        kept: List[PoolSlice] = []
        for piece in self._slices:
            if piece.host == host:
                self._free[piece.device_index] += piece.bytes_allocated
                freed += piece.bytes_allocated
            else:
                kept.append(piece)
        self._slices = kept
        self._hosts.pop(host, None)
        return freed

    # -- the access surface --------------------------------------------------

    def latency_model(self, hops: int = 1) -> LoadedLatencyModel:
        """Loaded-latency model for pooled access through ``hops`` switches.

        Direct-attach CXL plus ``hops x hop_latency``; the queueing
        behaviour is the device's own (the switch adds latency, not a
        new knee, until its aggregate bandwidth saturates — which the
        shared switch resource captures).
        """
        if hops < 1:
            raise ConfigurationError("pooled access crosses at least one switch")
        base = path_latency_model("cxl_local", self.anchors)
        extra = hops * self.switch.hop_latency_ns
        return LoadedLatencyModel(
            idle=IdleLatency(
                base.idle.read_ns + extra, base.idle.write_ns + extra
            ),
            queueing=base.queueing,
        )

    def resources_for(self, piece: PoolSlice) -> Tuple[str, ...]:
        """The shared-resource chain a slice's traffic crosses."""
        return (
            self._switch_resource.name,
            self._device_resource[piece.device_index].name,
        )

    def resource_map(self) -> Dict[str, SharedResource]:
        """All pool resources, for allocator rounds."""
        out = {self._switch_resource.name: self._switch_resource}
        for res in self._device_resource:
            out[res.name] = res
        return out
