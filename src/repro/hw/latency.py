"""Loaded-latency model: idle latency plus contention queueing delay.

The paper's central microbenchmark observation (§3.2) is the
*loaded-latency curve*: latency is flat at low-to-moderate bandwidth
utilization, then "increases exponentially as bandwidth nears full
capacity", with the knee at 75-83 % utilization for local DDR5 and
earlier for remote-socket paths (queue contention at the memory
controller).  Higher write shares shift the knee left because the peak
bandwidth itself shrinks (see :mod:`repro.hw.bandwidth`).

We model this with the standard queueing-flavoured form

    L(u) = L0(mix) + amplitude * u**sharpness / (1 - u)

where ``u`` is utilization of the bottleneck resource.  ``sharpness``
controls how flat the curve stays before the knee (large = flatter, knee
closer to saturation); ``amplitude`` scales the blow-up.  ``1/(1-u)`` is
the M/M/1 waiting-time factor; the ``u**sharpness`` prefactor suppresses
it at low load, matching the measured flatness that plain M/M/1 lacks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError

__all__ = ["IdleLatency", "QueueingModel", "LoadedLatencyModel"]

#: Utilization is clamped here so latency stays finite at nominal 100 %.
MAX_UTILIZATION = 0.995


@dataclass(frozen=True)
class IdleLatency:
    """Unloaded latency (ns) as a function of the write fraction.

    The paper measures different idle latencies for reads and
    (non-temporal) writes — e.g. remote DDR5 is 130 ns for reads but only
    71.77 ns write-only, because NT stores complete asynchronously.  We
    interpolate linearly between the two endpoints.
    """

    read_ns: float
    write_ns: float

    def __post_init__(self) -> None:
        if self.read_ns <= 0 or self.write_ns <= 0:
            raise ConfigurationError("idle latencies must be positive")

    def __call__(self, write_fraction: float) -> float:
        """Idle latency at the given write fraction."""
        if not 0.0 <= write_fraction <= 1.0:
            raise ConfigurationError("write_fraction must be in [0, 1]")
        return self.read_ns + (self.write_ns - self.read_ns) * write_fraction


@dataclass(frozen=True)
class QueueingModel:
    """Contention delay (ns) as a function of utilization in [0, 1].

    ``max_queue`` bounds the ``1/(1-u)`` factor: a loaded-latency probe
    is closed-loop (MLC runs 16 threads with finite outstanding
    requests), so the queue — and hence the measured latency — cannot
    grow without bound even at nominal 100 % utilization.
    """

    amplitude_ns: float
    sharpness: float
    max_queue: float = 16.0

    def __post_init__(self) -> None:
        if self.amplitude_ns < 0:
            raise ConfigurationError("amplitude must be >= 0")
        if self.sharpness < 1:
            raise ConfigurationError("sharpness must be >= 1")
        if self.max_queue < 1:
            raise ConfigurationError("max_queue must be >= 1")

    def delay_ns(self, utilization: float) -> float:
        """Queueing delay at ``utilization`` (clamped below saturation)."""
        if utilization < 0:
            raise ConfigurationError("utilization must be >= 0")
        u = min(utilization, MAX_UTILIZATION)
        if u == 0.0:
            return 0.0
        queue_factor = min(1.0 / (1.0 - u), self.max_queue)
        return self.amplitude_ns * math.pow(u, self.sharpness) * queue_factor

    def knee_utilization(self, threshold_ns: float = 50.0) -> float:
        """Utilization where queueing delay first exceeds ``threshold_ns``.

        This is the quantitative version of the paper's "latency starts
        to significantly increase at 75-83 % of bandwidth utilization".
        Found by bisection (the delay is monotonically increasing).
        """
        if self.delay_ns(MAX_UTILIZATION) < threshold_ns:
            return 1.0
        lo, hi = 0.0, MAX_UTILIZATION
        for _ in range(60):
            mid = (lo + hi) / 2
            if self.delay_ns(mid) < threshold_ns:
                lo = mid
            else:
                hi = mid
        return hi


@dataclass(frozen=True)
class LoadedLatencyModel:
    """Full loaded-latency surface for one memory path."""

    idle: IdleLatency
    queueing: QueueingModel

    def latency_ns(self, utilization: float, write_fraction: float = 0.0) -> float:
        """Loaded latency at the given utilization and write mix."""
        return self.idle(write_fraction) + self.queueing.delay_ns(utilization)

    def idle_ns(self, write_fraction: float = 0.0) -> float:
        """Latency with zero contention."""
        return self.idle(write_fraction)
