"""Calibration anchors: every number the paper reports, in one place.

The reproduction cannot measure real A1000/SPR hardware, so the hardware
model is *calibrated* to the measurements published in the paper
(EuroSys '24, §3 and Fig. 3/4).  This module is the single source of
truth for those anchors; :mod:`repro.hw.presets` turns them into device
models, and the test suite asserts that the assembled platform
reproduces them (idle latencies, peak bandwidths, latency ratios, knee
positions).

Values not stated verbatim in the paper (e.g. local write idle latency)
are interpolated from the stated ones and marked ``# inferred`` below.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from ..units import gb_per_s
from .bandwidth import PeakBandwidthCurve
from .latency import IdleLatency, LoadedLatencyModel, QueueingModel

__all__ = ["PaperAnchors", "ANCHORS", "path_latency_model", "path_bandwidth_curve"]


@dataclass(frozen=True)
class PaperAnchors:
    """Measured values quoted in the paper text (§3, §4, §5, §6)."""

    # --- idle latencies (ns), §3.2 ---------------------------------------
    mmem_idle_read_ns: float = 97.0
    mmem_idle_write_ns: float = 90.0  # inferred: NT stores slightly cheaper
    mmem_snc_remote_read_ns: float = 115.0  # inferred: same socket, other SNC domain
    mmem_remote_read_ns: float = 130.0
    mmem_remote_write_ns: float = 71.77  # non-temporal, asynchronous
    cxl_idle_read_ns: float = 250.42
    cxl_idle_write_ns: float = 240.0  # inferred: CXL curve "relatively stable"
    cxl_remote_idle_read_ns: float = 485.0
    cxl_remote_idle_write_ns: float = 470.0  # inferred

    # --- peak bandwidths (GB/s) for one SNC domain / one CXL card, §3.2 --
    ddr5_channel_theoretical_gbps: float = 38.4  # DDR5-4800, per channel
    channels_per_snc_domain: int = 2
    mmem_read_peak_gbps: float = 67.0  # 87 % of 76.8 theoretical
    mmem_write_peak_gbps: float = 54.6
    cxl_peak_gbps: float = 56.7  # at 2:1 read:write
    cxl_read_peak_gbps: float = 50.0  # inferred: "smaller due to PCIe bi-directionality"
    cxl_write_peak_gbps: float = 41.0  # inferred from Fig. 3(c) shape
    cxl_remote_peak_gbps: float = 20.4  # at 2:1; RSF limitation
    mmem_remote_read_peak_gbps: float = 64.0  # inferred: "comparable" to local
    mmem_remote_write_peak_gbps: float = 23.0  # inferred: one UPI direction

    # --- latency ratios quoted in §3.3 -----------------------------------
    cxl_vs_mmem_latency_ratio: Tuple[float, float] = (2.4, 2.6)
    cxl_vs_mmem_remote_latency_ratio: Tuple[float, float] = (1.5, 1.92)

    # --- knee of the loaded-latency curve, §3.2 ---------------------------
    mmem_knee_utilization: Tuple[float, float] = (0.75, 0.83)

    # --- application-level anchors (used by tests/benchmarks) -------------
    keydb_interleave_slowdown: Tuple[float, float] = (1.2, 1.5)  # §4.1.2
    keydb_ssd_slowdown: float = 1.8  # §4.1.2, vs MMEM
    keydb_ssd_vs_interleave_slowdown: float = 1.55  # §4.1.2
    keydb_cxl_only_latency_penalty: Tuple[float, float] = (0.09, 0.27)  # §4.3.2
    keydb_cxl_only_throughput_drop: float = 0.125  # §4.3.2
    spark_interleave_slowdown: Tuple[float, float] = (1.4, 9.8)  # §4.2.2
    spark_hot_promote_min_slowdown: float = 1.34  # §4.2.2 (">34 % slowdown")
    llm_single_backend_plateau_gbps: float = 24.2  # §5.2, at 24 threads
    llm_mmem_saturation_threads: int = 48  # §5.2
    llm_31_gain_over_mmem_at_60_threads: float = 0.95  # §5.2
    llm_mmem_deficit_vs_13_beyond_64_threads: float = 0.14  # §5.2
    llm_kvcache_bw_plateau_gbps: float = 21.0  # §5.2, Fig. 10(c)
    llm_model_load_bw_gbps: float = 12.0  # §5.2, Fig. 10(c)

    # --- cost model worked example, §6 -------------------------------------
    cost_example: Dict[str, float] = field(
        default_factory=lambda: {
            "R_d": 10.0,
            "R_c": 8.0,
            "C": 2.0,
            "R_t": 1.1,
            "server_ratio": 0.6729,
            "tco_saving": 0.2598,
        }
    )

    # --- §4.3 spare-core revenue analysis ----------------------------------
    vcpu_ratio_suboptimal: float = 3.0  # server stuck at 1:3
    vcpu_ratio_optimal: float = 4.0  # target 1:4
    vcpu_discount: float = 0.20  # discount on CXL-backed instances
    vcpu_revenue_recovery: float = 0.2677  # ≈ 20/75, §4.3.2

    @property
    def snc_domain_theoretical_gbps(self) -> float:
        """Theoretical peak of one SNC domain (two DDR5-4800 channels)."""
        return self.ddr5_channel_theoretical_gbps * self.channels_per_snc_domain


#: The module-level anchor set every preset and test uses.
ANCHORS = PaperAnchors()


def path_latency_model(kind: str, anchors: PaperAnchors = ANCHORS) -> LoadedLatencyModel:
    """Loaded-latency model for a path kind.

    ``kind`` is one of ``mmem_local``, ``mmem_snc``, ``mmem_remote``,
    ``cxl_local``, ``cxl_remote``.  Queueing parameters are chosen so the
    knee (where added delay first exceeds ~50 ns) lands where the paper
    observed it: 75-83 % for local DDR, earlier for remote paths, and a
    comparatively flat curve for local CXL.
    """
    if kind == "mmem_local":
        return LoadedLatencyModel(
            idle=IdleLatency(anchors.mmem_idle_read_ns, anchors.mmem_idle_write_ns),
            queueing=QueueingModel(amplitude_ns=60.0, sharpness=6.0),
        )
    if kind == "mmem_snc":
        return LoadedLatencyModel(
            idle=IdleLatency(anchors.mmem_snc_remote_read_ns, anchors.mmem_idle_write_ns),
            queueing=QueueingModel(amplitude_ns=60.0, sharpness=6.0),
        )
    if kind == "mmem_remote":
        # "Latency escalation occurs earlier in remote socket memory
        # accesses" (§3.2): lower sharpness moves the knee left.
        return LoadedLatencyModel(
            idle=IdleLatency(anchors.mmem_remote_read_ns, anchors.mmem_remote_write_ns),
            queueing=QueueingModel(amplitude_ns=80.0, sharpness=4.0),
        )
    if kind == "cxl_local":
        # "The latency of accessing CXL on the same socket remains
        # relatively stable as bandwidth increases" (§3.2): flatter curve
        # and a shallower controller queue than the host's IMC.
        return LoadedLatencyModel(
            idle=IdleLatency(anchors.cxl_idle_read_ns, anchors.cxl_idle_write_ns),
            queueing=QueueingModel(amplitude_ns=70.0, sharpness=8.0, max_queue=12.0),
        )
    if kind == "cxl_remote":
        return LoadedLatencyModel(
            idle=IdleLatency(
                anchors.cxl_remote_idle_read_ns, anchors.cxl_remote_idle_write_ns
            ),
            queueing=QueueingModel(amplitude_ns=120.0, sharpness=4.0),
        )
    raise KeyError(f"unknown path kind {kind!r}")


def path_bandwidth_curve(kind: str, anchors: PaperAnchors = ANCHORS) -> PeakBandwidthCurve:
    """Peak-bandwidth-vs-write-fraction curve for a path kind.

    Control points are placed at the paper's measured mixes (read-only,
    2:1, 1:1, 1:2, write-only); unmeasured interior points are inferred
    from the figure shapes.
    """
    if kind in ("mmem_local", "mmem_snc"):
        return PeakBandwidthCurve.from_points(
            [
                (0.0, gb_per_s(anchors.mmem_read_peak_gbps)),
                (1.0, gb_per_s(anchors.mmem_write_peak_gbps)),
            ]
        )
    if kind == "mmem_remote":
        return PeakBandwidthCurve.from_points(
            [
                (0.0, gb_per_s(anchors.mmem_remote_read_peak_gbps)),
                (1.0 / 3.0, gb_per_s(50.0)),
                (0.5, gb_per_s(42.0)),
                (2.0 / 3.0, gb_per_s(34.0)),
                (1.0, gb_per_s(anchors.mmem_remote_write_peak_gbps)),
            ]
        )
    if kind == "cxl_local":
        return PeakBandwidthCurve.from_points(
            [
                (0.0, gb_per_s(anchors.cxl_read_peak_gbps)),
                (1.0 / 3.0, gb_per_s(anchors.cxl_peak_gbps)),  # 2:1 peak
                (0.5, gb_per_s(54.0)),
                (2.0 / 3.0, gb_per_s(50.0)),
                (1.0, gb_per_s(anchors.cxl_write_peak_gbps)),
            ]
        )
    if kind == "cxl_remote":
        # Same shape as local CXL scaled to the RSF-limited 20.4 GB/s peak.
        scale = anchors.cxl_remote_peak_gbps / anchors.cxl_peak_gbps
        return path_bandwidth_curve("cxl_local", anchors).scaled(scale)
    raise KeyError(f"unknown path kind {kind!r}")
