"""Hardware model: devices, interconnects, topology, calibrated latency/bandwidth.

The model is calibrated to the ASIC CXL measurements published in the
paper (see :mod:`repro.hw.calibration`); everything downstream — kernel
tiering policies, application simulations, the cost model — consumes the
surfaces defined here.
"""

from .bandwidth import PeakBandwidthCurve, write_fraction_of_mix
from .calibration import ANCHORS, PaperAnchors, path_bandwidth_curve, path_latency_model
from .device import MemoryNode, NodeKind, SharedResource, SsdDevice
from .latency import IdleLatency, LoadedLatencyModel, QueueingModel
from .paths import MemoryPath, PathKind
from .pooling import CxlSwitch, MemoryPool, PoolSlice
from .presets import (
    a1000_card,
    paper_baseline_platform,
    paper_baseline_server_spec,
    paper_cxl_platform,
    paper_cxl_server_spec,
    paper_testbed,
    sapphire_rapids_cpu,
)
from .spec import CpuSpec, CxlDeviceSpec, DimmSpec, NicSpec, ServerSpec, SsdSpec
from .topology import Platform, build_platform

__all__ = [
    "PeakBandwidthCurve",
    "write_fraction_of_mix",
    "ANCHORS",
    "PaperAnchors",
    "path_bandwidth_curve",
    "path_latency_model",
    "MemoryNode",
    "NodeKind",
    "SharedResource",
    "SsdDevice",
    "IdleLatency",
    "LoadedLatencyModel",
    "QueueingModel",
    "MemoryPath",
    "PathKind",
    "CxlSwitch",
    "MemoryPool",
    "PoolSlice",
    "a1000_card",
    "paper_baseline_platform",
    "paper_baseline_server_spec",
    "paper_cxl_platform",
    "paper_cxl_server_spec",
    "paper_testbed",
    "sapphire_rapids_cpu",
    "CpuSpec",
    "CxlDeviceSpec",
    "DimmSpec",
    "NicSpec",
    "ServerSpec",
    "SsdSpec",
    "Platform",
    "build_platform",
]
