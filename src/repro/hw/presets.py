"""Testbed presets matching the paper's experimental platform (§2.4).

Two CXL experiment servers: dual Intel Xeon SPR, 1 TB DDR5-4800 (8x64 GB
per socket), two 1.92 TB SSDs, two A1000 CXL Gen5 x16 cards with 256 GB
each on socket 0 (512 GB CXL per server).  One baseline server:
identical but without the CXL cards.  100 Gbps Ethernet between them.

SNC-4 is enabled for the raw-performance (§3) and bandwidth-bound (§5)
experiments and disabled for the capacity-bound ones (§4), mirroring the
paper's per-experiment switches.
"""

from __future__ import annotations

from typing import Tuple

from .calibration import ANCHORS, PaperAnchors
from .spec import CpuSpec, CxlDeviceSpec, DimmSpec, ServerSpec, SsdSpec
from .topology import Platform

__all__ = [
    "sapphire_rapids_cpu",
    "a1000_card",
    "paper_cxl_server_spec",
    "paper_baseline_server_spec",
    "paper_cxl_platform",
    "paper_baseline_platform",
    "paper_testbed",
]


def sapphire_rapids_cpu() -> CpuSpec:
    """The testbed's 4th-gen Xeon socket: 8 channels of DDR5-4800."""
    return CpuSpec(
        name="Intel Xeon 4th Gen (Sapphire Rapids)",
        cores=48,
        memory_channels=8,
        dimm=DimmSpec(capacity_bytes=64 * 1024**3, speed_mt_s=4800),
        snc_domains=4,
    )


def a1000_card() -> CxlDeviceSpec:
    """An AsteraLabs A1000 with two DDR5-4800 channels and 256 GB."""
    return CxlDeviceSpec(
        name="AsteraLabs A1000",
        capacity_bytes=256 * 1024**3,
        pcie_lanes=16,
        pcie_gts=32.0,
        dram_channels=2,
        dimm=DimmSpec(capacity_bytes=128 * 1024**3, speed_mt_s=4800),
    )


def paper_cxl_server_spec(snc_enabled: bool = False, name: str = "cxl-server") -> ServerSpec:
    """A CXL experiment server: SPR x2 + two A1000 cards on socket 0."""
    return ServerSpec(
        name=name,
        sockets=2,
        cpu=sapphire_rapids_cpu(),
        cxl_devices=(a1000_card(), a1000_card()),
        cxl_socket=0,
        ssds=(SsdSpec(), SsdSpec()),
        snc_enabled=snc_enabled,
    )


def paper_baseline_server_spec(
    snc_enabled: bool = False, name: str = "baseline-server"
) -> ServerSpec:
    """The baseline server: identical config, no CXL cards."""
    return ServerSpec(
        name=name,
        sockets=2,
        cpu=sapphire_rapids_cpu(),
        cxl_devices=(),
        cxl_socket=0,
        ssds=(SsdSpec(), SsdSpec()),
        snc_enabled=snc_enabled,
    )


def paper_cxl_platform(
    snc_enabled: bool = False,
    name: str = "cxl-server",
    anchors: PaperAnchors = ANCHORS,
) -> Platform:
    """Runtime platform for one CXL experiment server."""
    return Platform(paper_cxl_server_spec(snc_enabled, name), anchors)


def paper_baseline_platform(
    snc_enabled: bool = False,
    name: str = "baseline-server",
    anchors: PaperAnchors = ANCHORS,
) -> Platform:
    """Runtime platform for the baseline server."""
    return Platform(paper_baseline_server_spec(snc_enabled, name), anchors)


def paper_testbed(
    snc_enabled: bool = False, anchors: PaperAnchors = ANCHORS
) -> Tuple[Platform, Platform, Platform]:
    """The full three-server testbed of Fig. 2(b).

    Returns ``(cxl_server_0, cxl_server_1, baseline_server)``.
    """
    return (
        paper_cxl_platform(snc_enabled, "cxl-server-0", anchors),
        paper_cxl_platform(snc_enabled, "cxl-server-1", anchors),
        paper_baseline_platform(snc_enabled, "baseline-server", anchors),
    )
