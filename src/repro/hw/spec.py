"""Declarative hardware specifications.

These dataclasses describe *what a server is made of* — CPUs, DIMMs, CXL
expander cards, SSDs, NICs — in catalog terms.  :mod:`repro.hw.topology`
turns a :class:`ServerSpec` into a runtime :class:`~repro.hw.topology.Platform`
with shared bandwidth resources and memory paths.

The defaults mirror the paper's testbed (§2.4): dual Sapphire Rapids,
1 TB DDR5-4800, two AsteraLabs A1000 CXL Gen5 x16 cards with 256 GB each
on socket 0, two 1.92 TB SSDs, 100 Gbps Ethernet.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from ..errors import ConfigurationError
from ..units import GIB, gb_per_s

__all__ = [
    "DimmSpec",
    "CpuSpec",
    "CxlDeviceSpec",
    "SsdSpec",
    "NicSpec",
    "ServerSpec",
]


@dataclass(frozen=True)
class DimmSpec:
    """One DDR5 RDIMM."""

    capacity_bytes: int = 64 * GIB
    speed_mt_s: int = 4800  # DDR5-4800

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("DIMM capacity must be positive")
        if self.speed_mt_s <= 0:
            raise ConfigurationError("DIMM speed must be positive")

    @property
    def channel_peak_bytes_per_s(self) -> float:
        """Theoretical peak of a channel running this DIMM (8 B wide)."""
        return self.speed_mt_s * 1e6 * 8


@dataclass(frozen=True)
class CpuSpec:
    """One CPU socket (Sapphire Rapids-like)."""

    name: str = "Intel Xeon SPR"
    cores: int = 48
    memory_channels: int = 8
    dimm: DimmSpec = field(default_factory=DimmSpec)
    #: SNC partitions the socket into this many sub-NUMA domains when on.
    snc_domains: int = 4

    def __post_init__(self) -> None:
        if self.cores <= 0 or self.memory_channels <= 0:
            raise ConfigurationError("cores and channels must be positive")
        if self.snc_domains <= 0 or self.memory_channels % self.snc_domains:
            raise ConfigurationError(
                "memory channels must divide evenly across SNC domains"
            )

    @property
    def channels_per_domain(self) -> int:
        """DDR channels per SNC domain when SNC is enabled."""
        return self.memory_channels // self.snc_domains

    @property
    def socket_memory_bytes(self) -> int:
        """Total DRAM behind one socket (one DIMM per channel)."""
        return self.memory_channels * self.dimm.capacity_bytes


@dataclass(frozen=True)
class CxlDeviceSpec:
    """An ASIC CXL Type-3 memory expander (AsteraLabs A1000-like)."""

    name: str = "AsteraLabs A1000"
    capacity_bytes: int = 256 * GIB
    pcie_lanes: int = 16
    pcie_gts: float = 32.0  # CXL 1.1 over PCIe 5.0: 32 GT/s per lane
    dram_channels: int = 2
    dimm: DimmSpec = field(default_factory=DimmSpec)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("CXL capacity must be positive")
        if self.pcie_lanes not in (4, 8, 16):
            raise ConfigurationError("CXL 1.1 supports x4/x8/x16 links")

    @property
    def pcie_raw_bytes_per_s(self) -> float:
        """Raw unidirectional PCIe bandwidth (before protocol overhead)."""
        # 32 GT/s with 1b/1b-equivalent FLIT encoding ≈ 4 GB/s per lane.
        return self.pcie_lanes * self.pcie_gts / 8.0 * 1e9


@dataclass(frozen=True)
class SsdSpec:
    """An NVMe SSD (1.92 TB datacenter drive, as in the testbed)."""

    capacity_bytes: int = int(1.92e12)
    read_latency_ns: float = 80_000.0  # 80 us typical NVMe read
    write_latency_ns: float = 20_000.0  # buffered write
    read_bandwidth_bytes_per_s: float = gb_per_s(3.2)
    write_bandwidth_bytes_per_s: float = gb_per_s(2.0)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError("SSD capacity must be positive")
        if min(self.read_latency_ns, self.write_latency_ns) <= 0:
            raise ConfigurationError("SSD latencies must be positive")
        if min(self.read_bandwidth_bytes_per_s, self.write_bandwidth_bytes_per_s) <= 0:
            raise ConfigurationError("SSD bandwidths must be positive")


@dataclass(frozen=True)
class NicSpec:
    """The server NIC (testbed: 100 Gbps Ethernet)."""

    bandwidth_bits_per_s: float = 100e9
    base_latency_ns: float = 10_000.0  # one-way small-message latency

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Usable byte bandwidth of the link."""
        return self.bandwidth_bits_per_s / 8.0


@dataclass(frozen=True)
class ServerSpec:
    """A whole server: sockets, CXL cards, SSDs, NIC."""

    name: str = "cxl-server"
    sockets: int = 2
    cpu: CpuSpec = field(default_factory=CpuSpec)
    #: CXL cards per server; all attach to socket 0 as in the testbed.
    cxl_devices: Tuple[CxlDeviceSpec, ...] = ()
    cxl_socket: int = 0
    ssds: Tuple[SsdSpec, ...] = (SsdSpec(), SsdSpec())
    nic: NicSpec = field(default_factory=NicSpec)
    snc_enabled: bool = False

    def __post_init__(self) -> None:
        if self.sockets <= 0:
            raise ConfigurationError("a server needs at least one socket")
        if not 0 <= self.cxl_socket < self.sockets:
            raise ConfigurationError("cxl_socket out of range")

    @property
    def total_mmem_bytes(self) -> int:
        """Total main-memory DRAM across all sockets."""
        return self.sockets * self.cpu.socket_memory_bytes

    @property
    def total_cxl_bytes(self) -> int:
        """Total CXL-expander memory."""
        return sum(d.capacity_bytes for d in self.cxl_devices)

    @property
    def total_memory_bytes(self) -> int:
        """MMEM + CXL capacity."""
        return self.total_mmem_bytes + self.total_cxl_bytes

    @property
    def total_cores(self) -> int:
        """Physical cores across sockets."""
        return self.sockets * self.cpu.cores
