"""repro — reproduction of "Exploring Performance and Cost Optimization
with ASIC-Based CXL Memory" (EuroSys '24).

The package provides, from the bottom up:

* :mod:`repro.sim` — deterministic discrete-event core, bandwidth
  arbitration, statistics;
* :mod:`repro.hw` — a hardware model calibrated to the paper's ASIC CXL
  measurements (Sapphire Rapids + AsteraLabs A1000);
* :mod:`repro.mem` — page-granular memory management: NUMA mempolicies
  (bind / interleave / weighted N:M) and kernel tiering daemons
  (NUMA balancing, hot-page selection with promotion rate limit, TPP);
* :mod:`repro.workloads` — MLC-style loaded-latency probes, YCSB,
  TPC-H query profiles, LLM serving traces;
* :mod:`repro.apps` — the paper's three application studies (KeyDB-like
  KV store, Spark-like shuffle engine, CPU LLM inference);
* :mod:`repro.core` — the paper's contributions: the Abstract Cost Model
  and the bandwidth-aware placement optimizer;
* :mod:`repro.analysis` — per-figure experiment runners and rendering.

Quickstart::

    from repro import paper_cxl_platform

    platform = paper_cxl_platform()
    cxl = platform.cxl_nodes()[0]
    path = platform.path(initiator_socket=0, target_node=cxl.node_id)
    print(path.idle_latency_ns())          # ~250 ns, §3.2
"""

from .hw import (
    ANCHORS,
    PaperAnchors,
    MemoryPath,
    PathKind,
    Platform,
    ServerSpec,
    build_platform,
    paper_baseline_platform,
    paper_cxl_platform,
    paper_testbed,
)
from .sim import RngFactory, Simulator

__version__ = "1.0.0"

__all__ = [
    "ANCHORS",
    "PaperAnchors",
    "MemoryPath",
    "PathKind",
    "Platform",
    "ServerSpec",
    "build_platform",
    "paper_baseline_platform",
    "paper_cxl_platform",
    "paper_testbed",
    "RngFactory",
    "Simulator",
    "__version__",
]
