"""Cache and sweep counters as lazy ``repro.obs`` collectors.

Two adapters in the same style as every other accounting object's
``register_into``: a callback registered on a
:class:`~repro.obs.registry.MetricsRegistry` that emits samples at
snapshot time, so wiring costs nothing while the sweep runs.

These samples are deliberately **not** part of the merged per-point
``repro.metrics/v1`` export: hit/miss counts differ between a cold and
a warm run, and the merged document must stay byte-identical across
the two.  They surface instead through ``repro cache stats --json``
and the sweep summary lines.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports
    from ..parallel.jobs import SweepResult
    from .store import CacheStats, SweepCache

__all__ = [
    "register_cache_stats",
    "register_store_snapshot",
    "register_sweep_result",
]


def register_cache_stats(
    registry: Any, stats: "CacheStats", labels: Any = None
) -> None:
    """Export hit/miss/eviction/resume counters as a lazy collector.

    Samples: ``sweep_cache_hits`` / ``_misses`` / ``_stores`` /
    ``_store_failures`` / ``_evictions`` / ``_corrupted`` (counters) and
    ``sweep_points_resumed`` (counter).
    """
    from ..obs.registry import Sample

    base = dict(labels or {})

    def collect():
        for name, value in (
            ("sweep_cache_hits", stats.hits),
            ("sweep_cache_misses", stats.misses),
            ("sweep_cache_stores", stats.stores),
            ("sweep_cache_store_failures", stats.store_failures),
            ("sweep_cache_evictions", stats.evictions),
            ("sweep_cache_corrupted", stats.corrupted),
            ("sweep_points_resumed", stats.resumed),
        ):
            yield Sample(name, "counter", dict(base), float(value))

    registry.register_collector(collect)


def register_store_snapshot(registry: Any, cache: "SweepCache") -> None:
    """Export the on-disk store shape (entries, bytes, cap) as gauges."""
    from ..obs.registry import Sample

    def collect():
        snap = cache.stats_snapshot()
        for name, value in (
            ("sweep_cache_entries", snap["entries"]),
            ("sweep_cache_bytes", snap["total_bytes"]),
            ("sweep_cache_max_bytes", snap["max_bytes"]),
        ):
            yield Sample(name, "gauge", {}, float(value))

    registry.register_collector(collect)


def register_sweep_result(registry: Any, sweep: "SweepResult") -> None:
    """Export per-point wall-clock and cache provenance as a collector.

    ``sweep_point_elapsed_s{sweep=,point=,cached=}`` gauges (0.0 for a
    cache-served point: no execution happened), plus the sweep's cache
    counters when it ran with a cache attached and its runner health
    counters when the supervised runner recorded any.
    """
    from ..obs.registry import Sample

    def collect():
        for pr in sweep.results:
            yield Sample(
                "sweep_point_elapsed_s",
                "gauge",
                {
                    "sweep": sweep.name,
                    "point": pr.key,
                    "cached": "1" if pr.cached else "0",
                },
                float(pr.elapsed_s),
            )

    registry.register_collector(collect)
    if sweep.cache_stats is not None:
        register_cache_stats(
            registry, sweep.cache_stats, labels={"sweep": sweep.name}
        )
    if sweep.runner_health is not None:
        from ..parallel.obs import register_runner_health

        register_runner_health(
            registry, sweep.runner_health, labels={"sweep": sweep.name}
        )
