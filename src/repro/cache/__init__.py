"""``repro.cache`` — content-addressed memoization of sweep points.

PR 4 made every sweep point a pure function of ``(task, params, seed)``
with bit-identical outputs at any worker count; this package turns that
purity into reuse.  Each completed point is persisted under a SHA-256
fingerprint of exactly its inputs plus a *code fingerprint* of the
``repro`` sources (:mod:`~repro.cache.fingerprint`), so

* a warm re-run of the same sweep executes **zero** points and its
  merged ``repro.metrics/v1`` export is byte-identical to the cold run;
* an interrupted sweep resumes from the last persisted point, and a
  drained (SIGINT/SIGTERM) run leaves a :mod:`~repro.cache.manifest`
  documenting what completed and why it stopped;
* editing any simulator source, any param, or the seed changes the
  fingerprint and the stale entry is simply never addressed again.

:mod:`~repro.cache.store` is the on-disk store — atomic tmp+rename
writes (concurrent-writer safe), a size-capped LRU eviction policy,
and corruption demoted to a miss.  :mod:`~repro.cache.obs` exports the
hit/miss/evict/resume counters through the PR 3 metrics registry.

Knobs: ``$REPRO_CACHE_DIR`` (location), ``$REPRO_CACHE_MAX_BYTES``
(cap), ``--no-cache`` on every sweep-shaped CLI command, and
``repro cache {stats,clear,verify}`` for maintenance.
"""

from .fingerprint import (
    FINGERPRINT_VERSION,
    canonical_params,
    backend_identity,
    code_fingerprint,
    point_fingerprint,
    task_name,
)
from .manifest import (
    MANIFEST_SCHEMA,
    ResumeManifest,
    clear_resume_manifest,
    list_resume_manifests,
    load_resume_manifest,
    manifest_path,
    verify_resume_manifests,
    write_resume_manifest,
)
from .obs import register_cache_stats, register_store_snapshot, register_sweep_result
from .store import (
    CACHE_DIR_ENV,
    CACHE_MAX_BYTES_ENV,
    DEFAULT_MAX_BYTES,
    CacheEntry,
    CacheStats,
    EntryInfo,
    SweepCache,
    VerifyReport,
    default_cache_dir,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "DEFAULT_MAX_BYTES",
    "FINGERPRINT_VERSION",
    "MANIFEST_SCHEMA",
    "ResumeManifest",
    "clear_resume_manifest",
    "list_resume_manifests",
    "load_resume_manifest",
    "manifest_path",
    "verify_resume_manifests",
    "write_resume_manifest",
    "CacheEntry",
    "CacheStats",
    "EntryInfo",
    "SweepCache",
    "VerifyReport",
    "canonical_params",
    "backend_identity",
    "code_fingerprint",
    "default_cache_dir",
    "point_fingerprint",
    "register_cache_stats",
    "register_store_snapshot",
    "register_sweep_result",
    "task_name",
]
