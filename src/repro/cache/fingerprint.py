"""Content-addressed fingerprints for sweep points.

A sweep point's result is a pure function of ``(task, params, seed)``
plus the source of the :mod:`repro` package itself — PR 4's determinism
contract.  :func:`point_fingerprint` folds exactly those four inputs
into one SHA-256 hex digest, which becomes the point's address in the
on-disk cache:

* the **task** is identified by its module-qualified name (the same
  reference a spawned worker imports);
* **params** are canonicalized first (:func:`canonical_params`) so that
  semantically equal mappings hash equally regardless of insertion
  order, and tuples/lists are interchangeable;
* the **seed** enters verbatim;
* the **code fingerprint** (:func:`code_fingerprint`) hashes every
  ``*.py`` source file of the installed ``repro`` package, so editing
  any simulator/model source silently invalidates every cached result
  instead of serving stale physics;
* the **backend identity** (:func:`backend_identity`) distinguishes a
  DES result from an analytical-model result for the same ``(task,
  params, seed)`` — the two are *near* but not bit-equal, so they must
  never alias to one cache entry.  Tasks advertise their backend via a
  ``__repro_backend__`` attribute (a ``(name, model_version)`` pair, or
  a callable of ``params`` for per-point routers); tasks without one
  are the DES.

Changing any one of the five inputs changes the fingerprint — the
property ``tests/cache/test_fingerprint.py`` pins down.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from typing import Any, Callable, Mapping, Optional, Tuple

__all__ = [
    "FINGERPRINT_VERSION",
    "backend_identity",
    "canonical_params",
    "code_fingerprint",
    "point_fingerprint",
    "task_name",
]

#: Bump to invalidate every existing cache entry on a format change.
#: v2: backend identity joined the payload (analytic fast path).
FINGERPRINT_VERSION = 2

#: Memoized code fingerprint (one source walk per process).
_CODE_FP: Optional[str] = None


def task_name(task: Callable[..., Any]) -> str:
    """The stable, import-path identity of a sweep task."""
    return f"{task.__module__}.{task.__qualname__}"


def backend_identity(
    task: Callable[..., Any], params: Mapping[str, Any]
) -> Tuple[str, int]:
    """The ``(backend, model_version)`` pair a task resolves to.

    Read from the task's ``__repro_backend__`` attribute: a static
    ``(name, version)`` pair for single-backend tasks, or a callable of
    ``params`` for router tasks that pick per point (``--backend
    auto``).  A task without the attribute is the DES, whose model
    version is the code fingerprint itself — hence ``("des", 0)``.
    """
    marker = getattr(task, "__repro_backend__", None)
    if marker is None:
        return ("des", 0)
    if callable(marker):
        marker = marker(params)
    name, version = marker
    return (str(name), int(version))


def _canonical(obj: Any) -> Any:
    """A JSON-serializable skeleton that equal params map to equally."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr() keeps full precision; JSON float formatting could
        # collapse distinct values.
        return {"__float__": repr(obj)}
    if isinstance(obj, (list, tuple)):
        return [_canonical(item) for item in obj]
    if isinstance(obj, Mapping):
        return {
            "__map__": sorted(
                (str(key), _canonical(value)) for key, value in obj.items()
            )
        }
    if isinstance(obj, (set, frozenset)):
        return {"__set__": sorted(json.dumps(_canonical(i), sort_keys=True)
                                  for i in obj)}
    if isinstance(obj, enum.Enum):
        return {"__enum__": f"{type(obj).__module__}.{type(obj).__qualname__}"
                            f".{obj.name}"}
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            "__dataclass__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "fields": {
                f.name: _canonical(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    # Last resort: type identity + repr.  Deterministic for the config
    # objects that reach sweep params (plain classes with value reprs);
    # an object with a default object.__repr__ (memory address) would
    # defeat caching, so reject it loudly.
    text = repr(obj)
    if " object at 0x" in text:
        raise TypeError(
            f"cannot fingerprint {type(obj).__qualname__}: repr() is not "
            f"value-based; give it a deterministic __repr__ or keep it out "
            f"of sweep params"
        )
    return {"__repr__": f"{type(obj).__module__}.{type(obj).__qualname__}",
            "value": text}


def canonical_params(params: Mapping[str, Any]) -> str:
    """A canonical JSON encoding of a point's params mapping."""
    return json.dumps(_canonical(params), sort_keys=True, separators=(",", ":"))


def code_fingerprint(refresh: bool = False) -> str:
    """SHA-256 over every ``*.py`` source file of the ``repro`` package.

    Walked once per process (memoized); ``refresh=True`` forces a
    re-walk.  Files are hashed as ``relpath NUL contents`` in sorted
    relpath order, so the digest is independent of filesystem
    enumeration order and of where the package is installed.
    """
    global _CODE_FP
    if _CODE_FP is not None and not refresh:
        return _CODE_FP
    import repro

    root = os.path.dirname(os.path.abspath(repro.__file__))
    digest = hashlib.sha256()
    sources = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(d for d in dirnames if d != "__pycache__")
        for fn in filenames:
            if fn.endswith(".py"):
                full = os.path.join(dirpath, fn)
                sources.append((os.path.relpath(full, root), full))
    for relpath, full in sorted(sources):
        digest.update(relpath.encode("utf-8"))
        digest.update(b"\0")
        with open(full, "rb") as fh:
            digest.update(fh.read())
        digest.update(b"\0")
    _CODE_FP = digest.hexdigest()
    return _CODE_FP


def point_fingerprint(
    task: str,
    params: Mapping[str, Any],
    seed: int,
    code_fp: Optional[str] = None,
    *,
    backend: Optional[Tuple[str, int]] = None,
) -> str:
    """The content address of one sweep point's result.

    ``task`` is the :func:`task_name` string; ``code_fp`` defaults to
    the live :func:`code_fingerprint` and is injectable for tests.
    ``backend`` is the resolved :func:`backend_identity` pair; ``None``
    means the DES.
    """
    if code_fp is None:
        code_fp = code_fingerprint()
    if backend is None:
        backend = ("des", 0)
    payload = "\n".join(
        (
            f"v{FINGERPRINT_VERSION}",
            task,
            canonical_params(params),
            str(int(seed)),
            code_fp,
            f"{backend[0]}/{int(backend[1])}",
        )
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
