"""The on-disk, content-addressed store for sweep point results.

Layout: one file per point under ``<root>/<fp[:2]>/<fp>.rsc`` where
``fp`` is the point's :func:`~repro.cache.fingerprint.point_fingerprint`.
Each file is::

    b"RSC1" | sha256(payload) (32 bytes) | payload (pickle)

The embedded digest makes corruption *detectable*: a truncated,
bit-flipped or half-written file fails verification and
:meth:`SweepCache.lookup` demotes it to a miss (deleting the carcass)
instead of crashing the sweep.  Entries are written to a unique
temporary file in the same directory and published with
:func:`os.replace`, so concurrent writers — pool workers, two sweeps
racing on the same grid — can only ever leave a complete entry behind;
the last writer wins and both wrote identical bytes anyway (the store
is content-addressed).

Capacity is bounded by a size cap (``max_bytes``, default 1 GiB,
``$REPRO_CACHE_MAX_BYTES`` overrides): after every store the least
recently *used* entries are evicted until the cache fits.  A lookup hit
refreshes its entry's mtime, so hot figure grids survive while
abandoned experiments age out.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, List, Mapping, Optional, Tuple

from ..errors import ConfigurationError
from .fingerprint import backend_identity, point_fingerprint, task_name

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_MAX_BYTES_ENV",
    "DEFAULT_MAX_BYTES",
    "CacheEntry",
    "CacheStats",
    "EntryInfo",
    "SweepCache",
    "VerifyReport",
    "default_cache_dir",
]

#: Environment variable overriding the cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable overriding the size cap (bytes).
CACHE_MAX_BYTES_ENV = "REPRO_CACHE_MAX_BYTES"

#: Default size cap: 1 GiB.
DEFAULT_MAX_BYTES = 1 << 30

_MAGIC = b"RSC1"
_DIGEST_LEN = 32
_SUFFIX = ".rsc"


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR``, else ``$XDG_CACHE_HOME``/repro/sweeps."""
    override = os.environ.get(CACHE_DIR_ENV, "").strip()
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME", "").strip() or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "sweeps")


def _default_max_bytes() -> int:
    raw = os.environ.get(CACHE_MAX_BYTES_ENV, "").strip()
    if not raw:
        return DEFAULT_MAX_BYTES
    try:
        value = int(raw)
    except ValueError:
        raise ConfigurationError(
            f"{CACHE_MAX_BYTES_ENV} must be an integer byte count, got {raw!r}"
        )
    if value < 1:
        raise ConfigurationError(
            f"{CACHE_MAX_BYTES_ENV} must be positive, got {value}"
        )
    return value


@dataclass
class CacheStats:
    """Monotonic counters of one cache's activity (process-local)."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    store_failures: int = 0
    evictions: int = 0
    corrupted: int = 0
    #: Points served from cache by a run that also executed points —
    #: i.e. an interrupted or extended sweep picking up where it left
    #: off.  Set by the runner, not the store.
    resumed: int = 0

    def delta(self, since: "CacheStats") -> "CacheStats":
        """Counter increments between two snapshots of the same cache."""
        return CacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            stores=self.stores - since.stores,
            store_failures=self.store_failures - since.store_failures,
            evictions=self.evictions - since.evictions,
            corrupted=self.corrupted - since.corrupted,
            resumed=self.resumed - since.resumed,
        )

    def snapshot(self) -> "CacheStats":
        """An independent copy (for before/after deltas)."""
        return replace(self)

    def as_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_failures": self.store_failures,
            "evictions": self.evictions,
            "corrupted": self.corrupted,
            "resumed": self.resumed,
        }


@dataclass(frozen=True)
class CacheEntry:
    """One deserialized cache hit."""

    fingerprint: str
    task: str
    key: str
    seed: int
    elapsed_s: float
    value: Any


@dataclass(frozen=True)
class EntryInfo:
    """On-disk metadata of one entry (no deserialization)."""

    path: str
    fingerprint: str
    size: int
    mtime: float


@dataclass
class VerifyReport:
    """Outcome of a full-store integrity scan."""

    checked: int = 0
    bad: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.bad


class SweepCache:
    """A content-addressed result store rooted at one directory."""

    def __init__(
        self,
        root: Optional[str] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.root = os.path.abspath(root if root is not None else default_cache_dir())
        self.max_bytes = max_bytes if max_bytes is not None else _default_max_bytes()
        if self.max_bytes < 1:
            raise ConfigurationError(
                f"cache max_bytes must be positive, got {self.max_bytes}"
            )
        self.stats = CacheStats()
        os.makedirs(self.root, exist_ok=True)

    # -- addressing ---------------------------------------------------------

    def key_for(
        self, task: Callable[..., Any], params: Mapping[str, Any], seed: int
    ) -> str:
        """The fingerprint of one (task, params, seed) point.

        The task's backend identity (DES vs analytic model, see
        :func:`~repro.cache.fingerprint.backend_identity`) joins the
        address, so the two backends' near-but-not-equal results can
        never serve for one another.
        """
        return point_fingerprint(
            task_name(task), params, seed,
            backend=backend_identity(task, params),
        )

    def _path(self, fingerprint: str) -> str:
        return os.path.join(self.root, fingerprint[:2], fingerprint + _SUFFIX)

    # -- read ---------------------------------------------------------------

    def _read_entry(self, path: str, fingerprint: str) -> CacheEntry:
        """Read and verify one entry; raises on any corruption."""
        with open(path, "rb") as fh:
            blob = fh.read()
        if blob[: len(_MAGIC)] != _MAGIC:
            raise ValueError("bad magic")
        digest = blob[len(_MAGIC): len(_MAGIC) + _DIGEST_LEN]
        payload = blob[len(_MAGIC) + _DIGEST_LEN:]
        if len(digest) != _DIGEST_LEN or hashlib.sha256(payload).digest() != digest:
            raise ValueError("payload digest mismatch (truncated or corrupted)")
        record = pickle.loads(payload)
        if record.get("fingerprint") != fingerprint:
            raise ValueError("entry fingerprint does not match its address")
        return CacheEntry(
            fingerprint=fingerprint,
            task=record["task"],
            key=record["key"],
            seed=record["seed"],
            elapsed_s=record["elapsed_s"],
            value=record["value"],
        )

    def lookup(self, fingerprint: str) -> Optional[CacheEntry]:
        """The entry at ``fingerprint``, or ``None`` (a miss).

        A corrupted entry counts as a miss: it is deleted best-effort
        and ``stats.corrupted`` is incremented — the sweep recomputes
        and re-stores the point rather than crashing.
        """
        path = self._path(fingerprint)
        try:
            entry = self._read_entry(path, fingerprint)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self.stats.corrupted += 1
            self.stats.misses += 1
            try:
                os.remove(path)
            except OSError:
                pass
            return None
        self.stats.hits += 1
        try:
            os.utime(path)  # refresh LRU recency
        except OSError:
            pass
        return entry

    # -- write --------------------------------------------------------------

    def put(
        self,
        fingerprint: str,
        value: Any,
        key: str,
        task: str,
        seed: int,
        elapsed_s: float = 0.0,
    ) -> bool:
        """Persist one point's value; returns False if it won't pickle.

        The entry is written to a unique sibling temp file and published
        atomically with :func:`os.replace` — a reader (or a concurrent
        writer of the same fingerprint) can never observe a partial
        entry.
        """
        record = {
            "fingerprint": fingerprint,
            "task": task,
            "key": key,
            "seed": int(seed),
            "elapsed_s": float(elapsed_s),
            "value": value,
        }
        try:
            payload = pickle.dumps(record, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            self.stats.store_failures += 1
            return False
        blob = _MAGIC + hashlib.sha256(payload).digest() + payload
        path = self._path(fingerprint)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=fingerprint[:8] + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            self.stats.store_failures += 1
            try:
                os.remove(tmp)
            except OSError:
                pass
            return False
        self.stats.stores += 1
        self._evict(keep=fingerprint)
        return True

    def _evict(self, keep: Optional[str] = None) -> None:
        """Drop least-recently-used entries until the store fits the cap."""
        infos = sorted(self.entries(), key=lambda e: (e.mtime, e.fingerprint))
        total = sum(e.size for e in infos)
        for info in infos:
            if total <= self.max_bytes:
                break
            if info.fingerprint == keep:
                continue
            try:
                os.remove(info.path)
            except OSError:
                continue
            total -= info.size
            self.stats.evictions += 1

    # -- maintenance --------------------------------------------------------

    def entries(self) -> Iterator[EntryInfo]:
        """On-disk entries (stat only; skips files that vanish mid-walk)."""
        for dirpath, dirnames, filenames in os.walk(self.root):
            dirnames.sort()
            for fn in sorted(filenames):
                if not fn.endswith(_SUFFIX):
                    continue
                path = os.path.join(dirpath, fn)
                try:
                    st = os.stat(path)
                except OSError:
                    continue
                yield EntryInfo(
                    path=path,
                    fingerprint=fn[: -len(_SUFFIX)],
                    size=st.st_size,
                    mtime=st.st_mtime,
                )

    def size_bytes(self) -> int:
        """Total bytes of all entries."""
        return sum(e.size for e in self.entries())

    def __len__(self) -> int:
        return sum(1 for _ in self.entries())

    def clear(self) -> int:
        """Remove every entry; returns how many were removed."""
        removed = 0
        for info in list(self.entries()):
            try:
                os.remove(info.path)
            except OSError:
                continue
            removed += 1
        return removed

    def verify(self, purge: bool = False) -> VerifyReport:
        """Integrity-scan every entry; optionally delete the bad ones."""
        report = VerifyReport()
        for info in list(self.entries()):
            report.checked += 1
            try:
                self._read_entry(info.path, info.fingerprint)
            except Exception as exc:
                report.bad.append((info.fingerprint, str(exc)))
                if purge:
                    try:
                        os.remove(info.path)
                    except OSError:
                        pass
        return report

    def stats_snapshot(self) -> dict:
        """JSON-ready on-disk summary (entry count, bytes, cap, root)."""
        infos = list(self.entries())
        return {
            "root": self.root,
            "entries": len(infos),
            "total_bytes": sum(e.size for e in infos),
            "max_bytes": self.max_bytes,
        }
