"""Resume manifests: what an interrupted sweep left behind.

The content-addressed store already makes interrupted sweeps resumable
— every completed point was persisted before the interrupt, and the
next run serves them as hits.  The manifest adds the *accounting* a
human (or orchestrator) needs between those two runs: which sweep was
cut short, why, and how far it got, without deserializing a single
cache entry.

One JSON document per sweep name under ``<cache root>/manifests/``,
written atomically on SIGINT/SIGTERM drain and removed again by the
next run of the same sweep that completes.  Manifests are host-side
metadata in the same class as ``cache_stats`` — they never feed merged
``repro.metrics/v1`` exports.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .store import SweepCache

__all__ = [
    "MANIFEST_SCHEMA",
    "ResumeManifest",
    "manifest_path",
    "write_resume_manifest",
    "load_resume_manifest",
    "clear_resume_manifest",
    "list_resume_manifests",
    "verify_resume_manifests",
]

MANIFEST_SCHEMA = "repro.manifest/v1"

_MANIFEST_DIR = "manifests"


@dataclass(frozen=True)
class ResumeManifest:
    """A record of one interrupted sweep."""

    #: The sweep's :attr:`~repro.parallel.jobs.SweepSpec.name`.
    name: str
    base_seed: int
    #: Points in the spec.
    total: int
    #: Keys of the points completed (and persisted) before the drain.
    completed: Tuple[str, ...]
    #: What cut the run short (``SIGINT``/``SIGTERM``/``interrupt``).
    reason: str
    #: Worker count of the interrupted run.
    workers: int

    @property
    def remaining(self) -> int:
        """Points the resuming run still has to execute."""
        return self.total - len(self.completed)

    def as_dict(self) -> dict:
        """JSON-ready form."""
        return {
            "schema": MANIFEST_SCHEMA,
            "name": self.name,
            "base_seed": self.base_seed,
            "total": self.total,
            "completed": list(self.completed),
            "reason": self.reason,
            "workers": self.workers,
        }


def manifest_path(cache: "SweepCache", name: str) -> str:
    """Where ``name``'s manifest lives under ``cache``'s root."""
    return os.path.join(cache.root, _MANIFEST_DIR, f"{name}.json")


def write_resume_manifest(cache: "SweepCache", manifest: ResumeManifest) -> str:
    """Atomically publish ``manifest``; returns its path.

    Same mkstemp + :func:`os.replace` discipline as the store itself: a
    drain racing a reader can only ever leave a complete document.
    """
    path = manifest_path(cache, manifest.name)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=os.path.dirname(path), prefix=manifest.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            json.dump(manifest.as_dict(), fh, indent=2)
            fh.write("\n")
        os.replace(tmp, path)
    except OSError:
        try:
            os.remove(tmp)
        except OSError:
            pass
        raise
    return path


def load_resume_manifest(cache: "SweepCache", name: str) -> Optional[ResumeManifest]:
    """The manifest for ``name``, or ``None``.

    A malformed manifest (truncated write on a dying host, foreign
    schema) is treated like a missing one — the cache itself still
    resumes the sweep; only the accounting is lost.
    """
    try:
        with open(manifest_path(cache, name)) as fh:
            doc = json.load(fh)
    except (OSError, ValueError):
        return None
    if doc.get("schema") != MANIFEST_SCHEMA:
        return None
    try:
        return ResumeManifest(
            name=doc["name"],
            base_seed=int(doc["base_seed"]),
            total=int(doc["total"]),
            completed=tuple(str(k) for k in doc["completed"]),
            reason=str(doc["reason"]),
            workers=int(doc["workers"]),
        )
    except (KeyError, TypeError, ValueError):
        return None


def clear_resume_manifest(cache: "SweepCache", name: str) -> bool:
    """Remove ``name``'s manifest; True if one existed."""
    try:
        os.remove(manifest_path(cache, name))
    except OSError:
        return False
    return True


def verify_resume_manifests(
    cache: "SweepCache", purge: bool = False
) -> List[Tuple[str, str]]:
    """Integrity-scan the manifest directory; returns ``(name, reason)``.

    Resume is already corruption-proof — :func:`load_resume_manifest`
    demotes a truncated or foreign document to "no manifest" and the
    sweep runs fresh from the cache — but ``repro cache verify`` wants
    damage *reported* (and gated on in CI), not silently tolerated.
    ``purge=True`` deletes the unreadable files so the next scan is
    clean.
    """
    directory = os.path.join(cache.root, _MANIFEST_DIR)
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    bad: List[Tuple[str, str]] = []
    for filename in names:
        if not filename.endswith(".json"):
            continue
        name = filename[: -len(".json")]
        path = os.path.join(directory, filename)
        reason = ""
        try:
            with open(path) as fh:
                doc = json.load(fh)
        except OSError as exc:
            reason = f"unreadable manifest: {exc}"
        except ValueError:
            reason = "truncated or malformed JSON"
        else:
            if doc.get("schema") != MANIFEST_SCHEMA:
                reason = f"foreign schema {doc.get('schema')!r}"
            elif load_resume_manifest(cache, name) is None:
                reason = "missing or mistyped manifest fields"
        if not reason:
            continue
        bad.append((f"manifest:{name}", reason))
        if purge:
            try:
                os.remove(path)
            except OSError:
                pass
    return bad


def list_resume_manifests(cache: "SweepCache") -> List[ResumeManifest]:
    """Every readable manifest under ``cache``, sorted by sweep name."""
    directory = os.path.join(cache.root, _MANIFEST_DIR)
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return []
    manifests = []
    for filename in names:
        if not filename.endswith(".json"):
            continue
        manifest = load_resume_manifest(cache, filename[: -len(".json")])
        if manifest is not None:
            manifests.append(manifest)
    return manifests
