"""Bounded retry with exponential backoff.

Every degradation policy in the applications uses the same retry
contract: attempt an access, and on a :class:`~repro.errors.FaultError`
back off exponentially (base x multiplier^attempt, capped) up to a
bounded number of attempts, then give up with
:class:`~repro.errors.RetryExhaustedError`.  Centralizing the policy
keeps budgets comparable across KeyDB, Spark, and the LLM router, and
gives the tests one place to assert the backoff arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple, TypeVar

from ..errors import ConfigurationError, FaultError, RetryExhaustedError

__all__ = ["RetryPolicy", "retry_call"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry budget (times in simulated ns)."""

    max_attempts: int = 4
    base_backoff_ns: float = 200e3  # 200 us
    multiplier: float = 2.0
    max_backoff_ns: float = 50e6  # 50 ms cap

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigurationError("max_attempts must be >= 1")
        if self.base_backoff_ns < 0 or self.max_backoff_ns < 0:
            raise ConfigurationError("backoff times must be >= 0")
        if self.multiplier < 1.0:
            raise ConfigurationError("backoff multiplier must be >= 1")

    def backoff_ns(self, attempt: int) -> float:
        """Backoff after the ``attempt``-th failure (1-based), capped."""
        if attempt < 1:
            raise ConfigurationError("attempt is 1-based")
        return min(
            self.max_backoff_ns,
            self.base_backoff_ns * self.multiplier ** (attempt - 1),
        )

    def total_backoff_ns(self) -> float:
        """The full backoff budget: sum over every retry the policy allows."""
        return sum(self.backoff_ns(a) for a in range(1, self.max_attempts))


def retry_call(
    fn: Callable[[int], T],
    policy: RetryPolicy,
    on_backoff: Optional[Callable[[int, float], None]] = None,
) -> Tuple[T, int, float]:
    """Call ``fn(attempt)`` under the retry policy.

    Returns ``(result, attempts_used, total_backoff_ns)``.  Only
    :class:`FaultError` subclasses are retried — anything else is a
    programming error and propagates immediately.  After the last
    allowed attempt fails, raises :class:`RetryExhaustedError` carrying
    the attempt count and last error.

    ``on_backoff(attempt, backoff_ns)`` is invoked before each retry so
    callers can advance simulated time or bump counters.
    """
    total_backoff = 0.0
    last: Optional[FaultError] = None
    for attempt in range(1, policy.max_attempts + 1):
        try:
            return fn(attempt), attempt, total_backoff
        except FaultError as exc:
            last = exc
            if attempt == policy.max_attempts:
                break
            backoff = policy.backoff_ns(attempt)
            total_backoff += backoff
            if on_backoff is not None:
                on_backoff(attempt, backoff)
    raise RetryExhaustedError(policy.max_attempts, last)
