"""Fault injection and RAS (reliability/availability/serviceability).

The package models the CXL failure modes an ASIC-based expander fleet
must survive — link CRC retries and retraining (transient bandwidth and
latency derating), correctable-error storms (latency inflation),
uncorrectable poison on individual pages, and whole-device loss — and
the degradation policies the three paper applications use to ride them
out: retry with bounded exponential backoff, hot-page failover,
circuit-broken routing, and task re-execution.

Everything is deterministic: a :class:`FaultPlan` is a seedable,
pre-declared schedule, and the :class:`FaultInjector` derives all
randomness (e.g. which pages a poison event hits) from a named RNG
stream of the plan's seed, so the same seed always reproduces the same
event trace.
"""

from .breaker import BreakerState, CircuitBreaker
from .injector import FaultInjector
from .metrics import FaultRecoveryReport, RecoveryTracker
from .plan import FaultEvent, FaultKind, FaultPlan
from .retry import RetryPolicy, retry_call
from .runner import FAULT_APPS, FaultedRunSummary, fault_sweep_spec, run_faulted_app
from .scenarios import SCENARIOS, Scenario, build_scenario

__all__ = [
    "FAULT_APPS",
    "BreakerState",
    "CircuitBreaker",
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRecoveryReport",
    "FaultedRunSummary",
    "fault_sweep_spec",
    "RecoveryTracker",
    "run_faulted_app",
    "RetryPolicy",
    "SCENARIOS",
    "Scenario",
    "build_scenario",
    "retry_call",
]
