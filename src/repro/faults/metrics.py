"""Availability and recovery metrics for faulted runs.

A :class:`RecoveryTracker` partitions a run into *before / during /
after* phases around the fault window and accumulates, per phase, a
latency histogram plus windowed completion counts.  Its
:meth:`RecoveryTracker.report` distils the three numbers the RAS
evaluation cares about:

* **availability** — completed / offered operations over the whole run;
* **p99 during vs after** — the tail the fault inflicts and whether it
  subsides;
* **recovery time** — how long after the fault clears until windowed
  throughput is back within ``recovery_threshold`` of the pre-fault
  baseline (inf if it never recovers within the run).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.stats import LatencyHistogram

__all__ = ["FaultRecoveryReport", "RecoveryTracker"]


@dataclass
class FaultRecoveryReport:
    """The headline RAS numbers of one faulted run."""

    offered_ops: int
    completed_ops: int
    failed_ops: int
    availability: float
    p99_before_ns: float
    p99_during_ns: float
    p99_after_ns: float
    baseline_throughput_ops_per_s: float
    during_throughput_ops_per_s: float
    recovery_ns: float
    fault_start_ns: float
    fault_end_ns: float
    #: Overload accounting (populated when the run tracked deadlines).
    deadline_misses: int = 0
    good_ops: int = 0
    goodput_ops_per_s: float = 0.0
    #: completed/failed/deadline-missed counts per phase.
    phase_counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    #: True when the run propagated deadlines (enables goodput rows).
    deadline_tracking: bool = False

    @staticmethod
    def _us(value_ns: float) -> str:
        """Format a latency in microseconds; NaN renders as n/a."""
        if math.isnan(value_ns):
            return "n/a (no samples)"
        return f"{value_ns / 1e3:.1f} us"

    def rows(self) -> List[Tuple[str, str]]:
        """(quantity, value) pairs for ascii_table rendering."""
        recovery = (
            "never (within run)"
            if math.isinf(self.recovery_ns)
            else f"{self.recovery_ns / 1e6:.2f} ms"
        )
        rows = [
            ("offered ops", f"{self.offered_ops}"),
            ("completed ops", f"{self.completed_ops}"),
            ("failed/shed ops", f"{self.failed_ops}"),
            ("availability", f"{self.availability * 100:.3f}%"),
            ("p99 before fault", self._us(self.p99_before_ns)),
            ("p99 during fault", self._us(self.p99_during_ns)),
            ("p99 after fault", self._us(self.p99_after_ns)),
            (
                "throughput during/baseline",
                f"{self.during_throughput_ops_per_s:.0f} / "
                f"{self.baseline_throughput_ops_per_s:.0f} ops/s",
            ),
            ("recovery time", recovery),
        ]
        if self.deadline_tracking:
            rows.extend(
                [
                    ("in-deadline (good) ops", f"{self.good_ops}"),
                    ("deadline misses", f"{self.deadline_misses}"),
                    ("goodput", f"{self.goodput_ops_per_s:.0f} ops/s"),
                ]
            )
        return rows

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready snapshot (inf/NaN become None)."""

        def _num(value: float) -> Optional[float]:
            return None if math.isinf(value) or math.isnan(value) else value

        return {
            "offered_ops": self.offered_ops,
            "completed_ops": self.completed_ops,
            "failed_ops": self.failed_ops,
            "availability": self.availability,
            "p99_before_ns": _num(self.p99_before_ns),
            "p99_during_ns": _num(self.p99_during_ns),
            "p99_after_ns": _num(self.p99_after_ns),
            "baseline_throughput_ops_per_s": self.baseline_throughput_ops_per_s,
            "during_throughput_ops_per_s": self.during_throughput_ops_per_s,
            "recovery_ns": _num(self.recovery_ns),
            "fault_start_ns": self.fault_start_ns,
            "fault_end_ns": _num(self.fault_end_ns),
            "deadline_misses": self.deadline_misses,
            "good_ops": self.good_ops,
            "goodput_ops_per_s": self.goodput_ops_per_s,
            "phase_counts": self.phase_counts,
            "deadline_tracking": self.deadline_tracking,
        }


class RecoveryTracker:
    """Collects per-phase latencies and windowed throughput."""

    def __init__(
        self,
        fault_start_ns: float,
        fault_end_ns: float,
        window_ns: float,
        recovery_threshold: float = 0.9,
    ) -> None:
        if fault_end_ns < fault_start_ns:
            raise ConfigurationError("fault window end precedes start")
        if window_ns <= 0:
            raise ConfigurationError("window_ns must be positive")
        if not 0.0 < recovery_threshold <= 1.0:
            raise ConfigurationError("recovery_threshold must be in (0, 1]")
        self.fault_start_ns = fault_start_ns
        self.fault_end_ns = fault_end_ns
        self.window_ns = window_ns
        self.recovery_threshold = recovery_threshold
        self.offered = 0
        self.completed = 0
        self.failed = 0
        self._latency: Dict[str, LatencyHistogram] = {
            phase: LatencyHistogram(min_value=50.0)
            for phase in ("before", "during", "after")
        }
        #: completions per time window (window index -> ops).
        self._windows: Dict[int, int] = {}
        self._last_ns = 0.0
        #: per-phase completed/failed/deadline-missed breakdown.
        self.phase_counts: Dict[str, Dict[str, int]] = {
            phase: {"completed": 0, "failed": 0, "deadline_missed": 0}
            for phase in ("before", "during", "after")
        }
        self.deadline_misses = 0
        self.good = 0
        self._deadline_tracking = False

    def phase_of(self, now_ns: float) -> str:
        """Which phase of the run a completion at ``now_ns`` belongs to."""
        if now_ns < self.fault_start_ns:
            return "before"
        if now_ns < self.fault_end_ns:
            return "during"
        return "after"

    def record(
        self,
        now_ns: float,
        latency_ns: float,
        ok: bool = True,
        deadline_missed: Optional[bool] = None,
    ) -> None:
        """Account one operation finishing (or being shed) at ``now_ns``.

        ``deadline_missed`` is tri-state: ``None`` means the run does
        not propagate deadlines (legacy behaviour, no goodput rows in
        the report); ``True``/``False`` marks a completed operation as
        late/on-time and switches the report into goodput accounting.
        """
        self.offered += 1
        self._last_ns = max(self._last_ns, now_ns)
        phase = self.phase_of(now_ns)
        if deadline_missed is not None:
            self._deadline_tracking = True
        if ok:
            self.completed += 1
            self._latency[phase].record(max(latency_ns, 1.0))
            index = int(now_ns // self.window_ns)
            self._windows[index] = self._windows.get(index, 0) + 1
            self.phase_counts[phase]["completed"] += 1
            if deadline_missed:
                self.deadline_misses += 1
                self.phase_counts[phase]["deadline_missed"] += 1
            else:
                self.good += 1
        else:
            self.failed += 1
            self.phase_counts[phase]["failed"] += 1

    def latency(self, phase: str) -> LatencyHistogram:
        """The latency histogram of one phase (before/during/after)."""
        return self._latency[phase]

    def register_into(
        self,
        registry,
        prefix: str = "ras",
        labels: Optional[Dict[str, str]] = None,
    ) -> None:
        """Export availability, phase counts and phase latencies lazily.

        Emits ``<prefix>_offered/completed/failed_total`` counters, an
        ``<prefix>_availability`` gauge, per-phase outcome counters
        labelled ``phase=``/``outcome=``, and one flattened latency
        histogram per phase.
        """
        # Imported here: repro.obs.registry imports repro.sim.stats,
        # which this module also builds on; runtime import avoids a cycle.
        from ..obs.registry import Sample, histogram_samples

        base = dict(labels or {})

        def collect():
            yield Sample(f"{prefix}_offered_total", "counter", dict(base),
                         float(self.offered))
            yield Sample(f"{prefix}_completed_total", "counter", dict(base),
                         float(self.completed))
            yield Sample(f"{prefix}_failed_total", "counter", dict(base),
                         float(self.failed))
            availability = self.completed / self.offered if self.offered else 0.0
            yield Sample(f"{prefix}_availability", "gauge", dict(base),
                         availability)
            for phase, counts in sorted(self.phase_counts.items()):
                for outcome, count in sorted(counts.items()):
                    yield Sample(
                        f"{prefix}_phase_ops_total", "counter",
                        {**base, "phase": phase, "outcome": outcome},
                        float(count),
                    )
            for phase, hist in sorted(self._latency.items()):
                yield from histogram_samples(
                    f"{prefix}_latency_ns", {**base, "phase": phase}, hist
                )

        registry.register_collector(collect)

    # -- derived metrics ---------------------------------------------------

    def _window_throughput(self, index: int) -> float:
        return self._windows.get(index, 0) / (self.window_ns / 1e9)

    def _baseline_throughput(self) -> float:
        """Mean windowed throughput over windows fully before the fault."""
        last_full = int(self.fault_start_ns // self.window_ns)
        values = [self._window_throughput(i) for i in range(last_full)]
        values = [v for v in values if v > 0]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def _during_throughput(self) -> float:
        if not math.isfinite(self.fault_end_ns):
            lo, hi = self.fault_start_ns, self._last_ns
        else:
            lo, hi = self.fault_start_ns, self.fault_end_ns
        if hi <= lo:
            return 0.0
        ops = sum(
            count
            for index, count in self._windows.items()
            if lo <= index * self.window_ns < hi
        )
        return ops / ((hi - lo) / 1e9)

    def recovery_ns(self) -> float:
        """Time from fault end until throughput re-reaches the baseline.

        Measured at window granularity: the first window starting at or
        after the fault end whose throughput is at least
        ``recovery_threshold`` x the pre-fault baseline.  ``0`` when the
        very first post-fault window already qualifies; ``inf`` when no
        window within the run does (or the fault never ends).
        """
        baseline = self._baseline_throughput()
        if baseline <= 0:
            return math.inf
        if not math.isfinite(self.fault_end_ns):
            return math.inf
        first = int(math.ceil(self.fault_end_ns / self.window_ns))
        last = int(self._last_ns // self.window_ns)
        target = self.recovery_threshold * baseline
        for index in range(first, last + 1):
            if self._window_throughput(index) >= target:
                return max(0.0, (index + 1) * self.window_ns - self.fault_end_ns)
        return math.inf

    def goodput_ops_per_s(self) -> float:
        """In-deadline completions per second over the run so far."""
        if self._last_ns <= 0:
            return 0.0
        return self.good / (self._last_ns / 1e9)

    def report(self) -> FaultRecoveryReport:
        """Summarize the run into a :class:`FaultRecoveryReport`."""
        availability = self.completed / self.offered if self.offered else 0.0
        return FaultRecoveryReport(
            offered_ops=self.offered,
            completed_ops=self.completed,
            failed_ops=self.failed,
            availability=availability,
            p99_before_ns=self._latency["before"].percentile(99),
            p99_during_ns=self._latency["during"].percentile(99),
            p99_after_ns=self._latency["after"].percentile(99),
            baseline_throughput_ops_per_s=self._baseline_throughput(),
            during_throughput_ops_per_s=self._during_throughput(),
            recovery_ns=self.recovery_ns(),
            fault_start_ns=self.fault_start_ns,
            fault_end_ns=self.fault_end_ns,
            deadline_misses=self.deadline_misses,
            good_ops=self.good,
            goodput_ops_per_s=self.goodput_ops_per_s(),
            phase_counts={p: dict(c) for p, c in self.phase_counts.items()},
            deadline_tracking=self._deadline_tracking,
        )
