"""The named fault-scenario catalog.

Each scenario is a *shape* — which RAS failure mode, how severe — that
:meth:`Scenario.build` instantiates against a concrete platform and
time window.  The window is supplied by the caller (the per-app fault
runners) because the three applications live on wildly different
clocks: a scaled KeyDB run finishes in ~100 ms of simulated time, an
LLM serving run in minutes, a Spark TPC-H query in tens of minutes.

Scenarios always target the platform's first CXL expander — that is the
device the paper's TCO argument puts on the critical path, and the one
whose RAS behaviour decides fleet viability.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from ..errors import ConfigurationError
from ..hw.device import MemoryNode
from ..hw.topology import Platform
from .plan import FaultPlan

__all__ = ["Scenario", "SCENARIOS", "build_scenario"]

PlanBuilder = Callable[[Platform, int, float, float], FaultPlan]


@dataclass(frozen=True)
class Scenario:
    """One named fault shape from the catalog."""

    name: str
    description: str
    builder: PlanBuilder
    #: Whether the injected fault ever clears on its own (drives whether
    #: a recovery time is meaningful).
    transient: bool

    def build(
        self,
        platform: Platform,
        seed: int,
        start_ns: float,
        duration_ns: float,
    ) -> FaultPlan:
        """Instantiate the scenario against a platform and window."""
        if start_ns < 0 or duration_ns <= 0:
            raise ConfigurationError("scenario window must be positive")
        return self.builder(platform, seed, start_ns, duration_ns)


def _target_cxl(platform: Platform) -> MemoryNode:
    nodes = platform.cxl_nodes()
    if not nodes:
        raise ConfigurationError("fault scenarios need a CXL-equipped platform")
    return nodes[0]


def _link_degrade(platform: Platform, seed: int, start: float, dur: float) -> FaultPlan:
    node = _target_cxl(platform)
    return FaultPlan(seed).degrade_link(
        start, dur, node_id=node.node_id,
        bandwidth_multiplier=0.25, latency_multiplier=3.0,
    )


def _error_storm(platform: Platform, seed: int, start: float, dur: float) -> FaultPlan:
    node = _target_cxl(platform)
    return FaultPlan(seed).error_storm(start, dur, node.node_id, latency_multiplier=8.0)


def _poison(platform: Platform, seed: int, start: float, dur: float) -> FaultPlan:
    del dur  # poison is sticky; the injection is instantaneous
    node = _target_cxl(platform)
    return FaultPlan(seed).poison(start, node.node_id, fraction=0.02)


def _device_loss(platform: Platform, seed: int, start: float, dur: float) -> FaultPlan:
    del dur  # permanent: the expander never comes back
    node = _target_cxl(platform)
    return FaultPlan(seed).fail_device(start, node.node_id, duration_ns=math.inf)


def _device_flap(platform: Platform, seed: int, start: float, dur: float) -> FaultPlan:
    node = _target_cxl(platform)
    return FaultPlan(seed).fail_device(start, node.node_id, duration_ns=dur)


def _meltdown(platform: Platform, seed: int, start: float, dur: float) -> FaultPlan:
    """The compound worst case: degradation, then poison, then loss."""
    node = _target_cxl(platform)
    plan = FaultPlan(seed)
    plan.degrade_link(
        start, dur / 2, node_id=node.node_id,
        bandwidth_multiplier=0.5, latency_multiplier=2.0,
    )
    plan.poison(start + dur / 4, node.node_id, fraction=0.01)
    plan.fail_device(start + dur / 2, node.node_id, duration_ns=dur / 2)
    return plan


SCENARIOS: Dict[str, Scenario] = {
    s.name: s
    for s in (
        Scenario(
            "link-degrade",
            "CXL link CRC retries/retraining: bandwidth x0.25, latency x3 for a window",
            _link_degrade,
            transient=True,
        ),
        Scenario(
            "error-storm",
            "correctable-error storm on the expander: latency x8 for a window",
            _error_storm,
            transient=True,
        ),
        Scenario(
            "poison",
            "uncorrectable errors: 2% of the expander's pages poisoned (sticky until scrubbed)",
            _poison,
            transient=False,
        ),
        Scenario(
            "device-loss",
            "the CXL expander drops off the bus permanently mid-run",
            _device_loss,
            transient=False,
        ),
        Scenario(
            "device-flap",
            "the CXL expander goes offline for a window, then returns",
            _device_flap,
            transient=True,
        ),
        Scenario(
            "meltdown",
            "compound failure: link degrade, then poison, then permanent loss",
            _meltdown,
            transient=False,
        ),
    )
}


def build_scenario(
    name: str,
    platform: Platform,
    seed: int,
    window: Tuple[float, float],
) -> FaultPlan:
    """Instantiate catalog scenario ``name`` over ``(start, duration)``."""
    try:
        scenario = SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown fault scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        ) from None
    return scenario.build(platform, seed, window[0], window[1])
