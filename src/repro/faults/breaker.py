"""A circuit breaker over simulated time.

The LLM router uses one breaker per backend: consecutive failures
(step timeouts, device faults) trip the breaker OPEN, which removes the
backend from routing; after ``reset_timeout_ns`` of simulated time the
breaker goes HALF_OPEN and admits a bounded number of probe requests —
a success closes it, a failure re-opens it.  The states and transitions
are the classic Nygard pattern; time comes from the caller (the DES
clock), never the wall clock, so runs stay deterministic.
"""

from __future__ import annotations

import enum

from ..errors import ConfigurationError

__all__ = ["BreakerState", "CircuitBreaker"]


class BreakerState(enum.Enum):
    """Breaker states (Nygard's circuit-breaker pattern)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


class CircuitBreaker:
    """Failure-counting breaker driven by simulated time."""

    def __init__(
        self,
        failure_threshold: int = 3,
        reset_timeout_ns: float = 100e6,
        half_open_probes: int = 1,
    ) -> None:
        if failure_threshold < 1:
            raise ConfigurationError("failure_threshold must be >= 1")
        if reset_timeout_ns <= 0:
            raise ConfigurationError("reset_timeout_ns must be positive")
        if half_open_probes < 1:
            raise ConfigurationError("half_open_probes must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout_ns = reset_timeout_ns
        self.half_open_probes = half_open_probes
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.opened_at_ns = -float("inf")
        self.times_opened = 0
        self._probes_in_flight = 0

    def allow(self, now_ns: float) -> bool:
        """May a request be routed through right now?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now_ns - self.opened_at_ns >= self.reset_timeout_ns:
                self.state = BreakerState.HALF_OPEN
                self._probes_in_flight = 0
            else:
                return False
        # HALF_OPEN: admit a bounded number of probes.
        if self._probes_in_flight < self.half_open_probes:
            self._probes_in_flight += 1
            return True
        return False

    def record_success(self, now_ns: float) -> None:
        """A routed request completed normally."""
        self.consecutive_failures = 0
        if self.state is BreakerState.HALF_OPEN:
            self.state = BreakerState.CLOSED
            self._probes_in_flight = 0
        del now_ns  # uniform signature with record_failure

    def record_failure(self, now_ns: float) -> None:
        """A routed request failed (timeout, fault)."""
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at_ns = now_ns
            self.times_opened += 1
            self._probes_in_flight = 0

    @property
    def is_open(self) -> bool:
        """True while the breaker rejects (non-probe) traffic."""
        return self.state is BreakerState.OPEN

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CircuitBreaker(state={self.state.value}, "
            f"failures={self.consecutive_failures}, opened={self.times_opened})"
        )
