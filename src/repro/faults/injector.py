"""The fault injector: binds a :class:`FaultPlan` to a live platform.

The injector is the single authority on RAS state during a run:

* :meth:`advance` brings the platform's mutable state (resource
  deratings, node online flags) in line with the plan at a given
  simulated time and appends any state *transitions* to a deterministic
  event trace — the same seed and plan always produce the identical
  trace, which the tests assert;
* pure time-based queries (:meth:`latency_multiplier`,
  :meth:`bandwidth_multiplier`, :meth:`node_online`,
  :meth:`poison_fraction_in`) never mutate anything, so analytic models
  (the Spark runner) can integrate fault windows without replaying them;
* page-level poison: when a POISON event's start time passes,
  :meth:`advance` samples the configured fraction of the target node's
  pages from the injector's own seeded RNG stream and marks them;
  :meth:`check_read` then raises :class:`PoisonedReadError` (or
  :class:`DeviceFaultError` for an offline node) until the application
  scrubs the page via :meth:`scrub`.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set

import numpy as np

from ..errors import ConfigurationError, DeviceFaultError, PoisonedReadError
from ..hw.topology import Platform
from ..mem.page import Page
from ..sim.rng import RngFactory
from .plan import FaultEvent, FaultKind, FaultPlan

__all__ = ["FaultInjector"]

PageProvider = Callable[[], Sequence[Page]]


class FaultInjector:
    """Applies a fault plan to a platform as simulated time advances."""

    def __init__(
        self,
        platform: Platform,
        plan: FaultPlan,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.platform = platform
        self.plan = plan
        self.rng = rng if rng is not None else RngFactory(plan.seed).stream("faults")
        self.trace: List[str] = []
        self._page_provider: Optional[PageProvider] = None
        self._poisoned: Set[int] = set()
        self._activated_poison: Set[int] = set()  # indices into plan.events
        self._current_derating: Dict[str, float] = {}
        self._current_offline: Set[int] = set()
        self._current_storms: Set[int] = set()  # indices into plan.events
        self._validate()

    def _validate(self) -> None:
        for event in self.plan.events:
            if event.node_id is not None and event.node_id not in self.platform.nodes:
                raise ConfigurationError(
                    f"fault targets unknown node {event.node_id}"
                )
            if event.resource is not None and event.resource not in self.platform.resources:
                raise ConfigurationError(
                    f"fault targets unknown resource {event.resource!r}"
                )

    # -- wiring ------------------------------------------------------------

    def bind_pages(self, provider: PageProvider) -> None:
        """Register the page population poison events sample from.

        ``provider`` is called lazily at activation time so pages
        allocated after injector construction are still candidates.
        """
        self._page_provider = provider

    # -- resolution helpers ------------------------------------------------

    def _resources_of(self, event: FaultEvent) -> List[str]:
        if event.resource is not None:
            return [event.resource]
        node = self.platform.node(event.node_id)
        return list(node.local_extra_resources) + [node.resource.name]

    def _log(self, now_ns: float, message: str) -> None:
        self.trace.append(f"t={now_ns / 1e6:.3f}ms {message}")

    # -- state synchronisation ---------------------------------------------

    def advance(self, now_ns: float) -> None:
        """Sync platform RAS state with the plan at ``now_ns``.

        Idempotent: only *transitions* (degrade/restore, offline/online,
        poison injection) mutate state and emit trace lines.
        """
        # Desired deratings from active LINK_DEGRADE windows.
        desired: Dict[str, float] = {}
        for event in self.plan.events_of(FaultKind.LINK_DEGRADE):
            if event.active_at(now_ns):
                for name in self._resources_of(event):
                    desired[name] = desired.get(name, 1.0) * event.bandwidth_multiplier
        for name in sorted(set(self._current_derating) | set(desired)):
            want = desired.get(name, 1.0)
            have = self._current_derating.get(name, 1.0)
            if want != have:
                self.platform.set_derating(name, want)
                if want < 1.0:
                    self._log(now_ns, f"link {name} degraded to x{want:g} capacity")
                else:
                    self._log(now_ns, f"link {name} restored")
        self._current_derating = {n: m for n, m in desired.items() if m < 1.0}

        # Desired offline set from active DEVICE_FAIL windows.
        offline = {
            e.node_id
            for e in self.plan.events_of(FaultKind.DEVICE_FAIL)
            if e.active_at(now_ns)
        }
        for node_id in sorted(offline - self._current_offline):
            self.platform.mark_offline(node_id)
            self._log(now_ns, f"node{node_id} OFFLINE (device failure)")
        for node_id in sorted(self._current_offline - offline):
            self.platform.mark_online(node_id)
            self._log(now_ns, f"node{node_id} online (device restored)")
        self._current_offline = offline

        # Error storms are latency-only (no platform state to mutate)
        # but their transitions still belong in the trace.
        storms = {
            i
            for i, e in enumerate(self.plan.events)
            if e.kind is FaultKind.ERROR_STORM and e.active_at(now_ns)
        }
        for index in sorted(storms - self._current_storms):
            event = self.plan.events[index]
            self._log(
                now_ns,
                f"error storm on node{event.node_id} "
                f"(latency x{event.latency_multiplier:g})",
            )
        for index in sorted(self._current_storms - storms):
            event = self.plan.events[index]
            self._log(now_ns, f"error storm on node{event.node_id} subsided")
        self._current_storms = storms

        # One-shot poison injections whose start time has passed.
        for index, event in enumerate(self.plan.events):
            if event.kind is not FaultKind.POISON:
                continue
            if index in self._activated_poison or now_ns < event.start_ns:
                continue
            self._activated_poison.add(index)
            self._inject_poison(now_ns, event)

    def _inject_poison(self, now_ns: float, event: FaultEvent) -> None:
        pages: Sequence[Page] = ()
        if self._page_provider is not None:
            pages = [
                p for p in self._page_provider() if p.node_id == event.node_id
            ]
        if not pages:
            # Page-less consumers (the analytic Spark model) account for
            # poison via poison_fraction_in(); still record the injection.
            self._log(
                now_ns,
                f"poison injected on node{event.node_id} "
                f"({event.poison_fraction * 100:g}% of pages)",
            )
            return
        count = max(1, int(len(pages) * event.poison_fraction))
        chosen = self.rng.choice(len(pages), size=min(count, len(pages)), replace=False)
        for idx in sorted(int(i) for i in chosen):
            self._poisoned.add(pages[idx].page_id)
        self._log(
            now_ns,
            f"poison injected on node{event.node_id}: "
            f"{min(count, len(pages))} pages",
        )

    # -- pure queries ------------------------------------------------------

    def latency_multiplier(self, node_id: int, now_ns: float) -> float:
        """Combined latency inflation on a node's accesses at ``now_ns``."""
        mult = 1.0
        for event in self.plan.events:
            if event.kind not in (FaultKind.LINK_DEGRADE, FaultKind.ERROR_STORM):
                continue
            if event.node_id == node_id and event.active_at(now_ns):
                mult *= event.latency_multiplier
        return mult

    def bandwidth_multiplier(self, node_id: int, now_ns: float) -> float:
        """Combined capacity multiplier on a node's resource chain."""
        mult = 1.0
        for event in self.plan.events_of(FaultKind.LINK_DEGRADE):
            if event.node_id == node_id and event.active_at(now_ns):
                mult *= event.bandwidth_multiplier
        return mult

    def node_online(self, node_id: int, now_ns: float) -> bool:
        """Plan-level reachability of a node at ``now_ns``."""
        return not any(
            e.node_id == node_id and e.active_at(now_ns)
            for e in self.plan.events_of(FaultKind.DEVICE_FAIL)
        )

    def poison_fraction_in(self, node_id: int, t0: float, t1: float) -> float:
        """Total poison fraction injected on a node during ``[t0, t1)``."""
        return sum(
            e.poison_fraction
            for e in self.plan.events_of(FaultKind.POISON)
            if e.node_id == node_id and t0 <= e.start_ns < t1
        )

    def offline_overlap(self, node_id: int, t0: float, t1: float) -> float:
        """Nanoseconds of ``[t0, t1)`` during which the node is offline."""
        return sum(
            e.overlap_ns(t0, t1)
            for e in self.plan.events_of(FaultKind.DEVICE_FAIL)
            if e.node_id == node_id
        )

    # -- poison bookkeeping ------------------------------------------------

    @property
    def poisoned_pages(self) -> int:
        """Number of pages currently carrying poison."""
        return len(self._poisoned)

    def is_poisoned(self, page: Page) -> bool:
        """True while the page carries unscrubbed poison."""
        return page.page_id in self._poisoned

    def check_read(self, page: Page) -> None:
        """Gate one read: offline node or poisoned page raises.

        Raises :class:`DeviceFaultError` for a page on an offline node
        (checked first — a dead device cannot even return poison) and
        :class:`PoisonedReadError` for a poisoned page.
        """
        if not self.platform.is_online(page.node_id):
            raise DeviceFaultError(page.node_id)
        if page.page_id in self._poisoned:
            raise PoisonedReadError(page.page_id, page.node_id)

    def scrub(self, page: Page) -> None:
        """Clear a page's poison (rewritten or remapped by the app)."""
        self._poisoned.discard(page.page_id)

    def scrub_all(self, pages: Iterable[Page]) -> int:
        """Scrub several pages; returns how many actually carried poison."""
        cleared = 0
        for page in pages:
            if page.page_id in self._poisoned:
                self._poisoned.discard(page.page_id)
                cleared += 1
        return cleared
