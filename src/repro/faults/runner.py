"""Faulted-run orchestration for the three paper applications.

Each ``run_faulted_*`` function follows the same protocol:

1. run the application *healthy* to calibrate its clock (the three
   apps' simulated runs differ by orders of magnitude in length);
2. place the scenario's fault window at fixed fractions of the healthy
   elapsed time (start at 35 %, span 30 %), so every scenario bites
   mid-run regardless of the app;
3. rebuild the application from the same seed, attach a
   :class:`FaultInjector` (and, where the app streams operations, a
   :class:`RecoveryTracker`), and run it again under the fault;
4. distil both runs into a :class:`FaultedRunSummary`.

The same seed therefore always produces the identical fault trace and
summary — the property the acceptance tests pin down.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.rng import DEFAULT_SEED, RngFactory
from .injector import FaultInjector
from .metrics import FaultRecoveryReport, RecoveryTracker
from .plan import FaultPlan
from .scenarios import SCENARIOS, build_scenario

__all__ = [
    "FAULT_APPS",
    "FaultedRunSummary",
    "fault_sweep_spec",
    "run_faulted_app",
    "run_faulted_keydb",
    "run_faulted_llm",
    "run_faulted_spark",
]

#: Where in the healthy run the fault window lands (fractions of the
#: healthy elapsed time).
FAULT_AT_FRACTION = 0.35
FAULT_SPAN_FRACTION = 0.30


@dataclass
class FaultedRunSummary:
    """Healthy-vs-faulted comparison for one app under one scenario."""

    app: str
    scenario: str
    seed: int
    #: App-native throughput (ops/s, tokens/s, queries/hour).
    healthy_throughput: float
    faulted_throughput: float
    #: Completed / offered work units over the faulted run.
    availability: float
    trace: List[str] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    #: Phased latency/recovery report (None for the analytic Spark model).
    report: Optional[FaultRecoveryReport] = None

    @property
    def throughput_ratio(self) -> float:
        """Faulted / healthy throughput (1.0 = unaffected)."""
        if self.healthy_throughput <= 0:
            return 0.0
        return self.faulted_throughput / self.healthy_throughput

    def rows(self) -> List[Tuple[str, str]]:
        """(quantity, value) pairs for ascii_table rendering."""
        rows = [
            ("app", self.app),
            ("scenario", self.scenario),
            ("healthy throughput", f"{self.healthy_throughput:,.0f}"),
            ("faulted throughput", f"{self.faulted_throughput:,.0f}"),
            ("throughput ratio", f"{self.throughput_ratio:.3f}"),
            ("availability", f"{self.availability * 100:.3f}%"),
        ]
        if self.report is not None:
            rows.extend(self.report.rows()[4:])
        return rows

    def as_dict(self) -> Dict[str, object]:
        """A JSON-ready snapshot (for ``repro faults run --json``)."""
        return {
            "app": self.app,
            "scenario": self.scenario,
            "seed": self.seed,
            "healthy_throughput": self.healthy_throughput,
            "faulted_throughput": self.faulted_throughput,
            "throughput_ratio": self.throughput_ratio,
            "availability": self.availability,
            "trace": list(self.trace),
            "counters": dict(self.counters),
            "report": self.report.as_dict() if self.report is not None else None,
        }


def _fault_window(healthy_elapsed_ns: float) -> Tuple[float, float]:
    if healthy_elapsed_ns <= 0:
        raise ConfigurationError("healthy calibration run produced no elapsed time")
    return (
        healthy_elapsed_ns * FAULT_AT_FRACTION,
        healthy_elapsed_ns * FAULT_SPAN_FRACTION,
    )


def _tracker_for(plan: FaultPlan, healthy_elapsed_ns: float) -> RecoveryTracker:
    start, end = plan.window()
    return RecoveryTracker(start, end, window_ns=healthy_elapsed_ns / 25.0)


def _register_summary(registry, summary: "FaultedRunSummary") -> None:
    """Export one faulted-run summary through a metrics registry."""
    from ..obs.registry import Sample

    labels = {"app": summary.app, "scenario": summary.scenario}

    def collect():
        yield Sample("faulted_healthy_throughput", "gauge", dict(labels),
                     summary.healthy_throughput)
        yield Sample("faulted_throughput", "gauge", dict(labels),
                     summary.faulted_throughput)
        yield Sample("faulted_availability", "gauge", dict(labels),
                     summary.availability)
        for name, value in sorted(summary.counters.items()):
            yield Sample("faulted_counter_total", "counter",
                         {**labels, "counter": name}, float(value))

    registry.register_collector(collect)


def run_faulted_keydb(
    scenario: str,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    registry=None,
) -> FaultedRunSummary:
    """KeyDB (1:1 interleave) through one fault scenario."""
    from ..apps.kvstore.experiment import build_keydb_experiment

    record_count = 8_192 if quick else 32_768
    total_ops = 30_000 if quick else 100_000

    healthy = build_keydb_experiment("1:1", record_count=record_count, seed=seed)
    base = healthy.server.run(healthy.generator, total_ops=total_ops)

    faulted = build_keydb_experiment("1:1", record_count=record_count, seed=seed)
    plan = build_scenario(
        scenario, faulted.platform, seed, _fault_window(base.elapsed_ns)
    )
    injector = FaultInjector(faulted.platform, plan)
    tracker = _tracker_for(plan, base.elapsed_ns)
    faulted.server.attach_faults(injector, tracker=tracker)
    run = faulted.server.run(faulted.generator, total_ops=total_ops)

    report = tracker.report()
    summary = FaultedRunSummary(
        app="keydb",
        scenario=scenario,
        seed=seed,
        healthy_throughput=base.throughput_ops_per_s,
        faulted_throughput=run.throughput_ops_per_s,
        availability=report.availability if report.offered_ops else 1.0,
        trace=list(injector.trace),
        counters=run.counters.as_dict(),
        report=report,
    )
    if registry is not None:
        tracker.register_into(
            registry, labels={"app": "keydb", "scenario": scenario}
        )
        _register_summary(registry, summary)
    return summary


def run_faulted_llm(
    scenario: str,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    registry=None,
) -> FaultedRunSummary:
    """The LLM serving stack (3:1 placement) through one scenario."""
    from ..apps.llm.router import LlmRouter
    from ..apps.llm.serving import LlmServingExperiment
    from ..workloads.llm_trace import chat_trace

    n_requests = 16 if quick else 48
    backends = 4
    rng = RngFactory(seed).stream("llm-fault-trace")
    requests = list(chat_trace(rng, n_requests, mean_new_tokens=24))

    base = LlmRouter(LlmServingExperiment("3:1"), backends=backends).serve(
        list(requests)
    )

    experiment = LlmServingExperiment("3:1")
    router = LlmRouter(experiment, backends=backends)
    plan = build_scenario(
        scenario, experiment.platform, seed, _fault_window(base.elapsed_ns)
    )
    injector = FaultInjector(experiment.platform, plan)
    tracker = _tracker_for(plan, base.elapsed_ns)
    router.attach_faults(injector, tracker=tracker)
    run = router.serve(list(requests))

    offered = run.requests_completed + run.requests_failed
    report = tracker.report()
    summary = FaultedRunSummary(
        app="llm",
        scenario=scenario,
        seed=seed,
        healthy_throughput=base.tokens_per_second,
        faulted_throughput=run.tokens_per_second,
        availability=run.requests_completed / offered if offered else 1.0,
        trace=list(injector.trace),
        counters={
            "requests_completed": float(run.requests_completed),
            "requests_failed": float(run.requests_failed),
            "reroutes": float(run.reroutes),
            "breaker_trips": float(sum(b.times_opened for b in router.breakers)),
        },
        report=report,
    )
    if registry is not None:
        tracker.register_into(
            registry, labels={"app": "llm", "scenario": scenario}
        )
        _register_summary(registry, summary)
    return summary


def run_faulted_spark(
    scenario: str,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    registry=None,
) -> FaultedRunSummary:
    """The Spark cluster (1:1 interleave) through one scenario.

    Spark's model is analytic, so there is no op-level recovery report;
    faults surface as wall-clock inflation and re-execution time.
    """
    from ..apps.spark.cluster import build_cluster_config
    from ..apps.spark.job import SparkQueryRunner
    from ..workloads.tpch import paper_queries

    queries = paper_queries()
    if quick:
        first = next(iter(queries))
        queries = {first: queries[first]}

    base_total = sum(
        r.total_ns
        for r in SparkQueryRunner(build_cluster_config("1:1"))
        .run_queries(queries)
        .values()
    )

    config = build_cluster_config("1:1")
    runner = SparkQueryRunner(config)
    plan = build_scenario(scenario, config.platform, seed, _fault_window(base_total))
    injector = FaultInjector(config.platform, plan)
    runner.attach_faults(injector)
    results = runner.run_queries(queries)

    total = sum(r.total_ns for r in results.values())
    reexec = sum(s.reexec_ns for r in results.values() for s in r.stages)
    poisoned = sum(s.poisoned_bytes for r in results.values() for s in r.stages)
    per_hour = 3600e9 * len(queries)
    summary = FaultedRunSummary(
        app="spark",
        scenario=scenario,
        seed=seed,
        healthy_throughput=per_hour / base_total,
        faulted_throughput=per_hour / total if total > 0 else 0.0,
        availability=1.0,  # lost work is re-executed, never dropped
        trace=list(injector.trace),
        counters={
            "reexec_ns": reexec,
            "poisoned_bytes": float(poisoned),
            "slowdown": total / base_total if base_total > 0 else math.inf,
        },
    )
    if registry is not None:
        _register_summary(registry, summary)
    return summary


FAULT_APPS = {
    "keydb": run_faulted_keydb,
    "llm": run_faulted_llm,
    "spark": run_faulted_spark,
}


def run_faulted_app(
    app: str,
    scenario: str,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    registry=None,
) -> FaultedRunSummary:
    """Dispatch one (app, scenario) faulted run.

    ``registry`` (a :class:`~repro.obs.registry.MetricsRegistry`) gets
    the run's RAS tracker and summary bound into it for export.
    """
    if app not in FAULT_APPS:
        raise ConfigurationError(
            f"unknown app {app!r}; expected one of {sorted(FAULT_APPS)}"
        )
    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown fault scenario {scenario!r}; expected one of {sorted(SCENARIOS)}"
        )
    return FAULT_APPS[app](scenario, seed=seed, quick=quick, registry=registry)


def fault_sweep_spec(
    scenario: str,
    apps: Optional[List[str]] = None,
    seed: int = DEFAULT_SEED,
    quick: bool = False,
    observed: bool = False,
):
    """The (app, scenario) fault cases as a sweep spec.

    One point per app, all pinned to the shared seed (the fault trace
    is a function of the seed).  ``observed=True`` selects the task
    variant that also snapshots per-case metrics.  The spec feeds
    :func:`repro.parallel.run_sweep` — including its result cache, so
    repeated ``repro faults run`` invocations of an unchanged scenario
    are lookups, not re-simulations.
    """
    from ..parallel import SweepPoint, SweepSpec, tasks

    if scenario not in SCENARIOS:
        raise ConfigurationError(
            f"unknown fault scenario {scenario!r}; expected one of {sorted(SCENARIOS)}"
        )
    if apps is None:
        apps = sorted(FAULT_APPS)
    for app in apps:
        if app not in FAULT_APPS:
            raise ConfigurationError(
                f"unknown app {app!r}; expected one of {sorted(FAULT_APPS)}"
            )
    return SweepSpec(
        name="faults",
        task=tasks.fault_case_observed if observed else tasks.fault_case,
        points=tuple(
            SweepPoint(
                key=app,
                params={"app": app, "scenario": scenario, "quick": quick},
                seed=seed,
            )
            for app in apps
        ),
        base_seed=seed,
    )
