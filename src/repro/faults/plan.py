"""Declarative fault schedules: what goes wrong, where, and when.

A :class:`FaultPlan` is an ordered, validated list of
:class:`FaultEvent` windows against a platform's nodes and shared
resources.  Plans are *pure data* — deterministic, seedable, and
serializable to a human-readable trace — so the same plan drives the
epoch-model applications (which sample it at epoch boundaries), the
discrete-event applications (which sample it per token/op), and the
analytic Spark runner (which integrates it over stage windows).

The four fault kinds mirror what CXL RAS characterizations report for
real expanders ("Demystifying CXL Memory...", "Dissecting CXL Memory
Performance at Scale"):

* **LINK_DEGRADE** — CRC retries / link retraining: bandwidth drops by a
  multiplier and access latency inflates for a window;
* **ERROR_STORM** — correctable-error storms: latency inflation only
  (ECC corrections serialize the pipeline but bandwidth survives);
* **POISON** — uncorrectable errors: a fraction of the target node's
  pages return poison until scrubbed/rewritten;
* **DEVICE_FAIL** — the whole device drops off the bus for a window
  (``math.inf`` duration = permanent loss).
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..sim.rng import DEFAULT_SEED

__all__ = ["FaultKind", "FaultEvent", "FaultPlan"]


class FaultKind(enum.Enum):
    """The modeled CXL RAS failure modes."""

    LINK_DEGRADE = "link-degrade"
    ERROR_STORM = "error-storm"
    POISON = "poison"
    DEVICE_FAIL = "device-fail"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault window against a node or resource."""

    kind: FaultKind
    start_ns: float
    duration_ns: float
    #: Target NUMA node (required for every kind except a pure
    #: resource-level LINK_DEGRADE).
    node_id: Optional[int] = None
    #: Explicit shared-resource target for LINK_DEGRADE; when None the
    #: degradation applies to the node's own resource chain.
    resource: Optional[str] = None
    #: Capacity multiplier while a LINK_DEGRADE window is active.
    bandwidth_multiplier: float = 1.0
    #: Access-latency multiplier while the window is active
    #: (LINK_DEGRADE and ERROR_STORM).
    latency_multiplier: float = 1.0
    #: Fraction of the target node's pages poisoned at ``start_ns``.
    poison_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.start_ns < 0:
            raise ConfigurationError("fault start must be >= 0")
        if self.duration_ns <= 0:
            raise ConfigurationError("fault duration must be positive")
        if self.kind is FaultKind.LINK_DEGRADE:
            if self.node_id is None and self.resource is None:
                raise ConfigurationError("link degrade needs a node or resource target")
            if not 0.0 < self.bandwidth_multiplier <= 1.0:
                raise ConfigurationError("bandwidth multiplier must be in (0, 1]")
            if self.latency_multiplier < 1.0:
                raise ConfigurationError("latency multiplier must be >= 1")
        elif self.kind is FaultKind.ERROR_STORM:
            if self.node_id is None:
                raise ConfigurationError("error storm needs a node target")
            if self.latency_multiplier <= 1.0:
                raise ConfigurationError("error storm needs latency multiplier > 1")
        elif self.kind is FaultKind.POISON:
            if self.node_id is None:
                raise ConfigurationError("poison needs a node target")
            if not 0.0 < self.poison_fraction <= 1.0:
                raise ConfigurationError("poison fraction must be in (0, 1]")
        elif self.kind is FaultKind.DEVICE_FAIL:
            if self.node_id is None:
                raise ConfigurationError("device failure needs a node target")

    @property
    def end_ns(self) -> float:
        """End of the fault window (inf = permanent)."""
        return self.start_ns + self.duration_ns

    def active_at(self, now_ns: float) -> bool:
        """True while the window covers ``now_ns``."""
        return self.start_ns <= now_ns < self.end_ns

    def overlap_ns(self, t0: float, t1: float) -> float:
        """Length of this window's overlap with ``[t0, t1)``."""
        if t1 <= t0:
            return 0.0
        return max(0.0, min(self.end_ns, t1) - max(self.start_ns, t0))

    def describe(self) -> str:
        """One deterministic human-readable line for the event trace."""
        target = self.resource if self.resource is not None else f"node{self.node_id}"
        end = "inf" if math.isinf(self.end_ns) else f"{self.end_ns / 1e6:.3f}ms"
        extras = []
        if self.kind is FaultKind.LINK_DEGRADE:
            extras.append(f"bw x{self.bandwidth_multiplier:g}")
        if self.kind in (FaultKind.LINK_DEGRADE, FaultKind.ERROR_STORM):
            extras.append(f"lat x{self.latency_multiplier:g}")
        if self.kind is FaultKind.POISON:
            extras.append(f"poison {self.poison_fraction * 100:g}%")
        detail = f" ({', '.join(extras)})" if extras else ""
        return (
            f"{self.kind.value} @ {target} "
            f"[{self.start_ns / 1e6:.3f}ms, {end}){detail}"
        )


class FaultPlan:
    """A seedable, ordered schedule of fault events."""

    def __init__(self, seed: int = DEFAULT_SEED) -> None:
        self.seed = int(seed)
        self.events: List[FaultEvent] = []

    # -- construction -----------------------------------------------------

    def add(self, event: FaultEvent) -> "FaultPlan":
        """Append one event, keeping the schedule sorted by start time."""
        self.events.append(event)
        self.events.sort(key=lambda e: (e.start_ns, e.kind.value))
        return self

    def degrade_link(
        self,
        start_ns: float,
        duration_ns: float,
        node_id: Optional[int] = None,
        resource: Optional[str] = None,
        bandwidth_multiplier: float = 0.25,
        latency_multiplier: float = 3.0,
    ) -> "FaultPlan":
        """Schedule a link-degradation window (CRC retry/retraining)."""
        return self.add(
            FaultEvent(
                FaultKind.LINK_DEGRADE,
                start_ns,
                duration_ns,
                node_id=node_id,
                resource=resource,
                bandwidth_multiplier=bandwidth_multiplier,
                latency_multiplier=latency_multiplier,
            )
        )

    def error_storm(
        self,
        start_ns: float,
        duration_ns: float,
        node_id: int,
        latency_multiplier: float = 8.0,
    ) -> "FaultPlan":
        """Schedule a correctable-error storm (latency inflation)."""
        return self.add(
            FaultEvent(
                FaultKind.ERROR_STORM,
                start_ns,
                duration_ns,
                node_id=node_id,
                latency_multiplier=latency_multiplier,
            )
        )

    def poison(
        self,
        start_ns: float,
        node_id: int,
        fraction: float = 0.02,
    ) -> "FaultPlan":
        """Poison a fraction of a node's pages at ``start_ns``.

        Poison is sticky: it persists until the owning application
        scrubs (rewrites/remaps) the page, so the nominal window length
        is irrelevant — a 1 ns duration marks the injection instant.
        """
        return self.add(
            FaultEvent(
                FaultKind.POISON,
                start_ns,
                1.0,
                node_id=node_id,
                poison_fraction=fraction,
            )
        )

    def fail_device(
        self,
        start_ns: float,
        node_id: int,
        duration_ns: float = math.inf,
    ) -> "FaultPlan":
        """Take a node offline at ``start_ns`` (permanent by default)."""
        return self.add(
            FaultEvent(
                FaultKind.DEVICE_FAIL, start_ns, duration_ns, node_id=node_id
            )
        )

    # -- queries ----------------------------------------------------------

    def events_of(self, kind: FaultKind) -> List[FaultEvent]:
        """All events of one kind, in schedule order."""
        return [e for e in self.events if e.kind is kind]

    def active_at(self, now_ns: float) -> List[FaultEvent]:
        """Events whose window covers ``now_ns``."""
        return [e for e in self.events if e.active_at(now_ns)]

    def window(self) -> Tuple[float, float]:
        """(first start, last *finite* end) across all events.

        Used by the recovery metrics to partition a run into
        before/during/after phases; a plan that only contains permanent
        failures reports ``end == inf``.
        """
        if not self.events:
            return (0.0, 0.0)
        start = min(e.start_ns for e in self.events)
        finite_ends = [e.end_ns for e in self.events if math.isfinite(e.end_ns)]
        end = max(finite_ends) if finite_ends else math.inf
        return (start, max(start, end))

    def describe(self) -> List[str]:
        """The schedule as deterministic one-line descriptions."""
        return [e.describe() for e in self.events]

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(seed={self.seed:#x}, events={len(self.events)})"
