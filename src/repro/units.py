"""Units and quantity helpers used throughout the simulator.

The simulator's canonical units are:

* **time** — nanoseconds (``float``).  All latencies and simulation clocks
  are in ns; helpers convert to/from us, ms and s.
* **size** — bytes (``int``).  Helpers for KiB/MiB/GiB/TiB and the decimal
  KB/MB/GB/TB used by DRAM vendors.
* **bandwidth** — bytes per second (``float``).  The paper reports GB/s
  (decimal, as memory vendors do); :func:`gb_per_s` converts.

Keeping a single canonical unit per dimension avoids an entire class of
unit-mismatch bugs; the helpers exist so call sites read like the paper
("``gb_per_s(67)``", "``GiB(256)``") rather than as raw powers of two.
"""

from __future__ import annotations

import math

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "KB",
    "MB",
    "GB",
    "TB",
    "PAGE_SIZE",
    "CACHELINE_SIZE",
    "NS_PER_US",
    "NS_PER_MS",
    "NS_PER_S",
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "kb",
    "mb",
    "gb",
    "tb",
    "gb_per_s",
    "to_gb_per_s",
    "us",
    "ms",
    "seconds",
    "ns_to_us",
    "ns_to_ms",
    "ns_to_s",
    "bytes_per_ns",
    "format_bytes",
    "format_bandwidth",
    "format_time_ns",
]

# Binary size multipliers (IEC).
KIB = 1024
MIB = 1024**2
GIB = 1024**3
TIB = 1024**4

# Decimal size multipliers (SI, used by DRAM/bandwidth vendor specs).
KB = 1000
MB = 1000**2
GB = 1000**3
TB = 1000**4

#: Default OS page size (4 KiB), matching x86-64 with THP disabled, which is
#: how the paper configures its KeyDB experiments (§4.1.1).
PAGE_SIZE = 4 * KIB

#: CPU cacheline, the unit of a single memory transaction (64 B, matching
#: the paper's MLC configuration in §3.1).
CACHELINE_SIZE = 64

NS_PER_US = 1_000.0
NS_PER_MS = 1_000_000.0
NS_PER_S = 1_000_000_000.0


def KiB(n: float) -> int:
    """Return ``n`` kibibytes in bytes."""
    return int(n * KIB)


def MiB(n: float) -> int:
    """Return ``n`` mebibytes in bytes."""
    return int(n * MIB)


def GiB(n: float) -> int:
    """Return ``n`` gibibytes in bytes."""
    return int(n * GIB)


def TiB(n: float) -> int:
    """Return ``n`` tebibytes in bytes."""
    return int(n * TIB)


def kb(n: float) -> int:
    """Return ``n`` decimal kilobytes in bytes."""
    return int(n * KB)


def mb(n: float) -> int:
    """Return ``n`` decimal megabytes in bytes."""
    return int(n * MB)


def gb(n: float) -> int:
    """Return ``n`` decimal gigabytes in bytes."""
    return int(n * GB)


def tb(n: float) -> int:
    """Return ``n`` decimal terabytes in bytes."""
    return int(n * TB)


def gb_per_s(n: float) -> float:
    """Convert a bandwidth from GB/s (decimal) to bytes/s."""
    return n * GB


def to_gb_per_s(bytes_per_second: float) -> float:
    """Convert a bandwidth from bytes/s back to GB/s (decimal)."""
    return bytes_per_second / GB


def us(n: float) -> float:
    """Return ``n`` microseconds in nanoseconds."""
    return n * NS_PER_US


def ms(n: float) -> float:
    """Return ``n`` milliseconds in nanoseconds."""
    return n * NS_PER_MS


def seconds(n: float) -> float:
    """Return ``n`` seconds in nanoseconds."""
    return n * NS_PER_S


def ns_to_us(t_ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return t_ns / NS_PER_US


def ns_to_ms(t_ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return t_ns / NS_PER_MS


def ns_to_s(t_ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return t_ns / NS_PER_S


def bytes_per_ns(bandwidth_bytes_per_s: float) -> float:
    """Convert a bandwidth in bytes/s to bytes per nanosecond."""
    return bandwidth_bytes_per_s / NS_PER_S


def format_bytes(n: float) -> str:
    """Render a byte count with a human-friendly binary suffix.

    >>> format_bytes(2 * 1024**3)
    '2.00 GiB'
    """
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for suffix, scale in (("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if n >= scale:
            return f"{sign}{n / scale:.2f} {suffix}"
    return f"{sign}{n:.0f} B"


def format_bandwidth(bytes_per_second: float) -> str:
    """Render a bandwidth in the paper's GB/s convention.

    >>> format_bandwidth(67e9)
    '67.00 GB/s'
    """
    return f"{to_gb_per_s(bytes_per_second):.2f} GB/s"


def format_time_ns(t_ns: float) -> str:
    """Render a duration with an auto-selected unit.

    >>> format_time_ns(250.42)
    '250.4 ns'
    >>> format_time_ns(2.5e9)
    '2.500 s'
    """
    if not math.isfinite(t_ns):
        return str(t_ns)
    a = abs(t_ns)
    if a >= NS_PER_S:
        return f"{t_ns / NS_PER_S:.3f} s"
    if a >= NS_PER_MS:
        return f"{t_ns / NS_PER_MS:.3f} ms"
    if a >= NS_PER_US:
        return f"{t_ns / NS_PER_US:.3f} us"
    return f"{t_ns:.1f} ns"
